//! DNS wire-format throughput: the hot path of the simulation (every
//! packet's payload is encoded/decoded once per hop endpoint).

use bcd_dnswire::{Message, MessageView, Name, RCode, RData, RType, Record, WireWriter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn experiment_query() -> Message {
    Message::query(
        0x1234,
        "t123456789.s10-1-2-3.d203-0-113-77.a64500.x7.dns-lab.org"
            .parse()
            .unwrap(),
        RType::A,
    )
}

fn nxdomain_response() -> Message {
    let q = experiment_query();
    let mut resp = Message::response_to(&q, RCode::NXDomain);
    resp.authorities.push(Record::new(
        "dns-lab.org".parse().unwrap(),
        60,
        RData::Soa(bcd_dnswire::Soa {
            mname: "project.dns-lab.org".parse().unwrap(),
            rname: "contact.dns-lab.org".parse().unwrap(),
            serial: 2019110601,
            refresh: 7200,
            retry: 900,
            expire: 1209600,
            minimum: 60,
        }),
    ));
    resp
}

fn bench(c: &mut Criterion) {
    let query = experiment_query();
    let resp = nxdomain_response();
    let query_bytes = query.encode();
    let resp_bytes = resp.encode();

    c.bench_function("encode_experiment_query", |b| {
        b.iter(|| black_box(&query).encode())
    });
    c.bench_function("decode_experiment_query", |b| {
        b.iter(|| Message::decode(black_box(&query_bytes)).unwrap())
    });
    c.bench_function("encode_nxdomain_response", |b| {
        b.iter(|| black_box(&resp).encode())
    });
    c.bench_function("decode_nxdomain_response", |b| {
        b.iter(|| Message::decode(black_box(&resp_bytes)).unwrap())
    });
    // The zero-copy variants every node uses on the hot path: encoding
    // into a per-node scratch writer (no fresh Vec, no fresh compression
    // map) and header/QNAME inspection through the borrowed view.
    c.bench_function("encode_into_scratch_query", |b| {
        let mut w = WireWriter::new();
        b.iter(|| {
            black_box(&query).encode_into(&mut w);
            black_box(w.as_bytes().len())
        })
    });
    c.bench_function("encode_into_scratch_response", |b| {
        let mut w = WireWriter::new();
        b.iter(|| {
            black_box(&resp).encode_into(&mut w);
            black_box(w.as_bytes().len())
        })
    });
    c.bench_function("view_header_and_qname", |b| {
        b.iter(|| {
            let v = MessageView::parse(black_box(&query_bytes)).unwrap();
            black_box((v.id(), v.qr(), v.question().unwrap()))
        })
    });
    c.bench_function("name_parse", |b| {
        b.iter(|| {
            "t123.s10-1-2-3.d203-0-113-77.a64500.x7.dns-lab.org"
                .parse::<Name>()
                .unwrap()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
