//! Event-engine throughput: a two-node UDP ping-pong measures raw
//! event-processing cost including border checks and delivery.

use bcd_netsim::{
    Asn, BorderPolicy, HostConfig, LinkProfile, Network, NetworkConfig, Node, NodeCtx, Packet,
    StackPolicy,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::net::IpAddr;

struct Pinger {
    me: IpAddr,
    peer: IpAddr,
    remaining: u64,
}

impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.send(Packet::udp(self.me, self.peer, 1, 1, vec![0; 32]));
    }
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(Packet::udp(pkt.dst, pkt.src, 1, 1, vec![0; 32]));
        }
    }
}

fn run_pingpong(rounds: u64) -> u64 {
    let mut net = Network::new(NetworkConfig {
        core_link: LinkProfile::ideal(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::open());
    net.add_simple_as(Asn(2), BorderPolicy::open());
    net.announce("16.0.0.0/24".parse().unwrap(), Asn(1));
    net.announce("17.0.0.0/24".parse().unwrap(), Asn(2));
    let a: IpAddr = "16.0.0.1".parse().unwrap();
    let b: IpAddr = "17.0.0.1".parse().unwrap();
    net.add_host(
        HostConfig {
            addrs: vec![a],
            asn: Asn(1),
            stack: StackPolicy::default(),
        },
        Box::new(Pinger {
            me: a,
            peer: b,
            remaining: rounds,
        }),
    );
    net.add_host(
        HostConfig {
            addrs: vec![b],
            asn: Asn(2),
            stack: StackPolicy::default(),
        },
        Box::new(Pinger {
            me: b,
            peer: a,
            remaining: rounds,
        }),
    );
    net.run();
    net.events_processed()
}

fn bench(c: &mut Criterion) {
    c.bench_function("engine_pingpong_10k_events", |b| {
        b.iter(|| run_pingpong(5_000))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
