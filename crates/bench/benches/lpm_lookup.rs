//! LPM engine comparison: the level-compressed trie (the default) against
//! the sorted-map oracle (`BCD_LPM=map`), at an Internet-scale table size.
//! `routing.rs` covers the default engine at survey-scale tables; this
//! bench isolates the engine choice itself.

use bcd_netsim::{Asn, Prefix, PrefixTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::IpAddr;

/// A deterministic routing table shaped like the generated world's:
/// per-AS runs of adjacent /24s plus a sprinkling of v6 /32s.
fn announcements(n: u32) -> Vec<(Prefix, Asn)> {
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let a = 1 + (i >> 16) % 220;
        let b = (i >> 8) & 0xFF;
        let c = i & 0xFF;
        let ip: IpAddr = format!("{a}.{b}.{c}.0").parse().unwrap();
        out.push((Prefix::new(ip, 24), Asn(i / 40)));
        if i % 13 == 0 {
            let ip6: IpAddr = format!("2600:{:x}::", i & 0xFFFF).parse().unwrap();
            out.push((Prefix::new(ip6, 32), Asn(i / 40)));
        }
    }
    out
}

fn fill(mut t: PrefixTable, ann: &[(Prefix, Asn)]) -> PrefixTable {
    for &(p, asn) in ann {
        t.announce(p, asn);
    }
    t
}

fn bench(c: &mut Criterion) {
    let ann = announcements(500_000); // ~540k prefixes: Internet-table order
    let trie = fill(PrefixTable::with_trie(), &ann);
    let map = fill(PrefixTable::with_map(), &ann);
    let probes: Vec<IpAddr> = (0..4_096u32)
        .map(|i| {
            format!("{}.{}.{}.7", 1 + (i % 200), (i * 7) & 0xFF, (i * 13) & 0xFF)
                .parse()
                .unwrap()
        })
        .collect();

    let mut g = c.benchmark_group("lpm_lookup_500k");
    g.bench_function("trie", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(trie.origin(probes[i]))
        })
    });
    g.bench_function("map", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(map.origin(probes[i]))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("lpm_build_100k");
    let small: Vec<_> = ann.iter().take(100_000).copied().collect();
    g.bench_function("trie", |b| {
        b.iter(|| fill(PrefixTable::with_trie(), black_box(&small)))
    });
    g.bench_function("map", |b| {
        b.iter(|| fill(PrefixTable::with_map(), black_box(&small)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
