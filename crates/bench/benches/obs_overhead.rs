//! Observability overhead: the survey with `bcd-obs` sinks disabled must
//! cost the same as one with them enabled — and, more importantly, the
//! same as the pre-instrumentation pipeline (the registry is only ever
//! assembled at phase boundaries; hot paths see one untaken branch per
//! probe). `crates/bench/results/BENCH_survey.json` commits the measured
//! perf *trajectory* — one labelled entry per perf-relevant PR, appended,
//! never overwritten. Append an entry with (the path resolves relative to
//! this crate — cargo runs benches from the package directory):
//!
//! ```sh
//! BCD_BENCH_JSON=results/BENCH_survey.json BCD_BENCH_LABEL=pr5-my-change \
//!     cargo bench -p bcd-bench --bench obs_overhead
//! # add BCD_BENCH_PAPER=1 for the (slow) paper-shape measurement,
//! # BCD_BENCH_N=<samples> to raise the per-config sample count, and
//! # BCD_SHARDS=8 for a sharded measurement (row names gain an `_s8`
//! # suffix so entries at different shard counts stay distinguishable)
//! ```

use bcd_core::{Experiment, ExperimentConfig};
use bcd_obs::ObsEnv;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn run_survey(cfg: &ExperimentConfig, env: &ObsEnv) -> usize {
    let data = Experiment::run_observed(cfg.clone(), env);
    data.entries.len()
}

fn timed(f: &mut impl FnMut() -> usize) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The "enabled" configuration: JSONL export armed, heartbeat branch armed
/// (with an interval no tiny run reaches, so stderr stays quiet and the
/// measured cost is the branch itself plus the end-of-run export).
fn enabled_env() -> ObsEnv {
    ObsEnv {
        jsonl_path: Some(std::env::temp_dir().join("bcd-obs-overhead.jsonl")),
        progress_every: Some(u64::MAX),
        trace: None,
    }
}

struct Measured {
    name: String,
    disabled_s: f64,
    enabled_s: f64,
}

impl Measured {
    fn overhead_pct(&self) -> f64 {
        100.0 * (self.enabled_s - self.disabled_s) / self.disabled_s
    }
}

/// Paired measurement: `n` samples of each configuration, *interleaved*
/// (disabled, enabled, disabled, enabled, ...) after one warm-up apiece,
/// so slow drift in machine load lands on both sides of the comparison
/// instead of biasing whichever configuration ran last.
fn measure(name: &str, cfg: &ExperimentConfig, n: usize) -> Measured {
    // BCD_BENCH_MODE picks the B side of the pairing: `full` (default,
    // JSONL + heartbeat), `jsonl` / `progress` (one sink at a time, to
    // attribute a measured delta), or `aa` (disabled vs disabled — any
    // "overhead" an A/A run reports is the host's noise floor; compare the
    // full-mode number against it before believing a regression).
    let mode = std::env::var("BCD_BENCH_MODE").unwrap_or_default();
    let mut run_disabled = || run_survey(cfg, &ObsEnv::disabled());
    let mut run_enabled = || {
        let env = match mode.as_str() {
            "aa" => ObsEnv::disabled(),
            "jsonl" => ObsEnv {
                progress_every: None,
                ..enabled_env()
            },
            "progress" => ObsEnv {
                jsonl_path: None,
                ..enabled_env()
            },
            _ => enabled_env(),
        };
        run_survey(cfg, &env)
    };
    black_box(run_disabled());
    black_box(run_enabled());
    let mut disabled = Vec::with_capacity(n);
    let mut enabled = Vec::with_capacity(n);
    for _ in 0..n {
        disabled.push(timed(&mut run_disabled));
        enabled.push(timed(&mut run_enabled));
    }
    Measured {
        name: name.to_string(),
        disabled_s: median(disabled),
        enabled_s: median(enabled),
    }
}

/// Append one labelled entry to the committed perf trajectory
/// (`crates/bench/results/BENCH_survey.json`). The file is a history, not
/// a snapshot: every perf-relevant PR appends an entry (label from
/// `BCD_BENCH_LABEL`) instead of overwriting the previous numbers, so the
/// wall-clock story of the survey stays in-tree. A file in an unknown
/// (pre-trajectory) format is replaced by a fresh single-entry trajectory.
fn write_json(path: &str, rows: &[Measured]) {
    let label = std::env::var("BCD_BENCH_LABEL").unwrap_or_else(|_| "unlabeled".to_string());
    let mut entry = format!("    {{\n      \"label\": \"{label}\",\n      \"surveys\": {{\n");
    for (i, m) in rows.iter().enumerate() {
        entry.push_str(&format!(
            "        \"{}\": {{\"obs_disabled\": {:.6}, \"obs_enabled\": {:.6}, \"overhead_pct\": {:.3}}}{}\n",
            m.name,
            m.disabled_s,
            m.enabled_s,
            m.overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    entry.push_str("      }\n    }");
    let fresh = |entry: &str| {
        format!(
            "{{\n  \"bench\": \"obs_overhead\",\n  \"unit\": \"seconds_median\",\n  \"trajectory\": [\n{entry}\n  ]\n}}\n"
        )
    };
    let s = match std::fs::read_to_string(path) {
        // Splice the new entry in front of the trajectory's closing
        // bracket; entries are never empty, so the comma is always right.
        Ok(prev) if prev.contains("\"trajectory\"") => match prev.rfind("\n  ]") {
            Some(pos) => {
                let (head, tail) = prev.split_at(pos);
                format!("{head},\n{entry}{tail}")
            }
            None => fresh(&entry),
        },
        _ => fresh(&entry),
    };
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("BCD_BENCH_JSON write to {path} failed: {e}");
    } else {
        println!("obs_overhead: trajectory entry \"{label}\" appended to {path}");
    }
}

fn bench(c: &mut Criterion) {
    // Criterion group for the per-config medians (skipped in the
    // attribution modes, which only want the paired numbers)...
    let tiny = ExperimentConfig::tiny(1);
    if std::env::var("BCD_BENCH_MODE").is_err() {
        let mut g = c.benchmark_group("obs_overhead");
        g.sample_size(10);
        g.bench_function("tiny_survey_obs_disabled", |b| {
            b.iter(|| run_survey(&tiny, &ObsEnv::disabled()))
        });
        g.bench_function("tiny_survey_obs_enabled", |b| {
            b.iter(|| run_survey(&tiny, &enabled_env()))
        });
        g.finish();
    }

    // ...and a paired measurement for the headline overhead number (the
    // acceptance bar is <3% with sinks disabled; paired runs on one core
    // keep the comparison honest).
    // The config constructors honour BCD_SHARDS, so one bench process
    // measures one shard count; suffix the row names so trajectory entries
    // taken at different shard counts stay distinguishable.
    let shard_suffix = std::env::var("BCD_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s > 1)
        .map(|s| format!("_s{s}"))
        .unwrap_or_default();
    let mut rows = vec![measure(&format!("tiny_seed1{shard_suffix}"), &tiny, 7)];
    if std::env::var("BCD_BENCH_PAPER").is_ok() {
        // Samples per configuration (BCD_BENCH_N to raise on noisy hosts;
        // each paper-shape sample is a ~30s full survey).
        let n = std::env::var("BCD_BENCH_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        let paper = ExperimentConfig::paper_shape(2019);
        rows.push(measure(
            &format!("paper_shape_seed2019{shard_suffix}"),
            &paper,
            n,
        ));
    }
    for m in &rows {
        println!(
            "obs_overhead/{}: disabled {:.3}s enabled {:.3}s overhead {:+.2}%",
            m.name,
            m.disabled_s,
            m.enabled_s,
            m.overhead_pct()
        );
    }
    if let Ok(path) = std::env::var("BCD_BENCH_JSON") {
        write_json(&path, &rows);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
