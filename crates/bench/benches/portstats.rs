//! The statistics behind Table 4: exact range-distribution evaluation and
//! cutoff derivation, plus the per-resolver classification step.

use bcd_core::analysis::ports::{adjust_windows_wrap, BandCutoffs};
use bcd_stats::{optimal_cutoff, Beta, RangeDistribution};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let linux = RangeDistribution::new(28_232, 10);
    c.bench_function("range_cdf", |b| {
        b.iter(|| black_box(linux.cdf(black_box(20_000))))
    });
    c.bench_function("beta_cdf", |b| {
        let beta = Beta::range_model(10);
        b.iter(|| black_box(beta.cdf(black_box(0.73))))
    });
    c.bench_function("optimal_cutoff_freebsd_linux", |b| {
        b.iter(|| {
            optimal_cutoff(
                RangeDistribution::new(16_383, 10),
                RangeDistribution::new(28_232, 10),
            )
        })
    });
    c.bench_function("derive_all_band_cutoffs", |b| b.iter(BandCutoffs::derive));
    c.bench_function("windows_wrap_adjustment", |b| {
        let ports = [
            65_400u16, 49_200, 65_500, 49_300, 65_300, 49_152, 65_535, 49_400, 65_450, 49_250,
        ];
        b.iter(|| adjust_windows_wrap(black_box(&ports)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
