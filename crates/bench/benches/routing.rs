//! Longest-prefix-match performance: the routing trie is consulted up to
//! four times per packet (OSAV source, destination, DSAV source, partial
//! SAV) across tens of millions of packets per survey.

use bcd_netsim::{Asn, Prefix, PrefixTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::IpAddr;

fn build_table(n_as: u32, prefixes_per_as: u32) -> PrefixTable {
    let mut t = PrefixTable::new();
    let mut block = 0u32;
    for asn in 0..n_as {
        for _ in 0..prefixes_per_as {
            let a = 1 + (block >> 16) % 220;
            let b = (block >> 8) & 0xFF;
            let c = block & 0xFF;
            let ip: IpAddr = format!("{a}.{b}.{c}.0").parse().unwrap();
            t.announce(Prefix::new(ip, 24), Asn(asn));
            block += 1;
        }
    }
    t
}

fn bench(c: &mut Criterion) {
    let table = build_table(2_000, 30); // 60k /24s
    let hits: Vec<IpAddr> = (0..1_000u32)
        .map(|i| {
            format!("1.{}.{}.7", (i >> 8) & 0xFF, i & 0xFF)
                .parse()
                .unwrap()
        })
        .collect();
    let miss: IpAddr = "223.255.255.1".parse().unwrap();

    c.bench_function("lpm_lookup_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % hits.len();
            black_box(table.origin(hits[i]))
        })
    });
    c.bench_function("lpm_lookup_miss", |b| {
        b.iter(|| black_box(table.origin(black_box(miss))))
    });
    c.bench_function("table_build_10k_prefixes", |b| {
        b.iter(|| build_table(500, 20))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
