//! Scheduler hot-loop micro-benchmark: heap vs timing wheel.
//!
//! Drives each [`bcd_netsim::EngineSched`] implementation through the same
//! seeded one-million-event push/pop workload the engine's hot loop
//! produces — a hold-time mix spanning same-tick bursts, link-RTT deliveries,
//! poll timers, and the +2 h human-noise timers — and reports events/sec.
//! Before timing anything it drains both schedulers over the identical
//! schedule and compares a running checksum of the pop streams: a free
//! differential check, so a wheel regression can't produce a fast-but-wrong
//! number here unnoticed.
//!
//! ```sh
//! cargo bench -p bcd-bench --bench sched_hot_loop
//! ```

use bcd_netsim::sched::EventKind;
use bcd_netsim::{splitmix64, EngineSched, HeapSched, QueuedEvent, SimTime, WheelSched};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const EVENTS: usize = 1_000_000;

/// The engine-shaped workload: pops advance `now`, pushes schedule at
/// `now + delta` with deltas drawn from the survey's real hold-time mix.
/// Pure function of the seed, so every scheduler sees byte-identical input.
fn drive(q: &mut impl EngineSched, events: usize, seed: u64) -> u64 {
    let mut x = seed;
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut checksum = 0u64;
    let mut pending = 0usize;
    let mut remaining = events;
    while remaining > 0 || pending > 0 {
        x = splitmix64(x);
        // Keep a realistic standing queue (~thousands in flight), then
        // drain.
        let push = remaining > 0 && (pending < 4_096 || x.is_multiple_of(3));
        if push {
            let delta = match x % 16 {
                0..=3 => 0,                                   // same-instant burst
                4..=7 => x % 100_000,                         // sub-bucket to few-bucket
                8..=11 => 10_000_000 + x % 40_000_000,        // link RTT (10–50 ms)
                12..=14 => 1_000_000_000 + x % 4_000_000_000, // poll timers (1–5 s)
                _ => 7_200_000_000_000,                       // +2 h human noise
            };
            q.push(QueuedEvent {
                at: SimTime::from_nanos(now + delta),
                seq,
                kind: EventKind::Timer {
                    host: 0,
                    token: seq,
                },
            });
            seq += 1;
            pending += 1;
            remaining -= 1;
        } else {
            let ev = q.pop().expect("pending > 0");
            now = ev.at.as_nanos();
            pending -= 1;
            checksum = splitmix64(checksum ^ now ^ ev.seq);
        }
    }
    checksum
}

fn bench(c: &mut Criterion) {
    // Differential gate first: identical checksums over the full workload,
    // or the throughput numbers below are meaningless.
    let h = drive(&mut HeapSched::new(), EVENTS, 0xBCD);
    let w = drive(&mut WheelSched::new(), EVENTS, 0xBCD);
    assert_eq!(h, w, "heap and wheel pop streams diverged");
    println!("sched_hot_loop: heap/wheel checksums agree over {EVENTS} events ({h:#x})");

    let mut g = c.benchmark_group("sched_hot_loop");
    g.sample_size(10);
    g.bench_function("heap_1e6", |b| {
        b.iter(|| drive(&mut HeapSched::new(), EVENTS, black_box(0xBCD)))
    });
    g.bench_function("wheel_1e6", |b| {
        b.iter(|| drive(&mut WheelSched::new(), EVENTS, black_box(0xBCD)))
    });
    // The warm case is the one the engine lives in: slab and buckets
    // already sized by a previous run, so pushes never allocate.
    g.bench_function("wheel_1e6_warm", |b| {
        let mut q = WheelSched::new();
        drive(&mut q, EVENTS, 0xBCD);
        b.iter(|| {
            q.clear();
            drive(&mut q, EVENTS, black_box(0xBCD))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
