//! End-to-end survey benchmark: world generation plus the full scan and
//! analysis over a miniature Internet — the shape of the whole
//! reproduction, measured.

use bcd_core::analysis::reachability::Reachability;
use bcd_core::{Experiment, ExperimentConfig};
use bcd_worldgen::{build, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("survey");
    g.sample_size(10);
    g.bench_function("worldgen_tiny", |b| {
        b.iter(|| build::build(WorldConfig::tiny(1)))
    });
    g.bench_function("full_survey_tiny", |b| {
        b.iter(|| {
            let data = Experiment::run(ExperimentConfig::tiny(1));
            Reachability::compute(&data.input()).reached.len()
        })
    });
    g.finish();

    // The Topology/Runtime split's economics: `build` pays for world
    // generation (AS table, routing, host configs, DITL traces) exactly
    // once; `spawn` is what each additional shard pays — blueprint
    // instantiation plus engine state, over the same shared topology.
    let mut g = c.benchmark_group("worldgen_build");
    g.sample_size(10);
    g.bench_function("build_tiny", |b| {
        b.iter(|| build::build(WorldConfig::tiny(1)).topo.host_count())
    });
    let world = build::build(WorldConfig::tiny(1));
    g.bench_function("spawn_runtime_tiny", |b| {
        b.iter(|| world.spawn().net.host_count())
    });
    g.finish();

    // The sharding layer on the paper-shape world: identical output (see
    // tests/shard_equivalence.rs), wall-clock compared 1 vs N engines.
    let mut g = c.benchmark_group("survey_sharded");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(&format!("paper_shape_seed2019_shards{shards}"), |b| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::paper_shape(2019);
                cfg.shards = shards;
                let data = Experiment::run(cfg);
                Reachability::compute(&data.input()).reached.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
