//! Causal-tracing overhead: the survey with the span flight recorder
//! *disarmed* must cost within 3% of one that never heard of tracing —
//! that is the acceptance bar for threading `BCD_TRACE` through every hot
//! path. The disarmed cost is one untaken branch per span site (detail
//! closures never run: `NodeCtx::span` returns before touching them), so
//! the paired measurement below gates on it directly.
//!
//! Three configurations, interleaved like `obs_overhead`:
//!
//! * `disabled` — `ObsEnv::disabled()`: no recorder exists. The baseline.
//! * `armed_unsampled` — recorder armed, but the sampling spec rejects
//!   every qname. Measures the per-origination sampling hash plus the
//!   armed-but-trace-0 branches; this is the cost a `sample=1/N` user pays
//!   on the queries that are *not* sampled, and it is gated < 3%.
//! * `armed_full` — every query traced (`sample=1/1`). Informational: the
//!   price of full capture (span formatting + BTree inserts).
//!
//! ```sh
//! cargo bench -p bcd-bench --bench trace_overhead
//! # BCD_BENCH_PAPER=1 adds the (slow) paper-shape S=1 measurement;
//! # BCD_BENCH_N=<samples> raises the per-config sample count;
//! # BCD_TRACE_GATE=off reports without failing (noisy-host escape hatch).
//! ```

use bcd_core::{Experiment, ExperimentConfig};
use bcd_netsim::TraceSample;
use bcd_obs::{ObsEnv, TraceConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn run_survey(cfg: &ExperimentConfig, env: &ObsEnv) -> usize {
    let data = Experiment::run_observed(cfg.clone(), env);
    data.entries.len()
}

fn timed(f: &mut impl FnMut() -> usize) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Recorder armed, sampling spec rejects everything: the suffix can never
/// match a generated qname (labels are hex serials under the experiment
/// apex), so every origination hashes its qname and then stays untraced.
fn unsampled_env() -> ObsEnv {
    ObsEnv::with_trace(TraceConfig {
        sample: TraceSample {
            every: 1,
            qname_suffix: Some("never.invalid".to_string()),
        },
        ..TraceConfig::default()
    })
}

struct Measured {
    name: String,
    disabled_s: f64,
    unsampled_s: f64,
    full_s: f64,
}

impl Measured {
    fn unsampled_pct(&self) -> f64 {
        100.0 * (self.unsampled_s - self.disabled_s) / self.disabled_s
    }
    fn full_pct(&self) -> f64 {
        100.0 * (self.full_s - self.disabled_s) / self.disabled_s
    }
}

/// Paired measurement, interleaved (disabled, unsampled, full, ...) after
/// one warm-up apiece, so load drift lands on every side of the
/// comparison.
fn measure(name: &str, cfg: &ExperimentConfig, n: usize) -> Measured {
    let mut run_disabled = || run_survey(cfg, &ObsEnv::disabled());
    let mut run_unsampled = || run_survey(cfg, &unsampled_env());
    let mut run_full = || run_survey(cfg, &ObsEnv::with_trace(TraceConfig::default()));
    black_box(run_disabled());
    black_box(run_unsampled());
    black_box(run_full());
    let (mut disabled, mut unsampled, mut full) = (
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    );
    for _ in 0..n {
        disabled.push(timed(&mut run_disabled));
        unsampled.push(timed(&mut run_unsampled));
        full.push(timed(&mut run_full));
    }
    Measured {
        name: name.to_string(),
        disabled_s: median(disabled),
        unsampled_s: median(unsampled),
        full_s: median(full),
    }
}

fn bench(c: &mut Criterion) {
    let tiny = ExperimentConfig::tiny(1);
    {
        let mut g = c.benchmark_group("trace_overhead");
        g.sample_size(10);
        g.bench_function("tiny_survey_trace_disabled", |b| {
            b.iter(|| run_survey(&tiny, &ObsEnv::disabled()))
        });
        g.bench_function("tiny_survey_trace_unsampled", |b| {
            b.iter(|| run_survey(&tiny, &unsampled_env()))
        });
        g.finish();
    }

    let n = std::env::var("BCD_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let mut rows = vec![measure("tiny_seed1", &tiny, n)];
    if std::env::var("BCD_BENCH_PAPER").is_ok() {
        // The acceptance shape: paper-shape S=1 (constructors honour
        // BCD_SHARDS, so leave it unset for the canonical measurement).
        let paper = ExperimentConfig::paper_shape(2019);
        rows.push(measure("paper_shape_seed2019", &paper, n.min(3)));
    }
    let mut worst = f64::MIN;
    for m in &rows {
        println!(
            "trace_overhead/{}: disabled {:.3}s unsampled {:.3}s ({:+.2}%) full {:.3}s ({:+.2}%)",
            m.name,
            m.disabled_s,
            m.unsampled_s,
            m.unsampled_pct(),
            m.full_s,
            m.full_pct()
        );
        worst = worst.max(m.unsampled_pct());
    }
    // The gate: disarmed-path overhead must stay under 3%. Shared-runner
    // medians jitter, so the escape hatch reports without failing.
    let gate_off = matches!(
        std::env::var("BCD_TRACE_GATE").ok().as_deref(),
        Some("off") | Some("0")
    );
    if worst > 3.0 && !gate_off {
        panic!(
            "trace_overhead gate: unsampled tracing costs {worst:+.2}% > 3% \
             over the disabled baseline (BCD_TRACE_GATE=off to report only)"
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
