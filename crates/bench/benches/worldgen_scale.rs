//! World-generation throughput: how fast the struct-of-arrays builder and
//! the streaming DITL pipeline scale with AS count. The full
//! `internet_scale` build is a batch job (see the ignored worldgen smoke
//! test); these are proportional slices that fit a bench budget and catch
//! superlinear regressions in the build path.

use bcd_worldgen::{build, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A fixed-density slice of the internet_scale configuration: same
/// per-AS marginals, same streaming pipeline, fewer ASes.
fn scale_slice(n_as: usize) -> WorldConfig {
    WorldConfig {
        n_as,
        ..WorldConfig::internet_scale(2019)
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("worldgen_scale");
    g.sample_size(10);
    g.bench_function("streamed_500as", |b| {
        b.iter(|| black_box(build::build(scale_slice(500))))
    });
    g.bench_function("streamed_2000as", |b| {
        b.iter(|| black_box(build::build(scale_slice(2_000))))
    });
    // The materialized path at the same shape, for the streaming delta.
    g.bench_function("materialized_500as", |b| {
        b.iter(|| {
            black_box(build::build(WorldConfig {
                materialize_ditl: true,
                ..scale_slice(500)
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
