//! Ablation of the border-filtering model itself: how much of the paper's
//! "median reachable target answered only ~3 spoofed sources" comes from
//! partial internal SAV, and what subnet-granular SAVI does to the
//! category-exclusive structure.
//!
//! Three worlds, identical except for the internal-filtering knobs:
//! 1. no internal filtering at all (every in-AS spoof passes),
//! 2. the calibrated default (partial SAV + 22% subnet SAVI),
//! 3. maximal internal filtering (all partial, no fully-open ASes).

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::{Experiment, ExperimentConfig, SourceCategory};

struct Row {
    label: &'static str,
    reached: usize,
    asns: usize,
    median_sources: usize,
    other_exclusive: usize,
}

fn run(label: &'static str, tune: impl FnOnce(&mut ExperimentConfig)) -> Row {
    let mut cfg = ExperimentConfig::paper_shape(bcd_bench::env_u64("BCD_SEED", 2019));
    cfg.world.n_as = bcd_bench::env_u64("BCD_NAS", 300) as usize;
    cfg.world.target_scale = bcd_bench::env_f64("BCD_SCALE", 0.15);
    tune(&mut cfg);
    let data = Experiment::run(cfg);
    let reach = Reachability::compute(&data.input());
    let cats = CategoryReport::compute(&reach);
    Row {
        label,
        reached: reach.reached.len(),
        asns: reach.reached_asns_all().len(),
        median_sources: cats.median_sources_v4,
        other_exclusive: cats.row(false, SourceCategory::OtherPrefix).exclusive_addrs,
    }
}

fn main() {
    let rows = [
        run("no internal filtering", |c| {
            c.world.fully_spoofable_fraction = 1.0;
            c.world.subnet_savi_fraction = 0.0;
        }),
        run("calibrated default", |_| {}),
        run("maximal internal SAV", |c| {
            c.world.fully_spoofable_fraction = 0.0;
            c.world.partial_pass_permille = (5, 40);
            c.world.subnet_savi_fraction = 0.5;
        }),
    ];
    println!("== ablation: internal border filtering vs observable shape ==");
    println!(
        "{:<24} {:>9} {:>7} {:>16} {:>18}",
        "internal filtering", "reached", "ASNs", "median sources", "other-prefix-excl"
    );
    for r in rows {
        println!(
            "{:<24} {:>9} {:>7} {:>16} {:>18}",
            r.label, r.reached, r.asns, r.median_sources, r.other_exclusive
        );
    }
    println!(
        "\npaper anchors: median 3 working sources (v4); other-prefix exclusively\n\
         reached 33% of v4 targets — only partial internal SAV produces both."
    );
}
