//! Ablation: NXDOMAIN vs wildcard experiment zones (§3.6.4).
//!
//! The paper's authoritative servers answered NXDOMAIN, which makes
//! QNAME-minimizing resolvers halt before revealing the full query name —
//! 55% of qmin resolvers were lost. The paper proposes wildcard synthesis
//! for a future run; this binary runs both configurations over the same
//! world (qmin cranked up so the effect is visible) and quantifies the
//! recovered coverage.

use bcd_core::analysis::reachability::Reachability;
use bcd_core::{Experiment, ExperimentConfig};

fn run(wildcard: bool) -> (usize, usize, usize) {
    let mut cfg = ExperimentConfig::paper_shape(bcd_bench::env_u64("BCD_SEED", 2019));
    cfg.world.n_as = bcd_bench::env_u64("BCD_NAS", 300) as usize;
    cfg.world.target_scale = bcd_bench::env_f64("BCD_SCALE", 0.15);
    // Make qmin common enough to matter (the 2019 Internet had 0.16%; the
    // ablation wants the mechanism visible).
    cfg.world.qmin_fraction = 0.25;
    cfg.world.qmin_halts_fraction = 0.55;
    cfg.wildcard_zone = wildcard;
    let data = Experiment::run(cfg);
    let reach = Reachability::compute(&data.input());
    (
        reach.reached.len(),
        reach.qmin.partial_only_sources.len(),
        reach.reached_asns_all().len(),
    )
}

fn main() {
    println!("== ablation: NXDOMAIN vs wildcard experiment zone (25% qmin world) ==");
    let (nx_addrs, nx_lost, nx_asns) = run(false);
    let (wc_addrs, wc_lost, wc_asns) = run(true);
    println!(
        "{:<22} {:>14} {:>18} {:>13}",
        "zone mode", "reached addrs", "qmin-lost targets", "reached ASNs"
    );
    println!(
        "{:<22} {:>14} {:>18} {:>13}",
        "NXDOMAIN (paper)", nx_addrs, nx_lost, nx_asns
    );
    println!(
        "{:<22} {:>14} {:>18} {:>13}",
        "wildcard (proposed)", wc_addrs, wc_lost, wc_asns
    );
    println!(
        "\nwildcard recovers {} targets that NXDOMAIN loses to RFC 8020 halting",
        wc_addrs as i64 - nx_addrs as i64
    );
}
