//! Ablation: re-run the scan with restricted source-category sets and
//! measure the coverage each category buys — the causal version of
//! Table 3's category-exclusive columns.
//!
//! The paper argues every category "independently contributed": removing
//! any one would have lowered both address and ASN coverage. Here we
//! actually remove them and re-scan.

use bcd_core::analysis::reachability::Reachability;
use bcd_core::{Experiment, ExperimentConfig, SourceCategory};

fn run(label: &str, filter: Option<Vec<SourceCategory>>) -> (String, usize, usize) {
    let mut cfg = ExperimentConfig::paper_shape(bcd_bench::env_u64("BCD_SEED", 2019));
    cfg.world.n_as = bcd_bench::env_u64("BCD_NAS", 300) as usize;
    cfg.world.target_scale = bcd_bench::env_f64("BCD_SCALE", 0.15);
    cfg.category_filter = filter;
    let data = Experiment::run(cfg);
    let reach = Reachability::compute(&data.input());
    (
        label.to_string(),
        reach.reached.len(),
        reach.reached_asns_all().len(),
    )
}

fn main() {
    use SourceCategory::*;
    let all = [OtherPrefix, SamePrefix, Private, DstAsSrc, Loopback];
    let mut rows = Vec::new();
    rows.push(run("all five categories", None));
    for drop in all {
        let keep: Vec<SourceCategory> = all.iter().copied().filter(|c| *c != drop).collect();
        rows.push(run(&format!("without {drop}"), Some(keep)));
    }
    rows.push(run("same-prefix only", Some(vec![SamePrefix])));
    rows.push(run("other-prefix only", Some(vec![OtherPrefix])));

    println!("== ablation: source-category contribution (re-scanned, not re-analyzed) ==");
    println!(
        "{:<28} {:>14} {:>12}",
        "scan configuration", "reached addrs", "reached ASNs"
    );
    let base = (rows[0].1, rows[0].2);
    for (label, addrs, asns) in &rows {
        println!(
            "{:<28} {:>8} ({:>+5}) {:>6} ({:>+4})",
            label,
            addrs,
            *addrs as i64 - base.0 as i64,
            asns,
            *asns as i64 - base.1 as i64
        );
    }
}
