//! Regenerate every table and figure in one run (one shared survey).

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::country::CountryReport;
use bcd_core::analysis::forwarding::ForwardingReport;
use bcd_core::analysis::local::LocalInfiltrationReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::passive::PassiveReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::qmin::QminReport;
use bcd_core::analysis::reachability::{MiddleboxReport, Reachability};
use bcd_core::{lab, report};
use std::time::Instant;

fn main() {
    let mut data = bcd_bench::standard_data();
    let t0 = Instant::now();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let countries = CountryReport::compute(&input, &reach);
    let cats = CategoryReport::compute(&reach);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    let fwd = ForwardingReport::compute(&input);
    let local = LocalInfiltrationReport::compute(&reach);
    let qmin = QminReport::compute(&input, &reach);
    let mbx = MiddleboxReport::compute(&input, &reach);
    let passive = PassiveReport::compute(&ports, &data.world.ditl2018);
    data.obs.profile.record("analysis", t0.elapsed());
    let t0 = Instant::now();

    println!("{}", report::render_headline(&data.targets, &reach));
    println!("{}", report::render_table1(&countries, 10));
    println!("{}", report::render_table2(&countries, 10));
    println!("{}", report::render_table3(&cats));
    println!("{}", report::render_table4(&ports));
    let n = bcd_bench::env_u64("BCD_LAB_QUERIES", 10_000) as usize;
    let seed = bcd_bench::env_u64("BCD_SEED", 2019);
    println!("{}", report::render_table5(&lab::table5(n, seed)));
    println!("{}", report::render_table6(&lab::table6()));
    println!("{}", report::render_figure2(&ports));
    println!(
        "{}",
        report::render_figure3a(&lab::figure3a_samples(n, seed))
    );
    println!("{}", report::render_figure3b(&ports));
    println!("{}", report::render_openclosed(&oc));
    println!("{}", report::render_forwarding(&fwd));
    println!("{}", report::render_local(&local));
    println!("{}", report::render_methodology(&reach, &qmin, &mbx));
    println!("{}", report::render_passive(&passive));
    println!("{}", report::render_engine_totals(&data.counters));
    data.obs.profile.record("report", t0.elapsed());

    // The run report goes to stderr (it is run metadata, not a paper
    // artifact); a BCD_OBS export is rewritten to include the analysis and
    // report phases appended above.
    eprintln!("{}", bcd_obs::report::render_run_report(&data.obs));
    if let Some(path) = &bcd_obs::ObsEnv::from_env().jsonl_path {
        if let Err(e) = data.obs.write_jsonl(path) {
            eprintln!("# BCD_OBS export to {} failed: {e}", path.display());
        } else {
            eprintln!("# metrics JSONL written to {}", path.display());
        }
    }
}
