//! Export the figure series as CSV (results/*.csv) for external plotting —
//! the numeric series behind Figures 2, 3a and 3b.

use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::lab;
use bcd_osmodel::P0fClass;
use bcd_stats::Beta;
use std::fmt::Write as _;
use std::fs;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);

    // Figure 2 / 3b: one row per resolver.
    let mut f2 = String::from("range,open,p0f\n");
    for (range, open, p0f) in ports.figure_points() {
        writeln!(f2, "{range},{},{}", open as u8, p0f).unwrap();
    }
    fs::write("results/fig2_field_ranges.csv", f2)?;

    // Figure 3a: lab sample ranges per pool, plus the Beta(9,2) curve.
    let n = bcd_bench::env_u64("BCD_LAB_QUERIES", 10_000) as usize;
    let samples = lab::figure3a_samples(n, bcd_bench::env_u64("BCD_SEED", 2019));
    let mut f3 = String::from("pool_label,pool_size,sample_range\n");
    for (label, pool, ranges) in &samples {
        for r in ranges {
            writeln!(f3, "{label},{pool},{r}").unwrap();
        }
    }
    fs::write("results/fig3a_lab_ranges.csv", f3)?;

    let beta = Beta::range_model(10);
    let mut curve = String::from("x,pdf,cdf\n");
    for i in 0..=1_000 {
        let x = i as f64 / 1_000.0;
        writeln!(curve, "{x:.3},{:.6},{:.6}", beta.pdf(x), beta.cdf(x)).unwrap();
    }
    fs::write("results/beta_9_2_model.csv", curve)?;

    // Table 4 as CSV.
    let mut t4 = String::from("lo,hi,label,total,open,closed,p0f_win,p0f_lin\n");
    for b in &ports.bands {
        writeln!(
            t4,
            "{},{},{},{},{},{},{},{}",
            b.lo, b.hi, b.label, b.total, b.open, b.closed, b.p0f_windows, b.p0f_linux
        )
        .unwrap();
    }
    fs::write("results/table4_bands.csv", t4)?;

    let p0f_counts = ports.p0f_totals();
    eprintln!(
        "# wrote results/fig2_field_ranges.csv ({} resolvers, {} p0f-classified), \
         fig3a_lab_ranges.csv, beta_9_2_model.csv, table4_bands.csv",
        ports.observations.len(),
        ports.observations.len() - p0f_counts.get(&P0fClass::Unknown).copied().unwrap_or(0),
    );
    Ok(())
}
