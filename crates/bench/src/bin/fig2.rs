//! Regenerate Figure 2: frequency distribution of source-port ranges of
//! reachable resolvers, stacked by open/closed status, full scale and the
//! 0–3,000 zoom.

use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    print!("{}", report::render_figure2(&ports));
}
