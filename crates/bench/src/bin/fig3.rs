//! Regenerate Figure 3: (a) lab-controlled 10-query sample ranges per OS
//! pool with the Beta(9,2) model overlay, and (b) the field distribution
//! stacked by p0f classification.

use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::{lab, report};

fn main() {
    let n = bcd_bench::env_u64("BCD_LAB_QUERIES", 10_000) as usize;
    let seed = bcd_bench::env_u64("BCD_SEED", 2019);
    let samples = lab::figure3a_samples(n, seed);
    print!("{}", report::render_figure3a(&samples));
    println!();
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    print!("{}", report::render_figure3b(&ports));
}
