//! Regenerate §5.4: direct vs forwarding resolvers.

use bcd_core::analysis::forwarding::ForwardingReport;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let fwd = ForwardingReport::compute(&input);
    print!("{}", report::render_forwarding(&fwd));
}
