//! Regenerate the paper's §4 headline reachability numbers.

use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    print!("{}", report::render_headline(&data.targets, &reach));
}
