//! Regenerate the §3.6 methodology accounting: the lifetime
//! (human-intervention) filter, QNAME-minimization coverage, and middlebox
//! attribution.

use bcd_core::analysis::qmin::QminReport;
use bcd_core::analysis::reachability::{MiddleboxReport, Reachability};
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let qmin = QminReport::compute(&input, &reach);
    let mbx = MiddleboxReport::compute(&input, &reach);
    print!("{}", report::render_methodology(&reach, &qmin, &mbx));
}
