//! Regenerate §5.1: open vs closed resolver classification.

use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    print!("{}", report::render_openclosed(&oc));
}
