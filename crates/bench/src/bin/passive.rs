//! Regenerate §5.2.2: the passive 2018-DITL comparison for resolvers with
//! no source-port randomization.

use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::passive::PassiveReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    let passive = PassiveReport::compute(&ports, &data.world.ditl2018);
    print!("{}", report::render_passive(&passive));
}
