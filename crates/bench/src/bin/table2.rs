//! Regenerate Table 2: DSAV results for the top countries by reachable-IP
//! percentage.

use bcd_core::analysis::country::CountryReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let countries = CountryReport::compute(&input, &reach);
    print!("{}", report::render_table2(&countries, 10));
}
