//! Regenerate Table 3: spoofed-source category effectiveness
//! (inclusive/exclusive, addresses and ASNs, both families).

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let cats = CategoryReport::compute(&reach);
    print!("{}", report::render_table3(&cats));
}
