//! Regenerate Table 4: reachable targets by source-port range band, with
//! open/closed status and p0f cross-checks (§5.2–5.3).

use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::report;

fn main() {
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    print!("{}", report::render_table4(&ports));
}
