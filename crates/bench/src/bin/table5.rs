//! Regenerate Table 5: default source-port allocation per DNS software,
//! from the controlled lab (10,000 queries per instance, like the paper;
//! override with BCD_LAB_QUERIES).

use bcd_core::{lab, report};

fn main() {
    let n = bcd_bench::env_u64("BCD_LAB_QUERIES", 10_000) as usize;
    let seed = bcd_bench::env_u64("BCD_SEED", 2019);
    let results = lab::table5(n, seed);
    print!("{}", report::render_table5(&results));
}
