//! Regenerate Table 6 (lab OS acceptance matrix) plus the §5.5 field
//! counterpart (destination-as-source / loopback hits in the survey).

use bcd_core::analysis::local::LocalInfiltrationReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::{lab, report};

fn main() {
    let rows = lab::table6();
    print!("{}", report::render_table6(&rows));
    println!();
    let data = bcd_bench::standard_data();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let local = LocalInfiltrationReport::compute(&reach);
    print!("{}", report::render_local(&local));
}
