//! # bcd-bench — experiment regeneration binaries and benchmarks
//!
//! One binary per paper table/figure (see DESIGN.md's per-experiment
//! index):
//!
//! | binary        | regenerates                                        |
//! |---------------|----------------------------------------------------|
//! | `headline`    | §4 headline reachability numbers                   |
//! | `table1`      | Table 1 (top countries by AS count)                |
//! | `table2`      | Table 2 (top countries by IP reachability)         |
//! | `table3`      | Table 3 (source-category effectiveness)            |
//! | `table4`      | Table 4 (port-range bands, open/closed, p0f)       |
//! | `table5`      | Table 5 (lab port-allocation per software)         |
//! | `table6`      | Table 6 (lab OS acceptance matrix) + §5.5 field    |
//! | `fig2`        | Figure 2 (range histogram by open/closed)          |
//! | `fig3`        | Figure 3a/3b (lab + field histograms, Beta model)  |
//! | `methodology` | §3.6 (lifetime filter, qmin, middlebox)            |
//! | `openclosed`  | §5.1                                               |
//! | `forwarding`  | §5.4                                               |
//! | `passive`     | §5.2.2 (2018 DITL comparison)                      |
//! | `all`         | everything above, in order                         |
//!
//! Environment knobs (all binaries): `BCD_SEED`, `BCD_NAS` (AS count),
//! `BCD_SCALE` (targets-per-AS multiplier), `BCD_SHARDS` (parallel survey
//! shards; results are byte-identical for any value).

use bcd_core::{Experiment, ExperimentConfig, ExperimentData};

/// Read an env knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a float env knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The standard experiment configuration used by all regeneration
/// binaries.
pub fn standard_config() -> ExperimentConfig {
    let seed = env_u64("BCD_SEED", 2019);
    let mut cfg = ExperimentConfig::paper_shape(seed);
    cfg.world.n_as = env_u64("BCD_NAS", cfg.world.n_as as u64) as usize;
    cfg.world.target_scale = env_f64("BCD_SCALE", cfg.world.target_scale);
    cfg.shards = bcd_core::shards_from_env().unwrap_or(cfg.shards);
    cfg
}

/// Run the standard experiment (shared by all binaries).
pub fn standard_data() -> ExperimentData {
    let cfg = standard_config();
    eprintln!(
        "# running survey: seed={} ases={} scale={:.2} shards={}",
        cfg.world.seed, cfg.world.n_as, cfg.world.target_scale, cfg.shards
    );
    let t0 = std::time::Instant::now();
    let data = Experiment::run(cfg);
    eprintln!(
        "# survey done in {:.1}s: {} targets, {} log entries, {} events",
        t0.elapsed().as_secs_f64(),
        data.targets.len(),
        data.entries.len(),
        data.events
    );
    data
}
