//! Cross-method validation: the AS-level agreement matrix between the
//! paper's outbound survey (method A) and the Closed-Resolver-Project
//! inbound scan (method B, [`crate::crp`]).
//!
//! Unlike every other analysis in this tree, this module performs an
//! **explicit validation join against generator ground truth**: both
//! methods' per-AS verdicts are scored against an oracle derived from the
//! world's rolled border policies and resolver registry
//! ([`expected_open`]). The oracle answers "which ASes *should* a correct
//! implementation of this methodology observe as open?" — which is the
//! strongest soundness statement a simulated survey can make. The
//! observable-only contract still holds for the verdicts themselves:
//! [`internal_open_asns`] and [`crp_open_asns`] read nothing but the two
//! query logs.
//!
//! Verdicts are deliberately like-for-like: both methods count an AS as
//! **open** when at least one probe in an *internal* source category
//! ([`crate::crp::CRP_CATEGORIES`]) produced an on-time, full-QNAME hit at
//! our authoritative servers. Loopback and private categories measure
//! bogon filtering, not inbound SAV, so they are out of scope for both
//! sides of the matrix.

use crate::analysis::reachability::Reachability;
use crate::crp::{CrpData, CRP_CATEGORIES};
use crate::qname::{Decoded, SuffixKind};
use crate::schedule::keeps_target;
use crate::sources::{classify_source, SourceCategory, SourcePlan};
use crate::targets::TargetSet;
use bcd_netsim::{stream_seed, subnet_permille, Asn, PrefixTable, SimDuration};
use bcd_worldgen::{AclKind, World};
use std::collections::BTreeSet;

/// Method A's per-AS verdict: ASes with at least one on-time reached
/// target whose evidence includes an internal source category.
pub fn internal_open_asns(reach: &Reachability) -> BTreeSet<Asn> {
    reach
        .reached
        .values()
        .filter(|hit| hit.categories.iter().any(|c| CRP_CATEGORIES.contains(c)))
        .map(|hit| hit.asn)
        .collect()
}

/// Method B's per-AS verdict, from the CRP pass's own log. Symmetric with
/// method A's rules: `Main`-suffix full decodes only, the same lifetime
/// threshold, internal categories only (the CRP schedule sends nothing
/// else, but the filter keeps the verdict self-contained).
pub fn crp_open_asns(
    b: &CrpData,
    routes: &PrefixTable,
    lifetime_threshold: SimDuration,
) -> BTreeSet<Asn> {
    let mut open = BTreeSet::new();
    for entry in &b.entries {
        if let Decoded::Full(tag) = b.codec.decode(&entry.qname) {
            if tag.suffix != SuffixKind::Main {
                continue;
            }
            if entry.time.saturating_since(tag.ts) > lifetime_threshold {
                continue;
            }
            match classify_source(tag.src, tag.dst, routes) {
                Some(cat) if CRP_CATEGORIES.contains(&cat) => {
                    open.insert(Asn(tag.asn));
                }
                _ => {}
            }
        }
    }
    open
}

/// The matrix universe: every AS with at least one target kept by the
/// run's deterministic subsample. ASes the schedule never probed would
/// trivially agree-closed and inflate the agreement rate.
pub fn universe_asns(targets: &TargetSet, salt: u64, sample: Option<u64>) -> BTreeSet<Asn> {
    targets
        .iter()
        .filter(|t| keeps_target(salt, sample, t.addr))
        .map(|t| t.asn)
        .collect()
}

/// The ground-truth oracle: which ASes should a correct run observe as
/// open to internal-category spoofs?
///
/// Replays the generator's own decision procedure over exactly the probes
/// the schedule derives — the same deterministic source plans, the same
/// subsample — against the rolled border policy and resolver registry:
///
/// 1. an AS with full DSAV drops every internal-source spoof at the
///    border — expected closed, no matter what its resolvers would do;
/// 2. per remaining probe, the border may still drop it: the v4
///    destination-as-source martian ACL, subnet-granular SAVI (covers
///    same-prefix *and* dst-as-src claims), or the partial internal-SAV
///    permille bucket (other-prefix subnets only — the destination's own
///    subnet is always feasible);
/// 3. a transparent interceptor grabs surviving v4 UDP/53 regardless of
///    target liveness and proxies with the full QNAME — evidence; v6
///    probes are grabbed and dropped by the v4-only middlebox;
/// 4. otherwise the target host must exist and be live, its OS stack must
///    accept destination-as-source packets for that claim, its ACL must
///    admit the category, and the resolution must carry the full QNAME to
///    our servers (forwarders always do; halting QNAME-minimizers never
///    do against an NXDOMAIN zone).
pub fn expected_open(
    world: &World,
    targets: &TargetSet,
    salt: u64,
    sample: Option<u64>,
    wildcard_zone: bool,
) -> BTreeSet<Asn> {
    let routes = world.topo.routes();
    let mut open = BTreeSet::new();
    for t in targets.iter() {
        if open.contains(&t.asn) || !keeps_target(salt, sample, t.addr) {
            continue;
        }
        let Some(info) = world.as_info(t.asn) else {
            continue;
        };
        let policy = info.policy;
        if policy.dsav {
            continue;
        }
        let interceptor = info.dns_interceptor.is_some();
        let v6 = t.addr.is_ipv6();
        let meta = world.meta_of(t.addr);
        let plan = SourcePlan::build_deterministic(t.addr, routes, &world.v6_hitlist, salt);
        for (cat, src) in &plan.sources {
            if !CRP_CATEGORIES.contains(cat) {
                continue;
            }
            // Border filters, in engine order.
            match cat {
                SourceCategory::DstAsSrc => {
                    if (!v6 && policy.filter_ds_ingress_v4) || policy.subnet_savi {
                        continue;
                    }
                }
                SourceCategory::SamePrefix => {
                    if policy.subnet_savi {
                        continue;
                    }
                }
                SourceCategory::OtherPrefix => {
                    if policy.internal_pass_permille < 1000
                        && subnet_permille(t.asn, *src) >= policy.internal_pass_permille as u64
                    {
                        continue;
                    }
                }
                _ => unreachable!("CRP categories are internal"),
            }
            if interceptor {
                if !v6 {
                    open.insert(t.asn);
                    break;
                }
                continue;
            }
            let Some(meta) = meta else {
                continue; // not in the registry: nothing answers
            };
            if !meta.live {
                continue;
            }
            if *cat == SourceCategory::DstAsSrc && !meta.os.stack_policy().accepts(true, false, v6)
            {
                continue;
            }
            let admits = match meta.acl {
                AclKind::Open | AclKind::AsWide | AclKind::AsWidePlusPrivate => true,
                AclKind::SameSubnet => {
                    matches!(cat, SourceCategory::SamePrefix | SourceCategory::DstAsSrc)
                }
                AclKind::SelfOnly => *cat == SourceCategory::DstAsSrc,
                AclKind::PrivateOnly | AclKind::LocalhostOnly | AclKind::NoMatch => false,
            };
            if !admits {
                continue;
            }
            // Full-QNAME evidence at our servers.
            if meta.forwards || !(meta.qmin && meta.qmin_halts && !wildcard_zone) {
                open.insert(t.asn);
                break;
            }
        }
    }
    open
}

/// The AS-by-AS agreement matrix, scored against ground truth.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AgreementMatrix {
    /// Number of ASes in the comparison universe.
    pub universe: usize,
    /// Both methods observed the AS open.
    pub agree_open: BTreeSet<Asn>,
    /// Neither method observed the AS open.
    pub agree_closed: BTreeSet<Asn>,
    /// Only the outbound survey observed the AS open.
    pub a_only: BTreeSet<Asn>,
    /// Only the inbound CRP scan observed the AS open.
    pub b_only: BTreeSet<Asn>,
    /// Method A open verdicts the oracle says should be closed.
    pub false_open_a: BTreeSet<Asn>,
    /// Oracle-open ASes method A missed.
    pub false_closed_a: BTreeSet<Asn>,
    /// Method B open verdicts the oracle says should be closed.
    pub false_open_b: BTreeSet<Asn>,
    /// Oracle-open ASes method B missed.
    pub false_closed_b: BTreeSet<Asn>,
}

impl AgreementMatrix {
    /// Build the matrix from explicit verdict sets. Verdicts outside the
    /// universe are discarded (they cannot be scored).
    pub fn from_sets(
        universe: &BTreeSet<Asn>,
        a_open: &BTreeSet<Asn>,
        b_open: &BTreeSet<Asn>,
        expected: &BTreeSet<Asn>,
    ) -> AgreementMatrix {
        let a: BTreeSet<Asn> = a_open.intersection(universe).copied().collect();
        let b: BTreeSet<Asn> = b_open.intersection(universe).copied().collect();
        let mut m = AgreementMatrix {
            universe: universe.len(),
            ..AgreementMatrix::default()
        };
        for &asn in universe {
            let exp = expected.contains(&asn);
            match (a.contains(&asn), b.contains(&asn)) {
                (true, true) => m.agree_open.insert(asn),
                (false, false) => m.agree_closed.insert(asn),
                (true, false) => m.a_only.insert(asn),
                (false, true) => m.b_only.insert(asn),
            };
            if a.contains(&asn) && !exp {
                m.false_open_a.insert(asn);
            }
            if !a.contains(&asn) && exp {
                m.false_closed_a.insert(asn);
            }
            if b.contains(&asn) && !exp {
                m.false_open_b.insert(asn);
            }
            if !b.contains(&asn) && exp {
                m.false_closed_b.insert(asn);
            }
        }
        m
    }

    /// Full wiring over a completed dual run: compute both verdicts, the
    /// universe, and the oracle from the experiment's own planning salt.
    pub fn compute(a: &crate::experiment::ExperimentData, b: &CrpData) -> AgreementMatrix {
        let reach = Reachability::compute(&a.input());
        let a_open = internal_open_asns(&reach);
        let routes = a.world.topo.routes();
        let b_open = crp_open_asns(b, routes, a.cfg.lifetime_threshold);
        let salt = stream_seed(a.cfg.world.seed, crate::experiment::SCHEDULE_SALT_STREAM);
        let universe = universe_asns(&a.targets, salt, a.cfg.target_sample);
        let expected = expected_open(
            &a.world,
            &a.targets,
            salt,
            a.cfg.target_sample,
            a.cfg.wildcard_zone,
        );
        AgreementMatrix::from_sets(&universe, &a_open, &b_open, &expected)
    }

    /// Method A's in-universe open set (both cells it appears in).
    pub fn a_open(&self) -> BTreeSet<Asn> {
        self.agree_open.union(&self.a_only).copied().collect()
    }

    /// Method B's in-universe open set.
    pub fn b_open(&self) -> BTreeSet<Asn> {
        self.agree_open.union(&self.b_only).copied().collect()
    }

    /// Fraction of the universe on which the two methods agree.
    pub fn agreement_rate(&self) -> f64 {
        if self.universe == 0 {
            return 1.0;
        }
        (self.agree_open.len() + self.agree_closed.len()) as f64 / self.universe as f64
    }

    /// Both methods matched the oracle exactly.
    pub fn is_exact(&self) -> bool {
        self.false_open_a.is_empty()
            && self.false_open_b.is_empty()
            && self.false_closed_a.is_empty()
            && self.false_closed_b.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(v: &[u32]) -> BTreeSet<Asn> {
        v.iter().map(|&n| Asn(n)).collect()
    }

    #[test]
    fn matrix_cells_partition_the_universe() {
        let universe = asns(&[1, 2, 3, 4, 5]);
        let a = asns(&[1, 2, 9]); // 9 is outside the universe: discarded
        let b = asns(&[1, 3]);
        let expected = asns(&[1, 2, 3]);
        let m = AgreementMatrix::from_sets(&universe, &a, &b, &expected);
        assert_eq!(m.agree_open, asns(&[1]));
        assert_eq!(m.agree_closed, asns(&[4, 5]));
        assert_eq!(m.a_only, asns(&[2]));
        assert_eq!(m.b_only, asns(&[3]));
        assert_eq!(
            m.agree_open.len() + m.agree_closed.len() + m.a_only.len() + m.b_only.len(),
            m.universe
        );
        assert_eq!(m.false_open_a, asns(&[]));
        assert_eq!(m.false_closed_a, asns(&[3]));
        assert_eq!(m.false_open_b, asns(&[]));
        assert_eq!(m.false_closed_b, asns(&[2]));
        assert!((m.agreement_rate() - 0.6).abs() < 1e-9);
        assert!(!m.is_exact());
    }

    #[test]
    fn exact_agreement_scores_exact() {
        let universe = asns(&[7, 8]);
        let open = asns(&[7]);
        let m = AgreementMatrix::from_sets(&universe, &open, &open, &open);
        assert!(m.is_exact());
        assert!((m.agreement_rate() - 1.0).abs() < 1e-9);
        assert_eq!(m.agree_closed, asns(&[8]));
    }
}
