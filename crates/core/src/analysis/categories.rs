//! Spoofed-source category effectiveness — Table 3 (§4.1).
//!
//! *Category-inclusive*: targets/ASNs reached by at least one source of
//! the category. *Category-exclusive*: targets/ASNs that **only** that
//! category reached — the measure of what the experiment would have missed
//! without it.

use crate::analysis::reachability::Reachability;
use crate::sources::SourceCategory;
use bcd_netsim::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// One Table 3 row (for one family).
#[derive(Debug, Default, Clone, Copy)]
pub struct CategoryRow {
    pub inclusive_addrs: usize,
    pub inclusive_asns: usize,
    pub exclusive_addrs: usize,
    pub exclusive_asns: usize,
}

/// The full Table 3 (both families).
#[derive(Debug, Default)]
pub struct CategoryReport {
    pub v4: BTreeMap<SourceCategory, CategoryRow>,
    pub v6: BTreeMap<SourceCategory, CategoryRow>,
    pub reached_addrs_v4: usize,
    pub reached_addrs_v6: usize,
    pub reached_asns_v4: usize,
    pub reached_asns_v6: usize,
    /// Median number of working sources per reached target (the paper:
    /// 3 for IPv4, 2 for IPv6).
    pub median_sources_v4: usize,
    pub median_sources_v6: usize,
    /// Fraction of reached targets reachable via more than 50 sources
    /// (paper: 16% IPv4, 9% IPv6).
    pub many_sources_v4: f64,
    pub many_sources_v6: f64,
}

impl CategoryReport {
    /// Build from the reachability analysis.
    pub fn compute(reach: &Reachability) -> CategoryReport {
        let mut report = CategoryReport::default();
        // Per-AS category unions, per family.
        let mut as_union: BTreeMap<(bool, Asn), BTreeSet<SourceCategory>> = BTreeMap::new();
        let mut as_by_cat: BTreeMap<(bool, SourceCategory), BTreeSet<Asn>> = BTreeMap::new();
        let mut source_counts_v4: Vec<usize> = Vec::new();
        let mut source_counts_v6: Vec<usize> = Vec::new();

        for (addr, hit) in &reach.reached {
            let v6 = addr.is_ipv6();
            let rows = if v6 { &mut report.v6 } else { &mut report.v4 };
            for cat in &hit.categories {
                rows.entry(*cat).or_default().inclusive_addrs += 1;
                as_by_cat.entry((v6, *cat)).or_default().insert(hit.asn);
            }
            if hit.categories.len() == 1 {
                let only = *hit.categories.iter().next().unwrap();
                rows.entry(only).or_default().exclusive_addrs += 1;
            }
            as_union
                .entry((v6, hit.asn))
                .or_default()
                .extend(hit.categories.iter().copied());
            if v6 {
                source_counts_v6.push(hit.sources.len());
            } else {
                source_counts_v4.push(hit.sources.len());
            }
        }

        for ((v6, cat), asns) in &as_by_cat {
            let rows = if *v6 { &mut report.v6 } else { &mut report.v4 };
            rows.entry(*cat).or_default().inclusive_asns = asns.len();
        }
        for ((v6, asn), cats) in &as_union {
            if cats.len() == 1 {
                let only = *cats.iter().next().unwrap();
                let rows = if *v6 { &mut report.v6 } else { &mut report.v4 };
                rows.entry(only).or_default().exclusive_asns += 1;
            }
            let _ = asn;
        }

        report.reached_addrs_v4 = source_counts_v4.len();
        report.reached_addrs_v6 = source_counts_v6.len();
        report.reached_asns_v4 = as_union.keys().filter(|(v6, _)| !v6).count();
        report.reached_asns_v6 = as_union.keys().filter(|(v6, _)| *v6).count();

        let med = |counts: &mut Vec<usize>| -> usize {
            if counts.is_empty() {
                return 0;
            }
            counts.sort_unstable();
            counts[counts.len() / 2]
        };
        let many = |counts: &[usize]| -> f64 {
            if counts.is_empty() {
                return 0.0;
            }
            counts.iter().filter(|&&c| c > 50).count() as f64 / counts.len() as f64
        };
        report.many_sources_v4 = many(&source_counts_v4);
        report.many_sources_v6 = many(&source_counts_v6);
        report.median_sources_v4 = med(&mut source_counts_v4);
        report.median_sources_v6 = med(&mut source_counts_v6);
        report
    }

    /// Row accessor with zero default.
    pub fn row(&self, v6: bool, cat: SourceCategory) -> CategoryRow {
        let rows = if v6 { &self.v6 } else { &self.v4 };
        rows.get(&cat).copied().unwrap_or_default()
    }
}
