//! Per-country aggregation — Tables 1 and 2 (§4).
//!
//! Each AS is associated with every country its prefixes geolocate to (so
//! an AS can be counted in several countries, as in the paper); targets are
//! attributed to the country of their covering prefix.

use crate::analysis::reachability::Reachability;
use crate::analysis::AnalysisInput;
use bcd_geo::Country;
use bcd_netsim::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregates for one country.
#[derive(Debug, Default, Clone)]
pub struct CountryRow {
    pub ases_total: BTreeSet<Asn>,
    pub ases_reachable: BTreeSet<Asn>,
    pub targets_total: usize,
    pub targets_reachable: usize,
}

impl CountryRow {
    /// AS reachability percentage.
    pub fn as_pct(&self) -> f64 {
        if self.ases_total.is_empty() {
            0.0
        } else {
            100.0 * self.ases_reachable.len() as f64 / self.ases_total.len() as f64
        }
    }

    /// Target (IP) reachability percentage.
    pub fn ip_pct(&self) -> f64 {
        if self.targets_total == 0 {
            0.0
        } else {
            100.0 * self.targets_reachable as f64 / self.targets_total as f64
        }
    }
}

/// The country report backing Tables 1 and 2.
#[derive(Debug, Default)]
pub struct CountryReport {
    pub rows: BTreeMap<Country, CountryRow>,
}

impl CountryReport {
    /// Build from reachability + geo.
    pub fn compute(input: &AnalysisInput<'_>, reach: &Reachability) -> CountryReport {
        let mut rows: BTreeMap<Country, CountryRow> = BTreeMap::new();
        let reached_asns = reach.reached_asns_all();

        // AS attribution (possibly multiple countries per AS).
        let asns: BTreeSet<Asn> = input.targets.iter().map(|t| t.asn).collect();
        for asn in asns {
            for country in input.geo.countries_of(asn) {
                let row = rows.entry(country).or_default();
                row.ases_total.insert(asn);
                if reached_asns.contains(&asn) {
                    row.ases_reachable.insert(asn);
                }
            }
        }

        // Target attribution (one country per address).
        for t in input.targets.iter() {
            let Some(country) = input.geo.country_of(t.addr) else {
                continue;
            };
            let row = rows.entry(country).or_default();
            row.targets_total += 1;
            if reach.reached.contains_key(&t.addr) {
                row.targets_reachable += 1;
            }
        }
        CountryReport { rows }
    }

    /// Table 1 ordering: countries by total AS count, descending.
    pub fn table1(&self, top: usize) -> Vec<(Country, &CountryRow)> {
        let mut v: Vec<(Country, &CountryRow)> = self.rows.iter().map(|(c, r)| (*c, r)).collect();
        v.sort_by_key(|(_, r)| std::cmp::Reverse(r.ases_total.len()));
        v.truncate(top);
        v
    }

    /// Table 2 ordering: countries by target-reachability percentage,
    /// descending (countries with at least one reachable target).
    pub fn table2(&self, top: usize) -> Vec<(Country, &CountryRow)> {
        let mut v: Vec<(Country, &CountryRow)> = self
            .rows
            .iter()
            .filter(|(_, r)| r.targets_reachable > 0)
            .map(|(c, r)| (*c, r))
            .collect();
        v.sort_by(|a, b| {
            b.1.ip_pct()
                .partial_cmp(&a.1.ip_pct())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v.truncate(top);
        v
    }
}
