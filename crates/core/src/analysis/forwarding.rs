//! Forwarding detection — §5.4.
//!
//! For each target with follow-up data, compare the authoritative-side
//! query source against the `dst` label: equality means the target resolves
//! directly; a different source means it forwards to an upstream. A target
//! can legitimately appear in both sets (the paper found 3,178 IPv4 and 219
//! IPv6 such targets).

use crate::analysis::AnalysisInput;
use crate::qname::{Decoded, SuffixKind};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// The §5.4 report, per family.
#[derive(Debug, Default)]
pub struct ForwardingReport {
    pub direct_v4: BTreeSet<IpAddr>,
    pub direct_v6: BTreeSet<IpAddr>,
    pub forwarded_v4: BTreeSet<IpAddr>,
    pub forwarded_v6: BTreeSet<IpAddr>,
    /// Targets in both sets.
    pub both_v4: usize,
    pub both_v6: usize,
    /// Distinct upstream addresses observed for forwarded targets.
    pub upstreams: BTreeSet<IpAddr>,
}

impl ForwardingReport {
    /// Analyze all follow-up responses (the paper relies on the IPv4-/
    /// IPv6-only zones so every resolution is attributable).
    pub fn compute(input: &AnalysisInput<'_>) -> ForwardingReport {
        let mut r = ForwardingReport::default();
        let mut seen: BTreeMap<IpAddr, (bool, bool)> = BTreeMap::new(); // dst -> (direct, fwd)
        for entry in input.log {
            let Decoded::Full(tag) = input.codec.decode(&entry.qname) else {
                continue;
            };
            // Use only the follow-up zone matching the target's family —
            // the reason the paper delegated v4-only and v6-only zones: a
            // dual-stack resolver answering a cross-family zone from its
            // other address is not forwarding.
            let family_matched = matches!(
                (tag.suffix, tag.dst.is_ipv6()),
                (SuffixKind::F4, false) | (SuffixKind::F6, true)
            );
            if !family_matched {
                continue;
            }
            // Drop referral-stage queries observed at the dual-stack parent
            // zone: only queries that reached the single-family f4/f6
            // servers themselves are family-attributable.
            if entry.server.is_ipv6() != (tag.suffix == SuffixKind::F6) {
                continue;
            }
            if entry.time.saturating_since(tag.ts) > input.lifetime_threshold {
                continue;
            }
            let slot = seen.entry(tag.dst).or_insert((false, false));
            if entry.src == tag.dst {
                slot.0 = true;
            } else {
                slot.1 = true;
                r.upstreams.insert(entry.src);
            }
        }
        for (dst, (direct, fwd)) in seen {
            let v6 = dst.is_ipv6();
            if direct {
                if v6 {
                    r.direct_v6.insert(dst);
                } else {
                    r.direct_v4.insert(dst);
                }
            }
            if fwd {
                if v6 {
                    r.forwarded_v6.insert(dst);
                } else {
                    r.forwarded_v4.insert(dst);
                }
            }
            if direct && fwd {
                if v6 {
                    r.both_v6 += 1;
                } else {
                    r.both_v4 += 1;
                }
            }
        }
        r
    }

    /// Fraction of v4 targets resolving directly (of those with data).
    pub fn direct_fraction_v4(&self) -> f64 {
        let total = self.resolved_v4();
        if total == 0 {
            0.0
        } else {
            self.direct_v4.len() as f64 / total as f64
        }
    }

    /// Fraction of v6 targets resolving directly.
    pub fn direct_fraction_v6(&self) -> f64 {
        let total = self.resolved_v6();
        if total == 0 {
            0.0
        } else {
            self.direct_v6.len() as f64 / total as f64
        }
    }

    /// v4 targets with any follow-up resolution evidence.
    pub fn resolved_v4(&self) -> usize {
        self.direct_v4.union(&self.forwarded_v4).count()
    }

    /// v6 targets with any follow-up resolution evidence.
    pub fn resolved_v6(&self) -> usize {
        self.direct_v6.union(&self.forwarded_v6).count()
    }
}
