//! Local-system infiltration — §5.5, the field counterpart of Table 6.
//!
//! Destination-as-source and loopback sources should never arrive from
//! outside a host, yet kernels accept them (Table 6); this report counts
//! the targets reached by each anomalous category, per family, from the
//! reachability evidence.

use crate::analysis::reachability::Reachability;
use crate::sources::SourceCategory;
use bcd_netsim::Asn;
use std::collections::BTreeSet;
use std::net::IpAddr;

/// The §5.5 report.
#[derive(Debug, Default)]
pub struct LocalInfiltrationReport {
    pub dst_as_src_v4: BTreeSet<IpAddr>,
    pub dst_as_src_v6: BTreeSet<IpAddr>,
    pub loopback_v4: BTreeSet<IpAddr>,
    pub loopback_v6: BTreeSet<IpAddr>,
    pub dst_as_src_asns: BTreeSet<Asn>,
    pub loopback_asns: BTreeSet<Asn>,
}

impl LocalInfiltrationReport {
    /// Extract the anomalous-source hits.
    pub fn compute(reach: &Reachability) -> LocalInfiltrationReport {
        let mut r = LocalInfiltrationReport::default();
        for (addr, hit) in &reach.reached {
            let v6 = addr.is_ipv6();
            if hit.categories.contains(&SourceCategory::DstAsSrc) {
                if v6 {
                    r.dst_as_src_v6.insert(*addr);
                } else {
                    r.dst_as_src_v4.insert(*addr);
                }
                r.dst_as_src_asns.insert(hit.asn);
            }
            if hit.categories.contains(&SourceCategory::Loopback) {
                if v6 {
                    r.loopback_v6.insert(*addr);
                } else {
                    r.loopback_v4.insert(*addr);
                }
                r.loopback_asns.insert(hit.asn);
            }
        }
        r
    }

    /// Total destination-as-source hits (the paper: 123,592).
    pub fn dst_as_src_total(&self) -> usize {
        self.dst_as_src_v4.len() + self.dst_as_src_v6.len()
    }

    /// Total loopback hits (the paper: 107 — 1 IPv4, 106 IPv6).
    pub fn loopback_total(&self) -> usize {
        self.loopback_v4.len() + self.loopback_v6.len()
    }
}
