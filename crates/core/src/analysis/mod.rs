//! Every analysis in the paper, §§3.6–5.
//!
//! All analyses consume the same [`AnalysisInput`]: the authoritative query
//! log plus the planning artifacts (target set, routes, geo database) — the
//! same observables the authors had. Ground truth from `bcd-worldgen` is
//! never read here; validation joins happen in tests and reports only. The
//! one deliberate exception is [`agreement`], whose whole purpose is that
//! join: it scores both measurement methods' observable-only verdicts
//! against the generator's rolled SAV policies.

pub mod agreement;
pub mod categories;
pub mod country;
pub mod forwarding;
pub mod local;
pub mod openclosed;
pub mod passive;
pub mod ports;
pub mod qmin;
pub mod reachability;

use crate::qname::QnameCodec;
use crate::targets::TargetSet;
use bcd_dns::QueryLogEntry;
use bcd_geo::GeoDb;
use bcd_netsim::{PrefixTable, SimDuration};
use std::net::IpAddr;

/// Shared input to all analyses.
pub struct AnalysisInput<'a> {
    /// Snapshot of the experiment estate's query log.
    pub log: &'a [QueryLogEntry],
    pub codec: &'a QnameCodec,
    pub targets: &'a TargetSet,
    /// The announced-routes table used at planning time.
    pub routes: &'a PrefixTable,
    pub geo: &'a GeoDb,
    /// The scanner's real addresses (identify open-resolver probes).
    pub scanner_v4: IpAddr,
    pub scanner_v6: IpAddr,
    /// Known public DNS service addresses (middlebox attribution, §3.6.1).
    pub public_dns: &'a [IpAddr],
    /// Queries older than this when they arrive are attributed to human
    /// intervention and excluded (§3.6.3's 10-second rule).
    pub lifetime_threshold: SimDuration,
}

impl<'a> AnalysisInput<'a> {
    /// Is `addr` one of the scanner's real addresses?
    pub fn is_scanner(&self, addr: IpAddr) -> bool {
        addr == self.scanner_v4 || addr == self.scanner_v6
    }
}
