//! Open vs. closed resolver classification — §5.1.
//!
//! A reached resolver is *open* if the non-spoofed open-resolver probe
//! (§3.5) induced a recursive-to-authoritative query; *closed* otherwise.
//! The paper's headline: 60% closed / 40% open, and a closed resolver was
//! reached in 88% of no-DSAV ASes — networks whose "protected" resolvers
//! are not actually protected.

use crate::analysis::reachability::Reachability;
use crate::analysis::AnalysisInput;
use crate::qname::{Decoded, SuffixKind};
use bcd_netsim::Asn;
use std::collections::{BTreeSet, HashMap};
use std::net::IpAddr;

/// The §5.1 report.
#[derive(Debug, Default)]
pub struct OpenClosedReport {
    /// Reached targets that answered the non-spoofed probe.
    pub open: BTreeSet<IpAddr>,
    /// Reached targets that did not.
    pub closed: BTreeSet<IpAddr>,
    /// Reached ASes hosting at least one *closed* reached resolver.
    pub asns_with_closed: BTreeSet<Asn>,
    /// All reached ASes.
    pub reached_asns: BTreeSet<Asn>,
}

impl OpenClosedReport {
    /// Classify every reached target.
    pub fn compute(input: &AnalysisInput<'_>, reach: &Reachability) -> OpenClosedReport {
        // Targets whose open probe produced an authoritative query.
        let mut open_evidence: HashMap<IpAddr, bool> = HashMap::new();
        for entry in input.log {
            if let Decoded::Full(tag) = input.codec.decode(&entry.qname) {
                if tag.suffix == SuffixKind::Main && input.is_scanner(tag.src) {
                    open_evidence.insert(tag.dst, true);
                }
            }
        }

        let mut report = OpenClosedReport::default();
        for (addr, hit) in &reach.reached {
            report.reached_asns.insert(hit.asn);
            if open_evidence.contains_key(addr) {
                report.open.insert(*addr);
            } else {
                report.closed.insert(*addr);
                report.asns_with_closed.insert(hit.asn);
            }
        }
        report
    }

    /// Whether a reached target is open.
    pub fn is_open(&self, addr: IpAddr) -> bool {
        self.open.contains(&addr)
    }

    /// Open fraction among classified resolvers.
    pub fn open_fraction(&self) -> f64 {
        let total = self.open.len() + self.closed.len();
        if total == 0 {
            0.0
        } else {
            self.open.len() as f64 / total as f64
        }
    }

    /// Fraction of reached ASes with at least one closed reached resolver
    /// (the paper's "nearly 9 out of 10 networks").
    pub fn closed_as_fraction(&self) -> f64 {
        if self.reached_asns.is_empty() {
            0.0
        } else {
            self.asns_with_closed.len() as f64 / self.reached_asns.len() as f64
        }
    }
}
