//! Passive longitudinal comparison — §5.2.2.
//!
//! For every resolver the *active* measurement found pinned to a single
//! source port, look it up in the (18-month-old) 2018 DITL trace:
//!
//! * already fixed then — the vulnerability is long-standing (paper: 51%),
//! * varied then — it *regressed* in the intervening 18 months (25%),
//! * insufficient data for a fair comparison (24%).
//!
//! A resolver is comparable only if the old trace holds ≥ 10 unique-name
//! queries from it, or at least one query using exactly the port the
//! active measurement observed — the paper's false-positive guard.

use crate::analysis::ports::PortReport;
use bcd_worldgen::DitlRecord;
use std::collections::{BTreeSet, HashMap};
use std::net::IpAddr;

/// The §5.2.2 outcome for one zero-range resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassiveOutcome {
    /// No port variation in 2018 either.
    FixedThen,
    /// Showed variation in 2018 — has since regressed.
    VariedThen,
    /// Not enough 2018 data.
    Insufficient,
}

/// The report.
#[derive(Debug, Default)]
pub struct PassiveReport {
    pub fixed_then: usize,
    pub varied_then: usize,
    pub insufficient: usize,
    pub outcomes: Vec<(IpAddr, PassiveOutcome)>,
}

impl PassiveReport {
    /// Compare the active zero-range population against the 2018 trace.
    pub fn compute(ports: &PortReport, trace_2018: &[DitlRecord]) -> PassiveReport {
        // Index the old trace: src -> (ports, unique qnames).
        let mut old: HashMap<IpAddr, (Vec<u16>, BTreeSet<String>)> = HashMap::new();
        for rec in trace_2018 {
            let e = old.entry(rec.src).or_default();
            e.0.push(rec.src_port);
            e.1.insert(rec.qname.to_string());
        }

        let mut report = PassiveReport::default();
        for obs in ports.observations.iter().filter(|o| o.range == 0) {
            let current_port = obs.ports[0];
            let outcome = match old.get(&obs.addr) {
                Some((ports2018, qnames)) => {
                    let comparable = qnames.len() >= 10 || ports2018.contains(&current_port);
                    if !comparable {
                        PassiveOutcome::Insufficient
                    } else {
                        let unique: BTreeSet<u16> = ports2018.iter().copied().collect();
                        if unique.len() == 1 {
                            PassiveOutcome::FixedThen
                        } else {
                            PassiveOutcome::VariedThen
                        }
                    }
                }
                None => PassiveOutcome::Insufficient,
            };
            match outcome {
                PassiveOutcome::FixedThen => report.fixed_then += 1,
                PassiveOutcome::VariedThen => report.varied_then += 1,
                PassiveOutcome::Insufficient => report.insufficient += 1,
            }
            report.outcomes.push((obs.addr, outcome));
        }
        report
    }

    /// Total zero-range resolvers compared.
    pub fn total(&self) -> usize {
        self.fixed_then + self.varied_then + self.insufficient
    }
}
