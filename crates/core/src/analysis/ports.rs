//! Source-port randomization and OS identification — §5.2, §5.3.2–5.3.3,
//! Table 4, Figures 2, 3b.
//!
//! Only resolvers that contacted the authoritative servers **directly**
//! (query source equals the `dst` label) are analyzed, so the ports belong
//! to the target system and not to an upstream forwarder (§5.2). The range
//! of the 10 follow-up source ports is the classifier input; pool-specific
//! bands (computed from the exact range distribution, matching the paper's
//! Beta(9,2) model) attribute resolvers to OS port pools.

use crate::analysis::openclosed::OpenClosedReport;
use crate::analysis::AnalysisInput;
use crate::qname::{Decoded, SuffixKind};
use bcd_dns::LogProto;
use bcd_netsim::{Asn, SimTime};
use bcd_osmodel::ports::{IANA_HI, IANA_LO, WINDOWS_POOL_SIZE};
use bcd_osmodel::{P0fClass, P0fClassifier};
use bcd_stats::cutoff::{accuracy_cutoff, lower_accuracy_cutoff};
use bcd_stats::{optimal_cutoff, RangeDistribution};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;

/// Follow-up queries per family (fixed by the methodology).
pub const SAMPLE_SIZE: usize = 10;

/// One analyzed resolver.
#[derive(Debug, Clone)]
pub struct PortObservation {
    pub addr: IpAddr,
    pub asn: Asn,
    /// The first [`SAMPLE_SIZE`] direct follow-up source ports, arrival
    /// order.
    pub ports: Vec<u16>,
    /// Range after the Windows wrap adjustment (if applied).
    pub range: u32,
    /// Raw max−min range.
    pub raw_range: u32,
    /// The §5.3.2 wrap adjustment fired.
    pub adjusted: bool,
    pub open: bool,
    pub p0f: P0fClass,
}

/// §5.2.1 zero-range census.
#[derive(Debug, Default)]
pub struct ZeroRangeReport {
    pub count: usize,
    pub open: usize,
    pub closed: usize,
    pub port53: usize,
    pub port32768: usize,
    pub port32769: usize,
    pub asns: BTreeSet<Asn>,
    /// ASes (of the above) that host at least one *closed* zero-range
    /// resolver — where DSAV would actually reduce the attack surface.
    pub asns_with_closed: BTreeSet<Asn>,
}

/// §5.2.3 low-range (1–200) analysis.
#[derive(Debug, Default)]
pub struct LowRangeReport {
    pub count: usize,
    pub strictly_increasing: usize,
    pub wrapped: usize,
    /// ≤ 7 unique ports out of 10 — wildly unlikely under a uniform pool
    /// of ~200 (P ≈ 0.066%).
    pub few_unique: usize,
    pub asns: BTreeSet<Asn>,
}

/// One Table 4 band.
#[derive(Debug, Clone)]
pub struct BandRow {
    /// Inclusive range bounds for the observed port range.
    pub lo: u32,
    pub hi: u32,
    pub label: &'static str,
    pub total: usize,
    pub open: usize,
    pub closed: usize,
    pub p0f_windows: usize,
    pub p0f_linux: usize,
}

/// The computed band edges (the paper's cutoffs, re-derived from the exact
/// range distributions rather than copied).
#[derive(Debug, Clone, Copy)]
pub struct BandCutoffs {
    /// Lower edge of the Windows band (99.9% of Windows ranges above).
    pub windows_lo: u32,
    /// Upper edge of the Windows band.
    pub windows_hi: u32,
    /// Lower edge of the FreeBSD band.
    pub freebsd_lo: u32,
    /// FreeBSD/Linux minimum-misclassification cutoff (paper: 16,331).
    pub freebsd_linux: u32,
    /// Linux/full-range minimum-misclassification cutoff (paper: 28,222).
    pub linux_full: u32,
}

impl BandCutoffs {
    /// Derive all edges from the pool sizes with `n = 10` draws.
    pub fn derive() -> BandCutoffs {
        let windows = RangeDistribution::new(WINDOWS_POOL_SIZE, SAMPLE_SIZE as u32);
        let freebsd = RangeDistribution::new(16_383, SAMPLE_SIZE as u32);
        let linux = RangeDistribution::new(28_232, SAMPLE_SIZE as u32);
        let full = RangeDistribution::new(64_511, SAMPLE_SIZE as u32);
        BandCutoffs {
            windows_lo: lower_accuracy_cutoff(windows, 0.999),
            windows_hi: accuracy_cutoff(windows, 0.999),
            freebsd_lo: lower_accuracy_cutoff(freebsd, 0.999),
            freebsd_linux: optimal_cutoff(freebsd, linux).cutoff,
            linux_full: optimal_cutoff(linux, full).cutoff,
        }
    }
}

/// The complete §5.2–5.3 port analysis.
#[derive(Debug)]
pub struct PortReport {
    pub observations: Vec<PortObservation>,
    /// Direct resolvers with fewer than [`SAMPLE_SIZE`] observed ports.
    pub insufficient: usize,
    pub zero: ZeroRangeReport,
    pub low: LowRangeReport,
    pub cutoffs: BandCutoffs,
    pub bands: Vec<BandRow>,
}

impl PortReport {
    /// Run the analysis.
    pub fn compute(input: &AnalysisInput<'_>, open_closed: &OpenClosedReport) -> PortReport {
        // ---- gather direct follow-up ports and TCP fingerprints ----
        struct Acc {
            asn: Asn,
            ports: Vec<(SimTime, u16)>,
            p0f: P0fClass,
        }
        let mut acc: HashMap<IpAddr, Acc> = HashMap::new();
        let classifier = P0fClassifier::new();

        for entry in input.log {
            let Decoded::Full(tag) = input.codec.decode(&entry.qname) else {
                continue;
            };
            if entry.src != tag.dst {
                continue; // §5.2: direct resolvers only
            }
            if entry.time.saturating_since(tag.ts) > input.lifetime_threshold {
                continue;
            }
            match (tag.suffix, entry.proto) {
                (SuffixKind::F4 | SuffixKind::F6, LogProto::Udp) => {
                    let a = acc.entry(tag.dst).or_insert(Acc {
                        asn: Asn(tag.asn),
                        ports: Vec::new(),
                        p0f: P0fClass::Unknown,
                    });
                    a.ports.push((entry.time, entry.src_port));
                }
                (SuffixKind::Tcp, LogProto::Tcp) => {
                    if let Some(syn) = entry.syn {
                        let class = classifier.classify_fields(
                            P0fClassifier::infer_initial_ttl(syn.observed_ttl),
                            syn.window,
                            syn.mss,
                            syn.layout,
                        );
                        let a = acc.entry(tag.dst).or_insert(Acc {
                            asn: Asn(tag.asn),
                            ports: Vec::new(),
                            p0f: P0fClass::Unknown,
                        });
                        a.p0f = class;
                    }
                }
                _ => {}
            }
        }

        // ---- per-resolver observation ----
        let mut observations = Vec::new();
        let mut insufficient = 0;
        for (addr, mut a) in acc {
            a.ports.sort_by_key(|(t, _)| *t);
            if a.ports.len() < SAMPLE_SIZE {
                insufficient += 1;
                continue;
            }
            let ports: Vec<u16> = a.ports.iter().take(SAMPLE_SIZE).map(|(_, p)| *p).collect();
            let raw_range = range_of(&ports);
            // §5.3.2 wrap adjustment for resolvers p0f saw as Windows.
            let (range, adjusted) = if a.p0f == P0fClass::Windows {
                adjust_windows_wrap(&ports)
            } else {
                (raw_range, false)
            };
            observations.push(PortObservation {
                addr,
                asn: a.asn,
                ports,
                range,
                raw_range,
                adjusted,
                open: open_closed.is_open(addr),
                p0f: a.p0f,
            });
        }
        observations.sort_by_key(|o| o.addr);

        // ---- zero-range census (§5.2.1) ----
        let mut zero = ZeroRangeReport::default();
        for o in observations.iter().filter(|o| o.range == 0) {
            zero.count += 1;
            zero.asns.insert(o.asn);
            if o.open {
                zero.open += 1;
            } else {
                zero.closed += 1;
                zero.asns_with_closed.insert(o.asn);
            }
            match o.ports[0] {
                53 => zero.port53 += 1,
                32_768 => zero.port32768 += 1,
                32_769 => zero.port32769 += 1,
                _ => {}
            }
        }

        // ---- low-range analysis (§5.2.3) ----
        let mut low = LowRangeReport::default();
        for o in observations.iter().filter(|o| (1..=200).contains(&o.range)) {
            low.count += 1;
            low.asns.insert(o.asn);
            let (increasing, wrapped) = increasing_pattern(&o.ports);
            if increasing {
                low.strictly_increasing += 1;
                if wrapped {
                    low.wrapped += 1;
                }
            }
            let unique: BTreeSet<u16> = o.ports.iter().copied().collect();
            if unique.len() <= 7 {
                low.few_unique += 1;
            }
        }

        // ---- Table 4 bands ----
        let cutoffs = BandCutoffs::derive();
        let edges: [(u32, u32, &'static str); 8] = [
            (0, 0, ""),
            (1, 200, ""),
            (201, cutoffs.windows_lo - 1, ""),
            (cutoffs.windows_lo, cutoffs.windows_hi, "Windows DNS"),
            (cutoffs.windows_hi + 1, cutoffs.freebsd_lo - 1, ""),
            (cutoffs.freebsd_lo, cutoffs.freebsd_linux, "FreeBSD"),
            (cutoffs.freebsd_linux + 1, cutoffs.linux_full, "Linux"),
            (cutoffs.linux_full + 1, 65_536, "Full Port Range"),
        ];
        let mut bands: Vec<BandRow> = edges
            .iter()
            .map(|&(lo, hi, label)| BandRow {
                lo,
                hi,
                label,
                total: 0,
                open: 0,
                closed: 0,
                p0f_windows: 0,
                p0f_linux: 0,
            })
            .collect();
        for o in &observations {
            let band = bands
                .iter_mut()
                .find(|b| o.range >= b.lo && o.range <= b.hi)
                .expect("range must land in a band");
            band.total += 1;
            if o.open {
                band.open += 1;
            } else {
                band.closed += 1;
            }
            match o.p0f {
                P0fClass::Windows => band.p0f_windows += 1,
                P0fClass::Linux => band.p0f_linux += 1,
                _ => {}
            }
        }

        PortReport {
            observations,
            insufficient,
            zero,
            low,
            cutoffs,
            bands,
        }
    }

    /// Range histogram material for Figures 2 / 3b:
    /// `(range, open?, p0f class)` per resolver.
    pub fn figure_points(&self) -> impl Iterator<Item = (u32, bool, P0fClass)> + '_ {
        self.observations.iter().map(|o| (o.range, o.open, o.p0f))
    }

    /// Count of resolvers per p0f class.
    pub fn p0f_totals(&self) -> BTreeMap<P0fClass, usize> {
        let mut m = BTreeMap::new();
        for o in &self.observations {
            *m.entry(o.p0f).or_insert(0) += 1;
        }
        m
    }
}

/// max − min of a port sample.
pub fn range_of(ports: &[u16]) -> u32 {
    let mn = *ports.iter().min().unwrap() as u32;
    let mx = *ports.iter().max().unwrap() as u32;
    mx - mn
}

/// The §5.3.2 Windows wrap adjustment, verbatim:
///
/// With `s = 2500`, `i_min = 49152`, `i_max = 65535`, `R_low = [i_min,
/// i_min+s-1]` and `R_high = (i_max-(s-1), i_max]`: if **all** ports are in
/// `R_low ∪ R_high`, at least one is in `R_low` and at least one in
/// `R_high`, then every port in `R_low` is increased by `i_max − i_min`,
/// letting a pool split across the wrap be treated as contiguous.
///
/// Returns `(adjusted range, whether the adjustment fired)`.
pub fn adjust_windows_wrap(ports: &[u16]) -> (u32, bool) {
    let s = WINDOWS_POOL_SIZE;
    let (i_min, i_max) = (IANA_LO as u32, IANA_HI as u32);
    let r_low = i_min..=(i_min + s - 1);
    let r_high = (i_max - (s - 1) + 1)..=i_max;
    let all_in = ports
        .iter()
        .all(|&p| r_low.contains(&(p as u32)) || r_high.contains(&(p as u32)));
    let any_low = ports.iter().any(|&p| r_low.contains(&(p as u32)));
    let any_high = ports.iter().any(|&p| r_high.contains(&(p as u32)));
    if all_in && any_low && any_high {
        let adjusted: Vec<u32> = ports
            .iter()
            .map(|&p| {
                let p = p as u32;
                if r_low.contains(&p) {
                    p + (i_max - i_min)
                } else {
                    p
                }
            })
            .collect();
        let mn = *adjusted.iter().min().unwrap();
        let mx = *adjusted.iter().max().unwrap();
        (mx - mn, true)
    } else {
        let mn = *ports.iter().min().unwrap() as u32;
        let mx = *ports.iter().max().unwrap() as u32;
        (mx - mn, false)
    }
}

/// Detect a strictly-increasing allocation pattern, tolerating one wrap
/// (§5.2.3: 159 of 244 low-range resolvers increased strictly; 130 of
/// those wrapped after a maximum).
pub fn increasing_pattern(ports: &[u16]) -> (bool, bool) {
    let mut descents = 0;
    for w in ports.windows(2) {
        if w[1] <= w[0] {
            descents += 1;
        }
    }
    match descents {
        0 => (true, false),
        1 => {
            // Accept exactly one wrap: the post-wrap values must stay below
            // the pre-wrap maximum.
            let wrap_pos = ports.windows(2).position(|w| w[1] <= w[0]).unwrap();
            let pre_max = *ports[..=wrap_pos].iter().max().unwrap();
            let ok = ports[wrap_pos + 1..].iter().all(|&p| p < pre_max);
            (ok, ok)
        }
        _ => (false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_of_samples() {
        assert_eq!(range_of(&[5, 5, 5]), 0);
        assert_eq!(range_of(&[10, 20, 15]), 10);
    }

    #[test]
    fn wrap_adjustment_fires_only_when_split() {
        // Split pool: some ports near the top, some wrapped to the bottom.
        let split = [
            65_400u16, 49_200, 65_500, 49_300, 65_300, 49_152, 65_535, 49_400, 65_450, 49_250,
        ];
        let (range, fired) = adjust_windows_wrap(&split);
        assert!(fired);
        // Without adjustment the range would be ~16k; adjusted it must be
        // within the 2,500 pool width.
        assert!(range < WINDOWS_POOL_SIZE, "adjusted range {range}");
        assert!(range_of(&split) > 14_000);

        // All ports in one region: no adjustment.
        let contiguous = [
            50_000u16, 50_100, 50_200, 51_000, 50_500, 50_700, 50_900, 50_050, 50_150, 50_250,
        ];
        let (range, fired) = adjust_windows_wrap(&contiguous);
        assert!(!fired);
        assert_eq!(range, 1_000);

        // Ports outside the IANA range: no adjustment.
        let outside = [
            1_024u16, 65_535, 49_152, 60_000, 50_000, 2_000, 3_000, 4_000, 5_000, 6_000,
        ];
        let (_, fired) = adjust_windows_wrap(&outside);
        assert!(!fired);
    }

    #[test]
    fn increasing_detection() {
        assert_eq!(increasing_pattern(&[1, 2, 3, 4, 5]), (true, false));
        // One wrap back to base.
        assert_eq!(increasing_pattern(&[7, 8, 9, 2, 3]), (true, true));
        // Two descents: not sequential.
        assert_eq!(increasing_pattern(&[5, 1, 5, 1, 5]), (false, false));
        // Random: not sequential.
        assert_eq!(increasing_pattern(&[9, 3, 7, 1, 8]), (false, false));
        // Post-wrap exceeding pre-wrap max: not a clean wrap.
        assert_eq!(increasing_pattern(&[7, 8, 2, 9, 10]), (false, false));
    }

    #[test]
    fn cutoffs_land_near_paper_values() {
        let c = BandCutoffs::derive();
        // Paper Table 4: bands 941–2,488 (Windows), 6,125–16,331 (FreeBSD),
        // 16,332–28,222 (Linux), 28,223+ (full). Our exact-distribution
        // derivations must land in the same neighbourhoods.
        assert!(
            (600..=1_400).contains(&c.windows_lo),
            "windows_lo {}",
            c.windows_lo
        );
        assert!(
            (2_300..=2_500).contains(&c.windows_hi),
            "windows_hi {}",
            c.windows_hi
        );
        assert!(
            (4_000..=9_000).contains(&c.freebsd_lo),
            "freebsd_lo {}",
            c.freebsd_lo
        );
        assert!(
            (15_800..=16_383).contains(&c.freebsd_linux),
            "freebsd_linux {}",
            c.freebsd_linux
        );
        assert!(
            (27_300..=28_232).contains(&c.linux_full),
            "linux_full {}",
            c.linux_full
        );
    }
}
