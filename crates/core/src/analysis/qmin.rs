//! QNAME-minimization accounting — §3.6.4.
//!
//! Resolvers that minimize and halt on NXDOMAIN only ever ask for
//! `kw.dns-lab.org`, never the full name: the source-address label is lost
//! and the target cannot be counted reachable. But the *minimized* query
//! itself still left the resolver's network, so the resolver's AS can be
//! classified by the query's own source address (the paper recovered 2,041
//! of 2,081 qmin ASNs this way — 98%).

use crate::analysis::reachability::Reachability;
use crate::analysis::AnalysisInput;
use bcd_netsim::Asn;
use std::collections::BTreeSet;

/// The §3.6.4 report.
#[derive(Debug, Default)]
pub struct QminReport {
    /// Distinct sources that sent minimized queries.
    pub qmin_sources: usize,
    /// Sources that *never* completed a full QNAME — excluded targets.
    pub excluded_sources: usize,
    /// ASNs observed via minimized queries.
    pub qmin_asns: BTreeSet<Asn>,
    /// Of those, ASNs independently confirmed to lack DSAV (by these or
    /// other resolvers).
    pub asns_still_detected: BTreeSet<Asn>,
}

impl QminReport {
    /// Build from reachability's qmin bookkeeping.
    ///
    /// A qmin AS counts as *still detected* if (a) other resolvers in it
    /// produced full-QNAME evidence, or (b) the minimized query's source is
    /// itself a target address — then the spoofed probe demonstrably
    /// penetrated that AS even though its full name was lost. ASNs failing
    /// both (e.g. the qmin resolver is a third-party upstream in a network
    /// we never probed) are the paper's unexplained 2%.
    pub fn compute(input: &AnalysisInput<'_>, reach: &Reachability) -> QminReport {
        let reached_asns = reach.reached_asns_all();
        let target_addrs: BTreeSet<std::net::IpAddr> =
            input.targets.iter().map(|t| t.addr).collect();
        let mut r = QminReport {
            qmin_sources: reach.qmin.partial_sources.len(),
            excluded_sources: reach.qmin.partial_only_sources.len(),
            qmin_asns: reach.qmin.partial_asns.clone(),
            asns_still_detected: BTreeSet::new(),
        };
        for src in &reach.qmin.partial_sources {
            let Some(asn) = input.routes.origin(*src) else {
                continue;
            };
            if reached_asns.contains(&asn) || target_addrs.contains(src) {
                r.asns_still_detected.insert(asn);
            }
        }
        r
    }

    /// Fraction of qmin ASNs still classified (the paper's 98%).
    pub fn detection_fraction(&self) -> f64 {
        if self.qmin_asns.is_empty() {
            0.0
        } else {
            self.asns_still_detected.len() as f64 / self.qmin_asns.len() as f64
        }
    }
}
