//! Reachability: who did our spoofed queries reach? (§4, with the §3.6
//! methodology corrections applied.)
//!
//! A target is **reachable** if at least one query carrying its `dst` label
//! arrived at our authoritative servers within the lifetime threshold. An
//! AS **lacks DSAV** if at least one of its targets is reachable.

use crate::analysis::AnalysisInput;
use crate::qname::{Decoded, SuffixKind};
use crate::sources::{classify_source, SourceCategory};
use bcd_netsim::{Asn, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;

/// Per-target reachability evidence.
#[derive(Debug, Clone)]
pub struct TargetHit {
    pub asn: Asn,
    /// Source categories that produced at least one on-time hit.
    pub categories: BTreeSet<SourceCategory>,
    /// Spoofed source addresses that worked.
    pub sources: BTreeSet<IpAddr>,
    /// First on-time hit.
    pub first_time: SimTime,
    /// At least one recursive-to-authoritative query came *directly* from
    /// the target address.
    pub direct: bool,
    /// At least one came from a different address (a forwarder/upstream).
    pub via_other: bool,
}

/// QNAME-minimization accounting (§3.6.4).
#[derive(Debug, Default, Clone)]
pub struct QminStats {
    /// Distinct client addresses that sent minimized (partial) queries.
    pub partial_sources: BTreeSet<IpAddr>,
    /// Their origin ASNs.
    pub partial_asns: BTreeSet<Asn>,
    /// Partial-only resolvers: sent minimized queries but never a full
    /// QNAME — these targets are excluded from reachability (the paper's
    /// 9,898).
    pub partial_only_sources: BTreeSet<IpAddr>,
}

/// Lifetime-filter accounting (§3.6.3).
#[derive(Debug, Default, Clone)]
pub struct LifetimeStats {
    /// Targets whose *only* evidence exceeded the threshold, by family.
    pub excluded_addrs_v4: usize,
    pub excluded_addrs_v6: usize,
    /// ASes with late-only evidence.
    pub excluded_asns: BTreeSet<Asn>,
    /// Of those, ASes rescued by other on-time resolvers.
    pub rescued_asns: BTreeSet<Asn>,
    /// Total late (discarded) log entries.
    pub late_entries: u64,
}

/// The reachability report.
#[derive(Debug, Default)]
pub struct Reachability {
    /// On-time-reached targets.
    pub reached: HashMap<IpAddr, TargetHit>,
    pub qmin: QminStats,
    pub lifetime: LifetimeStats,
    /// Late-only candidates (dst → asn), before rescue accounting.
    late_only: BTreeMap<IpAddr, Asn>,
}

impl Reachability {
    /// Run the analysis.
    pub fn compute(input: &AnalysisInput<'_>) -> Reachability {
        let mut r = Reachability::default();
        for entry in input.log {
            match input.codec.decode(&entry.qname) {
                Decoded::Full(tag) if tag.suffix == SuffixKind::Main => {
                    // Open-resolver probes carry our real source; they are
                    // §5.1 evidence, not reachability evidence.
                    if input.is_scanner(tag.src) {
                        continue;
                    }
                    let lifetime = entry.time.saturating_since(tag.ts);
                    if lifetime > input.lifetime_threshold {
                        r.lifetime.late_entries += 1;
                        r.late_only.entry(tag.dst).or_insert(Asn(tag.asn));
                        continue;
                    }
                    let hit = r.reached.entry(tag.dst).or_insert_with(|| TargetHit {
                        asn: Asn(tag.asn),
                        categories: BTreeSet::new(),
                        sources: BTreeSet::new(),
                        first_time: entry.time,
                        direct: false,
                        via_other: false,
                    });
                    hit.first_time = hit.first_time.min(entry.time);
                    hit.sources.insert(tag.src);
                    if let Some(cat) = classify_source(tag.src, tag.dst, input.routes) {
                        hit.categories.insert(cat);
                    }
                    if entry.src == tag.dst {
                        hit.direct = true;
                    } else {
                        hit.via_other = true;
                    }
                }
                Decoded::Full(_) => {} // follow-up zones: other analyses
                Decoded::Partial { .. } => {
                    r.qmin.partial_sources.insert(entry.src);
                    if let Some(asn) = input.routes.origin(entry.src) {
                        r.qmin.partial_asns.insert(asn);
                    }
                }
                Decoded::Foreign => {}
            }
        }

        // Partial-only resolvers: minimized but never completed.
        for src in &r.qmin.partial_sources {
            if !r.reached.contains_key(src) {
                r.qmin.partial_only_sources.insert(*src);
            }
        }

        // Lifetime exclusions: late-only targets, with AS rescue check.
        let reached_asns: BTreeSet<Asn> = r.reached.values().map(|h| h.asn).collect();
        for (addr, asn) in &r.late_only {
            if r.reached.contains_key(addr) {
                continue; // the target itself had on-time evidence
            }
            if addr.is_ipv6() {
                r.lifetime.excluded_addrs_v6 += 1;
            } else {
                r.lifetime.excluded_addrs_v4 += 1;
            }
            r.lifetime.excluded_asns.insert(*asn);
            if reached_asns.contains(asn) {
                r.lifetime.rescued_asns.insert(*asn);
            }
        }
        r
    }

    /// Reached targets of one family.
    pub fn reached_addrs(&self, v6: bool) -> impl Iterator<Item = IpAddr> + '_ {
        self.reached
            .keys()
            .copied()
            .filter(move |a| a.is_ipv6() == v6)
    }

    /// Count of reached targets in one family.
    pub fn reached_count(&self, v6: bool) -> usize {
        self.reached_addrs(v6).count()
    }

    /// ASes with at least one reached target, one family.
    pub fn reached_asns(&self, v6: bool) -> BTreeSet<Asn> {
        self.reached
            .iter()
            .filter(|(a, _)| a.is_ipv6() == v6)
            .map(|(_, h)| h.asn)
            .collect()
    }

    /// ASes with at least one reached target, both families.
    pub fn reached_asns_all(&self) -> BTreeSet<Asn> {
        self.reached.values().map(|h| h.asn).collect()
    }
}

/// §3.6.1 middlebox attribution for reached ASes: per AS, did any
/// recursive-to-authoritative query come directly from inside the AS? If
/// not, did the queries come from known public DNS services?
#[derive(Debug, Default)]
pub struct MiddleboxReport {
    pub direct_asns: BTreeSet<Asn>,
    pub public_dns_only_asns: BTreeSet<Asn>,
    pub other_only_asns: BTreeSet<Asn>,
}

impl MiddleboxReport {
    /// Classify every reached AS.
    pub fn compute(input: &AnalysisInput<'_>, reach: &Reachability) -> MiddleboxReport {
        // Per AS: the set of authoritative-side client addresses observed
        // for that AS's targets.
        let mut per_as: BTreeMap<Asn, (bool, bool)> = BTreeMap::new(); // (direct, public)
        for entry in input.log {
            if let Decoded::Full(tag) = input.codec.decode(&entry.qname) {
                if tag.suffix != SuffixKind::Main || input.is_scanner(tag.src) {
                    continue;
                }
                if !reach.reached.contains_key(&tag.dst) {
                    continue;
                }
                let asn = Asn(tag.asn);
                let slot = per_as.entry(asn).or_insert((false, false));
                if input.routes.origin(entry.src) == Some(asn) {
                    slot.0 = true;
                } else if input.public_dns.contains(&entry.src) {
                    slot.1 = true;
                }
            }
        }
        let mut report = MiddleboxReport::default();
        for (asn, (direct, public)) in per_as {
            if direct {
                report.direct_asns.insert(asn);
            } else if public {
                report.public_dns_only_asns.insert(asn);
            } else {
                report.other_only_asns.insert(asn);
            }
        }
        report
    }
}
