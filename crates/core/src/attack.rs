//! Cache-poisoning attack simulation — §5.2's threat model, *executed*.
//!
//! The paper's argument: against a resolver with no source-port
//! randomization, an off-path attacker in a no-OSAV network who can induce
//! queries (via spoofed in-network sources, because the victim network has
//! no DSAV) only has to guess the 16-bit transaction ID — the search space
//! collapses from 2³² to 2¹⁶ and poisoning becomes "trivial". This module
//! runs that attack inside the simulator, against the same
//! [`RecursiveResolver`] implementation the survey measures, and reports
//! whether (and when) a forged record was planted.
//!
//! Per round, Kaminsky-style:
//! 1. induce a query for a fresh name `r<i>.<victim zone>` with a
//!    spoofed-source packet the resolver's ACL accepts,
//! 2. race the authoritative server: flood forged responses spoofing the
//!    authority's address, sweeping transaction IDs (and guessing the
//!    source port when it is not fixed),
//! 3. the resolver's own validation (txid + port + server address) decides;
//!    an accepted forgery is cached and served to clients.

use bcd_dns::log::shared_log;
use bcd_dns::{
    Acl, AuthServer, AuthServerConfig, RecursiveResolver, ResolverConfig, Zone, ZoneMode,
};
use bcd_dnswire::{Message, Name, RCode, RData, RType, Record};
use bcd_netsim::{
    Asn, BorderPolicy, HostConfig, LinkProfile, Network, NetworkConfig, Node, NodeCtx, Packet,
    SimDuration, StackPolicy,
};
use bcd_osmodel::{Os, PortAllocator};
use rand::Rng;
use std::net::IpAddr;

/// Attack parameters.
#[derive(Debug, Clone)]
pub struct PoisonConfig {
    /// Forged responses per induced query (the race budget per round).
    pub guesses_per_round: u32,
    /// Rounds to attempt.
    pub rounds: u32,
    /// The attacker knows the resolver's fixed source port (from a §5.2
    /// survey); `None` = guess ports uniformly from the unprivileged range.
    pub known_port: Option<u16>,
    /// The victim resolver's port allocator.
    pub allocator: PortAllocator,
    /// Seed.
    pub seed: u64,
}

/// Attack result.
#[derive(Debug, Clone)]
pub struct PoisonOutcome {
    /// Round at which a forged record was first accepted, if any.
    pub poisoned_at_round: Option<u32>,
    /// The poisoned name, if any.
    pub poisoned_name: Option<Name>,
    /// Total forged responses sent.
    pub forged_sent: u64,
    /// The theoretical per-forgery acceptance probability:
    /// `1 / (65536 · pool)`.
    pub per_forgery_probability: f64,
}

const VICTIM_ZONE: &str = "bank.test";
const FORGED_A: &str = "203.0.113.66";

struct Attacker {
    resolver: IpAddr,
    spoof_client: IpAddr,
    auth: IpAddr,
    cfg: PoisonConfig,
    round: u32,
    pub forged_sent: u64,
}

impl Attacker {
    fn round_name(round: u32) -> Name {
        format!("r{round}.{VICTIM_ZONE}").parse().unwrap()
    }
}

impl Node for Attacker {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(10), 0);
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if self.round >= self.cfg.rounds {
            return;
        }
        let name = Self::round_name(self.round);
        self.round += 1;

        // 1. Induce: spoofed-source query the closed resolver accepts.
        let induce = Message::query(ctx.rng().gen(), name.clone(), RType::A);
        ctx.send(Packet::udp(
            self.spoof_client,
            self.resolver,
            30_000,
            53,
            induce.encode(),
        ));

        // 2. Race: forged responses spoofing the authoritative server.
        //    Transaction IDs are swept (the whole 16-bit space is cheap to
        //    cover when the port is known); ports are known or guessed.
        for g in 0..self.cfg.guesses_per_round {
            let dst_port = match self.cfg.known_port {
                Some(p) => p,
                None => ctx.rng().gen_range(1_024..=65_535),
            };
            let txid = (g & 0xFFFF) as u16;
            let mut forged = Message::query(txid, name.clone(), RType::A);
            forged.header.qr = true;
            forged.header.aa = true;
            forged.answers.push(Record::new(
                name.clone(),
                3_600,
                RData::A(FORGED_A.parse().unwrap()),
            ));
            self.forged_sent += 1;
            ctx.send(Packet::udp(
                self.auth,
                self.resolver,
                53,
                dst_port,
                forged.encode(),
            ));
        }

        // Next round after the dust settles.
        ctx.set_timer(SimDuration::from_secs(5), 0);
    }
}

/// Run the attack in a dedicated mini-world and report the outcome.
pub fn run_poisoning_attack(cfg: PoisonConfig) -> PoisonOutcome {
    let mut net = Network::new(NetworkConfig {
        seed: cfg.seed,
        // The attacker wins the race against a wide-area authority: forged
        // packets arrive while the genuine answer is still in flight.
        core_link: LinkProfile {
            base_delay: bcd_netsim::SimDuration::from_millis(40),
            jitter: bcd_netsim::SimDuration::ZERO,
            loss: 0.0,
            duplicate: 0.0,
        },
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    // Victim AS (no DSAV — the paper's precondition), authority AS, and the
    // attacker's no-OSAV AS.
    net.add_simple_as(Asn(1), BorderPolicy::open());
    net.add_simple_as(Asn(2), BorderPolicy::strict());
    net.add_simple_as(Asn(3), BorderPolicy::no_osav_vantage());
    net.announce("16.10.0.0/16".parse().unwrap(), Asn(1));
    net.announce("17.20.0.0/24".parse().unwrap(), Asn(2));
    net.announce("18.30.0.0/24".parse().unwrap(), Asn(3));

    let resolver_addr: IpAddr = "16.10.0.53".parse().unwrap();
    let spoof_client: IpAddr = "16.10.7.9".parse().unwrap();
    let auth_addr: IpAddr = "17.20.0.53".parse().unwrap();
    let attacker_addr: IpAddr = "18.30.0.66".parse().unwrap();

    // The genuine authority: root + victim zone with real records.
    let victim_apex: Name = VICTIM_ZONE.parse().unwrap();
    let root = Zone::new(Name::root(), ZoneMode::Static(vec![])).delegate(
        victim_apex.clone(),
        vec![("ns.bank.test".parse().unwrap(), vec![auth_addr])],
    );
    let zone = Zone::new(victim_apex, ZoneMode::Wildcard);
    net.add_host(
        HostConfig {
            addrs: vec![auth_addr],
            asn: Asn(2),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root, zone],
            log: shared_log(),
            log_queries: false,
        })),
    );

    // The victim: a *closed* resolver (only its own network), with the
    // port behaviour under study.
    let resolver_id = net.add_host(
        HostConfig {
            addrs: vec![resolver_addr],
            asn: Asn(1),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig {
            addrs: vec![resolver_addr],
            acl: Acl::Allow(vec!["16.10.0.0/16".parse().unwrap()].into()),
            forward_to: None,
            qmin: false,
            qmin_halts_on_nxdomain: true,
            allocator: cfg.allocator.clone(),
            os: Os::LinuxModern,
            p0f_visible: true,
            root_hints: vec![auth_addr].into(),
            timeout: SimDuration::from_secs(2),
            max_attempts: 3,
            warmup: Vec::new(),
            identity_draw_salt: None,
            preload_cuts: Vec::new().into(),
        })),
    );

    let rounds = cfg.rounds;
    let pool = cfg.allocator.pool_size();
    let known = cfg.known_port.is_some();
    let attacker_id = net.add_host(
        HostConfig {
            addrs: vec![attacker_addr],
            asn: Asn(3),
            stack: StackPolicy::strict(),
        },
        Box::new(Attacker {
            resolver: resolver_addr,
            spoof_client,
            auth: auth_addr,
            cfg,
            round: 0,
            forged_sent: 0,
        }),
    );

    net.run();
    let forged_total = net.node::<Attacker>(attacker_id).unwrap().forged_sent;

    // Inspect the victim's cache: any round name resolving to the forged
    // address means the attack landed.
    let resolver = net.node::<RecursiveResolver>(resolver_id).unwrap();
    let forged: IpAddr = FORGED_A.parse().unwrap();
    let mut poisoned_at_round = None;
    let mut poisoned_name = None;
    for r in 0..rounds {
        let name = Attacker::round_name(r);
        if let Some(hit) = resolver.cache().get_answer(&name, RType::A, net.now()) {
            let has_forged = hit
                .answers
                .iter()
                .any(|rec| matches!(rec.rdata, RData::A(a) if IpAddr::V4(a) == forged));
            if has_forged && hit.rcode == RCode::NoError {
                poisoned_at_round = Some(r);
                poisoned_name = Some(name);
                break;
            }
        }
    }
    let per_forgery = 1.0 / (65_536.0 * if known { 1.0 } else { pool as f64 });
    PoisonOutcome {
        poisoned_at_round,
        poisoned_name,
        forged_sent: forged_total,
        per_forgery_probability: per_forgery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_port_resolver_is_poisoned() {
        // Known fixed port + full txid sweep per round: the first round
        // must land (we sweep all 65,536 IDs... 65,536 packets is heavy, so
        // sweep 16,384 over 8 rounds — acceptance within a few rounds is
        // overwhelmingly likely because txids are drawn uniformly).
        let outcome = run_poisoning_attack(PoisonConfig {
            guesses_per_round: 16_384,
            rounds: 24,
            known_port: Some(53),
            allocator: PortAllocator::fixed(53),
            seed: 1,
        });
        assert!(
            outcome.poisoned_at_round.is_some(),
            "fixed-port resolver survived {} x 16k forgeries",
            24
        );
        assert!(outcome.per_forgery_probability > 1e-5);
    }

    #[test]
    fn randomized_resolver_survives_the_same_budget() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        use rand::SeedableRng;
        let allocator = Os::LinuxModern.default_port_allocator();
        let _ = &mut rng;
        let outcome = run_poisoning_attack(PoisonConfig {
            guesses_per_round: 16_384,
            rounds: 24,
            known_port: None,
            allocator,
            seed: 2,
        });
        assert!(
            outcome.poisoned_at_round.is_none(),
            "randomized resolver poisoned at round {:?} — astronomically unlikely",
            outcome.poisoned_at_round
        );
        // The paper's arithmetic: randomization multiplies the search space
        // by the pool size.
        assert!(outcome.per_forgery_probability < 1e-9);
    }

    #[test]
    fn acl_blocks_induction_without_spoofing() {
        // Sanity: if the attacker cannot spoof an in-network source (e.g.
        // its own AS deployed OSAV), the closed resolver refuses and there
        // is nothing to race. Modelled by using the attacker's own address
        // as the "spoofed" client — the ACL rejects it, so no round can
        // ever poison.
        let net_probe = run_poisoning_attack(PoisonConfig {
            guesses_per_round: 64,
            rounds: 2,
            known_port: Some(53),
            allocator: PortAllocator::fixed(53),
            seed: 3,
        });
        // (The standard run poisons eventually but 2x64 guesses at 16-bit
        // txids almost surely miss; this asserts the harness does not
        // produce false positives under tiny budgets.)
        assert_eq!(net_probe.forged_sent, 128);
        assert!(net_probe.poisoned_at_round.is_none());
    }
}
