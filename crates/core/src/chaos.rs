//! The chaos harness: seeded fault sweeps, invariant gating, and
//! minimal-reproducer shrinking.
//!
//! The paper's survey had to stay sound through real-world failures —
//! outages, loss, administrative interruptions (§3.4) — because its whole
//! argument is conservative: a spoofed probe that *arrives* proves the
//! border did not validate, and anything the network eats only makes the
//! estimate smaller. This module stress-tests that argument in simulation:
//!
//! 1. compile a seeded [`FaultSchedule`](bcd_netsim::FaultSchedule) from a
//!    `(seed, profile)` pair ([`chaos_seed`], [`bcd_netsim::ChaosConfig`]),
//! 2. run the full experiment under it and gate the output through the
//!    [`InvariantChecker`] against a clean same-seed baseline,
//! 3. on violation, delta-debug the schedule ([`shrink_schedule`]) down to
//!    a minimal set of fault events and print it as a `BCD_CHAOS=...`
//!    replay line anyone can paste to reproduce the failure exactly —
//!    across any `BCD_SHARDS` value, since fault fates are pure functions
//!    of shard-invariant packet keys.
//!
//! Checked runs additionally arm the causal span flight recorder
//! ([`bcd_netsim::FlightRecorder`]), so a violation can be dumped as one
//! self-contained artifact ([`violation_artifact`]): the run report, the
//! shrunk replay line, and the causal window of spans leading up to the
//! failure — all shard-invariant bytes.

use crate::analysis::openclosed::OpenClosedReport;
use crate::analysis::reachability::Reachability;
use crate::experiment::{Experiment, ExperimentConfig, ExperimentData};
use crate::invariants::{InvariantChecker, InvariantReport};
use bcd_netsim::{stream_seed, ChaosConfig, ChaosSpec};
use bcd_obs::{ObsEnv, TraceConfig};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Stream id for deriving a chaos seed from the world seed (mixed with the
/// profile name so each profile gets an independent schedule).
const CHAOS_SEED_STREAM: u64 = 0x4348_414F_5353_4431; // "CHAOSSD1"

/// The default profile set a sweep fans over: one ambient-loss profile,
/// one windowed-burst, one delay/reorder, one crash/restart, and the
/// off-path spoofed-response adversary.
pub const SWEEP_PROFILES: [&str; 5] = ["drizzle", "bursty", "jittery", "crashy", "spoofy"];

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical chaos seed for `(world_seed, profile)`: any sweep or
/// replay that starts from the same pair compiles the same schedule.
pub fn chaos_seed(world_seed: u64, profile: &str) -> u64 {
    stream_seed(world_seed, CHAOS_SEED_STREAM ^ fnv1a(profile.as_bytes()))
}

/// The canonical [`ChaosConfig`] for `(world_seed, profile)`.
///
/// Returns `None` for an unknown profile name (see
/// [`bcd_netsim::ChaosProfile::names`]).
pub fn chaos_config(world_seed: u64, profile: &str) -> Option<ChaosConfig> {
    ChaosConfig::named(chaos_seed(world_seed, profile), profile)
}

/// Run the clean (fault-free) baseline for `base`.
pub fn run_clean(base: &ExperimentConfig) -> ExperimentData {
    let mut cfg = base.clone();
    cfg.world.chaos = None;
    Experiment::run_observed(cfg, &ObsEnv::disabled())
}

/// Run `base` under a chaos config.
pub fn run_chaotic(base: &ExperimentConfig, chaos: ChaosConfig) -> ExperimentData {
    run_chaotic_observed(base, chaos, &ObsEnv::disabled())
}

/// [`run_chaotic`] with explicit observability switches — how [`run_checked`]
/// arms the causal flight recorder for violation dumps.
pub fn run_chaotic_observed(
    base: &ExperimentConfig,
    chaos: ChaosConfig,
    env: &ObsEnv,
) -> ExperimentData {
    let mut cfg = base.clone();
    cfg.world.chaos = Some(chaos);
    Experiment::run_observed(cfg, env)
}

/// Replay a printed `BCD_CHAOS=...` line (its `seed=..,profile=..` part)
/// against `base`. Returns `None` for an unknown profile.
pub fn replay(base: &ExperimentConfig, spec: &ChaosSpec) -> Option<ExperimentData> {
    Some(run_chaotic(base, ChaosConfig::from_spec(spec)?))
}

/// Order-insensitive-free digest of the canonical merged query log: the
/// cheapest "this run is byte-identical to that run" witness. Two runs
/// with equal digests saw the same queries arrive at the same instants
/// from the same sources over the same transports.
pub fn entries_digest(data: &ExperimentData) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in &data.entries {
        mix(&e.time.as_nanos().to_le_bytes());
        mix(e.qname.to_string().as_bytes());
        mix(e.src.to_string().as_bytes());
        mix(e.server.to_string().as_bytes());
        mix(&e.src_port.to_le_bytes());
        mix(&[
            e.observed_ttl,
            matches!(e.proto, bcd_dns::LogProto::Tcp) as u8,
        ]);
    }
    h
}

/// One checked chaos run.
pub struct ChaosRun {
    /// The replayable identity of the schedule that ran.
    pub spec: ChaosSpec,
    pub data: ExperimentData,
    pub invariants: InvariantReport,
}

/// Run `(base, chaos)` and gate it through the full invariant checker
/// against the supplied clean baseline.
///
/// The run arms the causal span flight recorder (default capacity, every
/// query traced), so `data.flight` carries the causal window a
/// [`violation_artifact`] dump needs. Tracing is observer-only — it never
/// changes simulation behaviour, so reports and digests are unaffected.
pub fn run_checked(
    base: &ExperimentConfig,
    chaos: ChaosConfig,
    clean: &ExperimentData,
) -> ChaosRun {
    let spec = chaos.spec();
    let data = run_chaotic_observed(base, chaos, &ObsEnv::with_trace(TraceConfig::default()));
    let invariants = InvariantChecker::check_full(clean, &data);
    ChaosRun {
        spec,
        data,
        invariants,
    }
}

/// Render one invariant violation as a single self-contained artifact:
/// the chaos run report (schedule shape + replay line + survey summaries +
/// verdict), the ddmin-shrunk minimal reproducer when available, and the
/// causal flight-recorder window leading up to the failure. Every section
/// is shard-invariant, so the artifact is byte-identical under any
/// `BCD_SHARDS` / `BCD_SCHED` configuration (the trace-invariance suite
/// locks this in).
pub fn violation_artifact(
    clean: &ExperimentData,
    run: &ChaosRun,
    minimal: Option<&ChaosSpec>,
) -> String {
    let mut out = render_run_report(clean, run);
    if let Some(min) = minimal {
        let _ = writeln!(out, "minimal reproducer: BCD_CHAOS={min}");
    }
    match &run.data.flight {
        Some(f) => {
            out.push_str("\n-- causal window (flight recorder) --\n");
            out.push_str(&f.dump());
        }
        None => out.push_str("\n-- causal window unavailable (tracing was not armed) --\n"),
    }
    out
}

fn summary_line(label: &str, data: &ExperimentData) -> String {
    let reach = Reachability::compute(&data.input());
    let oc = OpenClosedReport::compute(&data.input(), &reach);
    format!(
        "{label}: entries={} reached_addrs={} reached_asns={} open={} closed={}\n",
        data.entries.len(),
        reach.reached.len(),
        reach.reached_asns_all().len(),
        oc.open.len(),
        oc.closed.len(),
    )
}

/// Deterministic run report for one chaos run: the schedule's shape, the
/// replay line, clean-vs-chaos survey summaries, and the invariant
/// verdict. Every field is shard-invariant, so the rendering is
/// byte-identical under any `BCD_SHARDS` (the chaos golden test pins it).
pub fn render_run_report(clean: &ExperimentData, run: &ChaosRun) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== chaos run: world seed={} profile={} ==",
        clean.cfg.world.seed, run.spec.profile
    );
    let _ = writeln!(out, "replay: BCD_CHAOS={}", run.spec);
    if let Some(f) = &run.data.world.faults {
        let _ = writeln!(
            out,
            "schedule: {} of {} events enabled (horizon {}s)",
            f.enabled_ids().len(),
            f.events().len(),
            f.horizon().as_secs()
        );
        for (kind, n) in f.event_counts() {
            let _ = writeln!(out, "  {kind}: {n}");
        }
    }
    out.push_str(&summary_line("clean", clean));
    out.push_str(&summary_line("chaos", &run.data));
    out.push_str(&run.invariants.render());
    out
}

/// One row of a sweep.
pub struct SweepRun {
    pub world_seed: u64,
    pub spec: ChaosSpec,
    /// Enabled-event counts by kind, from the compiled schedule.
    pub event_counts: BTreeMap<&'static str, u64>,
    pub invariants: InvariantReport,
    /// Minimal reproducer, when the run violated and shrinking ran.
    pub minimal: Option<ChaosSpec>,
    /// Self-contained violation dump ([`violation_artifact`]): run report,
    /// minimal replay line, and the causal flight-recorder window. `None`
    /// when the run held.
    pub artifact: Option<String>,
}

/// A completed sweep.
pub struct SweepOutcome {
    pub runs: Vec<SweepRun>,
}

impl SweepOutcome {
    /// Total violations across all runs.
    pub fn total_violations(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.invariants.violations.len())
            .sum()
    }

    /// Deterministic sweep summary: one line per `(seed, profile)` run,
    /// then replay lines for every violation's minimal reproducer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== chaos sweep: {} runs, {} violations ==",
            self.runs.len(),
            self.total_violations()
        );
        for r in &self.runs {
            let events: u64 = r.event_counts.values().sum();
            let _ = writeln!(
                out,
                "seed={} profile={} events={} checked={} violations={}",
                r.world_seed,
                r.spec.profile,
                events,
                r.invariants.checked.len(),
                r.invariants.violations.len()
            );
        }
        for r in &self.runs {
            if let Some(min) = &r.minimal {
                let _ = writeln!(
                    out,
                    "minimal reproducer (world seed {}): BCD_CHAOS={min}",
                    r.world_seed
                );
            }
        }
        out
    }
}

/// Fan `seeds × profiles` through the experiment, checking every run. One
/// clean baseline is computed per seed and reused across that seed's
/// profiles. When a run violates an invariant, the schedule is shrunk to
/// a minimal reproducer (unless `shrink` is false — CI smoke keeps it on).
pub fn sweep<F>(make_cfg: F, seeds: &[u64], profiles: &[&str], shrink: bool) -> SweepOutcome
where
    F: Fn(u64) -> ExperimentConfig,
{
    let mut runs = Vec::new();
    for &seed in seeds {
        let base = make_cfg(seed);
        let clean = run_clean(&base);
        for profile in profiles {
            let chaos = chaos_config(seed, profile)
                .unwrap_or_else(|| panic!("unknown chaos profile {profile:?}"));
            let run = run_checked(&base, chaos, &clean);
            let event_counts = run
                .data
                .world
                .faults
                .as_ref()
                .map(|f| f.event_counts())
                .unwrap_or_default();
            let minimal = if shrink && !run.invariants.is_ok() {
                Some(shrink_schedule(&base, &clean, &run.data, &|clean, data| {
                    !InvariantChecker::check_full(clean, data).is_ok()
                }))
            } else {
                None
            };
            let artifact = (!run.invariants.is_ok())
                .then(|| violation_artifact(&clean, &run, minimal.as_ref()));
            runs.push(SweepRun {
                world_seed: seed,
                spec: run.spec,
                event_counts,
                invariants: run.invariants,
                minimal,
                artifact,
            });
        }
    }
    SweepOutcome { runs }
}

/// Delta-debug (ddmin) a failing fault schedule down to a minimal set of
/// event ids that still trips `violates`, and return it as a replayable
/// spec. `failing` must be a chaotic run over `base` for which
/// `violates(clean, failing)` holds; the 1-minimal result is typically a
/// handful of events out of a schedule of dozens.
pub fn shrink_schedule<F>(
    base: &ExperimentConfig,
    clean: &ExperimentData,
    failing: &ExperimentData,
    violates: &F,
) -> ChaosSpec
where
    F: Fn(&ExperimentData, &ExperimentData) -> bool,
{
    let chaos = failing
        .cfg
        .world
        .chaos
        .clone()
        .expect("failing run must carry a chaos config");
    let all_ids = failing
        .world
        .faults
        .as_ref()
        .map(|f| f.enabled_ids())
        .unwrap_or_default();
    let minimal = ddmin(all_ids, |subset| {
        let mut cfg = chaos.clone();
        cfg.only_events = Some(subset.to_vec());
        let data = run_chaotic(base, cfg);
        violates(clean, &data)
    });
    let mut spec = chaos.spec();
    spec.events = Some(minimal);
    spec
}

/// Classic ddmin over a list of event ids. `fails(subset)` must hold for
/// the initial list; the result is a 1-minimal failing subset (removing
/// any single remaining id makes the failure disappear... up to ddmin's
/// chunk granularity guarantees).
fn ddmin<F>(mut ids: Vec<u32>, mut fails: F) -> Vec<u32>
where
    F: FnMut(&[u32]) -> bool,
{
    let mut n = 2usize;
    while ids.len() >= 2 {
        let chunk = ids.len().div_ceil(n);
        let chunks: Vec<&[u32]> = ids.chunks(chunk).collect();
        // Reduce to a failing chunk…
        if let Some(found) = chunks.iter().find(|c| fails(c)) {
            ids = found.to_vec();
            n = 2;
            continue;
        }
        // …or to a failing complement.
        let mut reduced = None;
        for i in 0..chunks.len() {
            let complement: Vec<u32> = chunks
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, c)| c.iter().copied())
                .collect();
            if complement.len() < ids.len() && fails(&complement) {
                reduced = Some(complement);
                break;
            }
        }
        if let Some(r) = reduced {
            n = (n - 1).max(2);
            ids = r;
            continue;
        }
        if n >= ids.len() {
            break;
        }
        n = (n * 2).min(ids.len());
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_single_culprit() {
        let ids: Vec<u32> = (0..32).collect();
        let mut evals = 0;
        let minimal = ddmin(ids, |subset| {
            evals += 1;
            subset.contains(&17)
        });
        assert_eq!(minimal, vec![17]);
        assert!(evals < 64, "ddmin used {evals} evaluations");
    }

    #[test]
    fn ddmin_finds_conjunction() {
        let ids: Vec<u32> = (0..24).collect();
        let minimal = ddmin(ids, |s| s.contains(&3) && s.contains(&20));
        assert_eq!(minimal, vec![3, 20]);
    }

    #[test]
    fn chaos_seed_depends_on_profile_and_seed() {
        assert_ne!(chaos_seed(1, "drizzle"), chaos_seed(1, "bursty"));
        assert_ne!(chaos_seed(1, "drizzle"), chaos_seed(2, "drizzle"));
        assert_eq!(chaos_seed(7, "crashy"), chaos_seed(7, "crashy"));
    }

    #[test]
    fn sweep_profiles_all_resolve() {
        for p in SWEEP_PROFILES {
            assert!(chaos_config(1, p).is_some(), "unknown profile {p}");
        }
    }
}
