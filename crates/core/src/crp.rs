//! The second, independent measurement method: a Closed Resolver Project
//! style *inbound* spoofed-probe scan.
//!
//! The paper's own methodology (§3, [`crate::experiment`]) infers a lack of
//! inbound source-address validation from *outbound* evidence: a spoofed
//! query that escapes the target AS and reaches our authoritative servers.
//! The Closed Resolver Project (Korczyński et al., the paper's closest
//! related work) measures the same property from the opposite direction:
//! send probes *into* each AS whose source addresses claim to be internal,
//! and classify the AS as lacking inbound SAV when any probe elicits a
//! resolution.
//!
//! This module implements that second method over the same simulated world
//! so the two can be cross-validated AS by AS
//! ([`crate::analysis::agreement`]):
//!
//! * **Shared stimuli** — the CRP pass reuses the experiment's streaming
//!   schedule machinery with the *same* seed-derived schedule salt, filtered
//!   to the internal source categories ([`CRP_CATEGORIES`]). Per-target
//!   source plans are hashes of the canonical target bytes
//!   ([`crate::sources::SourcePlan::build_deterministic`]), so both methods
//!   probe byte-identical `(src, dst)` pairs and the CRP pass is itself
//!   byte-identical across any `BCD_SHARDS` × `BCD_SCHED` layout.
//! * **Separate pass** — the CRP scan runs on its own engine runtimes over
//!   the same shared [`World`] and [`TargetSet`]. Nothing leaks between
//!   methods: method A's caches, logs, and RNG streams never see a CRP
//!   packet, so adding the CRP pass changes no method-A byte.
//! * **Own namespace** — CRP probes use their own keyword
//!   ([`crp_keyword`]), so a CRP log entry can never decode as a method-A
//!   probe or vice versa.

use crate::experiment::{run_pool, ExperimentConfig, SCHEDULE_SALT_STREAM};
use crate::hash::{fnv1a, FNV_OFFSET};
use crate::qname::{QnameCodec, SuffixKind};
use crate::schedule::{self, LaneLayout, Schedule, ScheduleMode};
use crate::shard;
use crate::sources::SourceCategory;
use crate::targets::TargetSet;
use bcd_dns::QueryLogEntry;
use bcd_dnswire::{Message, MessageView, RType, WireWriter, MAX_NAME_WIRE_LEN};
use bcd_netsim::{
    stream_seed, HostConfig, Merge, NetCounters, Node, NodeCtx, Packet, SimDuration, SimTime,
    StackPolicy, Transport,
};
use bcd_obs::{Det, ObsEnv};
use bcd_worldgen::{World, WorldRuntime};
use std::net::IpAddr;
use std::sync::{Arc, Mutex};

/// RNG stream id for the CRP scanner's packet-identity salt (txid/sport
/// derivation). Distinct from the experiment's noise stream so the two
/// methods' wire identities are independent.
const CRP_NOISE_STREAM: u64 = 0x4352_505F_4E4F_4953; // "CRP_NOIS"

/// RNG stream base for per-shard engine noise in the CRP pass.
const CRP_SHARD_NOISE_STREAM: u64 = 0x4352_5053_4844_0000; // "CRPSHD"

/// The source categories the inbound-SAV method probes: sources an AS
/// border *should* reject on ingress because they claim to originate
/// inside the AS (or inside the destination subnet, or the destination
/// itself). Loopback and private sources measure bogon filtering, not
/// inbound SAV, so the CRP pass omits them.
pub const CRP_CATEGORIES: [SourceCategory; 3] = [
    SourceCategory::OtherPrefix,
    SourceCategory::SamePrefix,
    SourceCategory::DstAsSrc,
];

/// The CRP pass's experiment keyword: method A's keyword with a `crp`
/// suffix, so each codec only decodes its own method's entries.
pub fn crp_keyword(kw: &str) -> String {
    format!("{kw}crp")
}

/// Counters for tests and reports.
#[derive(Debug, Default, Clone)]
pub struct CrpStats {
    pub probes_sent: u64,
    pub responses_received: u64,
    /// Probes suppressed by §3.8 opt-outs (honoured symmetrically).
    pub opted_out: u64,
    /// Walker wake-ups deferred by §3.4 outages.
    pub outage_deferrals: u64,
}

impl Merge for CrpStats {
    fn merge(&mut self, other: CrpStats) {
        self.probes_sent += other.probes_sent;
        self.responses_received += other.responses_received;
        self.opted_out += other.opted_out;
        self.outage_deferrals += other.outage_deferrals;
    }
}

/// Configuration for one shard's [`CrpScanner`] node.
struct CrpScannerConfig {
    codec: QnameCodec,
    schedule: Schedule,
    targets: Arc<TargetSet>,
    noise_salt: u64,
    opt_outs: Vec<(SimTime, bcd_netsim::Prefix)>,
    outages: Vec<(SimTime, SimDuration)>,
}

const TOK_WALK: u64 = 0;

/// The CRP measurement node: a plain schedule walker. No follow-up
/// batteries, no log polling, no human-noise injection — the inbound
/// method's verdict is read entirely from the authoritative log after the
/// run.
struct CrpScanner {
    cfg: CrpScannerConfig,
    next_query: usize,
    scratch: WireWriter,
    stats: CrpStats,
}

impl CrpScanner {
    fn new(cfg: CrpScannerConfig) -> CrpScanner {
        CrpScanner {
            cfg,
            next_query: 0,
            scratch: WireWriter::new(),
            stats: CrpStats::default(),
        }
    }

    /// Mirror of the experiment scanner's packet-identity derivation: port
    /// and txid are hashes of the qname (which encodes the probe identity),
    /// never of RNG stream position, so every packet byte is layout-free.
    fn send_dns(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        src: IpAddr,
        dst: IpAddr,
        qname: bcd_dnswire::Name,
    ) {
        let mut canon = [0u8; MAX_NAME_WIRE_LEN];
        let n = qname.canonical_into(&mut canon);
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &self.cfg.noise_salt.to_le_bytes());
        fnv1a(&mut h, &canon[..n]);
        fnv1a(&mut h, b"probe");
        let txid = (h >> 32) as u16;
        let sport = 20_000 + (h % 40_000) as u16;
        let trace = if ctx.tracing() {
            ctx.sample_trace(std::str::from_utf8(&canon[..n]).unwrap_or("."))
        } else {
            0
        };
        let msg = Message::query(txid, qname, RType::A);
        msg.encode_into(&mut self.scratch);
        ctx.send(Packet::udp(src, dst, sport, 53, self.scratch.as_bytes()).with_trace(trace));
    }

    /// If `now` falls inside a configured outage, the time it ends.
    fn outage_end(&self, now: SimTime) -> Option<SimTime> {
        self.cfg
            .outages
            .iter()
            .filter(|(start, len)| now >= *start && now < *start + *len)
            .map(|(start, len)| *start + *len)
            .max()
    }

    fn emit_scheduled(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        if let Some(end) = self.outage_end(now) {
            self.stats.outage_deferrals += 1;
            ctx.set_timer(end - now, TOK_WALK);
            return;
        }
        while self.next_query < self.cfg.schedule.len() {
            let i = self.next_query;
            let at = self.cfg.schedule.at(i);
            if at > now {
                ctx.set_timer(at - now, TOK_WALK);
                return;
            }
            self.next_query += 1;
            let t = self
                .cfg
                .targets
                .get(self.cfg.schedule.target_index(i) as usize);
            let source = self.cfg.schedule.source(i, t.addr.is_ipv6());
            if self
                .cfg
                .opt_outs
                .iter()
                .any(|(when, p)| now >= *when && p.contains(t.addr))
            {
                self.stats.opted_out += 1;
                continue;
            }
            let qname = self
                .cfg
                .codec
                .encode(now, source, t.addr, t.asn.0, SuffixKind::Main);
            self.stats.probes_sent += 1;
            self.send_dns(ctx, source, t.addr, qname);
        }
    }
}

impl Node for CrpScanner {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(at) = self.cfg.schedule.first_at() {
            ctx.set_timer(at - SimTime::ZERO, TOK_WALK);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == TOK_WALK {
            self.emit_scheduled(ctx);
        }
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, pkt: Packet) {
        // Stray responses to spoofed probes that routed back to the
        // vantage; counted for accounting, never used as evidence.
        let Transport::Udp(u) = &pkt.transport else {
            return;
        };
        if MessageView::parse(&u.payload).is_ok_and(|v| v.qr()) {
            self.stats.responses_received += 1;
        }
    }
}

/// Everything the agreement analysis needs from a completed CRP pass.
pub struct CrpData {
    /// Codec bound to the CRP keyword — decodes only CRP entries.
    pub codec: QnameCodec,
    /// Canonically merged snapshot of the CRP pass's authoritative log.
    pub entries: Vec<QueryLogEntry>,
    pub stats: CrpStats,
    /// Packet counters, summed over all CRP shards.
    pub counters: NetCounters,
    /// Engine events processed, summed over all CRP shards.
    pub events: u64,
    pub budget_exhausted: bool,
    /// Deliver events still queued at the horizon, summed over all shards.
    pub pending_deliveries: u64,
    /// Total probes the CRP schedule carried (census total).
    pub scheduled_probes: u64,
}

/// Run the inbound-SAV scan over an already-built world and target set —
/// typically the ones method A just ran on, so the two passes share every
/// planning artifact. Deterministic contract: byte-identical output for
/// any `cfg.shards` / `cfg.workers` / `cfg.schedule_mode`.
pub fn run_crp(cfg: &ExperimentConfig, world: &Arc<World>, targets: &Arc<TargetSet>) -> CrpData {
    let sched_salt = stream_seed(cfg.world.seed, SCHEDULE_SALT_STREAM);
    let lanes = schedule::lane_count(cfg.rate);
    let filter = Some(&CRP_CATEGORIES[..]);
    let census = schedule::census(
        targets,
        world.topo.routes(),
        &world.v6_hitlist,
        filter,
        lanes,
        sched_salt,
        cfg.target_sample,
    );
    let layout = LaneLayout::new(
        cfg.rate,
        cfg.window,
        census.total,
        sched_salt,
        cfg.target_sample,
    );
    let (lane_shard, shards) = shard::assign_lanes(&census.lane_counts, cfg.shards.max(1));
    let n_workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.workers
    }
    .clamp(1, shards);

    let parts: Vec<Schedule> = match cfg.schedule_mode {
        ScheduleMode::Streaming => {
            let build = |sid: usize| {
                Schedule::build_lanes(
                    targets,
                    world.topo.routes(),
                    &world.v6_hitlist,
                    filter,
                    &shard::lanes_of_shard(&lane_shard, sid),
                    &census,
                    &layout,
                )
            };
            run_pool(n_workers, shards, build)
        }
        ScheduleMode::Global => {
            let global = Schedule::build_global(
                targets,
                world.topo.routes(),
                &world.v6_hitlist,
                filter,
                &census,
                &layout,
            );
            global.partition_by_lane(targets, &lane_shard, shards)
        }
    };
    debug_assert_eq!(
        parts.iter().map(|p| p.len() as u64).sum::<u64>(),
        census.total
    );
    let sched_end = parts.iter().map(|p| p.end).max().unwrap_or(SimTime::ZERO);
    let outage_total = cfg
        .outages
        .iter()
        .fold(SimDuration::ZERO, |acc, (_, len)| acc + *len);
    let run_until = sched_end + outage_total + cfg.drain;

    let keyword = crp_keyword(&cfg.keyword);
    let parts: Vec<Mutex<Option<Schedule>>> =
        parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let outcomes = run_pool(n_workers, shards, |sid| {
        let part = parts[sid]
            .lock()
            .unwrap()
            .take()
            .expect("CRP shard partition claimed twice");
        run_crp_shard(world, cfg, &keyword, sid, part, targets, run_until)
    });

    // Deterministic merge in shard-id order: concatenate the pre-sorted
    // per-shard streams and re-establish the canonical order (the CRP log
    // is small — internal categories only — so a full sort is cheap).
    let mut entries = Vec::new();
    let mut stats = CrpStats::default();
    let mut counters = NetCounters::default();
    let mut events = 0u64;
    let mut budget_exhausted = false;
    let mut pending_deliveries = 0u64;
    for o in outcomes {
        entries.extend(o.entries);
        stats.merge(o.stats);
        counters.merge(o.counters);
        events += o.events;
        budget_exhausted |= o.budget_exhausted;
        pending_deliveries += o.pending_deliveries;
    }
    shard::canonical_sort(&mut entries);

    CrpData {
        codec: QnameCodec::new(&world.auth.apex, &keyword),
        entries,
        stats,
        counters,
        events,
        budget_exhausted,
        pending_deliveries,
        scheduled_probes: census.total,
    }
}

struct CrpShardOutcome {
    entries: Vec<QueryLogEntry>,
    stats: CrpStats,
    counters: NetCounters,
    events: u64,
    budget_exhausted: bool,
    pending_deliveries: u64,
}

fn run_crp_shard(
    world: &Arc<World>,
    cfg: &ExperimentConfig,
    keyword: &str,
    shard_id: usize,
    schedule: Schedule,
    targets: &Arc<TargetSet>,
    run_until: SimTime,
) -> CrpShardOutcome {
    let owned: std::collections::HashSet<bcd_netsim::Asn> = (0..schedule.len())
        .map(|i| targets.get(schedule.target_index(i) as usize).asn)
        .collect();
    let mut wrt: WorldRuntime = world.spawn_for(Some(&owned));
    let scanner_cfg = CrpScannerConfig {
        codec: QnameCodec::new(&world.auth.apex, keyword),
        schedule,
        targets: targets.clone(),
        noise_salt: stream_seed(cfg.world.seed, CRP_NOISE_STREAM),
        opt_outs: cfg.opt_outs.clone(),
        outages: cfg.outages.clone(),
    };
    let scanner_host = wrt.net.add_host(
        HostConfig {
            addrs: vec![world.scanner.v4, world.scanner.v6],
            asn: world.scanner.asn,
            stack: StackPolicy::strict(),
        },
        Box::new(CrpScanner::new(scanner_cfg)),
    );
    wrt.net.reseed_noise(stream_seed(
        cfg.world.seed,
        CRP_SHARD_NOISE_STREAM ^ shard_id as u64,
    ));
    wrt.net.run_until(run_until);

    let mut entries = wrt.log.borrow().entries().to_vec();
    shard::canonical_sort(&mut entries);
    let scanner = wrt
        .net
        .node::<CrpScanner>(scanner_host)
        .expect("CRP scanner node");
    CrpShardOutcome {
        entries,
        stats: scanner.stats.clone(),
        counters: wrt.net.counters.clone(),
        events: wrt.net.events_processed(),
        budget_exhausted: wrt.net.budget_exhausted,
        pending_deliveries: wrt.net.pending_deliveries(),
    }
}

/// Both methods plus their AS-level agreement matrix.
pub struct DualRun {
    /// Method A: the paper's outbound spoofed-source survey.
    pub a: crate::experiment::ExperimentData,
    /// Method B: the inbound CRP scan over the same world and targets.
    pub b: CrpData,
    /// The cross-method agreement matrix, scored against ground truth.
    pub matrix: crate::analysis::agreement::AgreementMatrix,
}

/// Run both methods back to back and compute the agreement matrix.
///
/// The method-A pass runs first and unchanged (its reports and goldens are
/// byte-identical with or without the CRP pass); the CRP pass then reuses
/// its world and target set. Agreement metrics are appended to the run's
/// observation aggregate as [`Det::Stable`] counters, and the combined
/// artifact is exported once if `env` names a JSONL sink.
pub fn run_dual(cfg: ExperimentConfig, env: &ObsEnv) -> DualRun {
    use bcd_obs::report::names;
    // Defer the JSONL export until the agreement counters are in.
    let mut quiet = env.clone();
    quiet.jsonl_path = None;
    let mut a = crate::experiment::Experiment::run_observed(cfg, &quiet);
    let t0 = std::time::Instant::now();
    let b = run_crp(&a.cfg, &a.world, &a.targets);
    a.obs.profile.record("crp-run", t0.elapsed());
    let t0 = std::time::Instant::now();
    let matrix = crate::analysis::agreement::AgreementMatrix::compute(&a, &b);
    a.obs.profile.record("agreement", t0.elapsed());
    let agg = &mut a.obs.aggregate;
    let det = Det::Stable;
    agg.add_counter(names::CRP_PROBES, &[], det, b.stats.probes_sent);
    agg.add_counter(names::CRP_LOG_ENTRIES, &[], det, b.entries.len() as u64);
    agg.add_counter(names::AGREEMENT_UNIVERSE, &[], det, matrix.universe as u64);
    agg.add_counter(
        names::AGREEMENT_AGREE_OPEN,
        &[],
        det,
        matrix.agree_open.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_AGREE_CLOSED,
        &[],
        det,
        matrix.agree_closed.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_A_ONLY,
        &[],
        det,
        matrix.a_only.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_B_ONLY,
        &[],
        det,
        matrix.b_only.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_FALSE_OPEN,
        &[("method", "a")],
        det,
        matrix.false_open_a.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_FALSE_OPEN,
        &[("method", "b")],
        det,
        matrix.false_open_b.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_FALSE_CLOSED,
        &[("method", "a")],
        det,
        matrix.false_closed_a.len() as u64,
    );
    agg.add_counter(
        names::AGREEMENT_FALSE_CLOSED,
        &[("method", "b")],
        det,
        matrix.false_closed_b.len() as u64,
    );
    if let Some(path) = &env.jsonl_path {
        if let Err(e) = a.obs.write_jsonl(path) {
            eprintln!("[bcd] BCD_OBS export to {} failed: {e}", path.display());
        }
    }
    DualRun { a, b, matrix }
}
