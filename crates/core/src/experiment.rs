//! End-to-end experiment orchestration: world → target extraction → source
//! planning → schedule → scan → log snapshot.
//!
//! [`Experiment::run`] performs the entire §3 methodology against a
//! generated world and returns an [`ExperimentData`] from which every §4–§5
//! analysis can be computed via [`ExperimentData::input`].

use crate::qname::QnameCodec;
use crate::scanner::{HumanNoise, Scanner, ScannerConfig, ScannerStats};
use crate::schedule::Schedule;
use crate::sources::SourcePlan;
use crate::targets::TargetSet;
use bcd_dns::QueryLogEntry;
use bcd_dnswire::RCode;
use bcd_netsim::{HostConfig, SimDuration, SimTime, StackPolicy};
use bcd_worldgen::{World, WorldConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::IpAddr;

/// Experiment parameters (§3.4–§3.5 knobs).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    pub world: WorldConfig,
    /// Scan window (auto-extended by the rate cap when needed). The paper
    /// ran four weeks; the simulation compresses the window — all analyses
    /// are time-scale-free except the lifetime filter, which keeps its
    /// absolute 10 s threshold.
    pub window: SimDuration,
    /// Global probe rate cap (the paper's administrative 700 qps).
    pub rate: u32,
    /// Authoritative-log poll interval (real-time follow-up latency).
    pub poll_interval: SimDuration,
    /// Follow-up queries per family (the paper's 10).
    pub followups_per_family: usize,
    /// §3.6.3 lifetime threshold.
    pub lifetime_threshold: SimDuration,
    /// Experiment keyword (the `kw` label).
    pub keyword: String,
    /// Extra simulation time after the last scheduled probe, to let
    /// follow-ups, retries, and human-noise queries drain.
    pub drain: SimDuration,
    /// §3.8 opt-outs honoured mid-campaign: `(when received, prefix)`.
    pub opt_outs: Vec<(SimTime, bcd_netsim::Prefix)>,
    /// §3.4 interruptions: `(start, duration)` windows with no probing.
    pub outages: Vec<(SimTime, SimDuration)>,
    /// Restrict the scan to these source categories (None = all five).
    /// Drives the Table 3 ablation: what coverage does each category buy?
    pub category_filter: Option<Vec<crate::sources::SourceCategory>>,
    /// Experiment-zone answer mode: NXDOMAIN (the paper's choice, with its
    /// §3.6.4 QNAME-minimization blind spot) or the wildcard synthesis the
    /// paper proposes for a future run. The ablation binary compares both.
    pub wildcard_zone: bool,
}

impl ExperimentConfig {
    /// Full-shape defaults over a paper-shape world.
    pub fn paper_shape(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            world: WorldConfig::paper_shape(seed),
            window: SimDuration::from_hours(2),
            rate: 700,
            poll_interval: SimDuration::from_secs(60),
            followups_per_family: 10,
            lifetime_threshold: SimDuration::from_secs(10),
            keyword: "x7".into(),
            drain: SimDuration::from_hours(4),
            opt_outs: Vec::new(),
            outages: Vec::new(),
            category_filter: None,
            wildcard_zone: false,
        }
    }

    /// Small and fast, for tests.
    pub fn tiny(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            world: WorldConfig::tiny(seed),
            window: SimDuration::from_mins(20),
            ..ExperimentConfig::paper_shape(seed)
        }
    }
}

/// Everything the analyses need, owned.
pub struct ExperimentData {
    pub world: World,
    pub targets: TargetSet,
    pub codec: QnameCodec,
    /// Snapshot of the experiment estate's query log.
    pub entries: Vec<QueryLogEntry>,
    pub scanner_stats: ScannerStats,
    /// Responses received at the scanner's real addresses.
    pub scanner_responses: Vec<(SimTime, IpAddr, RCode)>,
    /// All public DNS addresses (v4 + v6), for middlebox attribution.
    pub public_dns: Vec<IpAddr>,
    pub cfg: ExperimentConfig,
}

impl ExperimentData {
    /// Borrow an [`crate::analysis::AnalysisInput`] over this data.
    pub fn input(&self) -> crate::analysis::AnalysisInput<'_> {
        crate::analysis::AnalysisInput {
            log: &self.entries,
            codec: &self.codec,
            targets: &self.targets,
            routes: &self.world.net.routes,
            geo: &self.world.geo,
            scanner_v4: self.world.scanner.v4,
            scanner_v6: self.world.scanner.v6,
            public_dns: &self.public_dns,
            lifetime_threshold: self.cfg.lifetime_threshold,
        }
    }
}

/// The experiment runner.
pub struct Experiment;

impl Experiment {
    /// Run the full methodology and return the collected data.
    pub fn run(cfg: ExperimentConfig) -> ExperimentData {
        let mut world = bcd_worldgen::build::build(cfg.world.clone());
        if cfg.wildcard_zone {
            bcd_worldgen::build::set_experiment_zone_wildcard(&mut world);
        }

        // §3.1: extract targets from the DITL trace.
        let targets = TargetSet::extract(&world.ditl2019, &world.net.routes);

        // §3.2: spoofed-source plans.
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.world.seed.wrapping_add(2));
        let plans: Vec<SourcePlan> = targets
            .iter()
            .map(|t| {
                let mut plan = SourcePlan::build_with_hitlist(
                    t.addr,
                    &world.net.routes,
                    &world.v6_hitlist,
                    &mut rng,
                );
                if let Some(keep) = &cfg.category_filter {
                    plan.sources.retain(|(cat, _)| keep.contains(cat));
                }
                plan
            })
            .collect();

        // §3.4: the schedule.
        let schedule = Schedule::build(&plans, cfg.window, cfg.rate, &mut rng);

        // §3.3/§3.5: codec + scanner node at the reserved vantage.
        let codec = QnameCodec::new(&world.auth.apex, &cfg.keyword);
        let asn_of: HashMap<IpAddr, u32> =
            targets.iter().map(|t| (t.addr, t.asn.0)).collect();
        let schedule_end = schedule.end;
        let human_noise = if cfg.world.human_lookup_fraction > 0.0 {
            Some(HumanNoise {
                probability: cfg.world.human_lookup_fraction,
                delay: SimDuration::from_secs(cfg.world.human_lookup_delay_secs),
            })
        } else {
            None
        };
        let scanner_cfg = ScannerConfig {
            v4: world.scanner.v4,
            v6: world.scanner.v6,
            codec: codec.clone(),
            schedule,
            asn_of,
            poll_interval: cfg.poll_interval,
            log: world.log.clone(),
            followups_per_family: cfg.followups_per_family,
            lab_v4: world.auth.lab_v4,
            lab_v6: world.auth.lab_v6,
            human_noise,
            opt_outs: cfg.opt_outs.clone(),
            outages: cfg.outages.clone(),
        };
        let scanner_host = world.net.add_host(
            HostConfig {
                addrs: vec![world.scanner.v4, world.scanner.v6],
                asn: world.scanner.asn,
                stack: StackPolicy::strict(),
            },
            Box::new(Scanner::new(scanner_cfg)),
        );

        // Run the scan plus drain time (outages push the real end out, the
        // paper's "longer than the four weeks we had planned").
        let outage_total = cfg
            .outages
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, len)| acc + *len);
        world.net.run_until(schedule_end + outage_total + cfg.drain);

        let scanner = world
            .net
            .node::<Scanner>(scanner_host)
            .expect("scanner node");
        let scanner_stats = scanner.stats.clone();
        let scanner_responses = scanner.responses.clone();
        let entries = world.log.borrow().entries().to_vec();
        let public_dns: Vec<IpAddr> = world
            .public_dns_v4
            .iter()
            .chain(&world.public_dns_v6)
            .copied()
            .collect();

        ExperimentData {
            world,
            targets,
            codec,
            entries,
            scanner_stats,
            scanner_responses,
            public_dns,
            cfg,
        }
    }
}
