//! End-to-end experiment orchestration: world → target extraction → source
//! planning → schedule → scan → log snapshot.
//!
//! [`Experiment::run`] performs the entire §3 methodology against a
//! generated world and returns an [`ExperimentData`] from which every §4–§5
//! analysis can be computed via [`ExperimentData::input`].

use crate::observe;
use crate::qname::QnameCodec;
use crate::scanner::{HumanNoise, Scanner, ScannerConfig, ScannerStats};
use crate::schedule::{self, LaneLayout, Schedule, ScheduleMode};
use crate::shard::{self, ShardOutcome};
use crate::targets::TargetSet;
use bcd_dns::QueryLogEntry;
use bcd_dnswire::RCode;
use bcd_netsim::{
    stream_seed, FlightRecorder, HostConfig, NetCounters, SimDuration, SimTime, StackPolicy, Trace,
};
use bcd_obs::report::names;
use bcd_obs::{Det, ObsEnv, RunObservation, RunProfile, TraceConfig};
use bcd_worldgen::{World, WorldConfig, WorldRuntime};
use std::net::IpAddr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Experiment parameters (§3.4–§3.5 knobs).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    pub world: WorldConfig,
    /// Scan window (auto-extended by the rate cap when needed). The paper
    /// ran four weeks; the simulation compresses the window — all analyses
    /// are time-scale-free except the lifetime filter, which keeps its
    /// absolute 10 s threshold.
    pub window: SimDuration,
    /// Global probe rate cap (the paper's administrative 700 qps).
    pub rate: u32,
    /// Authoritative-log poll interval (real-time follow-up latency).
    pub poll_interval: SimDuration,
    /// Follow-up queries per family (the paper's 10).
    pub followups_per_family: usize,
    /// §3.6.3 lifetime threshold.
    pub lifetime_threshold: SimDuration,
    /// Experiment keyword (the `kw` label).
    pub keyword: String,
    /// Extra simulation time after the last scheduled probe, to let
    /// follow-ups, retries, and human-noise queries drain.
    pub drain: SimDuration,
    /// §3.8 opt-outs honoured mid-campaign: `(when received, prefix)`.
    pub opt_outs: Vec<(SimTime, bcd_netsim::Prefix)>,
    /// §3.4 interruptions: `(start, duration)` windows with no probing.
    pub outages: Vec<(SimTime, SimDuration)>,
    /// Restrict the scan to these source categories (None = all five).
    /// Drives the Table 3 ablation: what coverage does each category buy?
    pub category_filter: Option<Vec<crate::sources::SourceCategory>>,
    /// Experiment-zone answer mode: NXDOMAIN (the paper's choice, with its
    /// §3.6.4 QNAME-minimization blind spot) or the wildcard synthesis the
    /// paper proposes for a future run. The ablation binary compares both.
    pub wildcard_zone: bool,
    /// Number of parallel survey shards (see [`crate::shard`]). Probes are
    /// partitioned by destination AS and run on one engine per shard;
    /// results merge deterministically, so every analysis and report is
    /// byte-identical for 1 and N shards. 1 = classic single-engine run.
    /// The constructors honour the `BCD_SHARDS` environment variable, which
    /// is how CI runs the whole test suite sharded.
    pub shards: usize,
    /// Worker threads executing the shard partitions (work stealing: idle
    /// workers claim the next unstarted shard, so an imbalanced partition
    /// no longer idles cores). 0 = one worker per available core, capped at
    /// the shard count. The partition itself — and therefore every byte of
    /// output — depends only on `shards`; `workers` is pure execution
    /// parallelism. The constructors honour `BCD_WORKERS`.
    pub workers: usize,
    /// Deterministic keep-1-in-N subsample of the target population
    /// (`None` = the full §3.1 list). The kept set is a hash of the
    /// canonical target address, so it is identical for any shard layout.
    /// Survey-tier batch jobs use this to bound the probe count over the
    /// full 62k-AS world (the CI `survey-smoke` job).
    pub target_sample: Option<u64>,
    /// Schedule constructor: the streaming per-shard lane build (default)
    /// or the legacy-shaped global oracle. The two are byte-equal (the
    /// differential suite proves it); `Global` exists only so that claim
    /// stays checkable. The constructors honour `BCD_SCHEDULE=global`.
    pub schedule_mode: ScheduleMode,
}

impl ExperimentConfig {
    /// Full-shape defaults over a paper-shape world.
    pub fn paper_shape(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            world: WorldConfig::paper_shape(seed),
            window: SimDuration::from_hours(2),
            rate: 700,
            poll_interval: SimDuration::from_secs(60),
            followups_per_family: 10,
            lifetime_threshold: SimDuration::from_secs(10),
            keyword: "x7".into(),
            drain: SimDuration::from_hours(4),
            opt_outs: Vec::new(),
            outages: Vec::new(),
            category_filter: None,
            wildcard_zone: false,
            shards: shard::shards_from_env().unwrap_or(1),
            workers: shard::workers_from_env().unwrap_or(0),
            target_sample: None,
            schedule_mode: schedule::mode_from_env().unwrap_or_default(),
        }
    }

    /// Small and fast, for tests.
    pub fn tiny(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            world: WorldConfig::tiny(seed),
            window: SimDuration::from_mins(20),
            ..ExperimentConfig::paper_shape(seed)
        }
    }
}

/// Everything the analyses need, owned.
pub struct ExperimentData {
    /// The immutable generated world, shared with any still-live shard
    /// engines (all of them are gone by the time `run` returns).
    pub world: Arc<World>,
    /// The extracted target set, shared with every shard's scanner (the
    /// compact schedule's target indices point into it).
    pub targets: Arc<TargetSet>,
    pub codec: QnameCodec,
    /// Snapshot of the experiment estate's query log.
    pub entries: Vec<QueryLogEntry>,
    pub scanner_stats: ScannerStats,
    /// Responses received at the scanner's real addresses.
    pub scanner_responses: Vec<(SimTime, IpAddr, RCode)>,
    /// All public DNS addresses (v4 + v6), for middlebox attribution.
    pub public_dns: Vec<IpAddr>,
    /// Total engine events processed, summed over all shards.
    pub events: u64,
    /// Packet counters, summed over all shards.
    pub counters: NetCounters,
    /// True if any shard hit its event budget.
    pub budget_exhausted: bool,
    /// Deliver events still queued at the horizon, summed over all shards
    /// (in-flight packets the conservation invariant must account for).
    pub pending_deliveries: u64,
    /// Merged packet capture, when the world config enables one.
    pub trace: Option<Trace>,
    /// Merged causal span flight recorder, when the run armed one
    /// (`BCD_TRACE` or [`ObsEnv::with_trace`]). Byte-identical to a
    /// single-shard recorder at any shard count (see
    /// [`bcd_netsim::FlightRecorder`]'s merge contract).
    pub flight: Option<FlightRecorder>,
    /// The run's observability artifact: phase profile, deterministic
    /// aggregate metrics, per-shard slices (see [`bcd_obs`]). Callers may
    /// append their own phases (analysis, report) before exporting.
    pub obs: RunObservation,
    pub cfg: ExperimentConfig,
}

impl ExperimentData {
    /// Borrow an [`crate::analysis::AnalysisInput`] over this data.
    pub fn input(&self) -> crate::analysis::AnalysisInput<'_> {
        crate::analysis::AnalysisInput {
            log: &self.entries,
            codec: &self.codec,
            targets: &self.targets,
            routes: self.world.topo.routes(),
            geo: &self.world.geo,
            scanner_v4: self.world.scanner.v4,
            scanner_v6: self.world.scanner.v6,
            public_dns: &self.public_dns,
            lifetime_threshold: self.cfg.lifetime_threshold,
        }
    }
}

/// The experiment runner.
pub struct Experiment;

/// RNG stream id for the human-noise salt (shared by every shard).
pub(crate) const NOISE_SALT_STREAM: u64 = 0x4855_4D41_4E5F_4E53; // "HUMAN_NS"

/// RNG stream base for per-shard engine (link-fault) noise.
const SHARD_NOISE_STREAM: u64 = 0x5348_4152_4400_0000; // "SHARD"

/// RNG stream id for the schedule's per-target hash salt (plans, phases,
/// sampling — shared by every shard and, crucially, by *both* measurement
/// methods: the CRP pass ([`crate::crp`]) derives its source plans from the
/// same salt, which is what makes the two methods probe identical
/// (src, dst) pairs).
pub(crate) const SCHEDULE_SALT_STREAM: u64 = 0x5343_4845_4455_4C45; // "SCHEDULE"

/// Run `f(0..n)` on a work-stealing pool of `n_workers` threads (the
/// calling thread is worker 0) and return the results in index order.
/// Used for both parallel phases — per-shard schedule construction and the
/// shard runs; claim order is scheduling-dependent, results are not.
pub(crate) fn run_pool<T: Send>(
    n_workers: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    {
        let worker = || loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= n {
                break;
            }
            let out = f(i);
            *slots[i].lock().unwrap() = Some(out);
        };
        std::thread::scope(|s| {
            for wid in 1..n_workers.min(n.max(1)) {
                std::thread::Builder::new()
                    .name(format!("bcd-worker-{wid}"))
                    .spawn_scoped(s, worker)
                    .expect("spawn worker thread");
            }
            worker();
        });
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("pool slot missing — worker panicked?")
        })
        .collect()
}

impl Experiment {
    /// Run the full methodology and return the collected data.
    ///
    /// With `cfg.shards > 1` the schedule is partitioned by destination AS
    /// (see [`crate::shard`]) and each shard runs on its own thread. The
    /// world is generated exactly once; every shard spawns a cheap
    /// [`WorldRuntime`] over the same shared `Arc<Topology>`. Outcomes merge
    /// deterministically, so the returned data — and everything rendered
    /// from it — is byte-identical to a single-shard run.
    pub fn run(cfg: ExperimentConfig) -> ExperimentData {
        Experiment::run_observed(cfg, &ObsEnv::from_env())
    }

    /// [`Experiment::run`] with explicit observability switches (tests and
    /// benches pass [`ObsEnv::disabled`] to stay environment-independent).
    ///
    /// The returned data always carries a populated
    /// [`ExperimentData::obs`] — assembling it is a per-run-boundary cost,
    /// not a hot-path one. `env` only controls the *sinks*: the JSONL
    /// export (written here when `BCD_OBS` names a path) and the scanner's
    /// stderr heartbeat.
    pub fn run_observed(cfg: ExperimentConfig, env: &ObsEnv) -> ExperimentData {
        let mut profile = RunProfile::new();
        // Phase-transition heartbeat: the scanner's per-probe heartbeat only
        // covers shard-run, so the orchestrator announces the other phases.
        let announce = |name: &str| {
            if env.progress_every.is_some() {
                eprintln!("[bcd] phase {name}");
            }
        };
        announce("worldgen-build");
        let t0 = Instant::now();
        let mut world = bcd_worldgen::build::build(cfg.world.clone());
        if cfg.wildcard_zone {
            bcd_worldgen::build::set_experiment_zone_wildcard(&mut world);
        }
        profile.record("worldgen-build", t0.elapsed());

        // §3.1: extract targets from the DITL trace (or, for worlds built
        // with the streaming pipeline, from the pre-deduplicated candidate
        // list — the two paths yield identical target sets).
        announce("target-extract");
        let t0 = Instant::now();
        let targets = if world.cfg.materialize_ditl {
            TargetSet::extract(&world.ditl2019, world.topo.routes())
        } else {
            TargetSet::from_candidates(&world.ditl_candidates, world.topo.routes())
        };
        profile.record("target-extract", t0.elapsed());
        let targets = Arc::new(targets);

        // §3.2 + §3.4 census: count every probe (per-target plan lengths,
        // no RNG, no allocation) to fix the window extension, the lane
        // occupancy and the lane → shard map before any schedule memory
        // exists. Streaming and global constructors consume the same
        // census, so they agree on the geometry by construction.
        announce("schedule-census");
        let t0 = Instant::now();
        let sched_salt = stream_seed(cfg.world.seed, SCHEDULE_SALT_STREAM);
        let lanes = schedule::lane_count(cfg.rate);
        let filter = cfg.category_filter.as_deref();
        let census = schedule::census(
            &targets,
            world.topo.routes(),
            &world.v6_hitlist,
            filter,
            lanes,
            sched_salt,
            cfg.target_sample,
        );
        let layout = LaneLayout::new(
            cfg.rate,
            cfg.window,
            census.total,
            sched_salt,
            cfg.target_sample,
        );
        let (lane_shard, shards) = shard::assign_lanes(&census.lane_counts, cfg.shards.max(1));
        profile.record("schedule-census", t0.elapsed());

        let codec = QnameCodec::new(&world.auth.apex, &cfg.keyword);

        // Worldgen ran once; from here on the world is frozen and shared.
        let world = Arc::new(world);

        // §3.4: per-shard streaming schedule construction. Each shard
        // derives only its own lanes' probes (plans and phases are hashes
        // of the canonical target bytes) and smooths them under the lanes'
        // own rate quotas — the global query vec is never materialized.
        // `BCD_SCHEDULE=global` swaps in the legacy-shaped oracle, which
        // *does* materialize it, then partitions along the same lane map;
        // the two are byte-equal (tests/schedule_stream.rs).
        announce("schedule-build");
        let n_workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        }
        .clamp(1, shards);
        let t0 = Instant::now();
        let parts: Vec<Schedule> = match cfg.schedule_mode {
            ScheduleMode::Streaming => {
                let build = |sid: usize| {
                    Schedule::build_lanes(
                        &targets,
                        world.topo.routes(),
                        &world.v6_hitlist,
                        filter,
                        &shard::lanes_of_shard(&lane_shard, sid),
                        &census,
                        &layout,
                    )
                };
                run_pool(n_workers, shards, build)
            }
            ScheduleMode::Global => {
                let global = Schedule::build_global(
                    &targets,
                    world.topo.routes(),
                    &world.v6_hitlist,
                    filter,
                    &census,
                    &layout,
                );
                global.partition_by_lane(&targets, &lane_shard, shards)
            }
        };
        let total_probes: u64 = parts.iter().map(|p| p.len() as u64).sum();
        debug_assert_eq!(total_probes, census.total);
        let sched_end = parts.iter().map(|p| p.end).max().unwrap_or(SimTime::ZERO);
        profile.record("schedule-build", t0.elapsed());

        // Run the scan plus drain time (outages push the real end out, the
        // paper's "longer than the four weeks we had planned"). All shards
        // simulate the same horizon — the *global* schedule end, which is
        // the max over the per-shard ends.
        let outage_total = cfg
            .outages
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, len)| acc + *len);
        let run_until = sched_end + outage_total + cfg.drain;

        // Shards run on a work-stealing pool: each worker claims the next
        // unstarted shard id from a shared counter, spawns its own runtime
        // (fresh nodes + logs) over the shared topology, and parks the
        // outcome in the shard's slot. Imbalanced destination-AS partitions
        // therefore pack onto whatever cores exist instead of pinning one
        // thread per shard. Claim order is scheduling-dependent, but each
        // shard's simulation is self-contained and the merge below walks
        // slots in shard-id order — output bytes depend only on `shards`.
        announce("shard-run");
        let progress = env.progress_every;
        let trace_cfg = env.trace.clone();
        let parts: Vec<Mutex<Option<Schedule>>> =
            parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let outcomes: Vec<ShardOutcome> = run_pool(n_workers, shards, |sid| {
            let part = parts[sid]
                .lock()
                .unwrap()
                .take()
                .expect("shard partition claimed twice");
            run_shard(
                &world,
                &cfg,
                sid,
                part,
                &targets,
                run_until,
                progress,
                trace_cfg.as_ref(),
            )
        });
        for (sid, o) in outcomes.iter().enumerate() {
            profile.record_shard_phase("shard-spawn", sid, o.spawn_wall);
            profile.record_shard("shard-run", sid, o.wall, run_until);
            profile.record_shard_phase("shard-extract", sid, o.extract_wall);
        }
        let per_shard: Vec<bcd_obs::MetricsRegistry> =
            outcomes.iter().map(|o| o.metrics.clone()).collect();
        announce("merge");
        let t0 = Instant::now();
        let merged = shard::merge_outcomes(outcomes);
        profile.record("merge", t0.elapsed());

        // Deterministic aggregate from the *merged* artifacts; the fold of
        // the per-shard layout slices fills in whatever the stable side
        // does not claim. Drops are only deterministic when no stochastic
        // link faults ran (see `observe::stable_aggregate`).
        let loss_free = cfg.world.link_loss == 0.0 && cfg.world.chaos.is_none();
        let mut aggregate = observe::stable_aggregate(
            &merged.entries,
            &merged.scanner_stats,
            &merged.responses,
            &merged.dns,
            &world,
            &targets,
            loss_free.then_some(&merged.counters),
        );
        // Schedule-construction accounting: probe totals and lane geometry
        // are pure functions of (seed, population, rate) — fully stable.
        aggregate.add_counter(names::SCHEDULE_PROBES, &[], Det::Stable, total_probes);
        aggregate.add_counter(
            names::SCHEDULE_TARGETS,
            &[],
            Det::Stable,
            census.sampled_targets,
        );
        aggregate.add_counter(
            names::SCHEDULE_LANES,
            &[],
            Det::Stable,
            census.occupied_lanes() as u64,
        );
        aggregate.add_counter(
            names::SCHEDULE_END_SECS,
            &[],
            Det::Stable,
            sched_end.as_secs(),
        );
        // Run-level bounded-window accounting, claimed from the *merged*
        // artifacts before the per-shard fold so the folded sums (which
        // double-count per-shard warmup capture) cannot shadow them.
        if let Some(t) = &merged.trace {
            aggregate.add_counter(names::TRACE_CAPTURED, &[], Det::Layout, t.len() as u64);
            aggregate.add_counter(names::TRACE_EVICTED, &[], Det::Layout, t.evicted);
        }
        // Causal-span counters are shard-invariant (canonical-order
        // eviction; warmup is never traced) — but span *details* include
        // fault fates, so they only enter the deterministic surface when no
        // stochastic link faults ran.
        if let Some(f) = &merged.flight {
            let det = if loss_free { Det::Stable } else { Det::Layout };
            aggregate.add_counter(names::SPAN_RECORDED, &[], det, f.recorded());
            aggregate.add_counter(names::SPAN_RETAINED, &[], det, f.len() as u64);
            aggregate.add_counter(names::SPAN_EVICTED, &[], det, f.evicted());
            aggregate.add_counter(names::SPAN_TRACES, &[], det, f.traces().len() as u64);
        }
        aggregate.absorb_new(&merged.metrics);
        let obs = RunObservation {
            seed: cfg.world.seed,
            shards,
            profile,
            aggregate,
            per_shard,
        };
        if let Some(path) = &env.jsonl_path {
            if let Err(e) = obs.write_jsonl(path) {
                eprintln!("[bcd] BCD_OBS export to {} failed: {e}", path.display());
            }
        }
        if let (Some(flight), Some(path)) = (
            &merged.flight,
            env.trace.as_ref().and_then(|t| t.chrome_out.as_ref()),
        ) {
            let json = bcd_obs::chrome_trace_json(flight, &obs.profile);
            let write = || -> std::io::Result<()> {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                std::fs::write(path, json)
            };
            if let Err(e) = write() {
                eprintln!("[bcd] BCD_TRACE export to {} failed: {e}", path.display());
            }
        }

        let public_dns: Vec<IpAddr> = world
            .public_dns_v4
            .iter()
            .chain(&world.public_dns_v6)
            .copied()
            .collect();

        ExperimentData {
            world,
            targets,
            codec,
            entries: merged.entries,
            scanner_stats: merged.scanner_stats,
            scanner_responses: merged.responses,
            public_dns,
            events: merged.events,
            counters: merged.counters,
            budget_exhausted: merged.budget_exhausted,
            pending_deliveries: merged.pending_deliveries,
            trace: merged.trace,
            flight: merged.flight,
            obs,
            cfg,
        }
    }
}

/// Spawn a fresh runtime over the shared world, run one shard's slice of
/// the schedule to completion, and collect its `Send`-able outcome.
/// §3.3/§3.5: codec + scanner node at the reserved vantage (the codec is
/// rebuilt per shard; apex and keyword are seed-determined, so every shard
/// encodes identically).
#[allow(clippy::too_many_arguments)]
fn run_shard(
    world: &Arc<World>,
    cfg: &ExperimentConfig,
    shard_id: usize,
    schedule: Schedule,
    targets: &Arc<TargetSet>,
    run_until: SimTime,
    progress: Option<u64>,
    trace_cfg: Option<&TraceConfig>,
) -> ShardOutcome {
    let wall_start = Instant::now();
    // Lazy spawn: this shard's schedule names every destination AS it will
    // ever touch, so hosts elsewhere (other shards' measured ASes) are
    // spawned as sinks. Infra/public-DNS/scanner ASes are always live —
    // `spawn_for` adds them unconditionally.
    let owned: std::collections::HashSet<bcd_netsim::Asn> = (0..schedule.len())
        .map(|i| targets.get(schedule.target_index(i) as usize).asn)
        .collect();
    let mut wrt: WorldRuntime = world.spawn_for(Some(&owned));
    let codec = QnameCodec::new(&world.auth.apex, &cfg.keyword);
    let human_noise = if cfg.world.human_lookup_fraction > 0.0 {
        Some(HumanNoise {
            probability: cfg.world.human_lookup_fraction,
            delay: SimDuration::from_secs(cfg.world.human_lookup_delay_secs),
        })
    } else {
        None
    };
    let scanner_cfg = ScannerConfig {
        v4: world.scanner.v4,
        v6: world.scanner.v6,
        codec,
        schedule,
        targets: targets.clone(),
        topo: world.topo.clone(),
        poll_interval: cfg.poll_interval,
        log: wrt.log.clone(),
        followups_per_family: cfg.followups_per_family,
        lab_v4: world.auth.lab_v4,
        lab_v6: world.auth.lab_v6,
        human_noise,
        noise_salt: stream_seed(cfg.world.seed, NOISE_SALT_STREAM),
        opt_outs: cfg.opt_outs.clone(),
        outages: cfg.outages.clone(),
        progress: progress.map(|every| (every, shard_id)),
    };
    // The scanner is a runtime-local host: it rides on top of the shared
    // topology (same host id and RNG stream in every shard) without
    // mutating it.
    let scanner_host = wrt.net.add_host(
        HostConfig {
            addrs: vec![world.scanner.v4, world.scanner.v6],
            asn: world.scanner.asn,
            stack: StackPolicy::strict(),
        },
        Box::new(Scanner::new(scanner_cfg)),
    );
    // Per-shard stream for the engine's link-fault noise; host streams stay
    // seed-derived (see `bcd_netsim::stream_seed`), which is what keeps
    // per-target behaviour shard-invariant.
    wrt.net.reseed_noise(stream_seed(
        cfg.world.seed,
        SHARD_NOISE_STREAM ^ shard_id as u64,
    ));
    // Arm the causal flight recorder after spawn so warmup resolver traffic
    // (which repeats in every shard) can never be sampled into it.
    if let Some(t) = trace_cfg {
        wrt.net.arm_flight_sampled(t.capacity, t.sample.clone());
    }
    let spawn_wall = wall_start.elapsed();
    let run_start = Instant::now();
    wrt.net.run_until(run_until);
    let run_wall = run_start.elapsed();
    let extract_start = Instant::now();

    // Pre-sort this shard's streams canonically so the merge can absorb
    // them with a streaming k-way pass instead of a global re-sort. The
    // sort runs here — inside the parallel shard phase — not on the merge
    // thread.
    let mut entries = wrt.log.borrow().entries().to_vec();
    shard::canonical_sort(&mut entries);
    let scanner = wrt.net.node::<Scanner>(scanner_host).expect("scanner node");
    let scanner_stats = scanner.stats.clone();
    let mut responses = scanner.responses.clone();
    responses.sort_by_key(|r| (r.0, r.1));
    let dns = observe::dns_totals(&wrt.net);
    let events = wrt.net.events_processed();
    let pending_deliveries = wrt.net.pending_deliveries();
    let trace = wrt.net.trace.take();
    let flight = wrt.net.take_flight();
    let metrics = observe::shard_registry(
        &wrt.net.counters,
        events,
        &dns,
        &scanner_stats,
        trace.as_ref(),
    );
    ShardOutcome {
        entries,
        scanner_stats,
        responses,
        counters: wrt.net.counters.clone(),
        events,
        budget_exhausted: wrt.net.budget_exhausted,
        pending_deliveries,
        trace,
        flight,
        dns,
        metrics,
        wall: run_wall,
        spawn_wall,
        extract_wall: extract_start.elapsed(),
    }
}
