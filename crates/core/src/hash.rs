//! Shared deterministic hashing for schedule-stable draws.
//!
//! Everything the survey derives per probe — txid, source port, noise
//! micro-jitter, and (since the streaming schedule) the per-target phase
//! and source-plan RNG seed — must depend only on *canonical bytes* (the
//! target address, the qname), never on iteration order or RNG stream
//! position. That is what keeps the schedule and every packet observable
//! byte-identical across `BCD_SHARDS`, `BCD_WORKERS` and `BCD_SCHED`.
//!
//! FNV-1a: tiny state, stable across platforms, and good enough spread
//! for bucketing/phases (we never need cryptographic strength here — the
//! adversary is nondeterminism, not an attacker).

use std::net::IpAddr;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into the running FNV-1a state `h`.
pub(crate) fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Fold an address's canonical octets (4 or 16 bytes) into `h`.
pub(crate) fn fnv1a_addr(h: &mut u64, addr: IpAddr) {
    match addr {
        IpAddr::V4(a) => fnv1a(h, &a.octets()),
        IpAddr::V6(a) => fnv1a(h, &a.octets()),
    }
}

/// A salted, domain-separated 64-bit draw from an address. `salt` is a
/// seed-derived stream (see `bcd_netsim::stream_seed`); `domain` separates
/// independent uses of the same (salt, addr) pair — e.g. `b"phase"` vs
/// `b"plan"` — so one draw never aliases another.
pub(crate) fn addr_hash(salt: u64, addr: IpAddr, domain: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &salt.to_le_bytes());
    fnv1a_addr(&mut h, addr);
    fnv1a(&mut h, domain);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_separated() {
        let a: IpAddr = "192.0.2.7".parse().unwrap();
        assert_ne!(addr_hash(1, a, b"phase"), addr_hash(1, a, b"plan"));
        assert_ne!(addr_hash(1, a, b"phase"), addr_hash(2, a, b"phase"));
        let b: IpAddr = "192.0.2.8".parse().unwrap();
        assert_ne!(addr_hash(1, a, b"phase"), addr_hash(1, b, b"phase"));
        // Deterministic.
        assert_eq!(addr_hash(1, a, b"phase"), addr_hash(1, a, b"phase"));
    }
}
