//! Survey invariants: what must hold no matter how badly the network
//! misbehaves.
//!
//! The paper's methodology is *conservative by construction*: packet loss,
//! reordering, duplication, and resolver outages can only make the survey
//! **under-count** reachability, never invent it (§3.4's interruptions,
//! §3.6's corrections). This module turns that argument into executable
//! checks over [`ExperimentData`], used by the chaos harness
//! ([`crate::chaos`]) to validate every `(seed, profile)` run.
//!
//! Two kinds of invariant:
//!
//! * **Intrinsic** ([`InvariantChecker::check`]) — hold for any single run:
//!   * `soundness-no-false-dsav` — every AS the reachability analysis
//!     flags as lacking DSAV truly lacks DSAV in the generated world's
//!     ground truth. This is the paper's central claim (§4, Table 2): a
//!     spoofed probe that arrives is *proof* the border did not validate,
//!     so faults must never flip it.
//!   * `conservation` — engine accounting balances: every packet handed to
//!     the network is delivered, dropped for exactly one [`DropReason`],
//!     or still in flight when the horizon ends.
//! * **Baseline-relative** ([`InvariantChecker::check_against`]) — compare
//!   a faulted run to the clean run with the same world seed:
//!   * `reachability-monotone-addrs` / `reachability-monotone-asns` —
//!     faults only *shrink* the reached target/AS sets (§3.4: "loss only
//!     ever under-counts"). A target reached under chaos but not in the
//!     clean run would mean faults manufactured evidence.
//!   * `closed-never-opens` — a resolver classified *closed* in the clean
//!     run must never classify *open* under faults (§5.1: "open" requires
//!     an answered non-spoofed probe, and faults cannot answer probes).
//!
//! Cross-method invariants ([`InvariantChecker::check_agreement`],
//! [`InvariantChecker::check_crp_monotone`]) extend both kinds to the
//! dual-method agreement matrix: neither method may ever call a
//! ground-truth-closed AS open, a clean network forces exact agreement
//! with the oracle, and faults may only shrink the inbound method's open
//! set.

use crate::analysis::openclosed::OpenClosedReport;
use crate::analysis::reachability::Reachability;
use crate::experiment::ExperimentData;
use std::fmt;

/// One failed invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable invariant name (see module docs).
    pub invariant: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Outcome of a checker pass: which invariants ran, which failed.
#[derive(Debug, Default, Clone)]
pub struct InvariantReport {
    /// Names of the invariants that were evaluated, in evaluation order.
    pub checked: Vec<&'static str>,
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    /// No violations?
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another report into this one (intrinsic + relative passes).
    pub fn merge(&mut self, other: InvariantReport) {
        self.checked.extend(other.checked);
        self.violations.extend(other.violations);
    }

    /// Deterministic one-block rendering (used by the chaos run report).
    pub fn render(&self) -> String {
        let mut out = format!(
            "invariants: {} checked, {} violated\n",
            self.checked.len(),
            self.violations.len()
        );
        for v in &self.violations {
            out.push_str("  VIOLATION ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// The checker. Stateless; both passes are pure functions of the
/// experiment data they receive.
pub struct InvariantChecker;

impl InvariantChecker {
    /// Intrinsic invariants of a single run.
    pub fn check(data: &ExperimentData) -> InvariantReport {
        let mut report = InvariantReport::default();
        let reach = Reachability::compute(&data.input());
        Self::check_soundness(data, &reach, &mut report);
        Self::check_conservation(data, &mut report);
        report
    }

    /// Baseline-relative invariants: `chaos` is a faulted run over the
    /// same world seed as the fault-free `clean` run.
    pub fn check_against(clean: &ExperimentData, chaos: &ExperimentData) -> InvariantReport {
        let mut report = InvariantReport::default();
        let clean_reach = Reachability::compute(&clean.input());
        let chaos_reach = Reachability::compute(&chaos.input());
        Self::check_monotone(&clean_reach, &chaos_reach, &mut report);
        Self::check_closed_never_opens(
            &OpenClosedReport::compute(&clean.input(), &clean_reach),
            &OpenClosedReport::compute(&chaos.input(), &chaos_reach),
            &mut report,
        );
        report
    }

    /// Both passes in one report (the chaos harness's standard gate).
    pub fn check_full(clean: &ExperimentData, chaos: &ExperimentData) -> InvariantReport {
        let mut report = Self::check(chaos);
        report.merge(Self::check_against(clean, chaos));
        report
    }

    /// Cross-method invariants over an agreement matrix
    /// ([`crate::analysis::agreement`]).
    ///
    /// * `agreement-no-false-open` — always: neither method may call an AS
    ///   open that the ground-truth oracle says is closed. Evidence is a
    ///   query *arriving* at our authoritative servers; no fault — loss,
    ///   delay, duplication, or the spoofed-response adversary's forged
    ///   answers (rejected at the resolver's (txid, port) demux) — can
    ///   manufacture an arrival.
    /// * `agreement-no-false-closed` + `agreement-clean-exact` — clean
    ///   network only: with no faults, both methods must match the oracle
    ///   exactly, and therefore each other.
    pub fn check_agreement(
        matrix: &crate::analysis::agreement::AgreementMatrix,
        clean: bool,
    ) -> InvariantReport {
        let mut report = InvariantReport::default();
        report.checked.push("agreement-no-false-open");
        for (method, set) in [("a", &matrix.false_open_a), ("b", &matrix.false_open_b)] {
            if !set.is_empty() {
                let asns: Vec<u32> = set.iter().map(|a| a.0).collect();
                report.violations.push(Violation {
                    invariant: "agreement-no-false-open",
                    detail: format!(
                        "method {method} called ground-truth-closed ASes open: {asns:?}"
                    ),
                });
            }
        }
        if clean {
            report.checked.push("agreement-no-false-closed");
            for (method, set) in [("a", &matrix.false_closed_a), ("b", &matrix.false_closed_b)] {
                if !set.is_empty() {
                    let asns: Vec<u32> = set.iter().map(|a| a.0).collect();
                    report.violations.push(Violation {
                        invariant: "agreement-no-false-closed",
                        detail: format!(
                            "method {method} missed oracle-open ASes on a clean network: {asns:?}"
                        ),
                    });
                }
            }
            report.checked.push("agreement-clean-exact");
            if !matrix.a_only.is_empty() || !matrix.b_only.is_empty() {
                let a: Vec<u32> = matrix.a_only.iter().map(|x| x.0).collect();
                let b: Vec<u32> = matrix.b_only.iter().map(|x| x.0).collect();
                report.violations.push(Violation {
                    invariant: "agreement-clean-exact",
                    detail: format!(
                        "methods disagree on a clean network: a_only={a:?} b_only={b:?}"
                    ),
                });
            }
        }
        report
    }

    /// Baseline-relative cross-method invariant: faults may only *shrink*
    /// the inbound method's open set, mirroring
    /// `reachability-monotone-asns` for method B.
    pub fn check_crp_monotone(
        clean: &crate::analysis::agreement::AgreementMatrix,
        chaos: &crate::analysis::agreement::AgreementMatrix,
    ) -> InvariantReport {
        let mut report = InvariantReport::default();
        report.checked.push("crp-monotone-asns");
        let clean_open = clean.b_open();
        let extra: Vec<u32> = chaos
            .b_open()
            .difference(&clean_open)
            .map(|a| a.0)
            .collect();
        if !extra.is_empty() {
            report.violations.push(Violation {
                invariant: "crp-monotone-asns",
                detail: format!("ASes CRP-open only under faults: {extra:?}"),
            });
        }
        report
    }

    fn check_soundness(data: &ExperimentData, reach: &Reachability, report: &mut InvariantReport) {
        report.checked.push("soundness-no-false-dsav");
        let bad: Vec<u32> = reach
            .reached_asns_all()
            .into_iter()
            .filter(|&asn| !data.world.truly_lacks_dsav(asn))
            .map(|asn| asn.0)
            .collect();
        if !bad.is_empty() {
            report.violations.push(Violation {
                invariant: "soundness-no-false-dsav",
                detail: format!("reached ASes that deploy DSAV in ground truth: {bad:?}"),
            });
        }
    }

    fn check_conservation(data: &ExperimentData, report: &mut InvariantReport) {
        report.checked.push("conservation");
        let c = &data.counters;
        // Forged responses from the spoofed-response adversary enter the
        // network without a `sent` increment; they are accounted on the
        // left so their deliveries balance.
        let sent = c.sent + c.duplicated + c.injected;
        let accounted = c.delivered + c.total_drops() + data.pending_deliveries;
        // On budget exhaustion the engine truncates the *whole* queue —
        // timers included — so drops may over-count packets; the balance
        // then only bounds from above.
        let ok = if data.budget_exhausted {
            sent <= accounted
        } else {
            sent == accounted
        };
        if !ok {
            report.violations.push(Violation {
                invariant: "conservation",
                detail: format!(
                    "sent+duplicated+injected = {sent} but delivered+drops+in-flight = \
                     {accounted} (delivered={} drops={} in-flight={} budget_exhausted={})",
                    c.delivered,
                    c.total_drops(),
                    data.pending_deliveries,
                    data.budget_exhausted
                ),
            });
        }
    }

    fn check_monotone(clean: &Reachability, chaos: &Reachability, report: &mut InvariantReport) {
        report.checked.push("reachability-monotone-addrs");
        let extra_addrs: Vec<String> = chaos
            .reached
            .keys()
            .filter(|a| !clean.reached.contains_key(a))
            .map(|a| a.to_string())
            .collect();
        if !extra_addrs.is_empty() {
            report.violations.push(Violation {
                invariant: "reachability-monotone-addrs",
                detail: format!("targets reached only under faults: {extra_addrs:?}"),
            });
        }

        report.checked.push("reachability-monotone-asns");
        let clean_asns = clean.reached_asns_all();
        let extra_asns: Vec<u32> = chaos
            .reached_asns_all()
            .into_iter()
            .filter(|asn| !clean_asns.contains(asn))
            .map(|asn| asn.0)
            .collect();
        if !extra_asns.is_empty() {
            report.violations.push(Violation {
                invariant: "reachability-monotone-asns",
                detail: format!("ASes reached only under faults: {extra_asns:?}"),
            });
        }
    }

    fn check_closed_never_opens(
        clean: &OpenClosedReport,
        chaos: &OpenClosedReport,
        report: &mut InvariantReport,
    ) {
        report.checked.push("closed-never-opens");
        let flipped: Vec<String> = chaos
            .open
            .iter()
            .filter(|a| clean.closed.contains(*a))
            .map(|a| a.to_string())
            .collect();
        if !flipped.is_empty() {
            report.violations.push(Violation {
                invariant: "closed-never-opens",
                detail: format!(
                    "resolvers closed in the clean run but open under faults: {flipped:?}"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_merge_and_render() {
        let mut a = InvariantReport {
            checked: vec!["conservation"],
            violations: Vec::new(),
        };
        let b = InvariantReport {
            checked: vec!["closed-never-opens"],
            violations: vec![Violation {
                invariant: "closed-never-opens",
                detail: "198.51.100.7".into(),
            }],
        };
        a.merge(b);
        assert!(!a.is_ok());
        let text = a.render();
        assert!(text.starts_with("invariants: 2 checked, 1 violated"));
        assert!(text.contains("VIOLATION closed-never-opens: 198.51.100.7"));
    }

    #[test]
    fn empty_report_is_ok() {
        assert!(InvariantReport::default().is_ok());
    }
}
