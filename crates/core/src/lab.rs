//! The controlled lab environment (§5.3.2, §5.3.3, §5.5).
//!
//! The paper installed DNS software on real OS instances, issued 10,000
//! recursive queries per instance, and observed the source ports at its
//! own authoritative server (Table 5 / Figure 3a), and separately tested
//! each OS's acceptance of destination-as-source and loopback packets
//! (Table 6). Both harnesses are reproduced here against the simulator,
//! using the same node implementations the Internet-scale world runs.

use bcd_dns::log::shared_log;
use bcd_dns::stub::StubQuery;
use bcd_dns::{
    Acl, AuthServer, AuthServerConfig, RecursiveResolver, ResolverConfig, StubClient, Zone,
    ZoneMode,
};
use bcd_dnswire::{Name, RType};
use bcd_netsim::node::SinkNode;
use bcd_netsim::{
    Asn, BorderPolicy, HostConfig, LinkProfile, Network, NetworkConfig, Node, NodeCtx, Packet,
    Prefix, SimDuration, StackPolicy,
};
use bcd_osmodel::{DnsSoftware, Os};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::IpAddr;

/// Result of one Table 5 lab run.
#[derive(Debug, Clone)]
pub struct LabPortResult {
    pub software: DnsSoftware,
    pub os: Os,
    /// Observed source ports, query order.
    pub ports: Vec<u16>,
    pub unique: usize,
    pub min: u16,
    pub max: u16,
}

impl LabPortResult {
    /// Observed pool span (`max - min + 1`); 1 for a single port.
    pub fn span(&self) -> u32 {
        self.max as u32 - self.min as u32 + 1
    }

    /// Split the observation into consecutive 10-query samples and return
    /// each sample's range — the Figure 3a construction ("we divided the
    /// 10,000 queries ... into samples of size 10").
    pub fn sample_ranges(&self, k: usize) -> Vec<u32> {
        self.ports
            .chunks_exact(k)
            .map(|chunk| {
                let mn = *chunk.iter().min().unwrap() as u32;
                let mx = *chunk.iter().max().unwrap() as u32;
                mx - mn
            })
            .collect()
    }
}

fn lab_ip(i: u128) -> IpAddr {
    Prefix::new("203.0.112.0".parse().unwrap(), 24)
        .nth(i)
        .unwrap()
}

/// Issue `n_queries` recursive queries to `software` running on `os` and
/// observe the upstream source ports — one row of Table 5.
pub fn measure_ports(software: DnsSoftware, os: Os, n_queries: usize, seed: u64) -> LabPortResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Network::new(NetworkConfig {
        seed,
        core_link: LinkProfile::instant(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::open());
    net.announce("203.0.112.0/24".parse().unwrap(), Asn(1));

    let log = shared_log();
    let auth_addr = lab_ip(1);
    let resolver_addr = lab_ip(2);
    let client_addr = lab_ip(3);

    // A single authoritative host serving root + the test zone, so the
    // resolver can recurse normally.
    let root_zone = Zone::new(Name::root(), ZoneMode::Static(vec![])).delegate(
        "lab.test".parse().unwrap(),
        vec![("ns.lab.test".parse().unwrap(), vec![auth_addr])],
    );
    let lab_zone = Zone::new("lab.test".parse().unwrap(), ZoneMode::Wildcard);
    net.add_host(
        HostConfig {
            addrs: vec![auth_addr],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root_zone, lab_zone],
            log: log.clone(),
            log_queries: true,
        })),
    );

    let allocator = software.allocator(os, &mut rng);
    net.add_host(
        HostConfig {
            addrs: vec![resolver_addr],
            asn: Asn(1),
            stack: os.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig {
            addrs: vec![resolver_addr],
            acl: Acl::Open,
            forward_to: None,
            qmin: false,
            qmin_halts_on_nxdomain: true,
            allocator,
            os,
            p0f_visible: true,
            root_hints: vec![auth_addr].into(),
            timeout: SimDuration::from_secs(2),
            max_attempts: 3,
            warmup: Vec::new(),
            identity_draw_salt: None,
            preload_cuts: Vec::new().into(),
        })),
    );

    let queries: Vec<StubQuery> = (0..n_queries)
        .map(|i| StubQuery {
            at: SimDuration::from_millis(i as u64 * 5),
            resolver: resolver_addr,
            qname: format!("u{i}.lab.test").parse().unwrap(),
            qtype: RType::A,
        })
        .collect();
    net.add_host(
        HostConfig {
            addrs: vec![client_addr],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(client_addr, queries)),
    );

    net.run();

    // Ports of queries arriving from the resolver, in arrival order;
    // skip the root/lab infrastructure warm-up queries for `lab.test`
    // delegations (they come from the same resolver — include them; they
    // use the same allocator, as in the real lab).
    let log = log.borrow();
    let ports: Vec<u16> = log
        .entries()
        .iter()
        .filter(|e| e.src == resolver_addr)
        .map(|e| e.src_port)
        .collect();
    let unique: std::collections::BTreeSet<u16> = ports.iter().copied().collect();
    let (min, max) = (
        ports.iter().copied().min().unwrap_or(0),
        ports.iter().copied().max().unwrap_or(0),
    );
    LabPortResult {
        software,
        os,
        ports,
        unique: unique.len(),
        min,
        max,
    }
}

/// Run the full Table 5 sweep.
pub fn table5(n_queries: usize, seed: u64) -> Vec<LabPortResult> {
    let cases: [(DnsSoftware, Os); 8] = [
        (DnsSoftware::Bind950, Os::LinuxModern),
        (DnsSoftware::Bind952To988, Os::LinuxModern),
        (DnsSoftware::Bind99Plus, Os::LinuxModern),
        (DnsSoftware::Knot32, Os::LinuxModern),
        (DnsSoftware::Unbound19, Os::LinuxModern),
        (DnsSoftware::PowerDns42, Os::LinuxModern),
        (DnsSoftware::WindowsDnsOld, Os::Windows2003),
        (DnsSoftware::WindowsDnsModern, Os::WindowsModern),
    ];
    cases
        .iter()
        .enumerate()
        .map(|(i, &(sw, os))| measure_ports(sw, os, n_queries, seed.wrapping_add(i as u64)))
        .collect()
}

/// The Figure 3a lab sweep: the three OS-default pools plus the full
/// unprivileged range, 10-query sample ranges each.
pub fn figure3a_samples(n_queries: usize, seed: u64) -> Vec<(&'static str, u32, Vec<u32>)> {
    let cases: [(&'static str, DnsSoftware, Os, u32); 4] = [
        (
            "Windows DNS",
            DnsSoftware::WindowsDnsModern,
            Os::WindowsModern,
            2_500,
        ),
        ("FreeBSD", DnsSoftware::Bind99Plus, Os::FreeBsd, 16_383),
        ("Linux", DnsSoftware::Bind99Plus, Os::LinuxModern, 28_232),
        (
            "Full Port Range",
            DnsSoftware::Unbound19,
            Os::LinuxModern,
            64_511,
        ),
    ];
    cases
        .iter()
        .enumerate()
        .map(|(i, &(label, sw, os, pool))| {
            let res = measure_ports(sw, os, n_queries, seed.wrapping_add(100 + i as u64));
            (label, pool, res.sample_ranges(10))
        })
        .collect()
}

/// One Table 6 acceptance cell.
#[derive(Debug, Clone, Copy)]
pub struct StackRow {
    pub os: Os,
    pub ds_v4: bool,
    pub lb_v4: bool,
    pub ds_v6: bool,
    pub lb_v6: bool,
}

/// A recorder node counting deliveries per destination port.
struct Recorder {
    hits: Vec<u16>,
}
impl Node for Recorder {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, pkt: Packet) {
        self.hits.push(pkt.transport.dst_port());
    }
}

/// Reproduce Table 6: send destination-as-source and loopback packets (both
/// families) at a host running each OS's network stack, across an
/// unfiltered path, and record what reaches user space.
pub fn table6() -> Vec<StackRow> {
    Os::ALL
        .iter()
        .map(|&os| {
            let mut net = Network::new(NetworkConfig {
                seed: 7,
                core_link: LinkProfile::instant(),
                intra_link: LinkProfile::instant(),
                ..Default::default()
            });
            net.add_simple_as(Asn(1), BorderPolicy::open());
            net.add_simple_as(Asn(2), BorderPolicy::open());
            net.announce("203.0.112.0/24".parse().unwrap(), Asn(1));
            net.announce("16.0.0.0/24".parse().unwrap(), Asn(2));
            net.announce("2600:0:1::/64".parse().unwrap(), Asn(1));
            net.announce("2600:0:2::/64".parse().unwrap(), Asn(2));
            let host_v4: IpAddr = "203.0.112.10".parse().unwrap();
            let host_v6: IpAddr = "2600:0:1::10".parse().unwrap();
            let probe = net.add_host(
                HostConfig {
                    addrs: vec![host_v4, host_v6],
                    asn: Asn(1),
                    stack: os.stack_policy(),
                },
                Box::new(Recorder { hits: Vec::new() }),
            );

            // The sender lives in another AS (both ASes have fully open
            // borders, isolating the *stack* decision).
            struct Sender {
                host_v4: IpAddr,
                host_v6: IpAddr,
            }
            impl Node for Sender {
                fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {}
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    // dst-as-src v4 (port 1), loopback v4 (2), dst-as-src
                    // v6 (3), loopback v6 (4).
                    ctx.send(Packet::udp(self.host_v4, self.host_v4, 9, 1, vec![]));
                    ctx.send(Packet::udp(
                        "127.0.0.1".parse().unwrap(),
                        self.host_v4,
                        9,
                        2,
                        vec![],
                    ));
                    ctx.send(Packet::udp(self.host_v6, self.host_v6, 9, 3, vec![]));
                    ctx.send(Packet::udp(
                        "::1".parse().unwrap(),
                        self.host_v6,
                        9,
                        4,
                        vec![],
                    ));
                }
            }
            net.add_host(
                HostConfig {
                    addrs: vec!["16.0.0.9".parse().unwrap(), "2600:0:2::9".parse().unwrap()],
                    asn: Asn(2),
                    stack: StackPolicy::strict(),
                },
                Box::new(Sender { host_v4, host_v6 }),
            );
            net.run();
            let hits = &net.node::<Recorder>(probe).unwrap().hits;
            StackRow {
                os,
                ds_v4: hits.contains(&1),
                lb_v4: hits.contains(&2),
                ds_v6: hits.contains(&3),
                lb_v6: hits.contains(&4),
            }
        })
        .collect()
}

// SinkNode is pulled in to keep the lab harness's imports aligned with the
// rest of the crate; it is used by example scenarios.
#[allow(unused)]
fn _sink_type_check(_s: SinkNode) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_port_lab_run() {
        let r = measure_ports(DnsSoftware::FixedPort53, Os::LinuxOld, 50, 1);
        assert!(r.ports.len() >= 50);
        assert_eq!(r.unique, 1);
        assert_eq!(r.min, 53);
        assert_eq!(r.span(), 1);
    }

    #[test]
    fn linux_pool_lab_run() {
        let r = measure_ports(DnsSoftware::Bind99Plus, Os::LinuxModern, 300, 2);
        assert!(r.min >= 32_768);
        assert!((r.max as u32) < 32_768 + 28_232);
        assert!(
            r.unique > 250,
            "near-unique ports expected, got {}",
            r.unique
        );
        let ranges = r.sample_ranges(10);
        assert_eq!(ranges.len(), r.ports.len() / 10);
        // Mean 10-sample range near (9/11)·28232 ≈ 23,099.
        let mean: f64 = ranges.iter().map(|&x| x as f64).sum::<f64>() / ranges.len() as f64;
        assert!((19_000.0..26_500.0).contains(&mean), "mean range {mean}");
    }

    #[test]
    fn windows_dns_lab_run() {
        let r = measure_ports(DnsSoftware::WindowsDnsModern, Os::WindowsModern, 300, 3);
        // All ports inside the IANA range, spanning ≤ 2,500 modulo wrap.
        assert!(r.min >= 49_152);
        let unique: std::collections::BTreeSet<u16> = r.ports.iter().copied().collect();
        assert!(unique.len() > 100);
    }

    #[test]
    fn table6_matches_paper_matrix() {
        let rows = table6();
        let get = |os: Os| *rows.iter().find(|r| r.os == os).unwrap();
        // Modern Linux: v6 DS only.
        let lm = get(Os::LinuxModern);
        assert!(!lm.ds_v4 && lm.ds_v6 && !lm.lb_v4 && !lm.lb_v6);
        // Old Linux: v6 DS + v6 LB.
        let lo = get(Os::LinuxOld);
        assert!(!lo.ds_v4 && lo.ds_v6 && !lo.lb_v4 && lo.lb_v6);
        // FreeBSD: DS both, no LB.
        let fb = get(Os::FreeBsd);
        assert!(fb.ds_v4 && fb.ds_v6 && !fb.lb_v4 && !fb.lb_v6);
        // Windows modern: DS both.
        let wm = get(Os::WindowsModern);
        assert!(wm.ds_v4 && wm.ds_v6 && !wm.lb_v4 && !wm.lb_v6);
        // Windows 2003: DS both + v4 LB.
        let w3 = get(Os::Windows2003);
        assert!(w3.ds_v4 && w3.ds_v6 && w3.lb_v4 && !w3.lb_v6);
    }
}
