//! # bcd-core — the paper's contribution: spoofed-source DSAV measurement
//!
//! Implements the complete methodology of *Behind Closed Doors* (IMC 2020):
//!
//! * [`qname`] — the `ts.src.dst.asn.kw.dns-lab.org` query-name codec
//!   (§3.3) that lets every authoritative log entry be traced back to the
//!   exact spoofed probe that induced it,
//! * [`targets`] — target extraction from a DITL root trace: dedup,
//!   special-purpose exclusion, no-route exclusion, ASN attribution (§3.1),
//! * [`sources`] — spoofed-source selection: up to 97 other-prefix
//!   addresses, same-prefix, private/unique-local, destination-as-source,
//!   and loopback (§3.2),
//! * [`schedule`] — the query schedule: per-target even spreading over the
//!   experiment window under a global rate cap (§3.4),
//! * [`scanner`] — the measurement client node: sends the scheduled spoofed
//!   queries, tails the authoritative log in real time, and fires follow-up
//!   queries (10 IPv4-only, 10 IPv6-only, an open-resolver probe, and a
//!   TC-forced TCP probe) at each newly-reached target (§3.5),
//! * [`analysis`] — every analysis in §§3.6–5: reachability and per-AS
//!   aggregation, lifetime filtering, QNAME-minimization accounting,
//!   middlebox attribution, source-category effectiveness (Table 3),
//!   country tables (Tables 1–2), open/closed classification (§5.1),
//!   source-port randomization & OS identification (Tables 4–5, Figures
//!   2–3), forwarding (§5.4), local-system infiltration (§5.5, Table 6),
//!   and the 2018 passive comparison (§5.2.2),
//! * [`lab`] — the controlled lab harness reproducing the paper's
//!   OS/software characterization experiments,
//! * [`shard`] — AS-sharded parallel survey execution with a deterministic
//!   merge (analyses and reports are byte-identical for 1 and N shards),
//! * [`experiment`] — end-to-end orchestration: world → scan → analyses,
//! * [`report`] — plain-text renderings of every table and figure.

pub mod analysis;
pub mod attack;
pub mod chaos;
pub mod crp;
pub mod experiment;
pub(crate) mod hash;
pub mod invariants;
pub mod lab;
pub mod observe;
pub mod outreach;
pub mod qname;
pub mod report;
pub mod scanner;
pub mod schedule;
pub mod selfcheck;
pub mod shard;
pub mod sources;
pub mod targets;

pub use analysis::agreement::AgreementMatrix;
pub use chaos::{chaos_config, chaos_seed, entries_digest, ChaosRun, SweepOutcome};
pub use crp::{run_crp, run_dual, CrpData, DualRun, CRP_CATEGORIES};
pub use experiment::{Experiment, ExperimentConfig, ExperimentData};
pub use invariants::{InvariantChecker, InvariantReport, Violation};
pub use observe::{dns_totals, shard_registry, stable_aggregate, DnsTotals};
pub use qname::{ExperimentTag, QnameCodec, SuffixKind};
pub use scanner::Scanner;
pub use schedule::{LaneLayout, Schedule, ScheduleMode, ScheduledQuery};
pub use selfcheck::{SelfCheck, SelfCheckReport, Verdict};
pub use shard::{shard_of_asn, shards_from_env};
pub use sources::{SourceCategory, SourcePlan};
pub use targets::{Target, TargetSet};
