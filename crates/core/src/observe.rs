//! Instrumentation glue: harvest the pipeline's native counters into the
//! `bcd-obs` registry at phase boundaries.
//!
//! The engine, resolver, and scanner keep their own cheap counters on their
//! hot paths (`NetCounters`, `ResolverStats`, `ScannerStats` — those were
//! always-on before this layer existed and stay so). Observability never
//! reaches *into* a running engine: this module reads the counters out
//! once per shard when its run completes, and assembles the run-level
//! [`bcd_obs::RunObservation`] after the merge. That boundary-harvest
//! design is what keeps the disabled-mode overhead unmeasurable (see the
//! `obs_overhead` bench).
//!
//! Determinism classes (see `bcd-obs` docs):
//!
//! * [`Det::Stable`] aggregates derive from **merged** artifacts — the
//!   canonical query log, merged scanner stats/responses, and client-path
//!   resolver counters. Client traffic is partitioned by destination AS,
//!   so these sums are shard-count-invariant (locked by
//!   `tests/obs_invariance.rs`).
//! * [`Det::Layout`] metrics include anything a shard runtime repeats
//!   locally — resolver warmup resolutions run in *every* shard's runtime,
//!   so raw `net.sent` / `engine.events` / `dns.upstream_queries` scale
//!   with the shard count and stay out of the deterministic surface.

use crate::scanner::ScannerStats;
use crate::targets::TargetSet;
use bcd_dns::{QueryLogEntry, RecursiveResolver};
use bcd_dnswire::RCode;
use bcd_netsim::{Merge, NetCounters, Runtime, SimTime, Trace};
use bcd_obs::report::names;
use bcd_obs::{Det, MetricsRegistry};
use bcd_worldgen::World;
use std::net::IpAddr;

/// Resolver counters summed over every resolver node of one shard runtime.
#[derive(Debug, Default, Clone)]
pub struct DnsTotals {
    // Client path (deterministic: each resolver's client traffic lives in
    // exactly one shard).
    pub client_queries: u64,
    pub refused: u64,
    pub answered: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    // Resolution path (layout-dependent: includes per-runtime warmup).
    pub upstream_queries: u64,
    pub servfail: u64,
    pub tcp_retries: u64,
    // End-of-run cache sizes (layout-dependent: warmup and preloaded cuts
    // populate every runtime's caches).
    pub cache_answers: u64,
    pub cache_nxdomains: u64,
    pub cache_cuts: u64,
    /// Resolver nodes visited.
    pub resolvers: u64,
}

impl Merge for DnsTotals {
    fn merge(&mut self, other: DnsTotals) {
        self.client_queries += other.client_queries;
        self.refused += other.refused;
        self.answered += other.answered;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.upstream_queries += other.upstream_queries;
        self.servfail += other.servfail;
        self.tcp_retries += other.tcp_retries;
        self.cache_answers += other.cache_answers;
        self.cache_nxdomains += other.cache_nxdomains;
        self.cache_cuts += other.cache_cuts;
        self.resolvers += other.resolvers;
    }
}

/// Walk every host of a finished runtime and sum the recursive resolvers'
/// counters (runs once per shard, after `run_until` returns).
pub fn dns_totals(rt: &Runtime) -> DnsTotals {
    let mut t = DnsTotals::default();
    for id in 0..rt.host_count() {
        let Some(r) = rt.node::<RecursiveResolver>(id) else {
            continue;
        };
        t.resolvers += 1;
        let s = &r.stats;
        t.client_queries += s.client_queries;
        t.refused += s.refused;
        t.answered += s.answered;
        t.cache_hits += s.cache_hits;
        t.cache_misses += s.cache_misses;
        t.upstream_queries += s.upstream_queries;
        t.servfail += s.servfail;
        t.tcp_retries += s.tcp_retries;
        let (answers, nxdomains, cuts) = r.cache().sizes();
        t.cache_answers += answers as u64;
        t.cache_nxdomains += nxdomains as u64;
        t.cache_cuts += cuts as u64;
    }
    t
}

/// One shard's layout-dependent metric slice: raw engine counters, the
/// resolution-path resolver totals, and this shard's probe count. Folding
/// these across shards yields the run's engine totals.
pub fn shard_registry(
    counters: &NetCounters,
    events: u64,
    dns: &DnsTotals,
    scanner: &ScannerStats,
    trace: Option<&Trace>,
) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    let det = Det::Layout;
    m.add_counter(names::NET_SENT, &[], det, counters.sent);
    m.add_counter(names::NET_DELIVERED, &[], det, counters.delivered);
    m.add_counter(names::NET_DUPLICATED, &[], det, counters.duplicated);
    m.add_counter(names::NET_INJECTED, &[], det, counters.injected);
    m.add_counter(names::NET_INTERCEPTED, &[], det, counters.intercepted);
    for (reason, n) in &counters.drops {
        m.add_counter(names::NET_DROP, &[("reason", &reason.to_string())], det, *n);
    }
    m.add_counter(names::ENGINE_EVENTS, &[], det, events);
    m.add_counter(names::SCANNER_SPOOFED, &[], det, scanner.spoofed_sent);
    m.add_counter(names::DNS_UPSTREAM_QUERIES, &[], det, dns.upstream_queries);
    m.add_counter(names::DNS_SERVFAIL, &[], det, dns.servfail);
    m.add_counter(names::DNS_TCP_RETRIES, &[], det, dns.tcp_retries);
    m.set_gauge(names::DNS_CACHE_ANSWERS, &[], det, dns.cache_answers as i64);
    m.set_gauge(
        names::DNS_CACHE_NXDOMAINS,
        &[],
        det,
        dns.cache_nxdomains as i64,
    );
    m.set_gauge(names::DNS_CACHE_CUTS, &[], det, dns.cache_cuts as i64);
    if let Some(t) = trace {
        m.add_counter(names::TRACE_CAPTURED, &[], det, t.len() as u64);
        m.add_counter(names::TRACE_EVICTED, &[], det, t.evicted);
    }
    m
}

/// Bucket bounds for the log-entry arrival histogram: hours of sim time
/// since scan start (inclusive upper edges; one overflow bucket beyond).
pub const LOG_HOUR_BOUNDS: [u64; 8] = [1, 2, 3, 4, 6, 8, 12, 24];

/// The deterministic aggregate, built from **merged** run artifacts only.
///
/// `probe_drops` is the merged engine drop breakdown, passed only for a
/// *loss-free* run (`link_loss == 0`): with no stochastic link faults,
/// every drop traces to shard-partitioned probe traffic (DSAV filtering
/// and friends) and the merged breakdown is shard-count-invariant. With
/// loss enabled, pass `None` — drops then surface only through the
/// layout-class shard registries.
pub fn stable_aggregate(
    entries: &[QueryLogEntry],
    scanner: &ScannerStats,
    responses: &[(SimTime, IpAddr, RCode)],
    dns: &DnsTotals,
    world: &World,
    targets: &TargetSet,
    probe_drops: Option<&NetCounters>,
) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    let det = Det::Stable;
    if let Some(c) = probe_drops {
        for (reason, n) in &c.drops {
            m.add_counter(names::NET_DROP, &[("reason", &reason.to_string())], det, *n);
        }
    }
    // Scanner activity (merged ScannerStats — shard-partitioned by
    // construction).
    m.add_counter(names::SCANNER_SPOOFED, &[], det, scanner.spoofed_sent);
    m.add_counter(
        names::SCANNER_FOLLOWUP_SETS,
        &[],
        det,
        scanner.followup_sets,
    );
    m.add_counter(names::SCANNER_FOLLOWUPS, &[], det, scanner.followup_queries);
    m.add_counter(names::SCANNER_OPEN_PROBES, &[], det, scanner.open_probes);
    m.add_counter(names::SCANNER_TCP_PROBES, &[], det, scanner.tcp_probes);
    m.add_counter(names::SCANNER_HUMAN, &[], det, scanner.human_lookups);
    m.add_counter(
        names::SCANNER_RESPONSES,
        &[],
        det,
        scanner.responses_received,
    );
    m.add_counter(names::SCANNER_REFUSED, &[], det, scanner.refused_responses);
    m.add_counter(names::SCANNER_OPTED_OUT, &[], det, scanner.opted_out);
    m.add_counter(names::SCANNER_DEFERRALS, &[], det, scanner.outage_deferrals);
    for (_, _, rcode) in responses {
        m.add_counter(
            names::SCANNER_RESPONSE,
            &[("rcode", &rcode.to_string())],
            det,
            1,
        );
    }
    // The authoritative log (canonically merged).
    m.add_counter(names::LOG_ENTRIES, &[], det, entries.len() as u64);
    for e in entries {
        m.observe(
            names::LOG_ENTRY_HOURS,
            &[],
            det,
            &LOG_HOUR_BOUNDS,
            e.time.as_secs() / 3600,
        );
    }
    // Client-path resolver behaviour (cache hit/miss rates).
    m.add_counter(names::DNS_CLIENT_QUERIES, &[], det, dns.client_queries);
    m.add_counter(names::DNS_REFUSED, &[], det, dns.refused);
    m.add_counter(names::DNS_ANSWERED, &[], det, dns.answered);
    m.add_counter(names::DNS_CACHE_HITS, &[], det, dns.cache_hits);
    m.add_counter(names::DNS_CACHE_MISSES, &[], det, dns.cache_misses);
    // World shape (identical in every shard by construction).
    m.set_gauge(names::WORLD_HOSTS, &[], det, world.topo.host_count() as i64);
    m.set_gauge(
        names::WORLD_ASES,
        &[],
        det,
        world.measured_asns.len() as i64,
    );
    m.set_gauge(names::WORLD_TARGETS_V4, &[], det, targets.v4.len() as i64);
    m.set_gauge(names::WORLD_TARGETS_V6, &[], det, targets.v6.len() as i64);
    // Extraction hygiene: candidate rows rejected for breaking the
    // deduplicated-and-sorted contract. Deterministic, and 0 on healthy
    // worldgen output — surfaced so a broken producer fails loudly in the
    // golden/JSONL surface instead of silently shrinking the population.
    m.add_counter(
        names::TARGETS_EXCLUDED_UNSORTED,
        &[],
        det,
        targets.excluded_unsorted as u64,
    );
    // Chaos schedule shape (compiled once per world, shared by every
    // shard, so the counts are deterministic even though the *drops* the
    // faults cause are not part of the stable surface).
    if let Some(f) = &world.faults {
        for (kind, n) in f.event_counts() {
            m.add_counter(names::CHAOS_EVENTS, &[("kind", kind)], det, n);
        }
        m.add_counter(
            names::CHAOS_EVENTS_ENABLED,
            &[],
            det,
            f.enabled_ids().len() as u64,
        );
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_totals_merge_sums_fieldwise() {
        let mut a = DnsTotals {
            client_queries: 5,
            cache_hits: 2,
            cache_misses: 3,
            upstream_queries: 9,
            resolvers: 4,
            ..DnsTotals::default()
        };
        a.merge(DnsTotals {
            client_queries: 7,
            cache_hits: 1,
            cache_misses: 6,
            cache_cuts: 10,
            resolvers: 4,
            ..DnsTotals::default()
        });
        assert_eq!(a.client_queries, 12);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_misses, 9);
        assert_eq!(a.upstream_queries, 9);
        assert_eq!(a.cache_cuts, 10);
        assert_eq!(a.resolvers, 8);
    }

    #[test]
    fn shard_registry_is_layout_class_only() {
        let mut c = NetCounters {
            sent: 10,
            delivered: 8,
            ..NetCounters::default()
        };
        c.drop(bcd_netsim::DropReason::Dsav);
        let reg = shard_registry(
            &c,
            123,
            &DnsTotals::default(),
            &ScannerStats::default(),
            None,
        );
        assert_eq!(reg.iter_class(Det::Stable).count(), 0);
        assert_eq!(reg.counter(names::NET_SENT, &[]), 10);
        assert_eq!(
            reg.counter(names::NET_DROP, &[("reason", "dsav-ingress")]),
            1
        );
        assert_eq!(reg.counter(names::ENGINE_EVENTS, &[]), 123);
    }
}
