//! Administrator outreach planning — §5.2.1's disclosure methodology and
//! §6's "individual reach-out" plan, as code.
//!
//! For resolvers with no source-port randomization, the paper located
//! contacts by reverse (PTR) lookup of each resolver address and reading
//! the SOA RNAME of the resulting domain, then sampled 40 administrators at
//! random — half from resolvers pinned to port 53 and half from resolvers
//! on an unprivileged port — plus 3 prior acquaintances (43 total, covering
//! 53 resolvers). [`plan_outreach`] reproduces that sampling over a
//! [`PortReport`]'s zero-range census.

use crate::analysis::ports::PortReport;
use bcd_dnswire::Name;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use std::net::IpAddr;

/// One planned contact.
#[derive(Debug, Clone)]
pub struct Contact {
    /// The vulnerable resolver.
    pub resolver: IpAddr,
    /// Its fixed source port.
    pub port: u16,
    /// The PTR name to resolve for the contact domain (§5.2.1 step 1).
    pub ptr_name: Name,
    /// Sampled from the port-53 stratum (vs the unprivileged stratum).
    pub port53_stratum: bool,
}

/// The outreach plan.
#[derive(Debug, Default)]
pub struct OutreachPlan {
    pub contacts: Vec<Contact>,
    /// Zero-range resolvers in the port-53 stratum (population).
    pub port53_population: usize,
    /// Zero-range resolvers in the unprivileged stratum.
    pub unprivileged_population: usize,
}

/// Sample `per_stratum` contacts from each stratum (the paper used 20+20,
/// then added 3 acquaintances out of band).
pub fn plan_outreach(ports: &PortReport, per_stratum: usize, rng: &mut ChaCha8Rng) -> OutreachPlan {
    let mut port53: Vec<(IpAddr, u16)> = Vec::new();
    let mut unprivileged: Vec<(IpAddr, u16)> = Vec::new();
    for obs in ports.observations.iter().filter(|o| o.range == 0) {
        let port = obs.ports[0];
        if port == 53 {
            port53.push((obs.addr, port));
        } else if port > 1_023 {
            unprivileged.push((obs.addr, port));
        }
    }
    let mut plan = OutreachPlan {
        contacts: Vec::new(),
        port53_population: port53.len(),
        unprivileged_population: unprivileged.len(),
    };
    port53.shuffle(rng);
    unprivileged.shuffle(rng);
    for (stratum, is53) in [(&port53, true), (&unprivileged, false)] {
        for (addr, port) in stratum.iter().take(per_stratum) {
            plan.contacts.push(Contact {
                resolver: *addr,
                port: *port,
                ptr_name: Name::reverse_ptr(*addr),
                port53_stratum: is53,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ports::{BandCutoffs, PortObservation};
    use bcd_netsim::Asn;
    use bcd_osmodel::P0fClass;
    use rand::SeedableRng;

    fn obs(addr: &str, port: u16) -> PortObservation {
        PortObservation {
            addr: addr.parse().unwrap(),
            asn: Asn(1),
            ports: vec![port; 10],
            range: 0,
            raw_range: 0,
            adjusted: false,
            open: false,
            p0f: P0fClass::Unknown,
        }
    }

    fn report(observations: Vec<PortObservation>) -> PortReport {
        PortReport {
            observations,
            insufficient: 0,
            zero: Default::default(),
            low: Default::default(),
            cutoffs: BandCutoffs::derive(),
            bands: Vec::new(),
        }
    }

    #[test]
    fn samples_both_strata() {
        let mut observations = Vec::new();
        for i in 0..30 {
            observations.push(obs(&format!("17.0.0.{i}"), 53));
        }
        for i in 0..30 {
            observations.push(obs(&format!("17.0.1.{i}"), 32_768));
        }
        let ports = report(observations);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let plan = plan_outreach(&ports, 20, &mut rng);
        assert_eq!(plan.port53_population, 30);
        assert_eq!(plan.unprivileged_population, 30);
        assert_eq!(plan.contacts.len(), 40);
        assert_eq!(
            plan.contacts.iter().filter(|c| c.port53_stratum).count(),
            20
        );
        // PTR names are correct reverse forms.
        let c = plan
            .contacts
            .iter()
            .find(|c| c.resolver.to_string() == "17.0.0.5")
            .or_else(|| plan.contacts.first());
        let c = c.unwrap();
        assert!(c.ptr_name.to_string().ends_with(".in-addr.arpa"));
        // No duplicate resolvers in the plan.
        let unique: std::collections::HashSet<IpAddr> =
            plan.contacts.iter().map(|c| c.resolver).collect();
        assert_eq!(unique.len(), plan.contacts.len());
    }

    #[test]
    fn small_population_takes_everyone() {
        let ports = report(vec![obs("17.0.0.1", 53), obs("17.0.0.2", 40_000)]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let plan = plan_outreach(&ports, 20, &mut rng);
        assert_eq!(plan.contacts.len(), 2);
    }

    #[test]
    fn privileged_non53_ports_excluded() {
        // A resolver pinned to e.g. port 123 fits neither stratum (the
        // paper sampled "port 53" and "an unprivileged source port").
        let ports = report(vec![obs("17.0.0.1", 123)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let plan = plan_outreach(&ports, 20, &mut rng);
        assert!(plan.contacts.is_empty());
        assert_eq!(plan.port53_population, 0);
        assert_eq!(plan.unprivileged_population, 0);
    }
}
