//! The experiment query-name codec (§3.3).
//!
//! Every probe query is for `ts.src.dst.asn.kw.<suffix>` where
//!
//! * `ts` — send timestamp (simulated nanoseconds, label `t<ns>`): makes
//!   every name globally unique (never a cache hit) and lets the analysis
//!   compute a query's *lifetime* (§3.6.3),
//! * `src` — the spoofed source address (label `s<addr>` with `-`
//!   separators),
//! * `dst` — the target address (`d<addr>`),
//! * `asn` — the target's ASN (`a<asn>`),
//! * `kw` — the experiment keyword,
//! * `<suffix>` — one of the experiment zones: the main `dns-lab.org`
//!   (reachability), `f4.`/`f6.` (IPv4-/IPv6-only follow-ups), or `tcp.`
//!   (the TC=1 zone forcing DNS-over-TCP).
//!
//! A query observed at the authoritative servers that carries all five
//! labels decodes to an [`ExperimentTag`]; queries cut short by QNAME
//! minimization decode to [`Decoded::Partial`] (§3.6.4).

use bcd_dnswire::Name;
use bcd_netsim::SimTime;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Which experiment zone a name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuffixKind {
    /// `dns-lab.org` — the initial reachability probes.
    Main,
    /// `f4.dns-lab.org` — delegated with IPv4-only glue.
    F4,
    /// `f6.dns-lab.org` — delegated with IPv6-only glue.
    F6,
    /// `tcp.dns-lab.org` — answers UDP with TC=1.
    Tcp,
}

/// The decoded identity of a fully-labelled experiment query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentTag {
    /// When the probe was sent.
    pub ts: SimTime,
    /// The spoofed source address used.
    pub src: IpAddr,
    /// The target address.
    pub dst: IpAddr,
    /// The target's ASN (as resolved at planning time).
    pub asn: u32,
    pub suffix: SuffixKind,
}

/// Outcome of decoding an authoritative-side query name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// All five labels present.
    Full(ExperimentTag),
    /// Under an experiment zone but with fewer labels — the footprint of a
    /// QNAME-minimizing resolver that halted on NXDOMAIN (§3.6.4).
    Partial { suffix: SuffixKind, labels: usize },
    /// Not an experiment name.
    Foreign,
}

/// Encoder/decoder bound to the experiment's zones and keyword.
#[derive(Debug, Clone)]
pub struct QnameCodec {
    kw: String,
    main: Name,
    f4: Name,
    f6: Name,
    tcp: Name,
}

fn encode_addr(ip: IpAddr) -> String {
    match ip {
        IpAddr::V4(a) => {
            let o = a.octets();
            format!("s{}-{}-{}-{}", o[0], o[1], o[2], o[3])
        }
        IpAddr::V6(a) => {
            let s = a.segments();
            format!(
                "s{:x}-{:x}-{:x}-{:x}-{:x}-{:x}-{:x}-{:x}",
                s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]
            )
        }
    }
}

fn decode_addr(label: &[u8]) -> Option<IpAddr> {
    let text = std::str::from_utf8(label).ok()?;
    let text = text.strip_prefix(['s', 'd'])?;
    let parts: Vec<&str> = text.split('-').collect();
    match parts.len() {
        4 => {
            let mut o = [0u8; 4];
            for (i, p) in parts.iter().enumerate() {
                o[i] = p.parse().ok()?;
            }
            Some(IpAddr::V4(Ipv4Addr::from(o)))
        }
        8 => {
            let mut s = [0u16; 8];
            for (i, p) in parts.iter().enumerate() {
                s[i] = u16::from_str_radix(p, 16).ok()?;
            }
            Some(IpAddr::V6(Ipv6Addr::from(s)))
        }
        _ => None,
    }
}

impl QnameCodec {
    /// A codec for the experiment zones rooted at `apex` (e.g.
    /// `dns-lab.org`) with keyword `kw`.
    pub fn new(apex: &Name, kw: &str) -> QnameCodec {
        QnameCodec {
            kw: kw.to_string(),
            main: apex.clone(),
            f4: apex.child("f4").unwrap(),
            f6: apex.child("f6").unwrap(),
            tcp: apex.child("tcp").unwrap(),
        }
    }

    /// The zone apex for a suffix kind.
    pub fn suffix_apex(&self, kind: SuffixKind) -> &Name {
        match kind {
            SuffixKind::Main => &self.main,
            SuffixKind::F4 => &self.f4,
            SuffixKind::F6 => &self.f6,
            SuffixKind::Tcp => &self.tcp,
        }
    }

    /// Build the probe name.
    pub fn encode(
        &self,
        ts: SimTime,
        src: IpAddr,
        dst: IpAddr,
        asn: u32,
        suffix: SuffixKind,
    ) -> Name {
        let apex = self.suffix_apex(suffix);
        let mut name = apex.child(self.kw.as_bytes()).expect("kw label");
        name = name.child(format!("a{asn}").as_bytes()).expect("asn label");
        name = name
            .child(encode_addr(dst).replacen('s', "d", 1).as_bytes())
            .expect("dst label");
        name = name.child(encode_addr(src).as_bytes()).expect("src label");
        name = name
            .child(format!("t{}", ts.as_nanos()).as_bytes())
            .expect("ts label");
        name
    }

    /// Decode an observed query name.
    pub fn decode(&self, name: &Name) -> Decoded {
        // Longest suffix match among the four zones (tcp/f4/f6 are below
        // main, so check them first).
        let (suffix, apex) = if name.is_subdomain_of(&self.f4) {
            (SuffixKind::F4, &self.f4)
        } else if name.is_subdomain_of(&self.f6) {
            (SuffixKind::F6, &self.f6)
        } else if name.is_subdomain_of(&self.tcp) {
            (SuffixKind::Tcp, &self.tcp)
        } else if name.is_subdomain_of(&self.main) {
            (SuffixKind::Main, &self.main)
        } else {
            return Decoded::Foreign;
        };
        let extra = name.label_count() - apex.label_count();
        if extra < 5 {
            return Decoded::Partial {
                suffix,
                labels: extra,
            };
        }
        // Labels, leftmost first: ts, src, dst, asn, kw, (apex...).
        let labels: Vec<&[u8]> = name.labels().collect();
        let parse = || -> Option<ExperimentTag> {
            let skip = extra - 5; // tolerate junk labels prepended by others
            let ts_label = std::str::from_utf8(labels[skip]).ok()?;
            let ts = SimTime::from_nanos(ts_label.strip_prefix('t')?.parse().ok()?);
            let src = decode_addr(labels[skip + 1])?;
            let dst = decode_addr(labels[skip + 2])?;
            let asn_label = std::str::from_utf8(labels[skip + 3]).ok()?;
            let asn: u32 = asn_label.strip_prefix('a')?.parse().ok()?;
            let kw = std::str::from_utf8(labels[skip + 4]).ok()?;
            if !kw.eq_ignore_ascii_case(&self.kw) {
                return None;
            }
            Some(ExperimentTag {
                ts,
                src,
                dst,
                asn,
                suffix,
            })
        };
        match parse() {
            Some(tag) => Decoded::Full(tag),
            None => Decoded::Partial {
                suffix,
                labels: extra,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> QnameCodec {
        QnameCodec::new(&"dns-lab.org".parse().unwrap(), "x7")
    }

    #[test]
    fn round_trip_v4() {
        let c = codec();
        let ts = SimTime::from_nanos(123_456_789_000);
        let src: IpAddr = "10.1.2.3".parse().unwrap();
        let dst: IpAddr = "203.0.113.77".parse().unwrap();
        let name = c.encode(ts, src, dst, 64_500, SuffixKind::Main);
        assert_eq!(
            name.to_string(),
            "t123456789000.s10-1-2-3.d203-0-113-77.a64500.x7.dns-lab.org"
        );
        match c.decode(&name) {
            Decoded::Full(tag) => {
                assert_eq!(tag.ts, ts);
                assert_eq!(tag.src, src);
                assert_eq!(tag.dst, dst);
                assert_eq!(tag.asn, 64_500);
                assert_eq!(tag.suffix, SuffixKind::Main);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_trip_v6_and_suffixes() {
        let c = codec();
        let src: IpAddr = "2001:db8::1".parse().unwrap();
        let dst: IpAddr = "2600:1:2:3::42".parse().unwrap();
        for suffix in [
            SuffixKind::F4,
            SuffixKind::F6,
            SuffixKind::Tcp,
            SuffixKind::Main,
        ] {
            let name = c.encode(SimTime::from_secs(9), src, dst, 7, suffix);
            match c.decode(&name) {
                Decoded::Full(tag) => {
                    assert_eq!(tag.src, src);
                    assert_eq!(tag.dst, dst);
                    assert_eq!(tag.suffix, suffix);
                }
                other => panic!("{suffix:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn qmin_partials_are_detected() {
        let c = codec();
        // What a QNAME-minimizing resolver asks first: kw.dns-lab.org.
        let partial: Name = "x7.dns-lab.org".parse().unwrap();
        assert_eq!(
            c.decode(&partial),
            Decoded::Partial {
                suffix: SuffixKind::Main,
                labels: 1
            }
        );
        let deeper: Name = "a64500.x7.dns-lab.org".parse().unwrap();
        assert_eq!(
            c.decode(&deeper),
            Decoded::Partial {
                suffix: SuffixKind::Main,
                labels: 2
            }
        );
        // The apex itself.
        assert_eq!(
            c.decode(&"dns-lab.org".parse().unwrap()),
            Decoded::Partial {
                suffix: SuffixKind::Main,
                labels: 0
            }
        );
    }

    #[test]
    fn foreign_names_are_rejected() {
        let c = codec();
        assert_eq!(
            c.decode(&"www.example.com".parse().unwrap()),
            Decoded::Foreign
        );
        assert_eq!(c.decode(&"dns-lab.com".parse().unwrap()), Decoded::Foreign);
        // Deceptively similar but not a subdomain.
        assert_eq!(c.decode(&"xdns-lab.org".parse().unwrap()), Decoded::Foreign);
    }

    #[test]
    fn wrong_keyword_degrades_to_partial() {
        let c = codec();
        let name: Name = "t1.s10-0-0-1.d10-0-0-2.a5.other.dns-lab.org"
            .parse()
            .unwrap();
        assert!(matches!(c.decode(&name), Decoded::Partial { .. }));
    }

    #[test]
    fn malformed_labels_degrade_to_partial() {
        let c = codec();
        let name: Name = "bogus.s10-0-0-1.d10-0-0-2.a5.x7.dns-lab.org"
            .parse()
            .unwrap();
        assert!(matches!(c.decode(&name), Decoded::Partial { .. }));
        let bad_ip: Name = "t1.s10-0-0.d10-0-0-2.a5.x7.dns-lab.org".parse().unwrap();
        assert!(matches!(c.decode(&bad_ip), Decoded::Partial { .. }));
    }

    #[test]
    fn f4_vs_main_disambiguation() {
        let c = codec();
        let src: IpAddr = "10.0.0.1".parse().unwrap();
        let dst: IpAddr = "10.0.0.2".parse().unwrap();
        let f4_name = c.encode(SimTime::ZERO, src, dst, 1, SuffixKind::F4);
        // The f4 name is also under dns-lab.org; decoding must pick F4.
        match c.decode(&f4_name) {
            Decoded::Full(tag) => assert_eq!(tag.suffix, SuffixKind::F4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn labels_respect_dns_limits() {
        let c = codec();
        let name = c.encode(
            SimTime::from_nanos(u64::MAX),
            "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff".parse().unwrap(),
            "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff".parse().unwrap(),
            u32::MAX,
            SuffixKind::Tcp,
        );
        assert!(name.wire_len() <= 255);
        for l in name.labels() {
            assert!(l.len() <= 63);
        }
    }
}
