//! Plain-text rendering of every table and figure in the paper's
//! evaluation. Used by the `bcd-bench` regeneration binaries and the
//! examples; EXPERIMENTS.md records these outputs next to the paper's
//! numbers.

use crate::analysis::categories::CategoryReport;
use crate::analysis::country::CountryReport;
use crate::analysis::forwarding::ForwardingReport;
use crate::analysis::local::LocalInfiltrationReport;
use crate::analysis::openclosed::OpenClosedReport;
use crate::analysis::passive::PassiveReport;
use crate::analysis::ports::PortReport;
use crate::analysis::qmin::QminReport;
use crate::analysis::reachability::{MiddleboxReport, Reachability};
use crate::lab::{LabPortResult, StackRow};
use crate::sources::SourceCategory;
use crate::targets::TargetSet;
use bcd_stats::{Beta, StackedHistogram};
use std::fmt::Write;

/// Engine traffic accounting: merged packet totals and the per-reason
/// drop breakdown. Not a paper artifact — a sanity surface for survey runs
/// (`bcd-bench all`, the `dsav_survey` example), answering "where did the
/// probes go?" at a glance. Deliberately omits the engine event counter:
/// that is per-engine bookkeeping that varies with the shard layout, and
/// this render goes to stdout, which must stay byte-identical across
/// `BCD_SHARDS` (events appear in the stderr run report instead).
pub fn render_engine_totals(counters: &bcd_netsim::NetCounters) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== engine traffic totals ==");
    let _ = writeln!(
        s,
        "packets: {} sent, {} delivered, {} duplicated, {} intercepted",
        counters.sent, counters.delivered, counters.duplicated, counters.intercepted
    );
    let total: u64 = counters.drops.values().sum();
    if total == 0 {
        let _ = writeln!(s, "drops: none");
    } else {
        let _ = writeln!(s, "drops by reason ({total} total):");
        for (reason, n) in &counters.drops {
            let _ = writeln!(
                s,
                "  {:<22} {n:>10}  ({:.1}%)",
                reason.to_string(),
                100.0 * *n as f64 / total as f64
            );
        }
    }
    s
}

/// `n (p%)` formatting helper.
pub fn pct(n: usize, d: usize) -> String {
    if d == 0 {
        format!("{n} (-)")
    } else {
        format!("{n} ({:.1}%)", 100.0 * n as f64 / d as f64)
    }
}

/// §4 headline numbers.
pub fn render_headline(targets: &TargetSet, reach: &Reachability) -> String {
    let mut s = String::new();
    let v4_total = targets.v4.len();
    let v6_total = targets.v6.len();
    let v4_reached = reach.reached_count(false);
    let v6_reached = reach.reached_count(true);
    let v4_asns = targets.asns_v4();
    let v6_asns = targets.asns_v6();
    let v4_asns_reached = reach.reached_asns(false);
    let v6_asns_reached = reach.reached_asns(true);
    writeln!(s, "== DSAV survey headline (paper §4) ==").unwrap();
    writeln!(
        s,
        "IPv4 targets reached : {} of {} ({:.1}%)   [paper: 519,447 of 11,204,889 = 4.6%]",
        v4_reached,
        v4_total,
        100.0 * v4_reached as f64 / v4_total.max(1) as f64
    )
    .unwrap();
    writeln!(
        s,
        "IPv6 targets reached : {} of {} ({:.1}%)   [paper: 49,008 of 784,777 = 6.2%]",
        v6_reached,
        v6_total,
        100.0 * v6_reached as f64 / v6_total.max(1) as f64
    )
    .unwrap();
    writeln!(
        s,
        "IPv4 ASes lacking DSAV: {} of {} ({:.1}%)  [paper: 26,206 of 53,922 = 49%]",
        v4_asns_reached.len(),
        v4_asns.len(),
        100.0 * v4_asns_reached.len() as f64 / v4_asns.len().max(1) as f64
    )
    .unwrap();
    writeln!(
        s,
        "IPv6 ASes lacking DSAV: {} of {} ({:.1}%)  [paper: 3,952 of 7,904 = 50%]",
        v6_asns_reached.len(),
        v6_asns.len(),
        100.0 * v6_asns_reached.len() as f64 / v6_asns.len().max(1) as f64
    )
    .unwrap();
    s
}

/// Table 1: top countries by AS count.
pub fn render_table1(report: &CountryReport, top: usize) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "== Table 1: DSAV results, top {top} countries by AS count =="
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>8} {:>18} {:>10} {:>18}",
        "Country", "ASes", "Reachable", "IPs", "Reachable"
    )
    .unwrap();
    for (country, row) in report.table1(top) {
        writeln!(
            s,
            "{:<22} {:>8} {:>18} {:>10} {:>18}",
            country.name(),
            row.ases_total.len(),
            pct(row.ases_reachable.len(), row.ases_total.len()),
            row.targets_total,
            pct(row.targets_reachable, row.targets_total),
        )
        .unwrap();
    }
    s
}

/// Table 2: top countries by IP reachability.
pub fn render_table2(report: &CountryReport, top: usize) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "== Table 2: DSAV results, top {top} countries by reachable-IP percentage =="
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>8} {:>18} {:>10} {:>18}",
        "Country", "ASes", "Reachable", "IPs", "Reachable"
    )
    .unwrap();
    for (country, row) in report.table2(top) {
        writeln!(
            s,
            "{:<22} {:>8} {:>18} {:>10} {:>18}",
            country.name(),
            row.ases_total.len(),
            pct(row.ases_reachable.len(), row.ases_total.len()),
            row.targets_total,
            pct(row.targets_reachable, row.targets_total),
        )
        .unwrap();
    }
    s
}

/// Table 3: source-category effectiveness.
pub fn render_table3(report: &CategoryReport) -> String {
    let mut s = String::new();
    writeln!(s, "== Table 3: spoofed-source category effectiveness ==").unwrap();
    writeln!(
        s,
        "{:<14} | {:>10} {:>8} {:>10} {:>8} | {:>10} {:>8} {:>10} {:>8}",
        "", "v4 incl", "v4 ASN", "v6 incl", "v6 ASN", "v4 excl", "v4 ASN", "v6 excl", "v6 ASN"
    )
    .unwrap();
    writeln!(
        s,
        "{:<14} | {:>10} {:>8} {:>10} {:>8} |",
        "All Reachable",
        report.reached_addrs_v4,
        report.reached_asns_v4,
        report.reached_addrs_v6,
        report.reached_asns_v6
    )
    .unwrap();
    for cat in SourceCategory::ALL {
        let r4 = report.row(false, cat);
        let r6 = report.row(true, cat);
        writeln!(
            s,
            "{:<14} | {:>10} {:>8} {:>10} {:>8} | {:>10} {:>8} {:>10} {:>8}",
            cat.to_string(),
            r4.inclusive_addrs,
            r4.inclusive_asns,
            r6.inclusive_addrs,
            r6.inclusive_asns,
            r4.exclusive_addrs,
            r4.exclusive_asns,
            r6.exclusive_addrs,
            r6.exclusive_asns,
        )
        .unwrap();
    }
    writeln!(
        s,
        "median working sources: v4 {} (paper 3), v6 {} (paper 2); >50 sources: v4 {:.0}% (paper 16%), v6 {:.0}% (paper 9%)",
        report.median_sources_v4,
        report.median_sources_v6,
        100.0 * report.many_sources_v4,
        100.0 * report.many_sources_v6
    )
    .unwrap();
    s
}

/// Table 4: port-range bands with open/closed and p0f columns.
pub fn render_table4(report: &PortReport) -> String {
    let mut s = String::new();
    writeln!(s, "== Table 4: reachable targets by source-port range ==").unwrap();
    writeln!(
        s,
        "{:<32} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Range (OS)", "Total", "Open", "Closed", "p0f Win", "p0f Lin"
    )
    .unwrap();
    for band in &report.bands {
        let label = if band.label.is_empty() {
            format!("{}-{}", band.lo, band.hi)
        } else {
            format!("{}-{} ({})", band.lo, band.hi, band.label)
        };
        writeln!(
            s,
            "{:<32} {:>8} {:>8} {:>8} {:>8} {:>8}",
            label, band.total, band.open, band.closed, band.p0f_windows, band.p0f_linux
        )
        .unwrap();
    }
    writeln!(
        s,
        "zero-range: {} resolvers ({} open / {} closed), port 53 = {}, 32768 = {}, 32769 = {}; {} ASes, {} with a closed instance",
        report.zero.count,
        report.zero.open,
        report.zero.closed,
        report.zero.port53,
        report.zero.port32768,
        report.zero.port32769,
        report.zero.asns.len(),
        report.zero.asns_with_closed.len(),
    )
    .unwrap();
    writeln!(
        s,
        "1-200 range: {} resolvers, {} strictly increasing ({} wrapped), {} with <=7 unique ports",
        report.low.count, report.low.strictly_increasing, report.low.wrapped, report.low.few_unique
    )
    .unwrap();
    writeln!(
        s,
        "derived cutoffs: windows {}..{}, freebsd-lo {}, freebsd/linux {}, linux/full {}  [paper: 941..2488, 6125, 16331, 28222]",
        report.cutoffs.windows_lo,
        report.cutoffs.windows_hi,
        report.cutoffs.freebsd_lo,
        report.cutoffs.freebsd_linux,
        report.cutoffs.linux_full
    )
    .unwrap();
    s
}

/// Table 5: lab port-allocation behaviours.
pub fn render_table5(results: &[LabPortResult]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "== Table 5: default source-port allocation by DNS software =="
    )
    .unwrap();
    writeln!(
        s,
        "{:<48} {:>8} {:>8} {:>8} | expected default",
        "Software", "queries", "unique", "span"
    )
    .unwrap();
    for r in results {
        writeln!(
            s,
            "{:<48} {:>8} {:>8} {:>8} | {}",
            r.software.to_string(),
            r.ports.len(),
            r.unique,
            r.span(),
            r.software.pool_description()
        )
        .unwrap();
    }
    s
}

/// Table 6: OS acceptance matrix.
pub fn render_table6(rows: &[StackRow]) -> String {
    let mut s = String::new();
    writeln!(s, "== Table 6: OS acceptance of spoofed-source packets ==").unwrap();
    writeln!(
        s,
        "{:<28} {:>7} {:>7} {:>7} {:>7}",
        "OS", "DS v4", "LB v4", "DS v6", "LB v6"
    )
    .unwrap();
    let dot = |b: bool| if b { "yes" } else { "-" };
    for r in rows {
        writeln!(
            s,
            "{:<28} {:>7} {:>7} {:>7} {:>7}",
            r.os.to_string(),
            dot(r.ds_v4),
            dot(r.lb_v4),
            dot(r.ds_v6),
            dot(r.lb_v6)
        )
        .unwrap();
    }
    s
}

/// Figure 2: stacked (open/closed) histograms of port ranges, full scale
/// and the 0–3,000 zoom.
pub fn render_figure2(report: &PortReport) -> String {
    let mut full = StackedHistogram::new(2_048);
    let mut zoom = StackedHistogram::new(100);
    for (range, open, _) in report.figure_points() {
        let cat = if open { "open" } else { "closed" };
        full.add(range, cat);
        if range <= 3_000 {
            zoom.add(range, cat);
        }
    }
    let mut s = String::new();
    writeln!(
        s,
        "== Figure 2: source-port range distribution (open/closed) =="
    )
    .unwrap();
    writeln!(s, "-- full scale (bin 2048) --").unwrap();
    s.push_str(&full.render(40));
    writeln!(s, "-- zoom 0..3000 (bin 100) --").unwrap();
    s.push_str(&zoom.render(40));
    s
}

/// Figure 3a: lab sample ranges with the Beta(9,2) model peaks.
pub fn render_figure3a(samples: &[(&'static str, u32, Vec<u32>)]) -> String {
    let beta = Beta::range_model(10);
    let mut s = String::new();
    writeln!(
        s,
        "== Figure 3a: lab 10-query sample ranges vs Beta(9,2) model =="
    )
    .unwrap();
    for (label, pool, ranges) in samples {
        let mut hist = StackedHistogram::new(2_048);
        for &r in ranges {
            hist.add(r, label);
        }
        let mean = ranges.iter().map(|&r| r as f64).sum::<f64>() / ranges.len().max(1) as f64;
        let model_mean = beta.mean() * *pool as f64;
        let model_mode = beta.mode() * *pool as f64;
        writeln!(
            s,
            "-- {label} (pool {pool}): {} samples, mean {mean:.0} (model mean {model_mean:.0}, mode {model_mode:.0}) --",
            ranges.len()
        )
        .unwrap();
        s.push_str(&hist.render(40));
    }
    s
}

/// Figure 3b: field ranges stacked by p0f class, with Beta model peaks.
pub fn render_figure3b(report: &PortReport) -> String {
    let beta = Beta::range_model(10);
    let mut full = StackedHistogram::new(2_048);
    let mut zoom = StackedHistogram::new(100);
    for (range, _, p0f) in report.figure_points() {
        let cat: &'static str = match p0f {
            bcd_osmodel::P0fClass::Windows => "win",
            bcd_osmodel::P0fClass::Linux => "lin",
            bcd_osmodel::P0fClass::FreeBsd => "bsd",
            bcd_osmodel::P0fClass::BaiduSpider => "baidu",
            bcd_osmodel::P0fClass::Unknown => "unk",
        };
        full.add(range, cat);
        if range <= 3_000 {
            zoom.add(range, cat);
        }
    }
    let mut s = String::new();
    writeln!(
        s,
        "== Figure 3b: field port ranges by p0f class, Beta(9,2) peaks =="
    )
    .unwrap();
    for (label, pool) in [
        ("Windows DNS", 2_500u32),
        ("FreeBSD", 16_383),
        ("Linux", 28_232),
        ("Full Port Range", 64_511),
    ] {
        writeln!(
            s,
            "model peak for {label}: range ~{:.0} (pool {pool})",
            beta.mode() * pool as f64
        )
        .unwrap();
    }
    writeln!(s, "-- full scale (bin 2048) --").unwrap();
    s.push_str(&full.render(40));
    writeln!(s, "-- zoom 0..3000 (bin 100) --").unwrap();
    s.push_str(&zoom.render(40));
    s
}

/// §5.1 open/closed summary.
pub fn render_openclosed(report: &OpenClosedReport) -> String {
    let mut s = String::new();
    writeln!(s, "== §5.1: open vs closed resolvers ==").unwrap();
    writeln!(
        s,
        "closed: {}  open: {}  (open fraction {:.0}%; paper: 60%/40%)",
        report.closed.len(),
        report.open.len(),
        100.0 * report.open_fraction()
    )
    .unwrap();
    writeln!(
        s,
        "reachable ASes with >=1 closed resolver: {} of {} ({:.0}%; paper: 88%)",
        report.asns_with_closed.len(),
        report.reached_asns.len(),
        100.0 * report.closed_as_fraction()
    )
    .unwrap();
    s
}

/// §5.4 forwarding summary.
pub fn render_forwarding(report: &ForwardingReport) -> String {
    let mut s = String::new();
    writeln!(s, "== §5.4: direct vs forwarding resolvers ==").unwrap();
    writeln!(
        s,
        "IPv4: {} resolved; direct {} ({:.0}%), forwarded {} ({:.0}%), both {}  [paper: 53% direct]",
        report.resolved_v4(),
        report.direct_v4.len(),
        100.0 * report.direct_fraction_v4(),
        report.forwarded_v4.len(),
        100.0 * report.forwarded_v4.len() as f64 / report.resolved_v4().max(1) as f64,
        report.both_v4
    )
    .unwrap();
    writeln!(
        s,
        "IPv6: {} resolved; direct {} ({:.0}%), forwarded {} ({:.0}%), both {}  [paper: 85% direct]",
        report.resolved_v6(),
        report.direct_v6.len(),
        100.0 * report.direct_fraction_v6(),
        report.forwarded_v6.len(),
        100.0 * report.forwarded_v6.len() as f64 / report.resolved_v6().max(1) as f64,
        report.both_v6
    )
    .unwrap();
    s
}

/// §5.5 local infiltration summary.
pub fn render_local(report: &LocalInfiltrationReport) -> String {
    let mut s = String::new();
    writeln!(s, "== §5.5: local-system infiltration ==").unwrap();
    writeln!(
        s,
        "destination-as-source hits: {} (v4 {}, v6 {})  [paper: 123,592 total]",
        report.dst_as_src_total(),
        report.dst_as_src_v4.len(),
        report.dst_as_src_v6.len()
    )
    .unwrap();
    writeln!(
        s,
        "loopback hits: {} (v4 {}, v6 {})  [paper: 107 total — 1 v4, 106 v6]",
        report.loopback_total(),
        report.loopback_v4.len(),
        report.loopback_v6.len()
    )
    .unwrap();
    s
}

/// Cross-method validation: the AS-level agreement matrix between the
/// outbound survey and the inbound CRP scan, scored against the
/// generator's ground-truth SAV registry. Deterministic: sets are
/// `BTreeSet`s and only counts plus the first few ASN exemplars render.
pub fn render_agreement(m: &crate::analysis::agreement::AgreementMatrix) -> String {
    fn exemplars(set: &std::collections::BTreeSet<bcd_netsim::Asn>) -> String {
        if set.is_empty() {
            return String::new();
        }
        let head: Vec<String> = set.iter().take(5).map(|a| format!("AS{}", a.0)).collect();
        let more = if set.len() > 5 { ", ..." } else { "" };
        format!("  e.g. {}{}", head.join(", "), more)
    }
    let mut s = String::new();
    writeln!(
        s,
        "== cross-method validation: outbound survey vs inbound CRP scan =="
    )
    .unwrap();
    writeln!(
        s,
        "universe: {} ASes with >=1 scheduled target; agreement {:.1}%",
        m.universe,
        100.0 * m.agreement_rate()
    )
    .unwrap();
    for (label, set) in [
        ("agree-open   (both methods open)", &m.agree_open),
        ("agree-closed (both methods closed)", &m.agree_closed),
        ("method-A-only (outbound only)", &m.a_only),
        ("method-B-only (inbound only)", &m.b_only),
    ] {
        writeln!(s, "  {label:<36} {:>6}{}", set.len(), exemplars(set)).unwrap();
    }
    writeln!(s, "vs ground truth:").unwrap();
    for (label, set) in [
        ("false-open A", &m.false_open_a),
        ("false-closed A", &m.false_closed_a),
        ("false-open B", &m.false_open_b),
        ("false-closed B", &m.false_closed_b),
    ] {
        writeln!(s, "  {label:<36} {:>6}{}", set.len(), exemplars(set)).unwrap();
    }
    writeln!(
        s,
        "oracle match: {}",
        if m.is_exact() { "exact" } else { "divergent" }
    )
    .unwrap();
    s
}

/// §3.6 methodology summaries (lifetime, qmin, middlebox).
pub fn render_methodology(
    reach: &Reachability,
    qmin: &QminReport,
    middlebox: &MiddleboxReport,
) -> String {
    let mut s = String::new();
    writeln!(s, "== §3.6.3: lifetime (human-intervention) filter ==").unwrap();
    writeln!(
        s,
        "late entries discarded: {}; late-only targets: v4 {}, v6 {}; late-only ASes {} (rescued by on-time resolvers: {})",
        reach.lifetime.late_entries,
        reach.lifetime.excluded_addrs_v4,
        reach.lifetime.excluded_addrs_v6,
        reach.lifetime.excluded_asns.len(),
        reach.lifetime.rescued_asns.len(),
    )
    .unwrap();
    writeln!(s, "== §3.6.4: QNAME minimization ==").unwrap();
    writeln!(
        s,
        "qmin sources: {}; excluded (never sent full QNAME): {}; qmin ASNs {} of which still detected {} ({:.0}%; paper 98%)",
        qmin.qmin_sources,
        qmin.excluded_sources,
        qmin.qmin_asns.len(),
        qmin.asns_still_detected.len(),
        100.0 * qmin.detection_fraction()
    )
    .unwrap();
    writeln!(s, "== §3.6.1: middlebox attribution ==").unwrap();
    let total = middlebox.direct_asns.len()
        + middlebox.public_dns_only_asns.len()
        + middlebox.other_only_asns.len();
    writeln!(
        s,
        "reached ASes with direct in-AS source: {} of {} ({:.0}%; paper 86% v4); public-DNS-only: {}; other-only: {}",
        middlebox.direct_asns.len(),
        total,
        100.0 * middlebox.direct_asns.len() as f64 / total.max(1) as f64,
        middlebox.public_dns_only_asns.len(),
        middlebox.other_only_asns.len()
    )
    .unwrap();
    s
}

/// §5.2.2 passive comparison summary.
pub fn render_passive(report: &PassiveReport) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "== §5.2.2: passive (2018 DITL) comparison of zero-range resolvers =="
    )
    .unwrap();
    let t = report.total().max(1);
    writeln!(
        s,
        "fixed then: {} ({:.0}%; paper 51%)  varied then (regressed): {} ({:.0}%; paper 25%)  insufficient: {} ({:.0}%; paper 24%)",
        report.fixed_then,
        100.0 * report.fixed_then as f64 / t as f64,
        report.varied_then,
        100.0 * report.varied_then as f64 / t as f64,
        report.insufficient,
        100.0 * report.insufficient as f64 / t as f64,
    )
    .unwrap();
    s
}
