//! The measurement client (§3.4–§3.5).
//!
//! A single [`Scanner`] node:
//!
//! * walks the [`Schedule`], emitting spoofed-source DNS queries at their
//!   scheduled times (the spoof is literal: the packet's source address is
//!   the chosen category address; the vantage AS runs no OSAV),
//! * tails the shared authoritative [`bcd_dns::QueryLog`] "in real time" (a polling
//!   timer, like the paper's log monitoring) and, on the *first* observed
//!   hit for a target, fires the follow-up battery: 10 IPv4-only queries,
//!   10 IPv6-only queries, one non-spoofed open-resolver probe, and one
//!   TC-forced TCP probe (§3.5). Subsequent hits for the same target are
//!   logged but not re-probed,
//! * optionally injects §3.6.3 *human-intervention* noise: a fraction of
//!   probes get a delayed direct lookup of the same query name from an
//!   address inside the target AS — the curious-analyst queries whose long
//!   lifetime the analysis must filter out.

use crate::hash::{fnv1a, fnv1a_addr, FNV_OFFSET};
use crate::qname::{Decoded, QnameCodec, SuffixKind};
use crate::schedule::{Schedule, ScheduledQuery};
use crate::targets::TargetSet;
use bcd_dns::SharedLog;
use bcd_dnswire::{Message, MessageView, RCode, RType, WireWriter, MAX_NAME_WIRE_LEN};
use bcd_netsim::{Node, NodeCtx, Packet, Prefix, SimDuration, SimTime, Topology, Transport};
use std::collections::{BTreeMap, HashSet};
use std::net::IpAddr;
use std::sync::Arc;

const TOK_WALK: u64 = 0;
const TOK_POLL: u64 = 1;
const TOK_HUMAN: u64 = 2;

/// Deterministic per-probe uniform draw in `[0, 1)`.
///
/// Keyed on the probe's identity (scheduled time, source, target) plus a
/// seed-derived salt — *not* on any stream position — so the draw for a
/// given probe is identical no matter which shard emits it or in what
/// order. This is what keeps §3.6.3 human-noise injection shard-invariant.
pub(crate) fn probe_unit(salt: u64, q: &ScheduledQuery) -> f64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &salt.to_le_bytes());
    fnv1a(&mut h, &q.at.as_nanos().to_le_bytes());
    fnv1a_addr(&mut h, q.source);
    fnv1a_addr(&mut h, q.target);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Human-intervention noise model (§3.6.3).
#[derive(Debug, Clone, Copy)]
pub struct HumanNoise {
    /// Probability per spoofed probe of a later human lookup.
    pub probability: f64,
    /// Delay before the human resolves the logged name.
    pub delay: SimDuration,
}

/// Scanner configuration.
pub struct ScannerConfig {
    /// The scanner's real addresses (used for open-resolver probes and as
    /// the packet source of nothing else).
    pub v4: IpAddr,
    pub v6: IpAddr,
    pub codec: QnameCodec,
    /// This shard's slice of the schedule (compact SoA rows; target
    /// addresses and ASNs resolve through `targets`).
    pub schedule: Schedule,
    /// The shared target set — the schedule's `u32` target indices point
    /// into it. One `Arc` across all shards; no per-shard copies.
    pub targets: Arc<TargetSet>,
    /// The shared topology: follow-up ASN attribution goes through its LPM
    /// trie (`topo.routes().origin`), the same lookup extraction used, so
    /// no full-population `HashMap<IpAddr, u32>` is ever built.
    pub topo: Arc<Topology>,
    /// Log-tail poll interval ("real-time" monitoring granularity).
    pub poll_interval: SimDuration,
    pub log: SharedLog,
    /// Follow-up queries per family (the paper's 10).
    pub followups_per_family: usize,
    /// Lab authoritative server addresses (human-noise queries go straight
    /// here, in the matching family).
    pub lab_v4: IpAddr,
    pub lab_v6: IpAddr,
    pub human_noise: Option<HumanNoise>,
    /// Salt for the per-probe human-noise draw (seed-derived, identical
    /// across shards so the same probes attract human lookups in every
    /// sharding configuration).
    pub noise_salt: u64,
    /// §3.8 opt-outs: from `time` onward, no probes are sent to targets in
    /// `prefix` (the paper honoured five such requests mid-campaign).
    pub opt_outs: Vec<(SimTime, Prefix)>,
    /// §3.4 interruptions (the paper hit "several unexpected interruptions,
    /// including a power outage"): during `[start, start+len)` no probes
    /// leave; the schedule resumes afterwards so *every* prepared query is
    /// still issued — "albeit behind schedule".
    pub outages: Vec<(SimTime, SimDuration)>,
    /// Opt-in progress heartbeat (`BCD_PROGRESS=N`): `(every N probes,
    /// shard id)`. Emits one stderr line per interval; `None` (the
    /// default) costs a single untaken branch per probe.
    pub progress: Option<(u64, usize)>,
}

/// Counters for tests and reports.
#[derive(Debug, Default, Clone)]
pub struct ScannerStats {
    pub spoofed_sent: u64,
    pub followup_sets: u64,
    pub followup_queries: u64,
    pub open_probes: u64,
    pub tcp_probes: u64,
    pub human_lookups: u64,
    pub responses_received: u64,
    pub refused_responses: u64,
    /// Probes suppressed by §3.8 opt-outs.
    pub opted_out: u64,
    /// Walker wake-ups deferred by §3.4 outages.
    pub outage_deferrals: u64,
}

/// The scanner node.
pub struct Scanner {
    cfg: ScannerConfig,
    next_query: usize,
    log_cursor: usize,
    followed_up: HashSet<IpAddr>,
    human_queue: BTreeMap<SimTime, Vec<(bcd_dnswire::Name, IpAddr)>>,
    /// Reusable encode buffer: every probe is serialized here, then copied
    /// once into the packet's shared payload.
    scratch: WireWriter,
    /// Wall-clock start, for the heartbeat's rate/ETA estimate only.
    wall_start: std::time::Instant,
    /// Responses received at the scanner's real addresses:
    /// `(time, responder, rcode)`.
    pub responses: Vec<(SimTime, IpAddr, RCode)>,
    pub stats: ScannerStats,
}

impl Scanner {
    /// Create the node.
    pub fn new(cfg: ScannerConfig) -> Scanner {
        Scanner {
            cfg,
            next_query: 0,
            log_cursor: 0,
            followed_up: HashSet::new(),
            human_queue: BTreeMap::new(),
            scratch: WireWriter::new(),
            wall_start: std::time::Instant::now(),
            responses: Vec::new(),
            stats: ScannerStats::default(),
        }
    }

    /// Targets that have received their follow-up battery.
    pub fn followed_up(&self) -> &HashSet<IpAddr> {
        &self.followed_up
    }

    fn send_dns(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        src: IpAddr,
        dst: IpAddr,
        qname: bcd_dnswire::Name,
    ) {
        // Port and txid derive from the qname (which already encodes the
        // probe's identity — ts.src.dst.asn) rather than the node rng: a
        // sharded run's scanner only walks its own slice of the schedule,
        // so rng stream *position* is layout-dependent, and every packet
        // byte must not be (the flight recorder records them verbatim).
        let mut canon = [0u8; MAX_NAME_WIRE_LEN];
        let n = qname.canonical_into(&mut canon);
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &self.cfg.noise_salt.to_le_bytes());
        fnv1a(&mut h, &canon[..n]);
        fnv1a(&mut h, b"probe");
        let txid = (h >> 32) as u16;
        let sport = 20_000 + (h % 40_000) as u16;
        // Causal trace id: pure function of the qname, sampled per the
        // armed flight recorder's policy. The sampler sees the same
        // canonical bytes (trailing dot trimmed inside), so the
        // armed-but-unsampled path never Display-formats the name.
        let trace = if ctx.tracing() {
            ctx.sample_trace(std::str::from_utf8(&canon[..n]).unwrap_or("."))
        } else {
            0
        };
        let msg = Message::query(txid, qname, RType::A);
        msg.encode_into(&mut self.scratch);
        ctx.send(Packet::udp(src, dst, sport, 53, self.scratch.as_bytes()).with_trace(trace));
    }

    /// If `now` falls inside a configured outage, the time it ends.
    fn outage_end(&self, now: SimTime) -> Option<SimTime> {
        self.cfg
            .outages
            .iter()
            .filter(|(start, len)| now >= *start && now < *start + *len)
            .map(|(start, len)| *start + *len)
            .max()
    }

    fn emit_scheduled(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        // Powered off: nothing leaves; resume the walker when power returns.
        if let Some(end) = self.outage_end(now) {
            self.stats.outage_deferrals += 1;
            ctx.set_timer(end - now, TOK_WALK);
            return;
        }
        while self.next_query < self.cfg.schedule.len() {
            let i = self.next_query;
            let at = self.cfg.schedule.at(i);
            if at > now {
                ctx.set_timer(at - now, TOK_WALK);
                return;
            }
            self.next_query += 1;
            // Materialize the compact row: the target (address + ASN)
            // resolves through the shared TargetSet.
            let t = self
                .cfg
                .targets
                .get(self.cfg.schedule.target_index(i) as usize);
            let q = ScheduledQuery {
                at,
                target: t.addr,
                source: self.cfg.schedule.source(i, t.addr.is_ipv6()),
                category: self.cfg.schedule.category(i),
            };
            // §3.8: honour opt-out requests received before this probe.
            if self
                .cfg
                .opt_outs
                .iter()
                .any(|(t, p)| now >= *t && p.contains(q.target))
            {
                self.stats.opted_out += 1;
                continue;
            }
            let asn = t.asn.0;
            let qname = self
                .cfg
                .codec
                .encode(now, q.source, q.target, asn, SuffixKind::Main);
            self.stats.spoofed_sent += 1;
            if let Some((every, sid)) = self.cfg.progress {
                if self.stats.spoofed_sent.is_multiple_of(every) {
                    // Wall-clock throughput + ETA (display only; never
                    // feeds back into simulation state).
                    let total = self.cfg.schedule.len() as u64;
                    let elapsed = self.wall_start.elapsed().as_secs_f64();
                    let rate = if elapsed > 0.0 {
                        self.stats.spoofed_sent as f64 / elapsed
                    } else {
                        0.0
                    };
                    let eta = if rate > 0.0 {
                        format!("{:.0}s", (total - self.stats.spoofed_sent) as f64 / rate)
                    } else {
                        "?".to_string()
                    };
                    eprintln!(
                        "[bcd] shard {sid} [shard-run]: {}/{total} probes, {rate:.0} q/s, eta {eta}, sim t={now}",
                        self.stats.spoofed_sent,
                    );
                }
            }

            // §3.6.3: with small probability an IDS logs this probe and a
            // human later resolves the name from inside the target network.
            if let Some(h) = self.cfg.human_noise {
                if probe_unit(self.cfg.noise_salt, &q) < h.probability {
                    let admin: IpAddr =
                        Prefix::subprefix_of(q.target, if q.target.is_ipv6() { 64 } else { 24 })
                            .nth(199)
                            .unwrap();
                    let due = now + h.delay;
                    self.human_queue
                        .entry(due)
                        .or_default()
                        .push((qname.clone(), admin));
                    ctx.set_timer(h.delay, TOK_HUMAN);
                }
            }

            self.send_dns(ctx, q.source, q.target, qname);
        }
    }

    fn fire_followups(&mut self, ctx: &mut NodeCtx<'_>, src: IpAddr, dst: IpAddr) {
        let now = ctx.now();
        let asn = self.cfg.topo.routes().origin(dst).map_or(0, |a| a.0);
        self.stats.followup_sets += 1;
        let n = self.cfg.followups_per_family as u64;
        // 10 IPv4-only + 10 IPv6-only, each with a unique timestamp label
        // (nanosecond offsets keep names unique without altering lifetime).
        for i in 0..n {
            let name = self.cfg.codec.encode(
                now + SimDuration::from_nanos(i),
                src,
                dst,
                asn,
                SuffixKind::F4,
            );
            self.send_dns(ctx, src, dst, name);
            let name = self.cfg.codec.encode(
                now + SimDuration::from_nanos(n + i),
                src,
                dst,
                asn,
                SuffixKind::F6,
            );
            self.send_dns(ctx, src, dst, name);
            self.stats.followup_queries += 2;
        }
        // Open-resolver probe: NOT spoofed — our real source address.
        let real = if dst.is_ipv6() {
            self.cfg.v6
        } else {
            self.cfg.v4
        };
        let name = self.cfg.codec.encode(
            now + SimDuration::from_nanos(2 * n),
            real,
            dst,
            asn,
            SuffixKind::Main,
        );
        self.send_dns(ctx, real, dst, name);
        self.stats.open_probes += 1;
        // TCP probe: spoofed again, in the TC=1 zone.
        let name = self.cfg.codec.encode(
            now + SimDuration::from_nanos(2 * n + 1),
            src,
            dst,
            asn,
            SuffixKind::Tcp,
        );
        self.send_dns(ctx, src, dst, name);
        self.stats.tcp_probes += 1;
    }

    fn poll_log(&mut self, ctx: &mut NodeCtx<'_>) {
        // Collect triggers first (the borrow on the log must end before we
        // stage sends).
        let mut triggers: Vec<(IpAddr, IpAddr)> = Vec::new();
        {
            let log = self.cfg.log.clone();
            let log = log.borrow();
            let (fresh, cursor) = log.tail_from(self.log_cursor);
            for entry in fresh {
                if let Decoded::Full(tag) = self.cfg.codec.decode(&entry.qname) {
                    if tag.suffix == SuffixKind::Main
                        && tag.src != self.cfg.v4
                        && tag.src != self.cfg.v6
                        && self.followed_up.insert(tag.dst)
                    {
                        triggers.push((tag.src, tag.dst));
                    }
                }
            }
            self.log_cursor = cursor;
        }
        for (src, dst) in triggers {
            self.fire_followups(ctx, src, dst);
        }
        ctx.set_timer(self.cfg.poll_interval, TOK_POLL);
    }

    fn drain_human_queue(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let due: Vec<SimTime> = self.human_queue.range(..=now).map(|(t, _)| *t).collect();
        for t in due {
            for (qname, admin) in self.human_queue.remove(&t).unwrap_or_default() {
                // The analyst's resolver queries our authoritative server
                // directly with the logged name (source: inside target AS).
                // Port and txid derive from the name rather than the node
                // rng: this packet is *logged* at the lab server, so its
                // observables must not depend on scanner stream position.
                self.stats.human_lookups += 1;
                let lab = if admin.is_ipv6() {
                    self.cfg.lab_v6
                } else {
                    self.cfg.lab_v4
                };
                let mut canon = [0u8; MAX_NAME_WIRE_LEN];
                let n = qname.canonical_into(&mut canon);
                let mut h = FNV_OFFSET;
                fnv1a(&mut h, &self.cfg.noise_salt.to_le_bytes());
                fnv1a(&mut h, &canon[..n]);
                let sport = 20_000 + (h % 40_000) as u16;
                // Same qname as the spoofed probe → same trace id, so a
                // sampled trace shows the human lookup alongside the probe.
                let trace = if ctx.tracing() {
                    ctx.sample_trace(std::str::from_utf8(&canon[..n]).unwrap_or("."))
                } else {
                    0
                };
                let msg = Message::query((h >> 32) as u16, qname, RType::A);
                msg.encode_into(&mut self.scratch);
                ctx.send(
                    Packet::udp(admin, lab, sport, 53, self.scratch.as_bytes()).with_trace(trace),
                );
            }
        }
    }
}

impl Node for Scanner {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(at) = self.cfg.schedule.first_at() {
            ctx.set_timer(at - SimTime::ZERO, TOK_WALK);
        }
        ctx.set_timer(self.cfg.poll_interval, TOK_POLL);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token {
            TOK_WALK => self.emit_scheduled(ctx),
            TOK_POLL => self.poll_log(ctx),
            TOK_HUMAN => self.drain_human_queue(ctx),
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        // Responses to our open-resolver probes (and REFUSED evidence).
        // Only header fields are read, so a lazy borrowed view is enough —
        // no per-response section/label decoding.
        let Transport::Udp(u) = &pkt.transport else {
            return;
        };
        let Ok(view) = MessageView::parse(&u.payload) else {
            return;
        };
        if view.qr() {
            self.stats.responses_received += 1;
            if view.rcode() == RCode::Refused {
                self.stats.refused_responses += 1;
            }
            self.responses.push((ctx.now(), pkt.src, view.rcode()));
        }
    }
}
