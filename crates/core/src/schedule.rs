//! The query schedule (§3.4) — streaming per-shard construction.
//!
//! The paper sent ~1 billion queries over four weeks at ~700 qps (an
//! administrative cap), spreading each target's queries evenly over the
//! whole window so no destination saw more than ~4 queries/day. We build
//! the same structure over a configurable (usually compressed) window,
//! but — since the 62k-AS world made the population real — without ever
//! materializing the global query vector in one process:
//!
//! * **Per-target derivation.** Each target's source plan and window
//!   phase are hash-derived from the canonical target address bytes
//!   (`crate::hash::addr_hash`), never drawn from a shared RNG in plan
//!   iteration order. A shard that plans only its own targets produces
//!   exactly the bytes the old global pass produced for them.
//! * **Rate lanes.** The global rate cap is decomposed into
//!   `lanes = min(64, rate)` fixed *lanes*; a target's lane is the FNV
//!   hash of its origin ASN mod `lanes`, and each lane owns an exact
//!   slice of the cap (`rate / lanes`, the remainder spread over the
//!   low lanes, so lane quotas sum to `rate` exactly). Leaky-bucket
//!   smoothing runs *per lane*, so a lane's send times depend only on
//!   that lane's own queries. Lanes — not shards — are the unit of
//!   determinism: the runtime maps lanes onto however many shards
//!   `BCD_SHARDS` asks for, and the schedule bytes never change.
//! * **Census prepass.** A cheap counting pass
//!   ([`SourcePlan::planned_len`], no RNG, no allocation) sizes the
//!   window extension and every lane before any schedule memory exists.
//! * **Compact SoA rows.** A scheduled probe is a nanosecond timestamp,
//!   a `u32` flat target index, a `u128` source-address payload and a
//!   category tag (~29 B/row) instead of the old 48-byte AoS struct with
//!   two `IpAddr`s. The flat target index is monotone in the target
//!   address (see [`crate::targets::TargetSet::get`]), so sorting by
//!   `(at, target_idx, source)` is the legacy `(at, target, source)`
//!   order.
//!
//! [`Schedule::build_global`] keeps the legacy shape — materialize
//! everything, sort globally, smooth in one pass — as a differential
//! oracle (`BCD_SCHEDULE=global`): the streaming per-lane build must be
//! byte-equal to the partitioned global build on every world, which the
//! `schedule_stream` suite checks across shard counts and seeds.

use crate::hash::addr_hash;
use crate::sources::{SourceCategory, SourcePlan};
use crate::targets::TargetSet;
use bcd_netsim::{Prefix, PrefixTable, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Upper bound on rate lanes. 64 divides evenly onto every shard count we
/// run (1..=64) and keeps the per-lane smoothing bucket small; with
/// `rate < 64` each lane simply owns ≥ 1 qps.
pub const MAX_LANES: usize = 64;

/// Number of rate lanes for a given global cap.
pub fn lane_count(rate: u32) -> usize {
    (rate as usize).clamp(1, MAX_LANES)
}

/// The lane a target belongs to: FNV-1a of its origin ASN, mod `lanes`.
/// Keyed on the ASN (not the address) so every probe of an AS — and
/// therefore every query-log line of an AS — stays in one lane, which is
/// what lets the runtime keep whole ASes on one shard.
pub fn lane_of_asn(asn: u32, lanes: usize) -> usize {
    crate::shard::shard_of_asn(asn, lanes)
}

/// Which schedule constructor the experiment uses. `Streaming` is the
/// production path; `Global` is the legacy-shaped oracle kept for the
/// differential harness (`BCD_SCHEDULE=global`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    #[default]
    Streaming,
    Global,
}

/// Parse `BCD_SCHEDULE` (`stream`/`streaming` or `global`).
pub fn mode_from_env() -> Option<ScheduleMode> {
    match std::env::var("BCD_SCHEDULE").ok()?.as_str() {
        "global" => Some(ScheduleMode::Global),
        "stream" | "streaming" => Some(ScheduleMode::Streaming),
        _ => None,
    }
}

/// Deterministic 1-in-`sample` target keep decision, hash-derived from the
/// canonical target bytes so the kept subset is identical for any shard
/// layout (and stable under population growth elsewhere in the world).
pub fn keeps_target(salt: u64, sample: Option<u64>, addr: IpAddr) -> bool {
    match sample {
        None => true,
        Some(n) if n <= 1 => true,
        Some(n) => addr_hash(salt, addr, b"sample").is_multiple_of(n),
    }
}

/// Everything the census learned: exact totals, before any schedule memory
/// is allocated.
#[derive(Debug, Clone)]
pub struct ScheduleCensus {
    /// Total probes across all lanes (after sampling and category filter).
    pub total: u64,
    /// Probes per lane — sizes the per-shard reservations exactly.
    pub lane_counts: Vec<u64>,
    /// Targets that survived the sampling filter (and have a plan).
    pub sampled_targets: u64,
}

impl ScheduleCensus {
    /// Lanes that actually carry probes.
    pub fn occupied_lanes(&self) -> usize {
        self.lane_counts.iter().filter(|&&c| c > 0).count()
    }
}

/// Count every probe without building one: per-target plan lengths via
/// [`SourcePlan::planned_len`] (no RNG, no source draws), bucketed by
/// lane. Both constructors and the window-extension rule consume this, so
/// streaming and global agree on the extended window by construction.
pub fn census(
    targets: &TargetSet,
    routes: &PrefixTable,
    hitlist: &[Prefix],
    filter: Option<&[SourceCategory]>,
    lanes: usize,
    salt: u64,
    sample: Option<u64>,
) -> ScheduleCensus {
    let mut c = ScheduleCensus {
        total: 0,
        lane_counts: vec![0; lanes],
        sampled_targets: 0,
    };
    for t in targets.iter() {
        if !keeps_target(salt, sample, t.addr) {
            continue;
        }
        let k = filtered_len(t.addr, routes, hitlist, filter) as u64;
        if k == 0 {
            continue;
        }
        c.total += k;
        c.lane_counts[lane_of_asn(t.asn.0, lanes)] += k;
        c.sampled_targets += 1;
    }
    c
}

/// Plan length under an optional category filter — exact mirror of
/// building the plan and retaining the filtered categories.
fn filtered_len(
    target: IpAddr,
    routes: &PrefixTable,
    hitlist: &[Prefix],
    filter: Option<&[SourceCategory]>,
) -> usize {
    let full = SourcePlan::planned_len(target, routes, hitlist);
    let Some(keep) = filter else { return full };
    let mut n = 0;
    if keep.contains(&SourceCategory::OtherPrefix) {
        n += full - 4;
    }
    for c in [
        SourceCategory::SamePrefix,
        SourceCategory::Private,
        SourceCategory::DstAsSrc,
        SourceCategory::Loopback,
    ] {
        n += usize::from(keep.contains(&c));
    }
    n
}

/// The fixed geometry every schedule constructor shares: lane count, lane
/// quotas, the (possibly extended) window, and the hash salt for phases /
/// plans / sampling. Built once from the census; identical on every shard.
#[derive(Debug, Clone)]
pub struct LaneLayout {
    pub lanes: usize,
    pub rate: u32,
    /// Extended window in nanoseconds — phases are drawn mod this.
    pub window_ns: u64,
    /// Seed-derived salt for all per-target hash draws.
    pub salt: u64,
    /// Keep-1-in-N deterministic target subsample (`None` = full list).
    pub sample: Option<u64>,
}

impl LaneLayout {
    /// Extend the window if the cap makes the request infeasible (the
    /// paper, too, ran long — §3.4), then fix the lane geometry.
    pub fn new(
        rate: u32,
        window: SimDuration,
        total: u64,
        salt: u64,
        sample: Option<u64>,
    ) -> LaneLayout {
        assert!(rate > 0);
        let needed = SimDuration::from_secs(total / u64::from(rate) + 1);
        let window = window.max(needed);
        LaneLayout {
            lanes: lane_count(rate),
            rate,
            window_ns: window.as_nanos().max(1),
            salt,
            sample,
        }
    }

    /// The per-second quota of `lane`. Quotas sum to exactly `rate`: every
    /// lane gets the floor share and the first `rate % lanes` lanes absorb
    /// the remainder.
    pub fn quota(&self, lane: usize) -> u32 {
        let lanes = self.lanes as u32;
        self.rate / lanes + u32::from((lane as u32) < self.rate % lanes)
    }

    /// The target's deterministic window phase in nanoseconds.
    pub fn phase(&self, addr: IpAddr) -> u64 {
        addr_hash(self.salt, addr, b"phase") % self.window_ns
    }

    /// Sampling decision for this layout.
    pub fn keeps(&self, addr: IpAddr) -> bool {
        keeps_target(self.salt, self.sample, addr)
    }
}

/// One scheduled spoofed probe — the row view the scanner and the tests
/// consume. Storage is the SoA [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledQuery {
    pub at: SimTime,
    pub target: IpAddr,
    pub source: IpAddr,
    pub category: SourceCategory,
}

/// A schedule slice, sorted by `(at, target, source)` — either one shard's
/// probes (streaming build) or the whole survey (global oracle). Columnar:
/// ~29 B per probe against the old 48-byte AoS row, and the target column
/// is a `u32` index into the [`TargetSet`] instead of a 17-byte `IpAddr`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Schedule {
    at: Vec<SimTime>,
    target_idx: Vec<u32>,
    /// Source address payload: v4 in the low 32 bits, v6 as the full 128.
    /// The family is the target's family (every §3.2 source matches it).
    source_bits: Vec<u128>,
    category: Vec<SourceCategory>,
    /// The actual window end (≥ the requested one if the rate cap forced
    /// an extension).
    pub end: SimTime,
}

fn addr_bits(a: IpAddr) -> u128 {
    match a {
        IpAddr::V4(v) => u128::from(u32::from(v)),
        IpAddr::V6(v) => u128::from(v),
    }
}

fn bits_addr(bits: u128, v6: bool) -> IpAddr {
    if v6 {
        IpAddr::V6(Ipv6Addr::from(bits))
    } else {
        IpAddr::V4(Ipv4Addr::from(bits as u32))
    }
}

impl Schedule {
    /// Number of scheduled probes.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Send time of row `i`.
    pub fn at(&self, i: usize) -> SimTime {
        self.at[i]
    }

    /// Flat target index of row `i` (see [`TargetSet::get`]).
    pub fn target_index(&self, i: usize) -> u32 {
        self.target_idx[i]
    }

    /// Source address of row `i`; `v6` is the target's family.
    pub fn source(&self, i: usize, v6: bool) -> IpAddr {
        bits_addr(self.source_bits[i], v6)
    }

    /// Source category of row `i`.
    pub fn category(&self, i: usize) -> SourceCategory {
        self.category[i]
    }

    /// Send time of the first row, if any.
    pub fn first_at(&self) -> Option<SimTime> {
        self.at.first().copied()
    }

    /// Materialize row `i` against its target set.
    pub fn query(&self, i: usize, targets: &TargetSet) -> ScheduledQuery {
        let t = targets.get(self.target_idx[i] as usize);
        ScheduledQuery {
            at: self.at[i],
            target: t.addr,
            source: bits_addr(self.source_bits[i], t.addr.is_ipv6()),
            category: self.category[i],
        }
    }

    /// Iterate all rows as [`ScheduledQuery`] views.
    pub fn iter_with<'a>(
        &'a self,
        targets: &'a TargetSet,
    ) -> impl Iterator<Item = ScheduledQuery> + 'a {
        (0..self.len()).map(move |i| self.query(i, targets))
    }

    /// The maximum number of sends in any single second.
    pub fn peak_rate(&self) -> u32 {
        let mut per_sec: BTreeMap<u64, u32> = BTreeMap::new();
        for at in &self.at {
            *per_sec.entry(at.as_secs()).or_insert(0) += 1;
        }
        per_sec.values().copied().max().unwrap_or(0)
    }

    fn push_raw(&mut self, r: &Raw) {
        self.at.push(SimTime::from_nanos(r.at_ns));
        self.target_idx.push(r.tidx);
        self.source_bits.push(r.bits);
        self.category.push(r.cat);
        self.end = self.end.max(SimTime::from_nanos(r.at_ns));
    }

    fn reserve(n: usize) -> Schedule {
        Schedule {
            at: Vec::with_capacity(n),
            target_idx: Vec::with_capacity(n),
            source_bits: Vec::with_capacity(n),
            category: Vec::with_capacity(n),
            end: SimTime::ZERO,
        }
    }

    /// Build the probes of `owned_lanes` only — the streaming per-shard
    /// constructor. Each lane's rows are derived independently (plans and
    /// phases are per-target hashes), smoothed under the lane's own quota,
    /// and merged into one sorted slice. Byte-equal to the corresponding
    /// partition of [`Schedule::build_global`] for every lane→shard map.
    pub fn build_lanes(
        targets: &TargetSet,
        routes: &PrefixTable,
        hitlist: &[Prefix],
        filter: Option<&[SourceCategory]>,
        owned_lanes: &[usize],
        census: &ScheduleCensus,
        layout: &LaneLayout,
    ) -> Schedule {
        // lane id -> slot in `buckets` for owned lanes.
        let mut slot_of = vec![usize::MAX; layout.lanes];
        let mut buckets: Vec<Vec<Raw>> = Vec::with_capacity(owned_lanes.len());
        for &l in owned_lanes {
            slot_of[l] = buckets.len();
            buckets.push(Vec::with_capacity(census.lane_counts[l] as usize));
        }

        for (tidx, t) in targets.iter().enumerate() {
            let lane = lane_of_asn(t.asn.0, layout.lanes);
            let slot = slot_of[lane];
            if slot == usize::MAX || !layout.keeps(t.addr) {
                continue;
            }
            derive_target(
                t.addr,
                tidx as u32,
                lane,
                routes,
                hitlist,
                filter,
                layout,
                |r| buckets[slot].push(r),
            );
        }

        let total: usize = buckets.iter().map(Vec::len).sum();
        let mut all: Vec<Raw> = Vec::with_capacity(total);
        for (slot, &lane) in owned_lanes.iter().enumerate() {
            let mut b = std::mem::take(&mut buckets[slot]);
            b.sort_unstable_by_key(Raw::key);
            smooth_lane(&mut b, layout.quota(lane));
            all.append(&mut b);
        }
        all.sort_unstable_by_key(Raw::key);

        let mut s = Schedule::reserve(all.len());
        for r in &all {
            s.push_raw(r);
        }
        s
    }

    /// The legacy-shaped oracle: materialize every probe in one vec, sort
    /// globally, smooth in one pass over the global order (with the same
    /// per-lane buckets), sort again. Kept only so the differential suite
    /// and `BCD_SCHEDULE=global` can prove the streaming path equivalent —
    /// never run at full population.
    pub fn build_global(
        targets: &TargetSet,
        routes: &PrefixTable,
        hitlist: &[Prefix],
        filter: Option<&[SourceCategory]>,
        census: &ScheduleCensus,
        layout: &LaneLayout,
    ) -> Schedule {
        let mut all: Vec<Raw> = Vec::with_capacity(census.total as usize);
        for (tidx, t) in targets.iter().enumerate() {
            if !layout.keeps(t.addr) {
                continue;
            }
            let lane = lane_of_asn(t.asn.0, layout.lanes);
            derive_target(
                t.addr,
                tidx as u32,
                lane,
                routes,
                hitlist,
                filter,
                layout,
                |r| all.push(r),
            );
        }
        all.sort_unstable_by_key(Raw::key);

        // One global smoothing pass, bucketed per (lane, second): the old
        // single-bucket code with the cap split into lane quotas.
        let mut used: BTreeMap<(u16, u64), u32> = BTreeMap::new();
        for r in &mut all {
            let quota = layout.quota(r.lane as usize);
            let mut sec = r.at_ns / NANOS_PER_SEC;
            loop {
                let u = used.entry((r.lane, sec)).or_insert(0);
                if *u < quota {
                    *u += 1;
                    break;
                }
                sec += 1;
            }
            if sec != r.at_ns / NANOS_PER_SEC {
                r.at_ns = sec * NANOS_PER_SEC;
            }
        }
        all.sort_unstable_by_key(Raw::key);

        let mut s = Schedule::reserve(all.len());
        for r in &all {
            s.push_raw(r);
        }
        s
    }

    /// Split a [`Schedule::build_global`] schedule into per-shard slices
    /// with the same lane→shard map the streaming path uses. The oracle
    /// half of the differential harness.
    pub fn partition_by_lane(
        &self,
        targets: &TargetSet,
        lane_shard: &[Option<usize>],
        shards: usize,
    ) -> Vec<Schedule> {
        let lanes = lane_shard.len();
        let mut parts = vec![Schedule::default(); shards];
        for i in 0..self.len() {
            let asn = targets.get(self.target_idx[i] as usize).asn.0;
            let lane = lane_of_asn(asn, lanes);
            let sid = lane_shard[lane].expect("scheduled probe in an unassigned lane");
            let r = Raw {
                at_ns: self.at[i].as_nanos(),
                tidx: self.target_idx[i],
                lane: lane as u16,
                bits: self.source_bits[i],
                cat: self.category[i],
            };
            parts[sid].push_raw(&r);
        }
        parts
    }
}

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// One probe during construction, before the SoA columns are filled.
struct Raw {
    at_ns: u64,
    tidx: u32,
    lane: u16,
    bits: u128,
    cat: SourceCategory,
}

impl Raw {
    /// The canonical sort key. `tidx` is monotone in target address
    /// (v4-then-v6 flat index over sorted family vecs), so this is the
    /// legacy `(at, target, source)` order; the category tail only breaks
    /// ties between pathological duplicate sources.
    fn key(&self) -> (u64, u32, u128, u8) {
        (self.at_ns, self.tidx, self.bits, self.cat as u8)
    }
}

/// Derive one target's probes: hash-seeded source plan, hash-derived
/// phase, even spacing of the plan over the window. Shared verbatim by the
/// streaming and global constructors — only where the rows go differs.
#[allow(clippy::too_many_arguments)]
fn derive_target(
    addr: IpAddr,
    tidx: u32,
    lane: usize,
    routes: &PrefixTable,
    hitlist: &[Prefix],
    filter: Option<&[SourceCategory]>,
    layout: &LaneLayout,
    mut emit: impl FnMut(Raw),
) {
    let mut plan = SourcePlan::build_deterministic(addr, routes, hitlist, layout.salt);
    if let Some(keep) = filter {
        plan.sources.retain(|(c, _)| keep.contains(c));
    }
    let k = plan.len() as u64;
    if k == 0 {
        return;
    }
    let phase = layout.phase(addr);
    let gap = layout.window_ns / k;
    for (i, (cat, src)) in plan.sources.iter().enumerate() {
        let at_ns = (phase + i as u64 * gap) % layout.window_ns;
        emit(Raw {
            at_ns,
            tidx,
            lane: lane as u16,
            bits: addr_bits(*src),
            cat: *cat,
        });
    }
}

/// Leaky-bucket smoothing for one lane: at most `quota` sends per second,
/// overflow pushed into following seconds. `queries` must be sorted by
/// [`Raw::key`]; times are rewritten in place (rows that move land on a
/// whole-second boundary, like the legacy pass).
///
/// The bucket is sized from the *post-extension* bound up front — the last
/// occupied second plus the worst-case spill (`len / quota`) — instead of
/// the old `window.as_secs() as usize` seed (a truncating cast on 32-bit
/// targets) regrown by fixed `+1024` chunks inside the overflow loop
/// (O(n²) copies under long extensions). The in-loop resize remains only
/// as a geometric-growth backstop.
fn smooth_lane(queries: &mut [Raw], quota: u32) {
    if queries.is_empty() {
        return;
    }
    let quota = quota.max(1);
    let last_sec = queries.last().unwrap().at_ns / NANOS_PER_SEC;
    let spill = queries.len() as u64 / u64::from(quota);
    let bound = usize::try_from(last_sec + spill + 2).expect("schedule horizon fits usize");
    let mut used: Vec<u32> = vec![0; bound];
    for r in queries.iter_mut() {
        let orig_sec = r.at_ns / NANOS_PER_SEC;
        let mut sec = orig_sec as usize;
        loop {
            if sec >= used.len() {
                // Unreachable given the bound above; grow geometrically if
                // the arithmetic is ever wrong rather than O(n²)-copying.
                used.resize((used.len() * 2).max(sec + 1), 0);
            }
            if used[sec] < quota {
                used[sec] += 1;
                break;
            }
            sec += 1;
        }
        if sec as u64 != orig_sec {
            r.at_ns = sec as u64 * NANOS_PER_SEC;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_netsim::{Asn, Prefix, PrefixTable};

    /// A small multi-AS world: `n_asns` ASes, each announcing one /16 with
    /// `per_asn` targets in it.
    fn world(n_asns: usize, per_asn: usize) -> (TargetSet, PrefixTable) {
        let mut routes = PrefixTable::new();
        let mut candidates: Vec<std::net::IpAddr> = Vec::new();
        for a in 0..n_asns {
            let p: Prefix = format!("{}.{}.0.0/16", 16 + a / 200, a % 200)
                .parse()
                .unwrap();
            routes.announce(p, Asn(a as u32 + 1));
            for t in 0..per_asn {
                candidates.push(p.nth(256 * (t as u128 + 1) + 5).unwrap());
            }
        }
        candidates.sort_unstable();
        let targets = TargetSet::from_candidates(&candidates, &routes);
        assert_eq!(targets.len(), n_asns * per_asn);
        (targets, routes)
    }

    fn build_all(
        targets: &TargetSet,
        routes: &PrefixTable,
        window_secs: u64,
        rate: u32,
        salt: u64,
    ) -> (Schedule, ScheduleCensus, LaneLayout) {
        let lanes = lane_count(rate);
        let census = census(targets, routes, &[], None, lanes, salt, None);
        let layout = LaneLayout::new(
            rate,
            SimDuration::from_secs(window_secs),
            census.total,
            salt,
            None,
        );
        let owned: Vec<usize> = (0..lanes).collect();
        let s = Schedule::build_lanes(targets, routes, &[], None, &owned, &census, &layout);
        (s, census, layout)
    }

    #[test]
    fn all_queries_scheduled_and_sorted() {
        let (targets, routes) = world(10, 1);
        let (s, census, _) = build_all(&targets, &routes, 1_000, 700, 2);
        assert_eq!(s.len() as u64, census.total);
        for i in 1..s.len() {
            assert!(s.at(i - 1) <= s.at(i));
        }
        assert!(s.end.as_secs() <= 1_001);
    }

    #[test]
    fn rate_cap_is_enforced_per_second() {
        // Force congestion: 10-second window at 100 qps can hold 1000, but
        // 50 routed targets yield ~50 * 101 queries.
        let (targets, routes) = world(5, 10);
        let (s, census, _) = build_all(&targets, &routes, 10, 100, 3);
        assert_eq!(s.len() as u64, census.total);
        assert!(s.peak_rate() <= 100, "peak {}", s.peak_rate());
        // The window must have been extended (like the paper's overrun).
        assert!(s.end.as_secs() >= (census.total / 100).saturating_sub(10));
    }

    #[test]
    fn lane_quotas_sum_to_rate() {
        for rate in [1u32, 7, 63, 64, 65, 700, 701] {
            let layout = LaneLayout::new(rate, SimDuration::from_secs(10), 0, 1, None);
            let sum: u32 = (0..layout.lanes).map(|l| layout.quota(l)).sum();
            assert_eq!(sum, rate, "rate {rate}");
        }
    }

    #[test]
    fn per_target_queries_are_spread() {
        let (targets, routes) = world(1, 1);
        // Make the single target's AS announce enough space for 97 other
        // prefixes: /16 has 256 /24s, fine.
        let (s, _, _) = build_all(&targets, &routes, 101_000, 700, 4);
        // 101 queries over ~101k seconds: successive queries for the target
        // should be roughly 1000s apart, definitely not bunched.
        let mut times: Vec<u64> = (0..s.len()).map(|i| s.at(i).as_secs()).collect();
        times.sort_unstable();
        let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        assert!(
            (700..1_300).contains(&median),
            "median inter-query gap {median}s"
        );
    }

    #[test]
    fn deterministic_and_salt_sensitive() {
        let (targets, routes) = world(4, 2);
        let (a, _, _) = build_all(&targets, &routes, 100, 700, 7);
        let (b, _, _) = build_all(&targets, &routes, 100, 700, 7);
        let (c, _, _) = build_all(&targets, &routes, 100, 700, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_targets_empty_schedule() {
        let (targets, routes) = world(0, 0);
        let (s, _, _) = build_all(&targets, &routes, 10, 700, 5);
        assert!(s.is_empty());
        assert_eq!(s.peak_rate(), 0);
        assert_eq!(s.first_at(), None);
    }

    #[test]
    fn congested_bucket_regression_total_far_exceeds_window() {
        // Satellite regression: total ≫ rate × window used to regrow the
        // bucket by +1024 chunks from a window-sized seed — O(n²) copies.
        // 40 ASes × 5 targets ≈ 20k queries at 1 qps over a 1-second
        // window: a ~20,000× extension. Must complete and keep the cap.
        let (targets, routes) = world(40, 5);
        let (s, census, _) = build_all(&targets, &routes, 1, 1, 6);
        assert_eq!(s.len() as u64, census.total);
        assert!(census.total > 15_000);
        assert!(s.peak_rate() <= 1);
        // Lane count is 1 at rate 1, so the schedule stretches to ~total
        // seconds.
        assert!(s.end.as_secs() >= census.total - 2);
    }

    #[test]
    fn sampling_keeps_deterministic_subset() {
        let (targets, routes) = world(16, 4);
        let salt = 11;
        let lanes = lane_count(700);
        let full = census(&targets, &routes, &[], None, lanes, salt, None);
        let sampled = census(&targets, &routes, &[], None, lanes, salt, Some(4));
        assert!(sampled.sampled_targets < full.sampled_targets);
        assert!(sampled.sampled_targets > 0);
        // The kept set is a strict per-target predicate: re-census agrees.
        let again = census(&targets, &routes, &[], None, lanes, salt, Some(4));
        assert_eq!(sampled.total, again.total);
    }

    #[test]
    fn category_filter_restricts_rows() {
        let (targets, routes) = world(3, 2);
        let filter = [SourceCategory::Loopback, SourceCategory::DstAsSrc];
        let lanes = lane_count(700);
        let census = census(&targets, &routes, &[], Some(&filter), lanes, 9, None);
        assert_eq!(census.total, targets.len() as u64 * 2);
        let layout = LaneLayout::new(700, SimDuration::from_secs(100), census.total, 9, None);
        let owned: Vec<usize> = (0..lanes).collect();
        let s = Schedule::build_lanes(
            &targets,
            &routes,
            &[],
            Some(&filter),
            &owned,
            &census,
            &layout,
        );
        assert_eq!(s.len() as u64, census.total);
        for i in 0..s.len() {
            assert!(filter.contains(&s.category(i)));
        }
    }
}
