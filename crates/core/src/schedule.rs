//! The query schedule (§3.4).
//!
//! The paper sent ~1 billion queries over four weeks at ~700 qps (an
//! administrative cap), spreading each target's queries evenly over the
//! whole window so no destination saw more than ~4 queries/day. We build
//! the same structure over a configurable (usually compressed) window:
//!
//! * each target's `k` sources are spaced `window / k` apart with a
//!   per-target random phase,
//! * a leaky-bucket pass enforces the global per-second cap by pushing
//!   overflow queries into following seconds,
//! * the window auto-extends if `total / rate` exceeds it.

use crate::sources::{SourceCategory, SourcePlan};
use bcd_netsim::{SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::net::IpAddr;

/// One scheduled spoofed probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledQuery {
    pub at: SimTime,
    pub target: IpAddr,
    pub source: IpAddr,
    pub category: SourceCategory,
}

/// The full experiment schedule, sorted by time.
#[derive(Debug, Default)]
pub struct Schedule {
    pub queries: Vec<ScheduledQuery>,
    /// The actual window end (≥ the requested one if the rate cap forced
    /// an extension — the paper, too, ran long, §3.4).
    pub end: SimTime,
}

impl Schedule {
    /// Build a schedule for all plans over `window`, capped at `rate`
    /// queries per second.
    pub fn build(
        plans: &[SourcePlan],
        window: SimDuration,
        rate: u32,
        rng: &mut ChaCha8Rng,
    ) -> Schedule {
        assert!(rate > 0);
        let total: usize = plans.iter().map(|p| p.len()).sum();
        // Extend the window if the cap makes the request infeasible.
        let needed = SimDuration::from_secs((total as u64 / rate as u64) + 1);
        let window = window.max(needed);

        let mut queries: Vec<ScheduledQuery> = Vec::with_capacity(total);
        let w_ns = window.as_nanos().max(1);
        for plan in plans {
            let k = plan.len() as u64;
            if k == 0 {
                continue;
            }
            let phase = rng.gen_range(0..w_ns);
            let gap = w_ns / k;
            for (i, (category, source)) in plan.sources.iter().enumerate() {
                let at = (phase + i as u64 * gap) % w_ns;
                queries.push(ScheduledQuery {
                    at: SimTime::from_nanos(at),
                    target: plan.target,
                    source: *source,
                    category: *category,
                });
            }
        }
        queries.sort_by_key(|q| (q.at, q.target, q.source));

        // Leaky-bucket smoothing: at most `rate` sends per second. The
        // seconds axis is dense (every query lands within a few rate-cap
        // extensions of the window), so a flat per-second vector replaces
        // the old BTreeMap — same fill semantics, no tree walk per query.
        let mut used: Vec<u32> = vec![0; window.as_secs() as usize + 2];
        let mut end = SimTime::ZERO;
        for q in &mut queries {
            let mut sec = q.at.as_secs();
            loop {
                if sec as usize >= used.len() {
                    used.resize(sec as usize + 1024, 0);
                }
                if used[sec as usize] < rate {
                    used[sec as usize] += 1;
                    break;
                }
                sec += 1;
            }
            if sec != q.at.as_secs() {
                q.at = SimTime::from_secs(sec);
            }
            end = end.max(q.at);
        }
        queries.sort_by_key(|q| (q.at, q.target, q.source));
        Schedule { queries, end }
    }

    /// Number of scheduled probes.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The maximum number of sends in any single second.
    pub fn peak_rate(&self) -> u32 {
        let mut per_sec: BTreeMap<u64, u32> = BTreeMap::new();
        for q in &self.queries {
            *per_sec.entry(q.at.as_secs()).or_insert(0) += 1;
        }
        per_sec.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_netsim::{Asn, Prefix, PrefixTable};
    use rand::SeedableRng;

    fn plans(n_targets: usize) -> Vec<SourcePlan> {
        let mut routes = PrefixTable::new();
        routes.announce("16.0.0.0/12".parse::<Prefix>().unwrap(), Asn(1));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        (0..n_targets)
            .map(|i| {
                let addr: IpAddr = format!("16.0.{}.{}", i / 200, 1 + i % 200).parse().unwrap();
                SourcePlan::build(addr, &routes, &mut rng)
            })
            .collect()
    }

    #[test]
    fn all_queries_scheduled_and_sorted() {
        let ps = plans(10);
        let total: usize = ps.iter().map(|p| p.len()).sum();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = Schedule::build(&ps, SimDuration::from_secs(1_000), 700, &mut rng);
        assert_eq!(s.len(), total);
        for w in s.queries.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(s.end.as_secs() <= 1_001);
    }

    #[test]
    fn rate_cap_is_enforced() {
        let ps = plans(50); // 50 * 101 = 5050 queries
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Force congestion: 10-second window at 100 qps can hold 1000.
        let s = Schedule::build(&ps, SimDuration::from_secs(10), 100, &mut rng);
        assert_eq!(s.len(), 5_050);
        assert!(s.peak_rate() <= 100, "peak {}", s.peak_rate());
        // The window must have been extended (like the paper's overrun).
        assert!(s.end.as_secs() >= 50);
    }

    #[test]
    fn per_target_queries_are_spread() {
        let ps = plans(1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = Schedule::build(&ps, SimDuration::from_secs(101_000), 700, &mut rng);
        // 101 queries over ~101k seconds: successive queries for the target
        // should be roughly 1000s apart, definitely not bunched.
        let mut times: Vec<u64> = s.queries.iter().map(|q| q.at.as_secs()).collect();
        times.sort_unstable();
        let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        // Median gap near the even-spacing value (wrap-around makes one gap
        // big and one small).
        let median = gaps[gaps.len() / 2];
        assert!(
            (700..1_300).contains(&median),
            "median inter-query gap {median}s"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let ps = plans(5);
        let build = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Schedule::build(&ps, SimDuration::from_secs(100), 700, &mut rng).queries
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn empty_plans_empty_schedule() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = Schedule::build(&[], SimDuration::from_secs(10), 700, &mut rng);
        assert!(s.is_empty());
        assert_eq!(s.peak_rate(), 0);
    }
}
