//! Per-network assessment — the §6 "testing tool" the paper promises to
//! offer operators ("we plan to make the analysis of a network or system
//! available to the general public via a Web interface").
//!
//! [`SelfCheck::assess`] compiles everything the survey learned about one
//! AS into an operator-facing report: the DSAV verdict with the exact
//! spoofed-source categories that penetrated, every reached resolver with
//! its open/closed status, port-randomization health, and concrete
//! remediation items ordered by severity.

use crate::analysis::openclosed::OpenClosedReport;
use crate::analysis::ports::PortReport;
use crate::analysis::reachability::Reachability;
use crate::sources::SourceCategory;
use bcd_netsim::Asn;
use std::collections::BTreeSet;
use std::fmt;
use std::net::IpAddr;

/// The network-level verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Spoofed-source packets entered the network: DSAV is absent.
    Vulnerable,
    /// Probes were sent, none penetrated — consistent with deployed DSAV.
    NoPenetrationObserved,
    /// The survey had no targets in this AS.
    NotTested,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Vulnerable => {
                "VULNERABLE — spoofed internal-source traffic enters this network"
            }
            Verdict::NoPenetrationObserved => "no penetration observed (consistent with DSAV)",
            Verdict::NotTested => "not tested (no targets in this network)",
        };
        f.write_str(s)
    }
}

/// One reached resolver inside the assessed network.
#[derive(Debug, Clone)]
pub struct ResolverFinding {
    pub addr: IpAddr,
    pub open: bool,
    /// Observed source-port range over the 10 follow-ups, if measured
    /// directly.
    pub port_range: Option<u32>,
    /// The single source port, when the range is zero.
    pub fixed_port: Option<u16>,
}

/// The operator-facing report for one AS.
#[derive(Debug)]
pub struct SelfCheckReport {
    pub asn: Asn,
    pub verdict: Verdict,
    pub targets_tested: usize,
    pub resolvers_reached: usize,
    /// Spoofed-source categories that penetrated the border.
    pub categories_admitted: BTreeSet<SourceCategory>,
    pub findings: Vec<ResolverFinding>,
    /// Ordered remediation advice.
    pub recommendations: Vec<String>,
}

/// The assessment engine.
pub struct SelfCheck;

impl SelfCheck {
    /// Assess one AS from completed survey analyses.
    pub fn assess(
        asn: Asn,
        targets: &crate::targets::TargetSet,
        reach: &Reachability,
        open_closed: &OpenClosedReport,
        ports: &PortReport,
    ) -> SelfCheckReport {
        let targets_tested = targets.iter().filter(|t| t.asn == asn).count();
        let reached: Vec<(&IpAddr, &crate::analysis::reachability::TargetHit)> =
            reach.reached.iter().filter(|(_, h)| h.asn == asn).collect();

        let mut categories_admitted = BTreeSet::new();
        for (_, h) in &reached {
            categories_admitted.extend(h.categories.iter().copied());
        }

        let mut findings = Vec::new();
        for (addr, _) in &reached {
            let obs = ports.observations.iter().find(|o| o.addr == **addr);
            findings.push(ResolverFinding {
                addr: **addr,
                open: open_closed.is_open(**addr),
                port_range: obs.map(|o| o.range),
                fixed_port: obs.filter(|o| o.range == 0).map(|o| o.ports[0]),
            });
        }
        findings.sort_by_key(|f| (f.port_range.unwrap_or(u32::MAX), f.addr));

        let verdict = if !reached.is_empty() {
            Verdict::Vulnerable
        } else if targets_tested > 0 {
            Verdict::NoPenetrationObserved
        } else {
            Verdict::NotTested
        };

        let mut recommendations = Vec::new();
        if verdict == Verdict::Vulnerable {
            recommendations.push(
                "deploy destination-side SAV: drop inbound packets bearing your own \
                 announced prefixes as source (mirror of BCP 38)"
                    .to_string(),
            );
        }
        if categories_admitted.contains(&SourceCategory::Private) {
            recommendations
                .push("add bogon ACLs: RFC 1918 / ULA sources arrive from outside".to_string());
        }
        if categories_admitted.contains(&SourceCategory::Loopback) {
            recommendations
                .push("loopback-source packets cross your border: add martian filters".to_string());
        }
        if categories_admitted.contains(&SourceCategory::DstAsSrc) {
            recommendations.push(
                "destination-as-source packets are delivered: filter at the border and \
                 harden host stacks (no kernel should accept them)"
                    .to_string(),
            );
        }
        for f in &findings {
            if let Some(port) = f.fixed_port {
                recommendations.push(format!(
                    "URGENT: resolver {} uses the single source port {port} — trivially \
                     cache-poisonable (search space 2^16); upgrade/remove any \
                     query-source configuration",
                    f.addr
                ));
            }
        }
        if findings.iter().any(|f| f.open) {
            recommendations.push(
                "open resolvers answered external queries: restrict recursion (RFC 5358)"
                    .to_string(),
            );
        }
        if findings.iter().any(|f| !f.open) {
            recommendations.push(
                "closed resolvers were reached via spoofed sources: their ACLs are not \
                 a defence without DSAV"
                    .to_string(),
            );
        }

        SelfCheckReport {
            asn,
            verdict,
            targets_tested,
            resolvers_reached: reached.len(),
            categories_admitted,
            findings,
            recommendations,
        }
    }
}

impl fmt::Display for SelfCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== network self-check: {} ==", self.asn)?;
        writeln!(f, "verdict: {}", self.verdict)?;
        writeln!(
            f,
            "targets tested: {}; resolvers reached: {}",
            self.targets_tested, self.resolvers_reached
        )?;
        if !self.categories_admitted.is_empty() {
            let cats: Vec<String> = self
                .categories_admitted
                .iter()
                .map(|c| c.to_string())
                .collect();
            writeln!(f, "spoof categories admitted: {}", cats.join(", "))?;
        }
        for finding in &self.findings {
            write!(
                f,
                "  resolver {:<18} {}",
                finding.addr.to_string(),
                if finding.open { "OPEN  " } else { "closed" }
            )?;
            match (finding.fixed_port, finding.port_range) {
                (Some(p), _) => writeln!(f, "  FIXED SOURCE PORT {p}")?,
                (None, Some(r)) => writeln!(f, "  port range {r}")?,
                (None, None) => writeln!(f, "  (no direct port data)")?,
            }
        }
        if !self.recommendations.is_empty() {
            writeln!(f, "recommendations:")?;
            for (i, r) in self.recommendations.iter().enumerate() {
                writeln!(f, "  {}. {r}", i + 1)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display() {
        assert!(Verdict::Vulnerable.to_string().contains("VULNERABLE"));
        assert!(Verdict::NotTested.to_string().contains("not tested"));
    }
}
