//! AS-sharded parallel survey execution.
//!
//! The paper ran its survey from a single vantage over four weeks; the
//! simulation compresses the window but still walks every probe through one
//! discrete-event engine. Sharding splits that work: scheduled probes are
//! partitioned by *destination AS* into `S` shards, each shard runs its
//! slice against its own engine over an identical generated world, and the
//! per-shard artifacts are folded back together deterministically.
//!
//! Determinism contract: because
//!
//! * the schedule (with final, rate-capped emission times) is built once and
//!   then partitioned — a probe fires at the same instant in every sharding
//!   configuration,
//! * every host draws from its own seed-derived RNG stream (see
//!   [`bcd_netsim::stream_seed`]), so a resolver's behaviour depends only on
//!   the traffic *it* sees — and all probes for one AS land in one shard,
//! * human-noise injection is a pure function of probe identity
//!   ([`crate::scanner`]), and
//! * the merge re-establishes one canonical entry order ([`canonical_sort`])
//!   and sums counters with [`Merge`] impls in shard-id order,
//!
//! every analysis and report renders byte-identically for `S = 1` and
//! `S = N` (the equivalence suite in `tests/shard_equivalence.rs` locks
//! this in).

use crate::observe::DnsTotals;
use crate::scanner::ScannerStats;
use crate::schedule::Schedule;
use bcd_dns::QueryLogEntry;
use bcd_dnswire::RCode;
use bcd_netsim::{FlightRecorder, Merge, NetCounters, SimTime, Trace};
use bcd_obs::MetricsRegistry;
use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Duration;

/// Shard count requested via the `BCD_SHARDS` environment variable, if any.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("BCD_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
}

/// Worker-pool size requested via the `BCD_WORKERS` environment variable,
/// if any. Workers execute shard partitions by stealing the next unstarted
/// shard; the count affects wall-clock only, never output bytes (see
/// [`crate::ExperimentConfig::workers`]).
pub fn workers_from_env() -> Option<usize> {
    std::env::var("BCD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
}

/// The shard an AS belongs to: a stable FNV-1a hash of the ASN, reduced
/// modulo the shard count. Stable across runs, platforms, and shard-count
/// choices for `shards == 1` (everything maps to shard 0).
pub fn shard_of_asn(asn: u32, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in asn.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Split a built schedule into per-shard schedules by destination AS.
///
/// Probe times are final (the global rate cap already ran), relative order
/// within each shard is preserved, and every part carries the *global*
/// schedule end so all shards simulate the same horizon. Targets with no
/// ASN attribution hash as ASN 0.
///
/// The effective shard count is clamped to the number of distinct
/// destination ASes: with fewer ASes than requested shards, the surplus
/// shards could only ever receive empty schedules, yet each would still
/// spin up an engine and simulate the full horizon. The returned vector's
/// length *is* the effective shard count. Clamping preserves the
/// equivalence contract — partitioning is per-AS, so any shard count
/// yields the same merged result.
pub fn partition_schedule(
    schedule: &Schedule,
    asn_of: &HashMap<IpAddr, u32>,
    shards: usize,
) -> Vec<Schedule> {
    let distinct_asns = schedule
        .queries
        .iter()
        .map(|q| asn_of.get(&q.target).copied().unwrap_or(0))
        .collect::<std::collections::HashSet<u32>>()
        .len();
    let shards = shards.max(1).min(distinct_asns.max(1));
    let mut parts: Vec<Schedule> = (0..shards)
        .map(|_| Schedule {
            queries: Vec::new(),
            end: schedule.end,
        })
        .collect();
    for q in &schedule.queries {
        let asn = asn_of.get(&q.target).copied().unwrap_or(0);
        parts[shard_of_asn(asn, shards)].queries.push(*q);
    }
    parts
}

/// Re-establish the single canonical order of a merged query log.
///
/// Entries are keyed by `(time, qname, src, src_port, server, proto)` —
/// the qname encodes the probe's `ts.src.dst` serial (§3.3), so the key is
/// unique per logged query and the order is independent of which shard
/// contributed an entry.
pub fn canonical_sort(entries: &mut [QueryLogEntry]) {
    entries.sort_by(|a, b| {
        (
            a.time,
            &a.qname,
            a.src,
            a.src_port,
            a.server,
            proto_rank(a.proto),
        )
            .cmp(&(
                b.time,
                &b.qname,
                b.src,
                b.src_port,
                b.server,
                proto_rank(b.proto),
            ))
    });
}

fn proto_rank(p: bcd_dns::LogProto) -> u8 {
    match p {
        bcd_dns::LogProto::Udp => 0,
        bcd_dns::LogProto::Tcp => 1,
    }
}

impl Merge for ScannerStats {
    fn merge(&mut self, other: ScannerStats) {
        self.spoofed_sent += other.spoofed_sent;
        self.followup_sets += other.followup_sets;
        self.followup_queries += other.followup_queries;
        self.open_probes += other.open_probes;
        self.tcp_probes += other.tcp_probes;
        self.human_lookups += other.human_lookups;
        self.responses_received += other.responses_received;
        self.refused_responses += other.refused_responses;
        self.opted_out += other.opted_out;
        self.outage_deferrals += other.outage_deferrals;
    }
}

/// Everything one shard's run produces, in `Send`-able form (worker shards
/// run on their own threads; the world itself stays thread-local).
pub struct ShardOutcome {
    pub entries: Vec<QueryLogEntry>,
    pub scanner_stats: ScannerStats,
    pub responses: Vec<(SimTime, IpAddr, RCode)>,
    pub counters: NetCounters,
    pub events: u64,
    pub budget_exhausted: bool,
    /// Deliver events still queued when the horizon ended (in-flight
    /// packets; the conservation invariant needs them to balance `sent`).
    pub pending_deliveries: u64,
    /// Packet capture, when the world config enables one.
    pub trace: Option<Trace>,
    /// Causal span flight recorder, when the run armed one (`BCD_TRACE`).
    pub flight: Option<FlightRecorder>,
    /// Resolver counter totals harvested from this shard's runtime.
    pub dns: DnsTotals,
    /// This shard's layout-class metric slice (see [`crate::observe`]).
    pub metrics: MetricsRegistry,
    /// Wall-clock time the shard's engine run took (merge: summed — the
    /// aggregate is total engine CPU time; per-shard walls live in the run
    /// profile).
    pub wall: Duration,
    /// Wall-clock time spent spawning the runtime and warming up the shard
    /// (node construction, ACL/zone setup) before the engine ran.
    pub spawn_wall: Duration,
    /// Wall-clock time spent harvesting artifacts (log snapshot, counter
    /// extraction) after the engine finished.
    pub extract_wall: Duration,
}

/// Fold shard outcomes (in shard-id order) into one logical run.
///
/// Query-log entries are re-sorted canonically, scanner responses by
/// `(time, responder)`, counters and stats summed via [`Merge`].
pub fn merge_outcomes(outcomes: Vec<ShardOutcome>) -> ShardOutcome {
    let mut merged = ShardOutcome {
        entries: Vec::new(),
        scanner_stats: ScannerStats::default(),
        responses: Vec::new(),
        counters: NetCounters::default(),
        events: 0,
        budget_exhausted: false,
        pending_deliveries: 0,
        trace: None,
        flight: None,
        dns: DnsTotals::default(),
        metrics: MetricsRegistry::new(),
        wall: Duration::ZERO,
        spawn_wall: Duration::ZERO,
        extract_wall: Duration::ZERO,
    };
    for o in outcomes {
        merged.entries.extend(o.entries);
        merged.scanner_stats.merge(o.scanner_stats);
        merged.responses.extend(o.responses);
        merged.counters.merge(o.counters);
        merged.events += o.events;
        merged.budget_exhausted |= o.budget_exhausted;
        merged.pending_deliveries += o.pending_deliveries;
        merged.dns.merge(o.dns);
        merged.metrics.merge(o.metrics);
        merged.wall += o.wall;
        merged.spawn_wall += o.spawn_wall;
        merged.extract_wall += o.extract_wall;
        match (&mut merged.trace, o.trace) {
            (Some(t), Some(other)) => t.merge(other),
            (t @ None, Some(other)) => *t = Some(other),
            _ => {}
        }
        match (&mut merged.flight, o.flight) {
            (Some(f), Some(other)) => f.merge(other),
            (f @ None, Some(other)) => *f = Some(other),
            _ => {}
        }
    }
    canonical_sort(&mut merged.entries);
    merged.responses.sort_by_key(|r| (r.0, r.1));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduledQuery;
    use crate::sources::SourceCategory;

    fn sched(n: usize) -> (Schedule, HashMap<IpAddr, u32>) {
        let mut queries = Vec::new();
        let mut asn_of = HashMap::new();
        for i in 0..n {
            let target: IpAddr = format!("192.0.{}.{}", i / 200, 1 + i % 200)
                .parse()
                .unwrap();
            asn_of.insert(target, (i % 17) as u32 + 1);
            queries.push(ScheduledQuery {
                at: SimTime::from_secs(i as u64),
                target,
                source: "198.51.100.7".parse().unwrap(),
                category: SourceCategory::OtherPrefix,
            });
        }
        (
            Schedule {
                queries,
                end: SimTime::from_secs(n as u64),
            },
            asn_of,
        )
    }

    #[test]
    fn partition_is_exhaustive_and_by_as() {
        let (s, asn_of) = sched(500);
        let parts = partition_schedule(&s, &asn_of, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.queries.len()).sum::<usize>(), 500);
        for (sid, part) in parts.iter().enumerate() {
            assert_eq!(part.end, s.end);
            for q in &part.queries {
                let asn = asn_of[&q.target];
                assert_eq!(shard_of_asn(asn, 4), sid);
            }
            // Relative order within a shard is the global order.
            for w in part.queries.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
        }
    }

    #[test]
    fn single_shard_partition_is_identity() {
        let (s, asn_of) = sched(50);
        let parts = partition_schedule(&s, &asn_of, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].queries, s.queries);
    }

    #[test]
    fn shard_count_clamps_to_distinct_destination_ases() {
        // 500 queries over 17 distinct ASNs: asking for 64 shards must not
        // produce 47 empty engines.
        let (s, asn_of) = sched(500);
        let parts = partition_schedule(&s, &asn_of, 64);
        assert_eq!(parts.len(), 17);
        assert_eq!(parts.iter().map(|p| p.queries.len()).sum::<usize>(), 500);
        // Still grouped per AS.
        for (sid, part) in parts.iter().enumerate() {
            for q in &part.queries {
                assert_eq!(shard_of_asn(asn_of[&q.target], 17), sid);
            }
        }
        // An empty schedule clamps to a single (empty) shard.
        let empty = Schedule {
            queries: Vec::new(),
            end: s.end,
        };
        let parts = partition_schedule(&empty, &asn_of, 8);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn shard_of_asn_is_stable() {
        for asn in [0u32, 1, 64512, 4_200_000_000] {
            let a = shard_of_asn(asn, 8);
            assert_eq!(a, shard_of_asn(asn, 8));
            assert!(a < 8);
            assert_eq!(shard_of_asn(asn, 1), 0);
        }
    }

    #[test]
    fn scanner_stats_merge_sums() {
        let mut a = ScannerStats {
            spoofed_sent: 3,
            open_probes: 1,
            ..ScannerStats::default()
        };
        a.merge(ScannerStats {
            spoofed_sent: 5,
            tcp_probes: 2,
            ..ScannerStats::default()
        });
        assert_eq!(a.spoofed_sent, 8);
        assert_eq!(a.open_probes, 1);
        assert_eq!(a.tcp_probes, 2);
    }
}
