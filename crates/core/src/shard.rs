//! AS-sharded parallel survey execution.
//!
//! The paper ran its survey from a single vantage over four weeks; the
//! simulation compresses the window but still walks every probe through one
//! discrete-event engine. Sharding splits that work: scheduled probes are
//! partitioned by *destination AS* into `S` shards, each shard runs its
//! slice against its own engine over an identical generated world, and the
//! per-shard artifacts are folded back together deterministically.
//!
//! Determinism contract: because
//!
//! * the schedule is a per-lane derivation (plans, phases and smoothed
//!   emission times are pure functions of `(seed, target)` and the lane's
//!   own traffic — see [`crate::schedule`]) and shards are unions of whole
//!   lanes ([`assign_lanes`]) — a probe fires at the same instant in every
//!   sharding configuration,
//! * every host draws from its own seed-derived RNG stream (see
//!   [`bcd_netsim::stream_seed`]), so a resolver's behaviour depends only on
//!   the traffic *it* sees — and all probes for one AS land in one lane,
//!   hence one shard,
//! * human-noise injection is a pure function of probe identity
//!   ([`crate::scanner`]), and
//! * the merge re-establishes one canonical entry order ([`canonical_sort`])
//!   and sums counters with [`Merge`] impls in shard-id order,
//!
//! every analysis and report renders byte-identically for `S = 1` and
//! `S = N` (the equivalence suite in `tests/shard_equivalence.rs` locks
//! this in).

use crate::observe::DnsTotals;
use crate::scanner::ScannerStats;
use bcd_dns::QueryLogEntry;
use bcd_dnswire::RCode;
use bcd_netsim::{FlightRecorder, Merge, NetCounters, SimTime, Trace};
use bcd_obs::MetricsRegistry;
use std::net::IpAddr;
use std::time::Duration;

/// Shard count requested via the `BCD_SHARDS` environment variable, if any.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("BCD_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
}

/// Worker-pool size requested via the `BCD_WORKERS` environment variable,
/// if any. Workers execute shard partitions by stealing the next unstarted
/// shard; the count affects wall-clock only, never output bytes (see
/// [`crate::ExperimentConfig::workers`]).
pub fn workers_from_env() -> Option<usize> {
    std::env::var("BCD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
}

/// The shard an AS belongs to: a stable FNV-1a hash of the ASN, reduced
/// modulo the shard count. Stable across runs, platforms, and shard-count
/// choices for `shards == 1` (everything maps to shard 0).
pub fn shard_of_asn(asn: u32, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in asn.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Map rate lanes onto shards: the non-empty lanes (per the schedule
/// census) are dealt round-robin onto the effective shard count, which is
/// clamped to the number of occupied lanes — surplus shards could only
/// ever receive empty schedules, yet each would still spin up an engine
/// and simulate the full horizon.
///
/// Returns `(lane → shard, effective shard count)`; empty lanes map to
/// `None`. Because a lane's schedule bytes are independent of the lane →
/// shard map (see [`crate::schedule`]), *any* shard count yields the same
/// merged result — the map only chooses which engine runs which lanes.
pub fn assign_lanes(lane_counts: &[u64], shards: usize) -> (Vec<Option<usize>>, usize) {
    let occupied = lane_counts.iter().filter(|&&c| c > 0).count();
    let shards = shards.max(1).min(occupied.max(1));
    let mut map = vec![None; lane_counts.len()];
    let mut rank = 0usize;
    for (lane, &count) in lane_counts.iter().enumerate() {
        if count > 0 {
            map[lane] = Some(rank % shards);
            rank += 1;
        }
    }
    (map, shards)
}

/// The lanes `assign_lanes` gave to shard `sid`, in lane order.
pub fn lanes_of_shard(lane_shard: &[Option<usize>], sid: usize) -> Vec<usize> {
    lane_shard
        .iter()
        .enumerate()
        .filter_map(|(lane, &s)| (s == Some(sid)).then_some(lane))
        .collect()
}

/// Re-establish the single canonical order of a merged query log.
///
/// Entries are keyed by `(time, qname, src, src_port, server, proto)` —
/// the qname encodes the probe's `ts.src.dst` serial (§3.3), so the key is
/// unique per logged query and the order is independent of which shard
/// contributed an entry.
pub fn canonical_sort(entries: &mut [QueryLogEntry]) {
    entries.sort_by(canonical_cmp);
}

/// The canonical entry ordering used by [`canonical_sort`] and the k-way
/// streaming merge.
pub fn canonical_cmp(a: &QueryLogEntry, b: &QueryLogEntry) -> std::cmp::Ordering {
    (
        a.time,
        &a.qname,
        a.src,
        a.src_port,
        a.server,
        proto_rank(a.proto),
    )
        .cmp(&(
            b.time,
            &b.qname,
            b.src,
            b.src_port,
            b.server,
            proto_rank(b.proto),
        ))
}

fn proto_rank(p: bcd_dns::LogProto) -> u8 {
    match p {
        bcd_dns::LogProto::Udp => 0,
        bcd_dns::LogProto::Tcp => 1,
    }
}

impl Merge for ScannerStats {
    fn merge(&mut self, other: ScannerStats) {
        self.spoofed_sent += other.spoofed_sent;
        self.followup_sets += other.followup_sets;
        self.followup_queries += other.followup_queries;
        self.open_probes += other.open_probes;
        self.tcp_probes += other.tcp_probes;
        self.human_lookups += other.human_lookups;
        self.responses_received += other.responses_received;
        self.refused_responses += other.refused_responses;
        self.opted_out += other.opted_out;
        self.outage_deferrals += other.outage_deferrals;
    }
}

/// Everything one shard's run produces, in `Send`-able form (worker shards
/// run on their own threads; the world itself stays thread-local).
pub struct ShardOutcome {
    pub entries: Vec<QueryLogEntry>,
    pub scanner_stats: ScannerStats,
    pub responses: Vec<(SimTime, IpAddr, RCode)>,
    pub counters: NetCounters,
    pub events: u64,
    pub budget_exhausted: bool,
    /// Deliver events still queued when the horizon ended (in-flight
    /// packets; the conservation invariant needs them to balance `sent`).
    pub pending_deliveries: u64,
    /// Packet capture, when the world config enables one.
    pub trace: Option<Trace>,
    /// Causal span flight recorder, when the run armed one (`BCD_TRACE`).
    pub flight: Option<FlightRecorder>,
    /// Resolver counter totals harvested from this shard's runtime.
    pub dns: DnsTotals,
    /// This shard's layout-class metric slice (see [`crate::observe`]).
    pub metrics: MetricsRegistry,
    /// Wall-clock time the shard's engine run took (merge: summed — the
    /// aggregate is total engine CPU time; per-shard walls live in the run
    /// profile).
    pub wall: Duration,
    /// Wall-clock time spent spawning the runtime and warming up the shard
    /// (node construction, ACL/zone setup) before the engine ran.
    pub spawn_wall: Duration,
    /// Wall-clock time spent harvesting artifacts (log snapshot, counter
    /// extraction) after the engine finished.
    pub extract_wall: Duration,
}

/// Absorb pre-sorted per-shard streams into one exactly-reserved vec via
/// a k-way merge (linear head scan — shard counts are ≤ 64, and the first
/// key component almost always decides). Compared to extend-then-resort
/// this bounds merge memory to `total + S` heads: no doubling reallocs, no
/// O(N log N) global re-sort over entries that each arrive sorted.
///
/// Ties (possible in `responses`, whose key is not unique) break toward
/// the lower shard id, which is exactly the order the old stable
/// extend-then-sort produced.
fn kway_merge<T>(
    mut streams: Vec<std::vec::IntoIter<T>>,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) -> Vec<T> {
    let total: usize = streams.iter().map(|s| s.as_slice().len()).sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, s) in streams.iter().enumerate() {
            let Some(head) = s.as_slice().first() else {
                continue;
            };
            match best {
                Some(b)
                    if cmp(streams[b].as_slice().first().unwrap(), head)
                        != std::cmp::Ordering::Greater => {}
                _ => best = Some(i),
            }
        }
        match best {
            Some(i) => out.push(streams[i].next().unwrap()),
            None => break,
        }
    }
    out
}

/// Fold shard outcomes (in shard-id order) into one logical run.
///
/// Query-log entries arrive canonically pre-sorted per shard (the shard
/// runner sorts at extraction, in parallel) and are absorbed by a
/// streaming k-way merge; scanner responses likewise by `(time,
/// responder)`; counters and stats summed via [`Merge`].
pub fn merge_outcomes(outcomes: Vec<ShardOutcome>) -> ShardOutcome {
    let mut merged = ShardOutcome {
        entries: Vec::new(),
        scanner_stats: ScannerStats::default(),
        responses: Vec::new(),
        counters: NetCounters::default(),
        events: 0,
        budget_exhausted: false,
        pending_deliveries: 0,
        trace: None,
        flight: None,
        dns: DnsTotals::default(),
        metrics: MetricsRegistry::new(),
        wall: Duration::ZERO,
        spawn_wall: Duration::ZERO,
        extract_wall: Duration::ZERO,
    };
    let mut entry_streams: Vec<std::vec::IntoIter<QueryLogEntry>> =
        Vec::with_capacity(outcomes.len());
    let mut response_streams: Vec<std::vec::IntoIter<(SimTime, IpAddr, RCode)>> =
        Vec::with_capacity(outcomes.len());
    for o in outcomes {
        debug_assert!(
            o.entries
                .windows(2)
                .all(|w| canonical_cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater),
            "shard entries must arrive canonically sorted"
        );
        entry_streams.push(o.entries.into_iter());
        response_streams.push(o.responses.into_iter());
        merged.scanner_stats.merge(o.scanner_stats);
        merged.counters.merge(o.counters);
        merged.events += o.events;
        merged.budget_exhausted |= o.budget_exhausted;
        merged.pending_deliveries += o.pending_deliveries;
        merged.dns.merge(o.dns);
        merged.metrics.merge(o.metrics);
        merged.wall += o.wall;
        merged.spawn_wall += o.spawn_wall;
        merged.extract_wall += o.extract_wall;
        match (&mut merged.trace, o.trace) {
            (Some(t), Some(other)) => t.merge(other),
            (t @ None, Some(other)) => *t = Some(other),
            _ => {}
        }
        match (&mut merged.flight, o.flight) {
            (Some(f), Some(other)) => f.merge(other),
            (f @ None, Some(other)) => *f = Some(other),
            _ => {}
        }
    }
    merged.entries = kway_merge(entry_streams, canonical_cmp);
    merged.responses = kway_merge(response_streams, |a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_lanes_covers_every_occupied_lane() {
        let counts: Vec<u64> = (0..64u64)
            .map(|l| if l % 3 == 0 { l + 1 } else { 0 })
            .collect();
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        let (map, shards) = assign_lanes(&counts, 4);
        assert_eq!(shards, 4);
        for (lane, &count) in counts.iter().enumerate() {
            assert_eq!(map[lane].is_some(), count > 0, "lane {lane}");
            if let Some(sid) = map[lane] {
                assert!(sid < shards);
            }
        }
        // Every shard gets some lanes, and the union is exactly the
        // occupied set.
        let mut total = 0;
        for sid in 0..shards {
            let lanes = lanes_of_shard(&map, sid);
            assert!(!lanes.is_empty());
            total += lanes.len();
        }
        assert_eq!(total, occupied);
    }

    #[test]
    fn assign_lanes_clamps_to_occupied_lanes() {
        // 3 occupied lanes: asking for 8 shards must not produce 5 empty
        // engines.
        let mut counts = vec![0u64; 64];
        counts[3] = 10;
        counts[17] = 5;
        counts[40] = 1;
        let (map, shards) = assign_lanes(&counts, 8);
        assert_eq!(shards, 3);
        assert_eq!(lanes_of_shard(&map, 0), vec![3]);
        assert_eq!(lanes_of_shard(&map, 1), vec![17]);
        assert_eq!(lanes_of_shard(&map, 2), vec![40]);
        // No occupied lanes clamps to a single (empty) shard.
        let (map, shards) = assign_lanes(&vec![0u64; 64], 8);
        assert_eq!(shards, 1);
        assert!(map.iter().all(Option::is_none));
    }

    #[test]
    fn kway_merge_is_stable_across_streams() {
        // Equal keys must come out in stream order (the old stable
        // extend-then-sort contract).
        let a = vec![(1, 'a'), (3, 'a'), (3, 'a')];
        let b = vec![(1, 'b'), (2, 'b'), (3, 'b')];
        let merged = kway_merge(vec![a.into_iter(), b.into_iter()], |x, y| x.0.cmp(&y.0));
        assert_eq!(
            merged,
            vec![(1, 'a'), (1, 'b'), (2, 'b'), (3, 'a'), (3, 'a'), (3, 'b')]
        );
    }

    #[test]
    fn shard_of_asn_is_stable() {
        for asn in [0u32, 1, 64512, 4_200_000_000] {
            let a = shard_of_asn(asn, 8);
            assert_eq!(a, shard_of_asn(asn, 8));
            assert!(a < 8);
            assert_eq!(shard_of_asn(asn, 1), 0);
        }
    }

    #[test]
    fn scanner_stats_merge_sums() {
        let mut a = ScannerStats {
            spoofed_sent: 3,
            open_probes: 1,
            ..ScannerStats::default()
        };
        a.merge(ScannerStats {
            spoofed_sent: 5,
            tcp_probes: 2,
            ..ScannerStats::default()
        });
        assert_eq!(a.spoofed_sent, 8);
        assert_eq!(a.open_probes, 1);
        assert_eq!(a.tcp_probes, 2);
    }
}
