//! Spoofed-source selection (§3.2).
//!
//! For each target we build up to 101 spoofed sources:
//!
//! * **other-prefix** — up to 97 addresses, one from each other /24 (IPv4)
//!   or /64 (IPv6) announced by the target's AS. The first and last
//!   address of a /24 are excluded (network/broadcast); IPv6 selection is
//!   restricted to the first 100 addresses of the /64 minus the first two
//!   (the hitlist-informed heuristic),
//! * **same-prefix** — one address from the target's own /24 or /64,
//!   distinct from the target,
//! * **private / unique-local** — `192.168.0.10` or `fc00::10`,
//! * **destination-as-source** — the target address itself,
//! * **loopback** — `127.0.0.1` or `::1`.

use bcd_netsim::{Packet, Prefix, PrefixTable};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::net::IpAddr;

/// Maximum number of other-prefix sources per target (the paper's 97 —
/// chosen so the total came to "an even 100" before a fifth category was
/// added, footnote 2).
pub const MAX_OTHER_PREFIX: usize = 97;

/// The five §3.2 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceCategory {
    OtherPrefix,
    SamePrefix,
    Private,
    DstAsSrc,
    Loopback,
}

impl SourceCategory {
    /// All categories in presentation order (Table 3 rows).
    pub const ALL: [SourceCategory; 5] = [
        SourceCategory::OtherPrefix,
        SourceCategory::SamePrefix,
        SourceCategory::Private,
        SourceCategory::DstAsSrc,
        SourceCategory::Loopback,
    ];
}

impl fmt::Display for SourceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceCategory::OtherPrefix => "Other Prefix",
            SourceCategory::SamePrefix => "Same Prefix",
            SourceCategory::Private => "Private",
            SourceCategory::DstAsSrc => "Dst-as-Src",
            SourceCategory::Loopback => "Loopback",
        };
        f.write_str(s)
    }
}

/// The spoofed-source plan for one target.
#[derive(Debug, Clone)]
pub struct SourcePlan {
    pub target: IpAddr,
    /// `(category, spoofed source)` pairs, at most 101.
    pub sources: Vec<(SourceCategory, IpAddr)>,
}

impl SourcePlan {
    /// Build the plan for `target` using the announced routes of its AS.
    /// Equivalent to [`SourcePlan::build_with_hitlist`] with no hitlist.
    pub fn build(target: IpAddr, routes: &PrefixTable, rng: &mut ChaCha8Rng) -> SourcePlan {
        SourcePlan::build_with_hitlist(target, routes, &[], rng)
    }

    /// Build the plan, preferring IPv6 /64s that appear in `hitlist` — the
    /// §3.2 heuristic ("we gave preference to /64 prefixes that contained
    /// IPv6 addresses from an IPv6 hit list — a sign of observed activity
    /// within that prefix") that avoids blindly probing the sparse v6
    /// space. The hitlist has no effect on IPv4 targets.
    pub fn build_with_hitlist(
        target: IpAddr,
        routes: &PrefixTable,
        hitlist: &[Prefix],
        rng: &mut ChaCha8Rng,
    ) -> SourcePlan {
        let mut sources = Vec::with_capacity(101);
        let v6 = target.is_ipv6();
        let sub_len = if v6 { 64 } else { 24 };
        let own_subnet = Prefix::subprefix_of(target, sub_len);

        for p in other_prefixes(target, routes, hitlist) {
            sources.push((SourceCategory::OtherPrefix, pick_in_prefix(p, rng, None)));
        }

        // Same-prefix: an address in the target's own subnet, ≠ target.
        sources.push((
            SourceCategory::SamePrefix,
            pick_in_prefix(own_subnet, rng, Some(target)),
        ));

        // Private / unique-local.
        let private: IpAddr = if v6 {
            "fc00::10".parse().unwrap()
        } else {
            "192.168.0.10".parse().unwrap()
        };
        sources.push((SourceCategory::Private, private));

        // Destination-as-source.
        sources.push((SourceCategory::DstAsSrc, target));

        // Loopback.
        sources.push((SourceCategory::Loopback, Packet::loopback_addr(v6)));

        SourcePlan { target, sources }
    }

    /// Build the plan from a seed salt alone: the RNG is seeded from a
    /// hash of the canonical target bytes, so the plan depends only on
    /// `(salt, target, routes, hitlist)` — never on how many *other*
    /// targets were planned before this one. This is what lets each shard
    /// derive exactly its own targets' plans and still agree byte-for-byte
    /// with every other shard layout (the PR 8 txid/sport trick applied to
    /// planning).
    pub fn build_deterministic(
        target: IpAddr,
        routes: &PrefixTable,
        hitlist: &[Prefix],
        salt: u64,
    ) -> SourcePlan {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(crate::hash::addr_hash(salt, target, b"plan"));
        SourcePlan::build_with_hitlist(target, routes, hitlist, &mut rng)
    }

    /// The exact length [`SourcePlan::build_with_hitlist`] would produce,
    /// without drawing any source addresses: the capped other-prefix count
    /// plus the four per-target categories. The census prepass calls this
    /// for every target to size lanes and the window extension before any
    /// schedule memory is allocated.
    pub fn planned_len(target: IpAddr, routes: &PrefixTable, hitlist: &[Prefix]) -> usize {
        other_prefixes(target, routes, hitlist).len() + 4
    }

    /// Number of sources in the plan.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if the plan has no sources (cannot happen via [`SourcePlan::build`]).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

/// The capped other-prefix list for `target` (§3.2): hitlist-preferred
/// /64s first, then the AS's announced space divided into /24s or /64s,
/// spread-capped at [`MAX_OTHER_PREFIX`]. Shared by the plan builder
/// (which draws one source per prefix) and [`SourcePlan::planned_len`]
/// (which only counts) so the two can never disagree.
fn other_prefixes(target: IpAddr, routes: &PrefixTable, hitlist: &[Prefix]) -> Vec<Prefix> {
    let v6 = target.is_ipv6();
    let sub_len = if v6 { 64 } else { 24 };
    let own_subnet = Prefix::subprefix_of(target, sub_len);
    let Some(asn) = routes.origin(target) else {
        return Vec::new();
    };
    let mut other: Vec<Prefix> = Vec::new();
    // Hitlist preference (IPv6 only): this AS's active /64s go in first,
    // before any blind enumeration — "we gave preference to /64 prefixes
    // that contained IPv6 addresses from an IPv6 hit list" (§3.2).
    if v6 {
        for h in hitlist {
            if h.is_v6()
                && h.len() == sub_len
                && *h != own_subnet
                && routes.origin(h.network()) == Some(asn)
            {
                other.push(*h);
            }
            if other.len() >= MAX_OTHER_PREFIX {
                break;
            }
        }
    }
    let preferred: std::collections::HashSet<Prefix> = other.iter().copied().collect();
    // Divide the rest of the AS's space into /24s or /64s.
    'walk: for p in routes.prefixes_of(asn) {
        if p.is_v6() != v6 {
            continue;
        }
        for sub in p.subprefixes(sub_len) {
            if sub != own_subnet && !preferred.contains(&sub) {
                other.push(sub);
            }
            if other.len() >= MAX_OTHER_PREFIX * 4 {
                break 'walk;
            }
        }
    }
    // Cap at 97 prefixes with a deterministic spread over the
    // non-preferred tail (hitlist entries sit at the head and always
    // survive the cap).
    if other.len() > MAX_OTHER_PREFIX {
        let head = preferred.len().min(MAX_OTHER_PREFIX);
        let tail: Vec<Prefix> = other.split_off(head);
        let need = MAX_OTHER_PREFIX - head;
        if let Some(step) = tail.len().checked_div(need) {
            let step = step.max(1);
            other.extend(tail.into_iter().step_by(step).take(need));
        }
    }
    other
}

/// Classify an observed (spoofed) source relative to its target — the
/// inverse of planning, used by the analysis side which only sees the
/// `src`/`dst` labels recovered from query names.
pub fn classify_source(src: IpAddr, dst: IpAddr, routes: &PrefixTable) -> Option<SourceCategory> {
    use bcd_netsim::prefix::special;
    if special::is_loopback(src) {
        return Some(SourceCategory::Loopback);
    }
    if src == dst {
        return Some(SourceCategory::DstAsSrc);
    }
    if special::is_private_or_ula(src) {
        return Some(SourceCategory::Private);
    }
    if src.is_ipv6() == dst.is_ipv6() {
        let sub = if dst.is_ipv6() { 64 } else { 24 };
        if Prefix::subprefix_of(dst, sub).contains(src) {
            return Some(SourceCategory::SamePrefix);
        }
    }
    match (routes.origin(src), routes.origin(dst)) {
        (Some(a), Some(b)) if a == b => Some(SourceCategory::OtherPrefix),
        _ => None,
    }
}

/// A random usable address inside `prefix`, avoiding `exclude` and the
/// first/last addresses (IPv4 network/broadcast; IPv6 router addresses per
/// the paper's "first two" rule), and restricted to the first 100 hosts of
/// an IPv6 /64.
fn pick_in_prefix(prefix: Prefix, rng: &mut ChaCha8Rng, exclude: Option<IpAddr>) -> IpAddr {
    let (lo, hi): (u128, u128) = if prefix.is_v6() {
        (2, 99)
    } else {
        (1, prefix.size().saturating_sub(2))
    };
    for _ in 0..64 {
        let i = rng.gen_range(lo..=hi.max(lo));
        let addr = prefix.nth(i).expect("offset inside prefix");
        if Some(addr) != exclude {
            return addr;
        }
    }
    // Degenerate fallback (a /31-like prefix with the target in it).
    prefix.nth(lo).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_netsim::Asn;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    fn routes_with(prefixes: &[&str], asn: u32) -> PrefixTable {
        let mut t = PrefixTable::new();
        for p in prefixes {
            t.announce(p.parse().unwrap(), Asn(asn));
        }
        t
    }

    #[test]
    fn v4_plan_has_all_categories() {
        let routes = routes_with(&["203.0.112.0/22"], 7); // 4 /24s
        let target: IpAddr = "203.0.112.10".parse().unwrap();
        let plan = SourcePlan::build(target, &routes, &mut rng());
        let count = |c: SourceCategory| plan.sources.iter().filter(|(k, _)| *k == c).count();
        assert_eq!(count(SourceCategory::OtherPrefix), 3); // 4 /24s minus own
        assert_eq!(count(SourceCategory::SamePrefix), 1);
        assert_eq!(count(SourceCategory::Private), 1);
        assert_eq!(count(SourceCategory::DstAsSrc), 1);
        assert_eq!(count(SourceCategory::Loopback), 1);
        assert_eq!(plan.len(), 7);

        // Category semantics.
        for (cat, src) in &plan.sources {
            match cat {
                SourceCategory::OtherPrefix => {
                    assert!(!Prefix::subprefix_of(target, 24).contains(*src));
                    assert_eq!(routes.origin(*src), Some(Asn(7)));
                }
                SourceCategory::SamePrefix => {
                    assert!(Prefix::subprefix_of(target, 24).contains(*src));
                    assert_ne!(*src, target);
                }
                SourceCategory::Private => assert_eq!(src.to_string(), "192.168.0.10"),
                SourceCategory::DstAsSrc => assert_eq!(*src, target),
                SourceCategory::Loopback => assert_eq!(src.to_string(), "127.0.0.1"),
            }
        }
    }

    #[test]
    fn other_prefix_capped_at_97() {
        // A /14 has 1024 /24s; the plan must cap at 97.
        let routes = routes_with(&["16.0.0.0/14"], 9);
        let target: IpAddr = "16.0.0.5".parse().unwrap();
        let plan = SourcePlan::build(target, &routes, &mut rng());
        let other = plan
            .sources
            .iter()
            .filter(|(k, _)| *k == SourceCategory::OtherPrefix)
            .count();
        assert_eq!(other, MAX_OTHER_PREFIX);
        assert_eq!(plan.len(), 101, "the paper's 'at most 101 sources'");
    }

    #[test]
    fn v4_avoids_network_and_broadcast() {
        let routes = routes_with(&["203.0.112.0/23"], 7);
        let target: IpAddr = "203.0.112.10".parse().unwrap();
        for seed in 0..50 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let plan = SourcePlan::build(target, &routes, &mut r);
            for (_, src) in &plan.sources {
                if let IpAddr::V4(a) = src {
                    let last = a.octets()[3];
                    if Prefix::subprefix_of(*src, 24).contains(*src)
                        && routes.origin(*src).is_some()
                    {
                        assert_ne!(last, 0, "network address used");
                        assert_ne!(last, 255, "broadcast address used");
                    }
                }
            }
        }
    }

    #[test]
    fn v6_plan_uses_first_hundred_minus_two() {
        let routes = routes_with(&["2600:9::/48"], 11); // 65536 /64s -> cap 97
        let target: IpAddr = "2600:9:0:5::42".parse().unwrap();
        let plan = SourcePlan::build(target, &routes, &mut rng());
        let mut other = 0;
        for (cat, src) in &plan.sources {
            match cat {
                SourceCategory::OtherPrefix | SourceCategory::SamePrefix => {
                    let sub = Prefix::subprefix_of(*src, 64);
                    let idx = sub.index_of(*src).unwrap();
                    assert!((2..100).contains(&idx), "v6 host offset {idx}");
                    if *cat == SourceCategory::OtherPrefix {
                        other += 1;
                    }
                }
                SourceCategory::Private => assert_eq!(src.to_string(), "fc00::10"),
                SourceCategory::Loopback => assert_eq!(src.to_string(), "::1"),
                SourceCategory::DstAsSrc => assert_eq!(*src, target),
            }
        }
        assert_eq!(other, MAX_OTHER_PREFIX);
    }

    #[test]
    fn unrouted_target_still_gets_non_prefix_categories() {
        let routes = PrefixTable::new();
        let target: IpAddr = "203.0.112.10".parse().unwrap();
        let plan = SourcePlan::build(target, &routes, &mut rng());
        // No other-prefix sources, but the rest are present.
        assert_eq!(plan.len(), 4);
        assert!(plan
            .sources
            .iter()
            .all(|(k, _)| *k != SourceCategory::OtherPrefix));
    }

    #[test]
    fn planned_len_matches_built_plan() {
        let cases: &[(&[&str], &str)] = &[
            (&["203.0.112.0/22"], "203.0.112.10"),
            (&["16.0.0.0/14"], "16.0.0.5"),
            (&["2600:9::/48"], "2600:9:0:5::42"),
            (&[], "203.0.112.10"),
        ];
        for (prefixes, target) in cases {
            let routes = routes_with(prefixes, 7);
            let target: IpAddr = target.parse().unwrap();
            let plan = SourcePlan::build(target, &routes, &mut rng());
            assert_eq!(
                SourcePlan::planned_len(target, &routes, &[]),
                plan.len(),
                "census length must equal built length for {target}"
            );
        }
    }

    #[test]
    fn deterministic_build_independent_of_context() {
        // The whole point: the plan depends only on (salt, target), not on
        // any shared RNG stream position — two "shards" planning different
        // subsets agree on the shared target.
        let routes = routes_with(&["16.0.0.0/14"], 9);
        let target: IpAddr = "16.0.1.5".parse().unwrap();
        let a = SourcePlan::build_deterministic(target, &routes, &[], 42);
        // Plan other targets "first" — no effect on the shared target.
        let _ = SourcePlan::build_deterministic("16.0.2.9".parse().unwrap(), &routes, &[], 42);
        let b = SourcePlan::build_deterministic(target, &routes, &[], 42);
        assert_eq!(a.sources, b.sources);
        let c = SourcePlan::build_deterministic(target, &routes, &[], 43);
        assert_ne!(a.sources, c.sources, "salt must matter");
    }

    #[test]
    fn same_prefix_never_equals_target() {
        let routes = routes_with(&["203.0.112.0/24"], 7);
        let target: IpAddr = "203.0.112.10".parse().unwrap();
        for seed in 0..200 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let plan = SourcePlan::build(target, &routes, &mut r);
            let same = plan
                .sources
                .iter()
                .find(|(k, _)| *k == SourceCategory::SamePrefix)
                .unwrap();
            assert_ne!(same.1, target);
        }
    }
}
