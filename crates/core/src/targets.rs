//! Target extraction from the DITL root trace (§3.1).
//!
//! Pipeline, exactly as the paper describes:
//!
//! 1. take every source address seen at the root servers,
//! 2. de-duplicate,
//! 3. exclude IANA special-purpose addresses ("no legitimate entries in the
//!    public routing table" — the paper dropped ~4M),
//! 4. exclude addresses with no announced route (the paper dropped 36,027 —
//!    without a route there is no AS to derive other-prefix sources from),
//! 5. attribute each survivor to its origin ASN.

use bcd_netsim::prefix::special;
use bcd_netsim::{Asn, PrefixTable};
use bcd_worldgen::DitlRecord;
use std::collections::BTreeSet;
use std::net::IpAddr;

/// A target address with its origin AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    pub addr: IpAddr,
    pub asn: Asn,
}

/// The extracted target list plus exclusion accounting.
#[derive(Debug, Default)]
pub struct TargetSet {
    pub v4: Vec<Target>,
    pub v6: Vec<Target>,
    /// Unique addresses dropped as special-purpose.
    pub excluded_special: usize,
    /// Unique addresses dropped for lacking an announced route.
    pub excluded_unrouted: usize,
    /// Candidates rejected by [`TargetSet::from_candidates`] for violating
    /// the deduplicated-and-sorted contract (duplicates or out-of-order
    /// entries). Always 0 for a well-formed stream; non-zero means the
    /// producer is broken and would previously have double-counted targets
    /// in release builds.
    pub excluded_unsorted: usize,
}

impl TargetSet {
    /// Run the extraction pipeline over a DITL trace.
    pub fn extract(trace: &[DitlRecord], routes: &PrefixTable) -> TargetSet {
        let unique: BTreeSet<IpAddr> = trace.iter().map(|r| r.src).collect();
        Self::from_unique_sources(unique.into_iter(), routes)
    }

    /// Run the back half of the pipeline (steps 3–5) over an already
    /// deduplicated source list, as produced by the streaming DITL
    /// generator (`World::ditl_candidates`). Equivalent to [`extract`] on
    /// the materialized trace: the stream dedupes and sorts, so only the
    /// exclusion/attribution steps remain.
    ///
    /// The dedup-and-sorted contract is enforced in release builds too: a
    /// duplicate or out-of-order candidate is rejected and counted in
    /// [`TargetSet::excluded_unsorted`] rather than silently inflating the
    /// target population (a broken producer used to get past the old
    /// `debug_assert!` and double-count).
    pub fn from_candidates(unique_sorted: &[IpAddr], routes: &PrefixTable) -> TargetSet {
        let mut out = TargetSet::default();
        let mut last: Option<IpAddr> = None;
        for &addr in unique_sorted {
            if last.is_some_and(|l| addr <= l) {
                out.excluded_unsorted += 1;
                continue;
            }
            last = Some(addr);
            out.push_source(addr, routes);
        }
        debug_assert_eq!(
            out.excluded_unsorted, 0,
            "from_candidates fed an unsorted/duplicated stream"
        );
        out
    }

    fn from_unique_sources(
        unique: impl Iterator<Item = IpAddr>,
        routes: &PrefixTable,
    ) -> TargetSet {
        let mut out = TargetSet::default();
        for addr in unique {
            out.push_source(addr, routes);
        }
        out
    }

    /// Exclusion/attribution for one unique candidate (steps 3–5).
    fn push_source(&mut self, addr: IpAddr, routes: &PrefixTable) {
        if special::is_special_purpose(addr) {
            self.excluded_special += 1;
            return;
        }
        let Some(asn) = routes.origin(addr) else {
            self.excluded_unrouted += 1;
            return;
        };
        let t = Target { addr, asn };
        if addr.is_ipv6() {
            self.v6.push(t);
        } else {
            self.v4.push(t);
        }
    }

    /// Total targets across both families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True if no targets were extracted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All targets, v4 first.
    pub fn iter(&self) -> impl Iterator<Item = &Target> {
        self.v4.iter().chain(self.v6.iter())
    }

    /// The target at flat index `i` (v4 first, then v6 — the [`iter`]
    /// order). Because each family vec is sorted by address and `IpAddr`'s
    /// `Ord` places every v4 before every v6, the flat index is monotone in
    /// the target address: comparing indices is comparing addresses. The
    /// compact schedule leans on this to store a `u32` per probe instead of
    /// a 17-byte `IpAddr`.
    ///
    /// [`iter`]: TargetSet::iter
    pub fn get(&self, i: usize) -> Target {
        if i < self.v4.len() {
            self.v4[i]
        } else {
            self.v6[i - self.v4.len()]
        }
    }

    /// Distinct ASNs among v4 targets.
    pub fn asns_v4(&self) -> BTreeSet<Asn> {
        self.v4.iter().map(|t| t.asn).collect()
    }

    /// Distinct ASNs among v6 targets.
    pub fn asns_v6(&self) -> BTreeSet<Asn> {
        self.v6.iter().map(|t| t.asn).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_dnswire::Name;
    use bcd_netsim::{Prefix, SimTime};

    fn rec(src: &str) -> DitlRecord {
        DitlRecord {
            time: SimTime::ZERO,
            src: src.parse().unwrap(),
            src_port: 1234,
            qname: "q.example.com".parse::<Name>().unwrap(),
        }
    }

    fn routes() -> PrefixTable {
        let mut t = PrefixTable::new();
        t.announce("203.0.112.0/24".parse::<Prefix>().unwrap(), Asn(100));
        t.announce("2600:1::/32".parse::<Prefix>().unwrap(), Asn(200));
        t
    }

    #[test]
    fn pipeline_dedupes_and_excludes() {
        let trace = vec![
            rec("203.0.112.5"),
            rec("203.0.112.5"), // duplicate
            rec("203.0.112.9"), // second target, same AS
            rec("192.168.1.1"), // special: private
            rec("127.0.0.1"),   // special: loopback
            rec("8.8.8.8"),     // no route announced
            rec("2600:1::42"),  // v6 target
            rec("fc00::1"),     // special: ULA
        ];
        let set = TargetSet::extract(&trace, &routes());
        assert_eq!(set.v4.len(), 2);
        assert_eq!(set.v6.len(), 1);
        assert_eq!(set.excluded_special, 3);
        assert_eq!(set.excluded_unrouted, 1);
        assert_eq!(set.len(), 3);
        assert_eq!(set.v4[0].asn, Asn(100));
        assert_eq!(set.v6[0].asn, Asn(200));
        assert_eq!(set.asns_v4().len(), 1);
        assert_eq!(set.asns_v6().len(), 1);
    }

    #[test]
    fn empty_trace_yields_empty_set() {
        let set = TargetSet::extract(&[], &routes());
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn flat_index_is_monotone_in_address() {
        let trace = vec![
            rec("203.0.112.9"),
            rec("203.0.112.5"),
            rec("2600:1::42"),
            rec("2600:1::7"),
        ];
        let set = TargetSet::extract(&trace, &routes());
        assert_eq!(set.len(), 4);
        for i in 1..set.len() {
            assert!(set.get(i - 1).addr < set.get(i).addr);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "unsorted"))]
    fn from_candidates_rejects_duplicates_and_disorder() {
        // Release builds must reject rather than double-count; debug builds
        // additionally assert so the broken producer is caught in tests.
        let candidates: Vec<IpAddr> = vec![
            "203.0.112.5".parse().unwrap(),
            "203.0.112.5".parse().unwrap(), // duplicate
            "203.0.112.9".parse().unwrap(),
            "203.0.112.7".parse().unwrap(), // out of order
        ];
        let set = TargetSet::from_candidates(&candidates, &routes());
        assert_eq!(set.v4.len(), 2, "only the in-order unique survivors");
        assert_eq!(set.excluded_unsorted, 2);
    }

    #[test]
    fn from_candidates_accepts_well_formed_stream() {
        let candidates: Vec<IpAddr> = vec![
            "203.0.112.5".parse().unwrap(),
            "203.0.112.9".parse().unwrap(),
            "2600:1::42".parse().unwrap(),
        ];
        let set = TargetSet::from_candidates(&candidates, &routes());
        assert_eq!(set.excluded_unsorted, 0);
        assert_eq!(set.len(), 3);
    }
}
