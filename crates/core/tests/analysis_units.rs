//! Hand-constructed unit tests for the analysis layer: synthetic
//! authoritative logs with exactly-known contents, so each analysis rule
//! (lifetime filter, category exclusivity, band assignment, family
//! matching, passive outcomes…) is pinned down independent of the
//! simulator.

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::country::CountryReport;
use bcd_core::analysis::forwarding::ForwardingReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::passive::PassiveReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::analysis::AnalysisInput;
use bcd_core::qname::{QnameCodec, SuffixKind};
use bcd_core::sources::SourceCategory;
use bcd_core::targets::{Target, TargetSet};
use bcd_dns::log::{QueryLog, QueryLogEntry};
use bcd_dns::LogProto;
use bcd_geo::{Country, GeoDb};
use bcd_netsim::{Asn, Prefix, PrefixTable, SimDuration, SimTime};
use bcd_worldgen::DitlRecord;
use std::net::IpAddr;

const SCANNER_V4: &str = "9.9.0.10";
const SCANNER_V6: &str = "2600:9::10";

struct Fixture {
    codec: QnameCodec,
    routes: PrefixTable,
    geo: GeoDb,
    targets: TargetSet,
    log: QueryLog,
}

impl Fixture {
    fn new() -> Fixture {
        let mut routes = PrefixTable::new();
        // AS 100: two /24s (US). AS 200: one /24 (BR). AS 300: v6 (US).
        routes.announce("17.1.1.0/24".parse::<Prefix>().unwrap(), Asn(100));
        routes.announce("17.1.2.0/24".parse::<Prefix>().unwrap(), Asn(100));
        routes.announce("18.5.5.0/24".parse::<Prefix>().unwrap(), Asn(200));
        routes.announce("2600:100::/64".parse::<Prefix>().unwrap(), Asn(300));
        let mut geo = GeoDb::new();
        geo.insert("17.1.1.0/24".parse().unwrap(), Asn(100), Country("US"));
        geo.insert("17.1.2.0/24".parse().unwrap(), Asn(100), Country("US"));
        geo.insert("18.5.5.0/24".parse().unwrap(), Asn(200), Country("BR"));
        geo.insert("2600:100::/64".parse().unwrap(), Asn(300), Country("US"));

        let mut targets = TargetSet::default();
        for (addr, asn) in [
            ("17.1.1.53", 100u32),
            ("17.1.2.53", 100),
            ("18.5.5.53", 200),
        ] {
            targets.v4.push(Target {
                addr: addr.parse().unwrap(),
                asn: Asn(asn),
            });
        }
        targets.v6.push(Target {
            addr: "2600:100::53".parse().unwrap(),
            asn: Asn(300),
        });

        Fixture {
            codec: QnameCodec::new(&"dns-lab.org".parse().unwrap(), "x7"),
            routes,
            geo,
            targets,
            log: QueryLog::new(),
        }
    }

    /// Log a recursive-to-authoritative query: probe sent at `sent_s`,
    /// observed at `seen_s`, spoofed `src`, target `dst`, arriving from
    /// `from` at server `server`.
    #[allow(clippy::too_many_arguments)]
    fn entry(
        &mut self,
        sent_s: u64,
        seen_s: u64,
        src: &str,
        dst: &str,
        asn: u32,
        from: &str,
        suffix: SuffixKind,
        src_port: u16,
        server: &str,
    ) {
        let qname = self.codec.encode(
            SimTime::from_secs(sent_s),
            src.parse().unwrap(),
            dst.parse().unwrap(),
            asn,
            suffix,
        );
        self.log.push(QueryLogEntry {
            time: SimTime::from_secs(seen_s),
            src: from.parse().unwrap(),
            server: server.parse().unwrap(),
            src_port,
            qname,
            proto: LogProto::Udp,
            observed_ttl: 52,
            syn: None,
        });
    }

    fn input(&self) -> AnalysisInput<'_> {
        AnalysisInput {
            log: self.log.entries(),
            codec: &self.codec,
            targets: &self.targets,
            routes: &self.routes,
            geo: &self.geo,
            scanner_v4: SCANNER_V4.parse().unwrap(),
            scanner_v6: SCANNER_V6.parse().unwrap(),
            public_dns: &[],
            lifetime_threshold: SimDuration::from_secs(10),
        }
    }
}

#[test]
fn lifetime_filter_excludes_late_only_targets() {
    let mut fx = Fixture::new();
    // Target 1: on-time hit (lifetime 2 s).
    fx.entry(
        100,
        102,
        "17.1.2.9",
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        40_000,
        "5.5.5.5",
    );
    // Target 2: only a late hit (lifetime 7200 s) — human intervention.
    fx.entry(
        100,
        7_300,
        "18.5.5.9",
        "18.5.5.53",
        200,
        "18.5.5.199",
        SuffixKind::Main,
        40_001,
        "5.5.5.5",
    );
    let input = fx.input();
    let reach = Reachability::compute(&input);
    assert_eq!(reach.reached.len(), 1);
    assert!(reach
        .reached
        .contains_key(&"17.1.1.53".parse::<IpAddr>().unwrap()));
    assert_eq!(reach.lifetime.late_entries, 1);
    assert_eq!(reach.lifetime.excluded_addrs_v4, 1);
    assert_eq!(reach.lifetime.excluded_asns.len(), 1);
    assert!(reach.lifetime.rescued_asns.is_empty());
}

#[test]
fn late_target_is_rescued_if_its_as_has_on_time_evidence() {
    let mut fx = Fixture::new();
    fx.entry(
        100,
        101,
        "17.1.2.9",
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    fx.entry(
        100,
        9_000,
        "17.1.1.9",
        "17.1.2.53",
        100,
        "17.1.2.53",
        SuffixKind::Main,
        2,
        "5.5.5.5",
    );
    let reach = Reachability::compute(&fx.input());
    assert_eq!(reach.lifetime.excluded_addrs_v4, 1);
    assert_eq!(
        reach.lifetime.rescued_asns.len(),
        1,
        "AS 100 has on-time evidence"
    );
}

#[test]
fn exactly_at_threshold_is_kept() {
    let mut fx = Fixture::new();
    // Lifetime exactly 10 s: "a lifetime of 10 seconds or less" is kept.
    fx.entry(
        100,
        110,
        "17.1.2.9",
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    let reach = Reachability::compute(&fx.input());
    assert_eq!(reach.reached.len(), 1);
}

#[test]
fn category_classification_from_recovered_labels() {
    let mut fx = Fixture::new();
    let dst = "17.1.1.53";
    for (src, _) in [
        ("17.1.2.77", SourceCategory::OtherPrefix),
        ("17.1.1.9", SourceCategory::SamePrefix),
        ("192.168.0.10", SourceCategory::Private),
        (dst, SourceCategory::DstAsSrc),
        ("127.0.0.1", SourceCategory::Loopback),
    ] {
        fx.entry(100, 101, src, dst, 100, dst, SuffixKind::Main, 1, "5.5.5.5");
    }
    let reach = Reachability::compute(&fx.input());
    let hit = &reach.reached[&dst.parse::<IpAddr>().unwrap()];
    assert_eq!(hit.categories.len(), 5);
    let cats = CategoryReport::compute(&reach);
    for cat in SourceCategory::ALL {
        assert_eq!(cats.row(false, cat).inclusive_addrs, 1, "{cat}");
        // With all five categories present, nothing is exclusive.
        assert_eq!(cats.row(false, cat).exclusive_addrs, 0, "{cat}");
    }
}

#[test]
fn exclusive_category_counting() {
    let mut fx = Fixture::new();
    // Target 1 reached only by other-prefix; target 2 by two categories.
    fx.entry(
        100,
        101,
        "17.1.2.77",
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    fx.entry(
        100,
        101,
        "18.5.5.9",
        "18.5.5.53",
        200,
        "18.5.5.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    fx.entry(
        100,
        101,
        "18.5.5.53",
        "18.5.5.53",
        200,
        "18.5.5.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    let reach = Reachability::compute(&fx.input());
    let cats = CategoryReport::compute(&reach);
    let op = cats.row(false, SourceCategory::OtherPrefix);
    assert_eq!(op.inclusive_addrs, 1);
    assert_eq!(op.exclusive_addrs, 1);
    assert_eq!(
        op.exclusive_asns, 1,
        "AS 100 was only reached via other-prefix"
    );
    let sp = cats.row(false, SourceCategory::SamePrefix);
    assert_eq!(sp.inclusive_addrs, 1);
    assert_eq!(sp.exclusive_addrs, 0, "target 2 also had dst-as-src");
    assert_eq!(sp.exclusive_asns, 0);
}

#[test]
fn open_probe_evidence_classifies_open_and_closed() {
    let mut fx = Fixture::new();
    // Both targets reached via spoof; only target 1 answers the scanner's
    // real-source probe.
    fx.entry(
        100,
        101,
        "17.1.2.9",
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    fx.entry(
        100,
        101,
        "18.5.5.9",
        "18.5.5.53",
        200,
        "18.5.5.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    fx.entry(
        200,
        201,
        SCANNER_V4,
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        2,
        "5.5.5.5",
    );
    let input = fx.input();
    let reach = Reachability::compute(&input);
    // The scanner-source probe is not reachability evidence.
    assert_eq!(reach.reached.len(), 2);
    let oc = OpenClosedReport::compute(&input, &reach);
    assert!(oc.is_open("17.1.1.53".parse().unwrap()));
    assert!(!oc.is_open("18.5.5.53".parse().unwrap()));
    assert_eq!(oc.open.len(), 1);
    assert_eq!(oc.closed.len(), 1);
    assert_eq!(oc.asns_with_closed.len(), 1);
    assert!((oc.open_fraction() - 0.5).abs() < 1e-9);
}

#[test]
fn port_report_requires_ten_direct_samples() {
    let mut fx = Fixture::new();
    let dst = "17.1.1.53";
    // 10 direct F4 follow-ups with a fixed port.
    for i in 0..10 {
        fx.entry(
            100 + i,
            101 + i,
            "17.1.2.9",
            dst,
            100,
            dst,
            SuffixKind::F4,
            53,
            "5.5.5.5",
        );
    }
    // A second target with only 9 samples: insufficient.
    for i in 0..9 {
        fx.entry(
            100 + i,
            101 + i,
            "18.5.5.9",
            "18.5.5.53",
            200,
            "18.5.5.53",
            SuffixKind::F4,
            1000 + i as u16,
            "5.5.5.5",
        );
    }
    // A forwarded target: samples from an upstream (ignored entirely).
    for i in 0..10 {
        fx.entry(
            100 + i,
            101 + i,
            "17.1.1.9",
            "17.1.2.53",
            100,
            "17.1.2.99",
            SuffixKind::F4,
            2000,
            "5.5.5.5",
        );
    }
    let input = fx.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    assert_eq!(ports.observations.len(), 1);
    assert_eq!(ports.insufficient, 1);
    assert_eq!(ports.zero.count, 1);
    assert_eq!(ports.zero.port53, 1);
    assert_eq!(ports.observations[0].range, 0);
}

#[test]
fn forwarding_family_attribution() {
    let mut fx = Fixture::new();
    let v6dst = "2600:100::53";
    // v6 target answers its F6 follow-ups directly over v6...
    fx.entry(
        100,
        101,
        "2600:100::9",
        v6dst,
        300,
        v6dst,
        SuffixKind::F6,
        1,
        "2600:5::5",
    );
    // ...and its F4 follow-ups from a v4 side-address (dual-stack, NOT
    // forwarding) — must be ignored by family matching.
    fx.entry(
        100,
        101,
        "2600:100::9",
        v6dst,
        300,
        "17.1.1.40",
        SuffixKind::F4,
        2,
        "5.5.5.5",
    );
    // A genuine v4 forwarder: F4 resolved by an upstream.
    fx.entry(
        100,
        101,
        "18.5.5.9",
        "18.5.5.53",
        200,
        "18.5.5.250",
        SuffixKind::F4,
        3,
        "5.5.5.5",
    );
    let fwd = ForwardingReport::compute(&fx.input());
    assert_eq!(fwd.direct_v6.len(), 1);
    assert_eq!(
        fwd.forwarded_v6.len(),
        0,
        "dual-stack must not look forwarded"
    );
    assert_eq!(fwd.forwarded_v4.len(), 1);
    assert_eq!(fwd.both_v4 + fwd.both_v6, 0);
    assert!(fwd
        .upstreams
        .contains(&"18.5.5.250".parse::<IpAddr>().unwrap()));
}

#[test]
fn country_report_aggregates_and_orders() {
    let mut fx = Fixture::new();
    // Reach one AS-100 target (US) and the AS-200 target (BR).
    fx.entry(
        100,
        101,
        "17.1.2.9",
        "17.1.1.53",
        100,
        "17.1.1.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    fx.entry(
        100,
        101,
        "18.5.5.9",
        "18.5.5.53",
        200,
        "18.5.5.53",
        SuffixKind::Main,
        1,
        "5.5.5.5",
    );
    let input = fx.input();
    let reach = Reachability::compute(&input);
    let report = CountryReport::compute(&input, &reach);
    let us = &report.rows[&Country("US")];
    assert_eq!(us.ases_total.len(), 2); // AS 100 (v4) + AS 300 (v6)
    assert_eq!(us.ases_reachable.len(), 1);
    assert_eq!(us.targets_total, 3); // two v4 + one v6 target
    assert_eq!(us.targets_reachable, 1);
    let br = &report.rows[&Country("BR")];
    assert_eq!(br.targets_total, 1);
    assert_eq!(br.targets_reachable, 1);
    assert!((br.ip_pct() - 100.0).abs() < 1e-9);
    // Table 1 ordering: US first (most ASes); Table 2: BR first (100%).
    assert_eq!(report.table1(2)[0].0, Country("US"));
    assert_eq!(report.table2(2)[0].0, Country("BR"));
}

#[test]
fn passive_outcomes_match_2018_trace_contents() {
    let mut fx = Fixture::new();
    // Three zero-range resolvers.
    for (dst, asn, from) in [
        ("17.1.1.53", 100u32, "17.1.1.53"),
        ("17.1.2.53", 100, "17.1.2.53"),
        ("18.5.5.53", 200, "18.5.5.53"),
    ] {
        for i in 0..10 {
            fx.entry(
                100 + i,
                101 + i,
                "192.168.0.10",
                dst,
                asn,
                from,
                SuffixKind::F4,
                53,
                "5.5.5.5",
            );
        }
    }
    let input = fx.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    assert_eq!(ports.zero.count, 3);

    let rec = |src: &str, port: u16, q: &str| DitlRecord {
        time: SimTime::ZERO,
        src: src.parse().unwrap(),
        src_port: port,
        qname: q.parse().unwrap(),
    };
    let mut trace = Vec::new();
    // Resolver 1: ≥10 unique names, all port 53 → FixedThen.
    for i in 0..10 {
        trace.push(rec("17.1.1.53", 53, &format!("q{i}.example.com")));
    }
    // Resolver 2: ≥10 unique names, varied ports → VariedThen.
    for i in 0..10 {
        trace.push(rec("17.1.2.53", 2000 + i, &format!("q{i}.example.net")));
    }
    // Resolver 3: two queries, ports not matching 53 → Insufficient.
    trace.push(rec("18.5.5.53", 1111, "a.example.org"));
    trace.push(rec("18.5.5.53", 2222, "b.example.org"));

    let passive = PassiveReport::compute(&ports, &trace);
    assert_eq!(passive.fixed_then, 1);
    assert_eq!(passive.varied_then, 1);
    assert_eq!(passive.insufficient, 1);
    assert_eq!(passive.total(), 3);
}

#[test]
fn single_matching_port_makes_sparse_2018_data_comparable() {
    let mut fx = Fixture::new();
    let dst = "17.1.1.53";
    for i in 0..10 {
        fx.entry(
            100 + i,
            101 + i,
            "17.1.2.9",
            dst,
            100,
            dst,
            SuffixKind::F4,
            4242,
            "5.5.5.5",
        );
    }
    let input = fx.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    // One 2018 query, but it uses exactly the port seen actively: the
    // paper's second comparability criterion.
    let trace = vec![DitlRecord {
        time: SimTime::ZERO,
        src: dst.parse().unwrap(),
        src_port: 4242,
        qname: "only.example.com".parse().unwrap(),
    }];
    let passive = PassiveReport::compute(&ports, &trace);
    assert_eq!(passive.fixed_then, 1);
    assert_eq!(passive.insufficient, 0);
}

#[test]
fn qmin_partial_entries_are_tracked_by_source() {
    let mut fx = Fixture::new();
    // A minimized query: just kw.dns-lab.org from a resolver in AS 100.
    fx.log.push(QueryLogEntry {
        time: SimTime::from_secs(5),
        src: "17.1.1.53".parse().unwrap(),
        server: "5.5.5.5".parse().unwrap(),
        src_port: 999,
        qname: "x7.dns-lab.org".parse().unwrap(),
        proto: LogProto::Udp,
        observed_ttl: 50,
        syn: None,
    });
    let reach = Reachability::compute(&fx.input());
    assert!(reach.reached.is_empty());
    assert_eq!(reach.qmin.partial_sources.len(), 1);
    assert_eq!(reach.qmin.partial_only_sources.len(), 1);
    assert!(reach.qmin.partial_asns.contains(&Asn(100)));
}
