//! Golden snapshot for the chaos run report.
//!
//! One tiny-world chaos run (fixed `(seed, profile)`) renders its full
//! report — schedule shape, replay line, clean-vs-chaos survey summary,
//! invariant verdict — and is compared byte-for-byte against the committed
//! snapshot. Every field in the report is shard-invariant, so the same
//! golden must hold under any `BCD_SHARDS` value (the CI matrix runs this
//! suite at 1 and 4 shards).
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bcd-core --test chaos_golden
//! ```

use bcd_core::chaos;
use bcd_core::ExperimentConfig;
use std::path::PathBuf;

const SEED: u64 = 2020;
const PROFILE: &str = "bursty";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing snapshot {path:?}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "snapshot mismatch for {name}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chaos_run_report_matches_golden_snapshot() {
    // `tiny` honours BCD_SHARDS, so the CI matrix exercises the report's
    // shard-invariance against one committed snapshot.
    let base = ExperimentConfig::tiny(SEED);
    let clean = chaos::run_clean(&base);
    let run = chaos::run_checked(
        &base,
        chaos::chaos_config(SEED, PROFILE).expect("known profile"),
        &clean,
    );
    assert!(run.invariants.is_ok(), "{}", run.invariants.render());
    check("chaos_run", &chaos::render_run_report(&clean, &run));
}
