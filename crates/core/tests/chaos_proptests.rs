//! Property tests for the chaos harness: arbitrary small fault schedules
//! over tiny worlds never violate the survey invariants, and a
//! `(seed, profile)` pair replays byte-identically — including across
//! shard layouts.
//!
//! Every case runs full experiments in debug mode, so the case counts are
//! deliberately small; the fixed-profile corners are covered by
//! `tests/chaos_soundness.rs` at the workspace root.

use bcd_core::chaos;
use bcd_core::invariants::InvariantChecker;
use bcd_core::ExperimentConfig;
use bcd_netsim::{BurstLoss, ChaosConfig, ChaosProfile, CrashRestart, LinkFlap, SimDuration};
use proptest::prelude::*;

/// A very small world: each proptest case pays for multiple end-to-end
/// experiment runs.
fn small(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.world.n_as = 16;
    cfg.world.target_scale = 0.03;
    cfg.shards = 1;
    cfg
}

fn any_profile() -> impl Strategy<Value = ChaosProfile> {
    (
        0.0f64..0.30,
        0u64..200,
        0.0f64..0.30,
        0.0f64..0.05,
        0.0f64..0.50,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(loss, jitter_ms, reorder, duplicate, spoof, burst, flap, crash)| ChaosProfile {
                loss,
                jitter: SimDuration::from_millis(jitter_ms),
                reorder,
                reorder_delay: SimDuration::from_millis(150),
                duplicate,
                spoof,
                burst: burst.then_some(BurstLoss {
                    fraction: 0.4,
                    bad_loss: 0.6,
                    mean_good: SimDuration::from_mins(6),
                    mean_bad: SimDuration::from_secs(40),
                }),
                flap: flap.then_some(LinkFlap {
                    fraction: 0.3,
                    mean_up: SimDuration::from_mins(15),
                    mean_down: SimDuration::from_secs(80),
                }),
                crash: crash.then_some(CrashRestart {
                    fraction: 0.25,
                    mean_up: SimDuration::from_mins(25),
                    mean_down: SimDuration::from_mins(3),
                }),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any small fault schedule leaves the survey sound: no false DSAV
    /// reachability, conservation balances, reachability only shrinks,
    /// and no closed resolver flips open.
    #[test]
    fn arbitrary_fault_schedules_never_violate_invariants(
        seed in 0u64..1_000,
        chaos_seed in any::<u64>(),
        profile in any_profile(),
    ) {
        let base = small(seed);
        let clean = chaos::run_clean(&base);
        let data = chaos::run_chaotic(
            &base,
            ChaosConfig::custom(chaos_seed, "prop", profile),
        );
        let report = InvariantChecker::check_full(&clean, &data);
        prop_assert!(report.is_ok(), "{}", report.render());
    }

    /// The same `(seed, profile)` schedule replays byte-identically, and
    /// the shard layout is invisible: 1-shard and 4-shard runs produce
    /// the same canonical query log.
    #[test]
    fn chaos_replay_is_byte_identical_across_runs_and_shards(
        seed in 0u64..1_000,
        chaos_seed in any::<u64>(),
        profile in any_profile(),
    ) {
        let cfg = ChaosConfig::custom(chaos_seed, "prop", profile);
        let first = chaos::run_chaotic(&small(seed), cfg.clone());
        let again = chaos::run_chaotic(&small(seed), cfg.clone());
        prop_assert_eq!(
            chaos::entries_digest(&first),
            chaos::entries_digest(&again),
            "same (seed, profile) diverged between runs"
        );
        let mut sharded_cfg = small(seed);
        sharded_cfg.shards = 4;
        let sharded = chaos::run_chaotic(&sharded_cfg, cfg);
        prop_assert_eq!(
            chaos::entries_digest(&first),
            chaos::entries_digest(&sharded),
            "chaos run differs between 1 and 4 shards"
        );
        prop_assert_eq!(first.entries.len(), sharded.entries.len());
    }
}
