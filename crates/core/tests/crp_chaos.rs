//! The spoofed-response adversary vs the dual-method survey: chaos
//! regression tests for the `spoofy` profile and the cross-method
//! invariants ([`bcd_core::invariants`]).
//!
//! The adversary races DNS responses with forged copies carrying a wrong
//! txid ([`bcd_netsim::ChaosProfile::spoof`]). Both methods' evidence is a
//! query *arriving* at our authoritative servers, and receivers validate
//! `(txid, port)` on the demux path, so no spoof intensity may ever flip a
//! ground-truth-closed AS open — and faults may only *shrink* the inbound
//! method's open set. Violations delta-debug down to a replayable
//! `BCD_CHAOS=...` line with a handful of fault events.

use bcd_core::chaos::{self, run_clean};
use bcd_core::invariants::InvariantChecker;
use bcd_core::{entries_digest, run_dual, ExperimentConfig, ExperimentData};
use bcd_netsim::{ChaosConfig, ChaosProfile};
use bcd_obs::ObsEnv;

/// A very small world: each test pays for several end-to-end experiment
/// runs (and each dual run is two of them).
fn small(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.world.n_as = 16;
    cfg.world.target_scale = 0.03;
    cfg.shards = 1;
    cfg
}

const SEED: u64 = 2021;

/// An escalating spoof ladder: at every intensity, neither method calls a
/// ground-truth-closed AS open, and the inbound method's open set only
/// shrinks relative to the clean baseline.
#[test]
fn spoof_ladder_never_flips_closed_open() {
    let base = small(SEED);
    let clean = run_dual(base.clone(), &ObsEnv::disabled());
    assert!(
        clean.matrix.is_exact(),
        "clean baseline must match the oracle before the ladder means anything"
    );
    let mut injected_total = 0u64;
    for intensity in [0.10f64, 0.35, 0.80] {
        let mut cfg = base.clone();
        cfg.world.chaos = Some(ChaosConfig::custom(
            chaos::chaos_seed(SEED, "spoofy"),
            "spoof-ladder",
            ChaosProfile {
                spoof: intensity,
                ..ChaosProfile::calm()
            },
        ));
        let dual = run_dual(cfg, &ObsEnv::disabled());
        injected_total += dual.a.counters.injected + dual.b.counters.injected;
        let inv = InvariantChecker::check_agreement(&dual.matrix, false);
        assert!(inv.is_ok(), "spoof={intensity}: {}", inv.render());
        let mono = InvariantChecker::check_crp_monotone(&clean.matrix, &dual.matrix);
        assert!(mono.is_ok(), "spoof={intensity}: {}", mono.render());
        // Packet accounting still balances with the forged copies on the
        // books (`sent + duplicated + injected`).
        let cons_a = InvariantChecker::check(&dual.a);
        assert!(cons_a.is_ok(), "spoof={intensity}: {}", cons_a.render());
    }
    assert!(
        injected_total > 0,
        "the ladder never injected a forged response — the adversary is not firing"
    );
}

/// The named `spoofy` profile replays byte-identically: the injection
/// pattern is a pure hash of shard-invariant packet keys, so the same
/// `(seed, profile)` line reproduces the same canonical query log.
#[test]
fn spoofy_profile_replays_byte_identically() {
    let base = small(SEED);
    let cfg = chaos::chaos_config(SEED, "spoofy").expect("spoofy is a registered profile");
    let first = chaos::run_chaotic(&base, cfg.clone());
    assert!(
        first.counters.injected > 0,
        "spoofy run injected nothing — nothing under test"
    );
    let again = chaos::replay(&base, &cfg.spec()).expect("spec round-trips");
    assert_eq!(
        entries_digest(&first),
        entries_digest(&again),
        "BCD_CHAOS={} did not replay byte-identically",
        cfg.spec()
    );
    assert_eq!(first.counters.injected, again.counters.injected);

    // And the shard layout is invisible to the adversary.
    let mut sharded_cfg = base;
    sharded_cfg.shards = 4;
    let sharded = chaos::run_chaotic(&sharded_cfg, cfg);
    assert_eq!(
        entries_digest(&first),
        entries_digest(&sharded),
        "spoofy run differs between 1 and 4 shards"
    );
}

/// Delta-debugging a spoof-affected run yields a tiny replayable witness:
/// the `spoofy` profile compiles to one ambient injection event, so the
/// minimal `BCD_CHAOS` line carries at most a handful of event ids.
#[test]
fn spoof_witness_shrinks_to_minimal_event_set() {
    let base = small(SEED);
    let clean = run_clean(&base);
    let cfg = chaos::chaos_config(SEED, "spoofy").unwrap();
    let failing = chaos::run_chaotic(&base, cfg);
    let violates = |_clean: &ExperimentData, d: &ExperimentData| d.counters.injected > 0;
    assert!(violates(&clean, &failing), "predicate must hold pre-shrink");
    let spec = chaos::shrink_schedule(&base, &clean, &failing, &violates);
    let events = spec
        .events
        .as_ref()
        .expect("shrink pins an explicit event set");
    assert!(
        events.len() <= 5,
        "minimal witness BCD_CHAOS={spec} carries {} events, expected <= 5",
        events.len()
    );
    let line = format!("BCD_CHAOS={spec}");
    assert!(line.contains("profile=spoofy") && line.contains("events="));
    // The minimal line still reproduces the behaviour it witnesses.
    let replayed = chaos::replay(&base, &spec).expect("minimal spec replays");
    assert!(
        violates(&clean, &replayed),
        "minimal reproducer {line} no longer triggers the predicate"
    );
}
