//! Property tests for the CRP pass's probe planning: the inbound scan
//! reuses the streaming schedule machinery under an internal-category
//! filter ([`bcd_core::crp::CRP_CATEGORIES`]), and its probe plans must be
//!
//! * **filtered** — every scheduled row carries an internal source
//!   category; loopback/private rows never leak into the CRP schedule,
//! * **population-independent** — a target's CRP rows are a pure function
//!   of `(salt, canonical target bytes)`, never of which other targets
//!   share the population,
//! * **conserved across lane→shard assignment** — for any shard count,
//!   the per-shard streamed parts carry every census-counted probe exactly
//!   once and flatten back to the single-schedule oracle.
//!
//! Schedule-layer only (no engine runs), so the case counts can afford to
//! be higher than the chaos proptests'.

use bcd_core::crp::CRP_CATEGORIES;
use bcd_core::schedule::{self, Schedule};
use bcd_core::shard;
use bcd_core::targets::TargetSet;
use bcd_core::LaneLayout;
use bcd_netsim::{Asn, Prefix, PrefixTable, SimDuration};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::IpAddr;

/// A routed multi-AS population: `n_asns` ASes each announcing a /16 and
/// contributing `per_asn` sorted candidate addresses.
fn population(n_asns: usize, per_asn: usize) -> (TargetSet, PrefixTable) {
    let mut routes = PrefixTable::new();
    let mut candidates: Vec<IpAddr> = Vec::new();
    for a in 0..n_asns {
        let net = 60 + a / 200;
        let p: Prefix = format!("{net}.{}.0.0/16", a % 200).parse().unwrap();
        routes.announce(p, Asn(1000 + a as u32));
        for h in 0..per_asn {
            candidates.push(
                format!("{net}.{}.{}.{}", a % 200, h / 200, 1 + h % 200)
                    .parse()
                    .unwrap(),
            );
        }
    }
    candidates.sort_unstable();
    let targets = TargetSet::from_candidates(&candidates, &routes);
    (targets, routes)
}

/// Per-target CRP rows under the internal-category filter, built from the
/// full lane set of a single streamed schedule.
fn crp_rows(
    targets: &TargetSet,
    routes: &PrefixTable,
    salt: u64,
    rate: u32,
) -> HashMap<IpAddr, Vec<(u64, IpAddr, u8)>> {
    let filter = Some(&CRP_CATEGORIES[..]);
    let lanes = schedule::lane_count(rate);
    let census = schedule::census(targets, routes, &[], filter, lanes, salt, None);
    let layout = LaneLayout::new(rate, SimDuration::from_secs(30), census.total, salt, None);
    let all: Vec<usize> = (0..lanes).collect();
    let s = Schedule::build_lanes(targets, routes, &[], filter, &all, &census, &layout);
    let mut by_target: HashMap<IpAddr, Vec<(u64, IpAddr, u8)>> = HashMap::new();
    for q in s.iter_with(targets) {
        assert!(
            CRP_CATEGORIES.contains(&q.category),
            "{:?} leaked through the internal-category filter",
            q.category
        );
        by_target
            .entry(q.target)
            .or_default()
            .push((q.at.as_nanos(), q.source, q.category as u8));
    }
    by_target
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A target shared between a small and a large population gets
    /// byte-identical CRP rows in both — plans derive from canonical
    /// target bytes, not from the surrounding population. A rate high
    /// enough that smoothing never displaces a row keeps timestamps
    /// comparable.
    #[test]
    fn crp_plans_are_population_independent(
        salt in any::<u64>(),
        small_asns in 2usize..6,
        large_asns in 20usize..40,
        per_asn in 2usize..6,
    ) {
        let (small, routes_small) = population(small_asns, per_asn);
        let (large, routes_large) = population(large_asns, per_asn + 2);
        let rate = 100_000;
        let small_rows = crp_rows(&small, &routes_small, salt, rate);
        let large_rows = crp_rows(&large, &routes_large, salt, rate);
        let shared: Vec<&IpAddr> = small_rows
            .keys()
            .filter(|a| large_rows.contains_key(*a))
            .collect();
        prop_assert!(!shared.is_empty(), "populations must overlap to bite");
        for addr in shared {
            prop_assert_eq!(
                &small_rows[addr], &large_rows[addr],
                "{}: CRP rows depend on surrounding population", addr
            );
        }
    }

    /// For any shard count, the streamed per-shard CRP parts conserve the
    /// census total and flatten to the global single-schedule oracle —
    /// the lane→shard map cannot create, drop, or move a probe.
    #[test]
    fn crp_probes_conserved_across_lane_assignment(
        salt in any::<u64>(),
        n_asns in 5usize..30,
        per_asn in 2usize..8,
        rate in prop::sample::select(vec![3u32, 70, 700]),
        shards in 1usize..9,
    ) {
        let (targets, routes) = population(n_asns, per_asn);
        let filter = Some(&CRP_CATEGORIES[..]);
        let lanes = schedule::lane_count(rate);
        let census = schedule::census(&targets, &routes, &[], filter, lanes, salt, None);
        prop_assert!(census.total > 0, "population must schedule something");
        let layout = LaneLayout::new(rate, SimDuration::from_secs(60), census.total, salt, None);
        let oracle = Schedule::build_global(&targets, &routes, &[], filter, &census, &layout);
        prop_assert_eq!(oracle.len() as u64, census.total);
        let (lane_shard, eff) = shard::assign_lanes(&census.lane_counts, shards);
        let parts: Vec<Schedule> = (0..eff)
            .map(|sid| {
                Schedule::build_lanes(
                    &targets,
                    &routes,
                    &[],
                    filter,
                    &shard::lanes_of_shard(&lane_shard, sid),
                    &census,
                    &layout,
                )
            })
            .collect();
        let total: usize = parts.iter().map(Schedule::len).sum();
        prop_assert_eq!(total as u64, census.total, "S={}: probes not conserved", shards);
        let oracle_parts = oracle.partition_by_lane(&targets, &lane_shard, parts.len());
        prop_assert_eq!(
            parts, oracle_parts,
            "S={}: streamed CRP parts differ from the oracle partition", shards
        );
    }
}
