//! End-to-end methodology validation: run the full experiment on a small
//! world and check the *inferences* against the world's ground truth —
//! the test the real experiment could never have.

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::forwarding::ForwardingReport;
use bcd_core::analysis::local::LocalInfiltrationReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::{MiddleboxReport, Reachability};
use bcd_core::{Experiment, ExperimentConfig};
use bcd_worldgen::PortClass;

fn run(seed: u64) -> bcd_core::ExperimentData {
    Experiment::run(ExperimentConfig::tiny(seed))
}

#[test]
fn reachability_never_claims_a_dsav_protected_as() {
    let data = run(101);
    let input = data.input();
    let reach = Reachability::compute(&input);
    // Soundness: every AS we classify as lacking DSAV truly lacks it.
    for asn in reach.reached_asns_all() {
        assert!(
            data.world.truly_lacks_dsav(asn),
            "{asn} claimed reachable but has DSAV"
        );
    }
    // And we found a non-trivial number of them.
    assert!(
        reach.reached_asns_all().len() >= 5,
        "only {} ASes reached",
        reach.reached_asns_all().len()
    );
}

#[test]
fn reachability_finds_most_responsive_direct_targets() {
    // A somewhat larger world so the expected population is meaningful.
    let mut cfg = ExperimentConfig::tiny(102);
    cfg.world.n_as = 100;
    cfg.world.target_scale = 0.08;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    // Completeness (approximate): responsive, non-qmin-halted targets in
    // no-DSAV ASes whose ACL admits at least the same-prefix spoof should
    // mostly be found. Borders with subnet SAVI or private filtering may
    // still block specific categories, so require a strong majority, not
    // all.
    let mut expected = 0;
    let mut found = 0;
    for meta in &data.world.resolvers {
        let as_ok = data.world.truly_lacks_dsav(meta.asn);
        let savi = data
            .world
            .as_info(meta.asn)
            .map(|a| a.policy.subnet_savi)
            .unwrap_or(false);
        let mbx = data
            .world
            .as_info(meta.asn)
            .map(|a| a.dns_interceptor.is_some())
            .unwrap_or(false);
        if as_ok
            && !savi
            && !mbx
            && meta.responsive
            && !(meta.qmin && meta.qmin_halts)
            && matches!(
                meta.acl,
                bcd_worldgen::AclKind::Open | bcd_worldgen::AclKind::AsWide
            )
        {
            expected += 1;
            if reach.reached.contains_key(&meta.addr) {
                found += 1;
            }
        }
    }
    assert!(expected > 10, "world too small: {expected}");
    let frac = found as f64 / expected as f64;
    assert!(
        frac > 0.9,
        "found only {found} of {expected} expected reachable targets"
    );
}

#[test]
fn open_closed_classification_matches_truth() {
    let data = run(103);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let mut checked = 0;
    for addr in oc.open.iter() {
        let meta = data.world.meta_of(*addr).expect("open addr is a target");
        // A middlebox answers the open probe on behalf of anyone in its AS,
        // so intercepted closed resolvers legitimately *look* open — the
        // paper's measurement would see the same.
        let mbx = data
            .world
            .as_info(meta.asn)
            .map(|a| a.dns_interceptor.is_some())
            .unwrap_or(false);
        assert!(
            meta.open || mbx,
            "{addr} classified open but truth says closed"
        );
        checked += 1;
    }
    // Closed classification: resolvers marked closed must not be truth-open
    // (an open resolver always answers our real-source probe).
    for addr in oc.closed.iter() {
        let meta = data.world.meta_of(*addr).expect("closed addr is a target");
        assert!(
            !meta.open || meta.forwards,
            "{addr} classified closed but truth says open (forwards={})",
            meta.forwards
        );
        checked += 1;
    }
    assert!(checked > 10, "too few classified resolvers: {checked}");
}

#[test]
fn port_ranges_identify_zero_range_resolvers_exactly() {
    let data = run(104);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    assert!(
        !ports.observations.is_empty(),
        "no port observations collected"
    );
    for obs in &ports.observations {
        let meta = data
            .world
            .meta_of(obs.addr)
            .expect("observed addr is a target");
        assert!(!meta.forwards, "direct-only filter leaked a forwarder");
        // Ground-truth port class vs measured range.
        match meta.port_class {
            PortClass::Zero => assert_eq!(obs.range, 0, "{:?}", obs),
            PortClass::SeqSmall => assert!(obs.range >= 1 && obs.range <= 200, "{obs:?}"),
            PortClass::Windows
                // After wrap adjustment (p0f-visible instances) the range
                // must be within the 2,500 pool; invisible ones may show a
                // wrapped (huge) raw range.
                if (obs.adjusted || obs.range < 2_500) => {
                    assert!(obs.range < 2_500, "{obs:?}");
                }
            PortClass::LinuxPool => assert!(obs.range < 28_232, "{obs:?}"),
            PortClass::FreeBsdPool => assert!(obs.range < 16_383, "{obs:?}"),
            _ => {}
        }
    }
}

#[test]
fn forwarding_detection_matches_truth() {
    let data = run(105);
    let input = data.input();
    let fwd = ForwardingReport::compute(&input);
    for addr in fwd.direct_v4.iter().chain(&fwd.direct_v6) {
        let meta = data.world.meta_of(*addr).expect("target");
        assert!(!meta.forwards, "{addr} classified direct but forwards");
    }
    for addr in fwd.forwarded_v4.iter().chain(&fwd.forwarded_v6) {
        let meta = data.world.meta_of(*addr).expect("target");
        // Known ambiguities the paper also hits: a dual-stack resolver
        // answering from its other-family address, and middlebox-intercepted
        // targets whose queries surface from the proxy's upstream.
        let mbx = data
            .world
            .as_info(meta.asn)
            .map(|a| a.dns_interceptor.is_some())
            .unwrap_or(false);
        assert!(
            meta.forwards || meta.other_addr.is_some() || mbx,
            "{addr} classified forwarding but is direct (no ambiguity applies)"
        );
    }
    assert!(fwd.resolved_v4() > 5);
}

#[test]
fn local_infiltration_respects_stack_models() {
    let data = run(106);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let local = LocalInfiltrationReport::compute(&reach);
    let behind_mbx = |asn| {
        data.world
            .as_info(asn)
            .map(|a| a.dns_interceptor.is_some())
            .unwrap_or(false)
    };
    // Every v4 dst-as-src hit must be on an OS that accepts v4 DS
    // (i.e. never modern/old Linux, per Table 6) — unless a middlebox
    // answered for the host before its stack ever saw the packet.
    for addr in &local.dst_as_src_v4 {
        let meta = data.world.meta_of(*addr).unwrap();
        assert!(
            meta.os.stack_policy().accept_dst_as_src_v4 || behind_mbx(meta.asn),
            "{addr}: {:?} should drop v4 dst-as-src",
            meta.os
        );
    }
    // Loopback hits require a stack that accepts them.
    for addr in &local.loopback_v6 {
        let meta = data.world.meta_of(*addr).unwrap();
        assert!(meta.os.stack_policy().accept_loopback_v6 || behind_mbx(meta.asn));
    }
    for addr in &local.loopback_v4 {
        let meta = data.world.meta_of(*addr).unwrap();
        assert!(meta.os.stack_policy().accept_loopback_v4 || behind_mbx(meta.asn));
    }
}

#[test]
fn category_report_totals_are_consistent() {
    let data = run(107);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let cats = CategoryReport::compute(&reach);
    assert_eq!(
        cats.reached_addrs_v4 + cats.reached_addrs_v6,
        reach.reached.len()
    );
    // Exclusive counts can never exceed inclusive counts.
    for v6 in [false, true] {
        for cat in bcd_core::SourceCategory::ALL {
            let row = cats.row(v6, cat);
            assert!(row.exclusive_addrs <= row.inclusive_addrs);
            assert!(row.exclusive_asns <= row.inclusive_asns);
        }
    }
    // Other-prefix or same-prefix should dominate inclusive counts.
    let op = cats.row(false, bcd_core::SourceCategory::OtherPrefix);
    let sp = cats.row(false, bcd_core::SourceCategory::SamePrefix);
    assert!(op.inclusive_addrs + sp.inclusive_addrs > 0);
}

#[test]
fn middlebox_attribution_accounts_for_all_reached_ases() {
    let data = run(108);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let mbx = MiddleboxReport::compute(&input, &reach);
    let total = mbx.direct_asns.len() + mbx.public_dns_only_asns.len() + mbx.other_only_asns.len();
    assert_eq!(total, reach.reached_asns_all().len());
    // Most reached ASes show a direct in-AS source (paper: 86–95%).
    assert!(
        mbx.direct_asns.len() * 2 > total,
        "direct {} of {total}",
        mbx.direct_asns.len()
    );
}

#[test]
fn human_noise_is_filtered_by_lifetime() {
    // Crank human noise way up; the lifetime filter must still keep every
    // reachability claim sound.
    let mut cfg = ExperimentConfig::tiny(109);
    cfg.world.human_lookup_fraction = 0.01;
    cfg.world.human_lookup_delay_secs = 3_600;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    assert!(
        reach.lifetime.late_entries > 0,
        "noise injection should have produced late queries"
    );
    for asn in reach.reached_asns_all() {
        assert!(
            data.world.truly_lacks_dsav(asn),
            "{asn}: human-noise query leaked into reachability"
        );
    }
}

#[test]
fn experiment_is_deterministic() {
    let a = run(110);
    let b = run(110);
    assert_eq!(a.entries.len(), b.entries.len());
    assert_eq!(a.scanner_stats.spoofed_sent, b.scanner_stats.spoofed_sent);
    assert_eq!(a.scanner_stats.followup_sets, b.scanner_stats.followup_sets);
    let ra = Reachability::compute(&a.input());
    let rb = Reachability::compute(&b.input());
    assert_eq!(ra.reached.len(), rb.reached.len());
    assert_eq!(ra.reached_asns_all(), rb.reached_asns_all());
}

#[test]
fn scanner_sent_the_planned_queries_and_fired_followups() {
    let data = run(111);
    let stats = &data.scanner_stats;
    assert!(stats.spoofed_sent > 1_000, "{stats:?}");
    assert!(stats.followup_sets > 0, "{stats:?}");
    assert_eq!(
        stats.followup_queries,
        stats.followup_sets * 2 * data.cfg.followups_per_family as u64
    );
    assert_eq!(stats.open_probes, stats.followup_sets);
    assert_eq!(stats.tcp_probes, stats.followup_sets);
    // REFUSED responses from closed resolvers to the open probe are the
    // §3.8 anecdote signal.
    assert!(stats.responses_received > 0);
}
