//! Tests for the methodology extensions: §3.8 opt-outs, the §3.6.4
//! wildcard-zone ablation, and category-restricted scans.

use bcd_core::analysis::reachability::Reachability;
use bcd_core::{Experiment, ExperimentConfig, SourceCategory};
use bcd_netsim::{Prefix, SimTime};

#[test]
fn opt_out_stops_probes_to_the_prefix() {
    // First run: find a prefix that gets probed.
    let cfg = ExperimentConfig::tiny(301);
    let data = Experiment::run(cfg.clone());
    let victim = data.targets.v4.first().expect("targets exist").addr;
    let prefix = Prefix::subprefix_of(victim, 16);

    // Second run: same world, opt the whole /16 out from t=0.
    let mut cfg2 = cfg;
    cfg2.opt_outs = vec![(SimTime::ZERO, prefix)];
    let data2 = Experiment::run(cfg2);
    assert!(
        data2.scanner_stats.opted_out > 0,
        "opt-out suppressed nothing"
    );
    // No spoofed probe evidence for any target inside the opted-out prefix.
    let reach = Reachability::compute(&data2.input());
    for addr in reach.reached.keys() {
        assert!(
            !prefix.contains(*addr),
            "{addr} inside opted-out {prefix} was still probed"
        );
    }
    // And fewer probes were sent than in the original run.
    assert!(data2.scanner_stats.spoofed_sent < data.scanner_stats.spoofed_sent);
}

#[test]
fn wildcard_zone_recovers_qmin_halted_targets() {
    let mut base = ExperimentConfig::tiny(302);
    base.world.qmin_fraction = 0.5;
    base.world.qmin_halts_fraction = 1.0;

    let nx = Experiment::run(base.clone());
    let nx_reach = Reachability::compute(&nx.input());

    let mut wc_cfg = base;
    wc_cfg.wildcard_zone = true;
    let wc = Experiment::run(wc_cfg);
    let wc_reach = Reachability::compute(&wc.input());

    // NXDOMAIN mode loses qmin-halted resolvers; wildcard mode answers
    // intermediate labels positively so the full QNAME always arrives.
    assert!(
        nx_reach.qmin.partial_only_sources.len() > wc_reach.qmin.partial_only_sources.len(),
        "wildcard should reduce partial-only resolvers: {} vs {}",
        nx_reach.qmin.partial_only_sources.len(),
        wc_reach.qmin.partial_only_sources.len()
    );
    assert!(
        wc_reach.reached.len() >= nx_reach.reached.len(),
        "wildcard must not lose coverage: {} vs {}",
        wc_reach.reached.len(),
        nx_reach.reached.len()
    );
    // Soundness is preserved in both modes.
    for asn in wc_reach.reached_asns_all() {
        assert!(wc.world.truly_lacks_dsav(asn));
    }
}

#[test]
fn category_restricted_scan_only_uses_those_sources() {
    let mut cfg = ExperimentConfig::tiny(303);
    cfg.category_filter = Some(vec![SourceCategory::SamePrefix]);
    let data = Experiment::run(cfg);
    let reach = Reachability::compute(&data.input());
    assert!(!reach.reached.is_empty());
    for hit in reach.reached.values() {
        assert_eq!(
            hit.categories.len(),
            1,
            "only same-prefix evidence expected, got {:?}",
            hit.categories
        );
        assert!(hit.categories.contains(&SourceCategory::SamePrefix));
    }
}

#[test]
fn restricted_scan_reaches_no_more_than_full_scan() {
    let full = Experiment::run(ExperimentConfig::tiny(304));
    let full_reach = Reachability::compute(&full.input());

    let mut cfg = ExperimentConfig::tiny(304);
    cfg.category_filter = Some(vec![SourceCategory::OtherPrefix]);
    let restricted = Experiment::run(cfg);
    let restricted_reach = Reachability::compute(&restricted.input());

    assert!(restricted_reach.reached.len() <= full_reach.reached.len());
    // Everything the restricted scan reached, the full scan reached too.
    for addr in restricted_reach.reached.keys() {
        assert!(
            full_reach.reached.contains_key(addr),
            "{addr} reached only by the restricted scan?"
        );
    }
}

#[test]
fn outages_defer_but_never_drop_queries() {
    let clean = Experiment::run(ExperimentConfig::tiny(305));

    let mut cfg = ExperimentConfig::tiny(305);
    // A power outage covering the middle third of the window (§3.4).
    let w = cfg.window.as_secs();
    cfg.outages = vec![(
        SimTime::from_secs(w / 3),
        bcd_netsim::SimDuration::from_secs(w / 3),
    )];
    let data = Experiment::run(cfg);
    assert!(data.scanner_stats.outage_deferrals > 0, "outage never hit");
    // "We were able to successfully issue all of the prepared queries":
    // the interrupted run sends everything the clean run sends (minus
    // nothing — opt-outs are the only suppression mechanism).
    assert_eq!(
        data.scanner_stats.spoofed_sent,
        clean.scanner_stats.spoofed_sent
    );
    // The campaign ran long, like the paper's.
    let reach = Reachability::compute(&data.input());
    for asn in reach.reached_asns_all() {
        assert!(data.world.truly_lacks_dsav(asn));
    }
}
