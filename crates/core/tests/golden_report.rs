//! Golden snapshot tests for every renderer in [`bcd_core::report`].
//!
//! One tiny-world survey feeds all renderers; the output of each is
//! compared byte-for-byte against a committed snapshot under
//! `tests/golden/`. Together with the shard-equivalence suite this pins
//! the full render surface: any change to an analysis, a renderer, or the
//! engine's determinism shows up as a snapshot diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bcd-core --test golden_report
//! ```

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::country::CountryReport;
use bcd_core::analysis::forwarding::ForwardingReport;
use bcd_core::analysis::local::LocalInfiltrationReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::passive::PassiveReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::qmin::QminReport;
use bcd_core::analysis::reachability::{MiddleboxReport, Reachability};
use bcd_core::{lab, report, Experiment, ExperimentConfig};
use bcd_obs::ObsEnv;
use std::path::PathBuf;

const SEED: u64 = 2019;
/// Small lab sample count so the suite stays fast in debug builds.
const LAB_QUERIES: usize = 2_000;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing snapshot {path:?}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "snapshot mismatch for {name}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn all_renderers_match_golden_snapshots() {
    let data = Experiment::run_observed(ExperimentConfig::tiny(SEED), &ObsEnv::disabled());
    let input = data.input();
    let reach = Reachability::compute(&input);
    let countries = CountryReport::compute(&input, &reach);
    let cats = CategoryReport::compute(&reach);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    let fwd = ForwardingReport::compute(&input);
    let local = LocalInfiltrationReport::compute(&reach);
    let qmin = QminReport::compute(&input, &reach);
    let mbx = MiddleboxReport::compute(&input, &reach);
    let passive = PassiveReport::compute(&ports, &data.world.ditl2018);

    check("headline", &report::render_headline(&data.targets, &reach));
    check("table1", &report::render_table1(&countries, 10));
    check("table2", &report::render_table2(&countries, 10));
    check("table3", &report::render_table3(&cats));
    check("table4", &report::render_table4(&ports));
    check(
        "table5",
        &report::render_table5(&lab::table5(LAB_QUERIES, SEED)),
    );
    check("table6", &report::render_table6(&lab::table6()));
    check("figure2", &report::render_figure2(&ports));
    check(
        "figure3a",
        &report::render_figure3a(&lab::figure3a_samples(LAB_QUERIES, SEED)),
    );
    check("figure3b", &report::render_figure3b(&ports));
    check("openclosed", &report::render_openclosed(&oc));
    check("forwarding", &report::render_forwarding(&fwd));
    check("local", &report::render_local(&local));
    check(
        "methodology",
        &report::render_methodology(&reach, &qmin, &mbx),
    );
    check("passive", &report::render_passive(&passive));
    // The observability surface: only the *deterministic* renders can be
    // snapshots — they are shard-count-invariant (obs_invariance.rs), so
    // the same golden holds under any BCD_SHARDS.
    check(
        "run_report",
        &bcd_obs::report::render_run_report_deterministic(&data.obs),
    );
    check("metrics_jsonl", &bcd_obs::deterministic_jsonl(&data.obs));
}
