//! Cross-method differential harness: the outbound survey (method A) vs
//! the inbound Closed-Resolver-Project scan (method B,
//! [`bcd_core::crp`]), scored AS by AS against the generator's ground
//! truth ([`bcd_core::analysis::agreement`]).
//!
//! The contract under test:
//!
//! * **clean agreement** — on a fault-free network both methods match the
//!   oracle (and therefore each other) on 100% of the universe, for every
//!   seed tried,
//! * **layout invariance** — the agreement matrix and its rendering are
//!   byte-identical across `BCD_SHARDS` ∈ {1, 4, 8} and both schedule
//!   constructors, and the rendering is pinned by a golden snapshot
//!   (regenerate with `UPDATE_GOLDEN=1`),
//! * **stream hygiene** — the candidate stream fed to target extraction
//!   is sorted and duplicate-free, surfaced as the stable
//!   `targets.excluded_unsorted` counter (always 0 for a well-formed
//!   world),
//! * **survey tier** (`--ignored`) — the dual-method run over the full
//!   `internet_scale` world stays inside the 8 GiB CI budget and still
//!   agrees exactly. The CI `agreement-smoke` job runs it.

use bcd_core::invariants::InvariantChecker;
use bcd_core::schedule::ScheduleMode;
use bcd_core::{report, run_dual, ExperimentConfig};
use bcd_netsim::SimDuration;
use bcd_obs::report::names;
use bcd_obs::ObsEnv;
use bcd_worldgen::WorldConfig;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing snapshot {path:?}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "snapshot mismatch for {name}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A reduced world for the multi-seed sweep: each dual run pays for two
/// full experiment passes in debug mode.
fn small(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.world.n_as = 24;
    cfg.world.target_scale = 0.05;
    cfg.shards = 1;
    cfg
}

#[test]
fn clean_dual_run_agrees_with_ground_truth() {
    for (i, cfg) in [ExperimentConfig::tiny(2019), small(777), small(31)]
        .into_iter()
        .enumerate()
    {
        let seed = cfg.world.seed;
        let dual = run_dual(cfg, &ObsEnv::disabled());
        let m = &dual.matrix;
        assert!(m.universe > 0, "seed={seed}: empty comparison universe");
        assert!(
            dual.b.stats.probes_sent > 0,
            "seed={seed}: CRP pass sent nothing"
        );
        assert!(!dual.b.budget_exhausted, "seed={seed}: CRP budget blown");
        // The first config is the golden world; its matrix must be
        // non-degenerate in both directions or the differential test
        // would pass vacuously.
        if i == 0 {
            assert!(!m.agree_open.is_empty(), "no AS open under both methods");
            assert!(
                !m.agree_closed.is_empty(),
                "no AS closed under both methods"
            );
        }
        let inv = InvariantChecker::check_agreement(m, true);
        assert!(inv.is_ok(), "seed={seed}: {}", inv.render());
        assert!(
            m.is_exact(),
            "seed={seed}: methods diverge from ground truth: a_only={:?} b_only={:?} \
             false_open_a={:?} false_open_b={:?} false_closed_a={:?} false_closed_b={:?}",
            m.a_only,
            m.b_only,
            m.false_open_a,
            m.false_open_b,
            m.false_closed_a,
            m.false_closed_b
        );
        assert_eq!(m.agreement_rate(), 1.0, "seed={seed}");

        // Stream hygiene: the candidate stream was sorted and unique, and
        // the stable counter says so.
        assert_eq!(dual.a.targets.excluded_unsorted, 0, "seed={seed}");
        assert_eq!(
            dual.a
                .obs
                .aggregate
                .counter(names::TARGETS_EXCLUDED_UNSORTED, &[]),
            0,
            "seed={seed}"
        );
        // The agreement counters in the aggregate mirror the matrix.
        let agg = &dual.a.obs.aggregate;
        assert_eq!(
            agg.counter(names::AGREEMENT_UNIVERSE, &[]),
            m.universe as u64
        );
        assert_eq!(
            agg.counter(names::AGREEMENT_AGREE_OPEN, &[]),
            m.agree_open.len() as u64
        );
        assert_eq!(
            agg.counter(names::AGREEMENT_FALSE_OPEN, &[("method", "b")]),
            0
        );
    }
}

#[test]
fn agreement_matrix_is_layout_invariant_and_matches_golden() {
    let layouts: [(usize, ScheduleMode); 4] = [
        (1, ScheduleMode::Streaming),
        (4, ScheduleMode::Streaming),
        (8, ScheduleMode::Streaming),
        (4, ScheduleMode::Global),
    ];
    let mut baseline: Option<(String, bcd_core::AgreementMatrix, u64, usize)> = None;
    for (shards, mode) in layouts {
        let mut cfg = ExperimentConfig::tiny(2019);
        cfg.shards = shards;
        cfg.schedule_mode = mode;
        let dual = run_dual(cfg, &ObsEnv::disabled());
        let rendered = report::render_agreement(&dual.matrix);
        let probes = dual.b.stats.probes_sent;
        let log_len = dual.b.entries.len();
        match &baseline {
            None => baseline = Some((rendered, dual.matrix, probes, log_len)),
            Some((r0, m0, p0, l0)) => {
                assert_eq!(
                    r0, &rendered,
                    "S={shards} {mode:?}: agreement rendering depends on layout"
                );
                assert_eq!(m0, &dual.matrix, "S={shards} {mode:?}: matrix differs");
                assert_eq!(*p0, probes, "S={shards} {mode:?}: CRP probe count differs");
                assert_eq!(*l0, log_len, "S={shards} {mode:?}: CRP log length differs");
            }
        }
    }
    check("agreement", &baseline.unwrap().0);
}

/// Peak resident set size of this process in GiB (`VmHWM` from
/// `/proc/self/status`). Linux-only, like the CI runner.
fn peak_rss_gib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("VmHWM line")
        .parse()
        .expect("VmHWM value");
    kb / (1024.0 * 1024.0)
}

#[test]
#[ignore = "release-mode batch job: dual-method survey over the full 62k-AS world"]
fn dual_method_survey_within_budget() {
    let sample: u64 = std::env::var("BCD_AGREEMENT_SAMPLE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);
    let mut cfg = ExperimentConfig::paper_shape(2019);
    cfg.world = WorldConfig::internet_scale(2019);
    cfg.target_sample = Some(sample);
    cfg.window = SimDuration::from_mins(5);
    let t0 = std::time::Instant::now();
    let dual = run_dual(cfg, &ObsEnv::from_env());
    let run_secs = t0.elapsed().as_secs_f64();

    let m = &dual.matrix;
    assert!(
        m.universe > 100,
        "universe {} too small to bite",
        m.universe
    );
    assert!(
        !m.agree_open.is_empty(),
        "no AS open under both methods at survey scale"
    );
    let inv = InvariantChecker::check_agreement(m, true);
    assert!(inv.is_ok(), "{}", inv.render());
    assert!(m.is_exact(), "survey-scale divergence from ground truth");
    assert!(!dual.a.budget_exhausted && !dual.b.budget_exhausted);

    if let Ok(path) = std::env::var("BCD_AGREEMENT_REPORT") {
        std::fs::write(&path, report::render_agreement(m)).expect("write BCD_AGREEMENT_REPORT");
        eprintln!("agreement-report: exported to {path}");
    }
    let rss = peak_rss_gib();
    eprintln!(
        "agreement_smoke: ran in {run_secs:.1}s, peak RSS {rss:.2} GiB, universe {} ASes, \
         {} agree-open, {} agree-closed, {} CRP probes",
        m.universe,
        m.agree_open.len(),
        m.agree_closed.len(),
        dual.b.stats.probes_sent
    );
    assert!(rss < 8.0, "peak RSS {rss:.2} GiB exceeds the 8 GiB budget");
}
