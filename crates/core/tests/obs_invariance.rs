//! Shard-count invariance of the observability layer itself.
//!
//! The `bcd-obs` contract (ISSUE acceptance): the deterministic metric
//! export and the deterministic run report are **byte-identical** for
//! `BCD_SHARDS` ∈ {1, 4, 8} at the same seed — wall-clock and layout-class
//! records are excluded by construction, so what remains must not betray
//! how the run was split. This is the metrics-side companion of
//! `shard_equivalence.rs` (which pins the analysis renders).

use bcd_core::{Experiment, ExperimentConfig};
use bcd_obs::report::{names, render_run_report_deterministic};
use bcd_obs::{deterministic_jsonl, full_jsonl, ObsEnv};

fn run(seed: u64, shards: usize) -> (String, String, bcd_core::ExperimentData) {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.shards = shards;
    let data = Experiment::run_observed(cfg, &ObsEnv::disabled());
    (
        deterministic_jsonl(&data.obs),
        render_run_report_deterministic(&data.obs),
        data,
    )
}

#[test]
fn deterministic_jsonl_and_report_are_shard_count_invariant() {
    for seed in [11u64, 2019] {
        let (jsonl1, report1, data1) = run(seed, 1);
        // The run actually measured something.
        let agg = &data1.obs.aggregate;
        assert!(agg.counter(names::SCANNER_SPOOFED, &[]) > 0);
        assert!(agg.counter(names::LOG_ENTRIES, &[]) > 0);
        assert!(agg.counter(names::DNS_CLIENT_QUERIES, &[]) > 0);
        assert!(agg.gauge(names::WORLD_HOSTS, &[]) > 0);
        assert!(jsonl1.lines().count() > 10, "suspiciously thin export");
        for line in jsonl1.lines() {
            assert!(
                line.contains("\"det\":true"),
                "non-deterministic record leaked into the deterministic export: {line}"
            );
        }
        for shards in [4usize, 8] {
            let (jsonl_n, report_n, data_n) = run(seed, shards);
            assert_eq!(
                jsonl1, jsonl_n,
                "deterministic JSONL differs between 1 and {shards} shards at seed {seed}"
            );
            assert_eq!(
                report1, report_n,
                "deterministic run report differs between 1 and {shards} shards at seed {seed}"
            );
            // Bounded-window eviction counters are shard-invariant by
            // construction (canonical-order eviction in the flight
            // recorder; run-level claims for the packet-capture ring) —
            // differing counts here would mean the windows retained
            // different spans at different layouts.
            for name in [
                names::TRACE_EVICTED,
                names::TRACE_CAPTURED,
                names::SPAN_EVICTED,
                names::SPAN_RECORDED,
            ] {
                assert_eq!(
                    data1.obs.aggregate.counter(name, &[]),
                    data_n.obs.aggregate.counter(name, &[]),
                    "{name} differs between 1 and {shards} shards at seed {seed}"
                );
            }
            // The layout surface, by contrast, really is per-shard: the
            // full export records one slice per effective shard.
            assert_eq!(data_n.obs.per_shard.len(), data_n.obs.shards);
            assert!(data_n.obs.shards > 1, "tiny world clamped to one shard");
            assert!(full_jsonl(&data_n.obs).lines().count() > jsonl_n.lines().count());
        }
    }
}

#[test]
fn profile_records_every_pipeline_phase() {
    let (_, _, data) = run(11, 4);
    let phases: Vec<&str> = data
        .obs
        .profile
        .phases
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    for expect in ["worldgen-build", "schedule-build", "shard-run", "merge"] {
        assert!(
            phases.contains(&expect),
            "missing phase {expect}: {phases:?}"
        );
    }
    let shard_runs = data
        .obs
        .profile
        .phases
        .iter()
        .filter(|p| p.name == "shard-run")
        .count();
    assert_eq!(shard_runs, data.obs.shards);
    assert!(data.obs.profile.sim_horizon().is_some());
}
