//! Property-based tests for the methodology's codecs and algorithms.

use bcd_core::analysis::ports::{adjust_windows_wrap, increasing_pattern, range_of};
use bcd_core::qname::{Decoded, QnameCodec, SuffixKind};
use bcd_core::scanner::ScannerStats;
use bcd_core::schedule::Schedule;
use bcd_core::shard::canonical_sort;
use bcd_core::sources::{classify_source, SourceCategory, SourcePlan};
use bcd_core::targets::TargetSet;
use bcd_dns::{LogProto, QueryLogEntry};
use bcd_netsim::{Asn, Prefix, PrefixTable, SimDuration, SimTime};
use bcd_netsim::{DropReason, Merge, NetCounters};
use bcd_osmodel::ports::{IANA_HI, IANA_LO, WINDOWS_POOL_SIZE};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn any_v4() -> impl Strategy<Value = IpAddr> {
    any::<u32>().prop_map(|v| IpAddr::V4(Ipv4Addr::from(v)))
}

fn any_v6() -> impl Strategy<Value = IpAddr> {
    any::<u128>().prop_map(|v| IpAddr::V6(Ipv6Addr::from(v)))
}

fn any_ip() -> impl Strategy<Value = IpAddr> {
    prop_oneof![any_v4(), any_v6()]
}

fn any_suffix() -> impl Strategy<Value = SuffixKind> {
    prop_oneof![
        Just(SuffixKind::Main),
        Just(SuffixKind::F4),
        Just(SuffixKind::F6),
        Just(SuffixKind::Tcp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The qname codec round-trips every (ts, src, dst, asn, suffix) tuple,
    /// for any mixture of families.
    #[test]
    fn qname_round_trips(
        ts in any::<u64>(),
        src in any_ip(),
        dst in any_ip(),
        asn in any::<u32>(),
        suffix in any_suffix(),
    ) {
        let codec = QnameCodec::new(&"dns-lab.org".parse().unwrap(), "x7");
        let name = codec.encode(SimTime::from_nanos(ts), src, dst, asn, suffix);
        prop_assert!(name.wire_len() <= 255);
        match codec.decode(&name) {
            Decoded::Full(tag) => {
                prop_assert_eq!(tag.ts.as_nanos(), ts);
                prop_assert_eq!(tag.src, src);
                prop_assert_eq!(tag.dst, dst);
                prop_assert_eq!(tag.asn, asn);
                prop_assert_eq!(tag.suffix, suffix);
            }
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    /// The wrap adjustment never *increases* an in-pool range beyond the
    /// Windows pool size, never fires for samples outside the IANA range,
    /// and is idempotent on non-wrapping samples.
    #[test]
    fn wrap_adjustment_invariants(ports in proptest::collection::vec(any::<u16>(), 10)) {
        let (adjusted, fired) = adjust_windows_wrap(&ports);
        let raw = range_of(&ports);
        if fired {
            // Only fires when every port is in one of the two wrap regions.
            let s = WINDOWS_POOL_SIZE;
            let (lo, hi) = (IANA_LO as u32, IANA_HI as u32);
            for &p in &ports {
                let p = p as u32;
                prop_assert!(
                    (lo..=(lo + s - 1)).contains(&p) || ((hi - s + 2)..=hi).contains(&p)
                );
            }
            // The adjusted range treats the pool as contiguous: it is
            // bounded by the two regions' combined width.
            prop_assert!(adjusted < 2 * s);
        } else {
            prop_assert_eq!(adjusted, raw);
        }
    }

    /// Pattern detection: sorted-unique sequences are increasing; reversed
    /// ones (len > 1, distinct) are not.
    #[test]
    fn increasing_pattern_props(mut ports in proptest::collection::vec(any::<u16>(), 3..12)) {
        ports.sort_unstable();
        ports.dedup();
        prop_assume!(ports.len() >= 3);
        let (inc, wrapped) = increasing_pattern(&ports);
        prop_assert!(inc && !wrapped);
        let rev: Vec<u16> = ports.iter().rev().copied().collect();
        let (inc_rev, _) = increasing_pattern(&rev);
        prop_assert!(!inc_rev);
        // Rotating a strictly increasing sequence yields one wrap.
        let k = ports.len() / 2;
        prop_assume!(k >= 1 && k < ports.len());
        let mut rotated = ports[k..].to_vec();
        rotated.extend_from_slice(&ports[..k]);
        let (inc_rot, wrap_rot) = increasing_pattern(&rotated);
        prop_assert!(inc_rot && wrap_rot, "rotation of increasing should wrap once: {rotated:?}");
    }

    /// classify_source is consistent with plan construction: every source a
    /// plan generates classifies back to its own category.
    #[test]
    fn classification_inverts_planning(seed in any::<u64>(), third_octet in 0u8..255) {
        let mut routes = PrefixTable::new();
        routes.announce("17.32.0.0/16".parse::<Prefix>().unwrap(), Asn(9));
        let target: IpAddr = format!("17.32.{third_octet}.77").parse().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let plan = SourcePlan::build(target, &routes, &mut rng);
        for (cat, src) in &plan.sources {
            let got = classify_source(*src, target, &routes);
            prop_assert_eq!(got, Some(*cat), "source {} of {}", src, target);
        }
    }

    /// Schedules preserve query counts, respect the rate cap, and stay
    /// sorted, for arbitrary small worlds — under the streaming per-lane
    /// constructor (the production path).
    #[test]
    fn schedule_invariants(
        n_targets in 1usize..20,
        rate in 1u32..200,
        window_secs in 1u64..500,
        salt in any::<u64>(),
    ) {
        let mut routes = PrefixTable::new();
        routes.announce("17.0.0.0/14".parse::<Prefix>().unwrap(), Asn(1));
        routes.announce("18.0.0.0/16".parse::<Prefix>().unwrap(), Asn(2));
        let mut candidates: Vec<IpAddr> = (0..n_targets)
            .map(|i| {
                let net = 17 + (i % 2);
                format!("{net}.0.{}.{}", i / 200, 1 + i % 100).parse().unwrap()
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let targets = TargetSet::from_candidates(&candidates, &routes);
        let lanes = bcd_core::schedule::lane_count(rate);
        let census = bcd_core::schedule::census(&targets, &routes, &[], None, lanes, salt, None);
        let layout = bcd_core::LaneLayout::new(
            rate,
            SimDuration::from_secs(window_secs),
            census.total,
            salt,
            None,
        );
        let owned: Vec<usize> = (0..lanes).collect();
        let s = Schedule::build_lanes(&targets, &routes, &[], None, &owned, &census, &layout);
        prop_assert_eq!(s.len() as u64, census.total);
        prop_assert!(s.peak_rate() <= rate);
        for i in 1..s.len() {
            prop_assert!(s.at(i - 1) <= s.at(i));
        }
        // Every planned (target, source) pair is scheduled exactly once —
        // against independently rebuilt per-target deterministic plans.
        let mut planned: Vec<(IpAddr, IpAddr)> = targets
            .iter()
            .flat_map(|t| {
                SourcePlan::build_deterministic(t.addr, &routes, &[], salt)
                    .sources
                    .into_iter()
                    .map(move |(_, s)| (t.addr, s))
            })
            .collect();
        let mut scheduled: Vec<(IpAddr, IpAddr)> =
            s.iter_with(&targets).map(|q| (q.target, q.source)).collect();
        planned.sort();
        scheduled.sort();
        prop_assert_eq!(planned, scheduled);
    }

    /// Loopback/ds/private categories are mutually exclusive under
    /// classification, for arbitrary address pairs.
    #[test]
    fn classification_is_a_function(src in any_ip(), dst in any_ip()) {
        let routes = PrefixTable::new();
        match classify_source(src, dst, &routes) {
            Some(SourceCategory::Loopback) => {
                prop_assert!(bcd_netsim::prefix::special::is_loopback(src));
            }
            Some(SourceCategory::DstAsSrc) => prop_assert_eq!(src, dst),
            Some(SourceCategory::Private) => {
                prop_assert!(bcd_netsim::prefix::special::is_private_or_ula(src));
            }
            Some(SourceCategory::SamePrefix) => {
                prop_assert_eq!(src.is_ipv6(), dst.is_ipv6());
                prop_assert_ne!(src, dst);
            }
            // No routes announced: other-prefix can never be inferred.
            Some(SourceCategory::OtherPrefix) => prop_assert!(false),
            None => {}
        }
    }
}

proptest! {
    /// Hitlist preference: with a hitlist containing a specific /64, that
    /// prefix always contributes an other-prefix source even when the AS
    /// has far more than 97 subnets.
    #[test]
    fn hitlist_prefixes_win_the_cap(seed in any::<u64>()) {
        let mut routes = PrefixTable::new();
        // A /48 = 65,536 /64s.
        routes.announce("2600:77::/48".parse::<Prefix>().unwrap(), Asn(4));
        let target: IpAddr = "2600:77:0:1::53".parse().unwrap();
        // Put a far-away /64 on the hitlist (index 40,000 — never in the
        // head of the enumeration).
        let active: Prefix = "2600:77:0:9c40::/64".parse().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let plan = bcd_core::sources::SourcePlan::build_with_hitlist(
            target,
            &routes,
            &[active],
            &mut rng,
        );
        let in_active = plan
            .sources
            .iter()
            .any(|(c, s)| *c == SourceCategory::OtherPrefix && active.contains(*s));
        prop_assert!(in_active, "hitlist /64 missing from the plan");
        // Still capped at 97 + 4 singleton categories.
        prop_assert!(plan.len() <= 101);
    }
}

// ---- sharded-merge algebra (crate::shard / bcd_netsim::merge) ----

const DROP_REASONS: [DropReason; 6] = [
    DropReason::Osav,
    DropReason::Dsav,
    DropReason::SubnetSavi,
    DropReason::PrivateIngress,
    DropReason::NoRoute,
    DropReason::LinkLoss,
];

fn any_counters() -> impl Strategy<Value = NetCounters> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec((0usize..DROP_REASONS.len(), any::<u16>()), 0..6),
    )
        .prop_map(|(sent, delivered, duplicated, intercepted, drops)| {
            let mut c = NetCounters {
                sent: sent as u64,
                delivered: delivered as u64,
                duplicated: duplicated as u64,
                intercepted: intercepted as u64,
                ..NetCounters::default()
            };
            for (i, n) in drops {
                *c.drops.entry(DROP_REASONS[i]).or_insert(0) += n as u64;
            }
            c
        })
}

fn any_stats() -> impl Strategy<Value = ScannerStats> {
    (
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        ),
    )
        .prop_map(|((a, b, c, d, e), (f, g, h, i, j))| ScannerStats {
            spoofed_sent: a as u64,
            followup_sets: b as u64,
            followup_queries: c as u64,
            open_probes: d as u64,
            tcp_probes: e as u64,
            human_lookups: f as u64,
            responses_received: g as u64,
            refused_responses: h as u64,
            opted_out: i as u64,
            outage_deferrals: j as u64,
        })
}

fn merged<T: Merge + Clone>(mut a: T, b: &T) -> T {
    a.merge(b.clone());
    a
}

/// Log entries whose canonical keys are unique (distinct qname serials) —
/// the shape a real merged survey log has, since every logged query's name
/// encodes its probe serial.
fn any_shard_logs() -> impl Strategy<Value = Vec<Vec<QueryLogEntry>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u16>(), 0u8..8, any::<u16>()), 0..24),
        1..4,
    )
    .prop_map(|shards| {
        let mut serial = 0u32;
        shards
            .into_iter()
            .map(|entries| {
                let mut v: Vec<QueryLogEntry> = entries
                    .into_iter()
                    .map(|(t, target, port)| {
                        serial += 1;
                        QueryLogEntry {
                            time: SimTime::from_secs(t as u64),
                            src: IpAddr::V4(Ipv4Addr::new(10, 0, 0, target)),
                            server: "198.51.100.1".parse().unwrap(),
                            src_port: port,
                            qname: format!("t{}.q{serial}.x.dns-lab.org", t).parse().unwrap(),
                            proto: LogProto::Udp,
                            observed_ttl: 52,
                            syn: None,
                        }
                    })
                    .collect();
                // Each shard's log is time-ordered, like a real capture.
                v.sort_by_key(|e| e.time);
                v
            })
            .collect()
    })
}

proptest! {
    /// NetCounters merge is commutative and associative — the shard fold
    /// may run in any grouping and still produce the same totals.
    #[test]
    fn counters_merge_is_commutative_associative(
        a in any_counters(),
        b in any_counters(),
        c in any_counters(),
    ) {
        let ab = merged(a.clone(), &b);
        let ba = merged(b.clone(), &a);
        prop_assert_eq!(format!("{ab:?}"), format!("{ba:?}"));
        let ab_c = merged(ab, &c);
        let a_bc = merged(a, &merged(b, &c));
        prop_assert_eq!(format!("{ab_c:?}"), format!("{a_bc:?}"));
    }

    /// ScannerStats merge is commutative and associative.
    #[test]
    fn scanner_stats_merge_is_commutative_associative(
        a in any_stats(),
        b in any_stats(),
        c in any_stats(),
    ) {
        let ab = merged(a.clone(), &b);
        let ba = merged(b.clone(), &a);
        prop_assert_eq!(format!("{ab:?}"), format!("{ba:?}"));
        let ab_c = merged(ab, &c);
        let a_bc = merged(a, &merged(b, &c));
        prop_assert_eq!(format!("{ab_c:?}"), format!("{a_bc:?}"));
    }

    /// Canonically sorting a concatenation of per-shard logs preserves each
    /// target's own arrival order and is independent of shard order.
    #[test]
    fn merged_logs_preserve_per_target_order(shards in any_shard_logs()) {
        let mut fwd: Vec<QueryLogEntry> = shards.iter().flatten().cloned().collect();
        canonical_sort(&mut fwd);
        let mut rev: Vec<QueryLogEntry> = shards.iter().rev().flatten().cloned().collect();
        canonical_sort(&mut rev);
        // Shard order is irrelevant (keys are unique per entry).
        let key = |e: &QueryLogEntry| (e.time, e.qname.clone(), e.src, e.src_port);
        prop_assert_eq!(fwd.iter().map(key).collect::<Vec<_>>(),
                        rev.iter().map(key).collect::<Vec<_>>());
        // Global order is by time; per-target subsequences stay sorted.
        for w in fwd.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for shard in &shards {
            for target in shard.iter().map(|e| e.src) {
                let times: Vec<SimTime> = fwd
                    .iter()
                    .filter(|e| e.src == target)
                    .map(|e| e.time)
                    .collect();
                prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }
}
