//! Differential scheduler-equivalence harness (the wheel's gate).
//!
//! The timing-wheel scheduler replaced the binary heap at the heart of a
//! byte-determinism-obsessed codebase. The only acceptable evidence that
//! the swap is safe is observational identity: run the *same* (seed,
//! world, chaos-profile, shard-count) input under `SchedKind::Heap` and
//! `SchedKind::Wheel` and demand byte-equality of everything a run can
//! produce — the merged query log (via `entries_digest` and raw entry
//! count), the rendered reports, the packet counters, the scanner stats,
//! and the total event count. On top of identity, every wheel run must
//! satisfy the standing `InvariantChecker` soundness properties, and
//! chaotic wheel runs the clean-vs-chaos monotonicity relations too.
//!
//! Shard counts cover {1, 4, 8}; chaos covers clean plus two named
//! profiles (a drop-flavoured and a crash-flavoured one). Paper-shape
//! worlds are covered by an `#[ignore]`d test (minutes in debug builds;
//! CI exercises the tiny matrix on every push and the full suite runs
//! under both `BCD_SCHED` values in the sched-matrix job).

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::chaos::{chaos_config, run_chaotic, run_clean};
use bcd_core::{entries_digest, report, ExperimentConfig, ExperimentData, InvariantChecker};
use bcd_netsim::SchedKind;

/// Run one survey with an explicit scheduler; `profile` of `None` is the
/// clean baseline, otherwise a named chaos profile keyed on the seed.
fn run(seed: u64, shards: usize, profile: Option<&str>, sched: SchedKind) -> ExperimentData {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.shards = shards;
    cfg.world.sched = sched;
    match profile {
        None => run_clean(&cfg),
        Some(p) => run_chaotic(&cfg, chaos_config(seed, p).expect("known chaos profile")),
    }
}

fn renders(data: &ExperimentData) -> [String; 3] {
    let input = data.input();
    let reach = Reachability::compute(&input);
    let cats = CategoryReport::compute(&reach);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    [
        report::render_headline(&data.targets, &reach),
        report::render_table3(&cats),
        report::render_table4(&ports),
    ]
}

/// The identity assertion: everything observable about the two runs must
/// match byte for byte.
fn assert_equivalent(heap: &ExperimentData, wheel: &ExperimentData, label: &str) {
    assert!(
        !heap.entries.is_empty(),
        "{label}: heap run produced an empty log"
    );
    assert_eq!(
        heap.entries.len(),
        wheel.entries.len(),
        "{label}: merged entry counts differ"
    );
    assert_eq!(
        entries_digest(heap),
        entries_digest(wheel),
        "{label}: entries_digest differs"
    );
    assert_eq!(
        renders(heap),
        renders(wheel),
        "{label}: rendered reports differ"
    );
    assert_eq!(
        format!("{:?}", heap.counters),
        format!("{:?}", wheel.counters),
        "{label}: packet counters differ"
    );
    assert_eq!(
        format!("{:?}", heap.scanner_stats),
        format!("{:?}", wheel.scanner_stats),
        "{label}: scanner stats differ"
    );
    assert_eq!(heap.events, wheel.events, "{label}: event totals differ");
    assert_eq!(
        heap.pending_deliveries, wheel.pending_deliveries,
        "{label}: pending deliveries differ"
    );
}

#[test]
fn heap_and_wheel_agree_clean() {
    for seed in [11u64, 2019] {
        for shards in [1usize, 4, 8] {
            let heap = run(seed, shards, None, SchedKind::Heap);
            let wheel = run(seed, shards, None, SchedKind::Wheel);
            assert_equivalent(
                &heap,
                &wheel,
                &format!("seed {seed}, {shards} shards, clean"),
            );
            let inv = InvariantChecker::check(&wheel);
            assert!(
                inv.is_ok(),
                "wheel invariants (seed {seed}, {shards} shards):\n{}",
                inv.render()
            );
        }
    }
}

#[test]
fn heap_and_wheel_agree_under_chaos() {
    let seed = 11u64;
    let clean_wheel = run(seed, 1, None, SchedKind::Wheel);
    for profile in ["drizzle", "crashy"] {
        for shards in [1usize, 4] {
            let heap = run(seed, shards, Some(profile), SchedKind::Heap);
            let wheel = run(seed, shards, Some(profile), SchedKind::Wheel);
            assert_equivalent(
                &heap,
                &wheel,
                &format!("seed {seed}, {shards} shards, {profile}"),
            );
            // Chaotic wheel runs must stay sound in themselves and in
            // relation to the clean baseline (the conservation and
            // monotonicity properties the chaos harness locks in).
            let inv = InvariantChecker::check_full(&clean_wheel, &wheel);
            assert!(
                inv.is_ok(),
                "wheel chaos invariants (seed {seed}, {shards} shards, {profile}):\n{}",
                inv.render()
            );
        }
    }
}

/// Work stealing is pure execution parallelism: the worker count must not
/// change a single output byte.
#[test]
fn worker_count_does_not_change_output() {
    let seed = 11u64;
    let base = {
        let mut cfg = ExperimentConfig::tiny(seed);
        cfg.shards = 4;
        cfg.workers = 1;
        run_clean(&cfg)
    };
    for workers in [2usize, 8] {
        let mut cfg = ExperimentConfig::tiny(seed);
        cfg.shards = 4;
        cfg.workers = workers;
        let data = run_clean(&cfg);
        assert_equivalent(&base, &data, &format!("4 shards, {workers} workers"));
    }
}

/// The full-size world, for release-mode runs (`cargo test --release -- --ignored`).
#[test]
#[ignore = "paper-shape worlds take minutes in debug builds"]
fn heap_and_wheel_agree_paper_shape() {
    let seed = 2019u64;
    for shards in [1usize, 8] {
        let heap = {
            let mut cfg = ExperimentConfig::paper_shape(seed);
            cfg.shards = shards;
            cfg.world.sched = SchedKind::Heap;
            run_clean(&cfg)
        };
        let wheel = {
            let mut cfg = ExperimentConfig::paper_shape(seed);
            cfg.shards = shards;
            cfg.world.sched = SchedKind::Wheel;
            run_clean(&cfg)
        };
        assert_equivalent(&heap, &wheel, &format!("paper shape, {shards} shards"));
        let inv = InvariantChecker::check(&wheel);
        assert!(
            inv.is_ok(),
            "paper-shape wheel invariants:\n{}",
            inv.render()
        );
    }
}
