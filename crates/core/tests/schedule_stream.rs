//! Differential harness for the streaming per-shard schedule build.
//!
//! The survey-tier refactor replaced the global build-sort-smooth
//! constructor with per-lane streaming construction: each shard builds
//! only its own lanes, per-target phases are hash-derived from the
//! canonical target bytes, and the rate cap is enforced through
//! deterministic per-lane quotas. The only acceptable evidence that the
//! swap is safe is byte-equality against the legacy-shaped oracle
//! ([`Schedule::build_global`], also reachable as `BCD_SCHEDULE=global`):
//!
//! * **stream ≡ global** — the concatenation of every shard's streamed
//!   part equals the globally built schedule, row for row, for every
//!   lane→shard map,
//! * **shard-count invariance** — the per-shard parts for S ∈ {1, 4, 8}
//!   are exactly the lane partitions of the same global schedule, so the
//!   schedule bytes do not depend on `BCD_SHARDS`,
//! * **conservation & cap** — every census-counted probe is scheduled
//!   exactly once and no second ever exceeds the global rate,
//! * **order independence** — a target's rows depend only on its own
//!   canonical bytes, not on which other targets happen to share the
//!   plan iteration,
//! * **experiment-level identity** — a full tiny survey under
//!   `ScheduleMode::Streaming` and `ScheduleMode::Global` produces the
//!   same merged log digest and reports.

use bcd_core::chaos::run_clean;
use bcd_core::schedule::{self, Schedule, ScheduleMode};
use bcd_core::shard;
use bcd_core::sources::SourcePlan;
use bcd_core::targets::TargetSet;
use bcd_core::{entries_digest, ExperimentConfig, LaneLayout};
use bcd_netsim::{Asn, Prefix, PrefixTable, SimDuration};
use std::collections::HashMap;
use std::net::IpAddr;

/// A routed multi-AS population: `n_asns` ASes each announcing a /16 and
/// contributing `per_asn` sorted candidate addresses.
fn population(n_asns: usize, per_asn: usize) -> (TargetSet, PrefixTable) {
    let mut routes = PrefixTable::new();
    let mut candidates: Vec<IpAddr> = Vec::new();
    for a in 0..n_asns {
        // 60.x/61.x — well clear of every special-purpose range the
        // target extractor excludes (10/8 would empty the whole set).
        let net = 60 + a / 200;
        let p: Prefix = format!("{net}.{}.0.0/16", a % 200).parse().unwrap();
        routes.announce(p, Asn(1000 + a as u32));
        for h in 0..per_asn {
            candidates.push(
                format!("{net}.{}.{}.{}", a % 200, h / 200, 1 + h % 200)
                    .parse()
                    .unwrap(),
            );
        }
    }
    candidates.sort_unstable();
    let targets = TargetSet::from_candidates(&candidates, &routes);
    (targets, routes)
}

fn build_streamed(
    targets: &TargetSet,
    routes: &PrefixTable,
    census: &schedule::ScheduleCensus,
    layout: &LaneLayout,
    shards: usize,
) -> (Vec<Schedule>, Vec<Option<usize>>) {
    let (lane_shard, eff) = shard::assign_lanes(&census.lane_counts, shards);
    let parts = (0..eff)
        .map(|sid| {
            Schedule::build_lanes(
                targets,
                routes,
                &[],
                None,
                &shard::lanes_of_shard(&lane_shard, sid),
                census,
                layout,
            )
        })
        .collect();
    (parts, lane_shard)
}

/// Flatten per-shard parts back into one globally sorted schedule.
fn flatten(parts: &[Schedule], targets: &TargetSet) -> Vec<(u64, IpAddr, IpAddr, u8)> {
    let mut rows: Vec<(u64, IpAddr, IpAddr, u8)> = parts
        .iter()
        .flat_map(|p| {
            p.iter_with(targets)
                .map(|q| (q.at.as_nanos(), q.target, q.source, q.category as u8))
        })
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn streaming_equals_global_oracle_across_shard_counts() {
    for seed in [1u64, 77, 20_20] {
        let (targets, routes) = population(23, 7);
        for rate in [3u32, 70, 700] {
            let lanes = schedule::lane_count(rate);
            let census = schedule::census(&targets, &routes, &[], None, lanes, seed, None);
            assert!(census.total > 0, "population must schedule something");
            let layout =
                LaneLayout::new(rate, SimDuration::from_secs(60), census.total, seed, None);
            let oracle = Schedule::build_global(&targets, &routes, &[], None, &census, &layout);
            let oracle_rows = flatten(std::slice::from_ref(&oracle), &targets);
            for shards in [1usize, 4, 8] {
                let (parts, lane_shard) =
                    build_streamed(&targets, &routes, &census, &layout, shards);
                // Conservation: every census-counted probe scheduled once.
                let total: usize = parts.iter().map(Schedule::len).sum();
                assert_eq!(
                    total as u64, census.total,
                    "seed={seed} rate={rate} S={shards}"
                );
                // Each streamed part is byte-equal to the oracle's lane
                // partition for the same lane→shard map...
                let oracle_parts = oracle.partition_by_lane(&targets, &lane_shard, parts.len());
                assert_eq!(
                    parts, oracle_parts,
                    "seed={seed} rate={rate} S={shards}: streamed parts != oracle partition"
                );
                // ...and the flattened union is the oracle itself, so the
                // schedule bytes are shard-count-invariant.
                assert_eq!(
                    flatten(&parts, &targets),
                    oracle_rows,
                    "seed={seed} rate={rate} S={shards}: flattened union differs"
                );
            }
        }
    }
}

#[test]
fn per_second_cap_never_exceeded_across_lane_union() {
    let (targets, routes) = population(31, 9);
    for rate in [2u32, 13, 64, 700] {
        let lanes = schedule::lane_count(rate);
        let census = schedule::census(&targets, &routes, &[], None, lanes, 42, None);
        let layout = LaneLayout::new(rate, SimDuration::from_secs(10), census.total, 42, None);
        let (parts, _) = build_streamed(&targets, &routes, &census, &layout, 4);
        // The global cap must hold over the union of all shards, not just
        // within each one — that is what the lane quotas guarantee.
        let mut per_sec: HashMap<u64, u32> = HashMap::new();
        for p in &parts {
            for i in 0..p.len() {
                *per_sec
                    .entry(p.at(i).as_nanos() / 1_000_000_000)
                    .or_insert(0) += 1;
            }
        }
        let peak = per_sec.values().copied().max().unwrap_or(0);
        assert!(peak <= rate, "rate={rate}: union peak {peak} exceeds cap");
    }
}

#[test]
fn target_rows_independent_of_surrounding_population() {
    // The same address must get the same plan, phase, and sources whether
    // it is scheduled among 3 targets or 300 — per-target derivation is a
    // pure function of (salt, canonical target bytes). Use a rate high
    // enough that smoothing never moves a row, and populations whose
    // census totals extend the window identically (total/rate == 0).
    let (small, routes_small) = population(3, 4);
    let (large, routes_large) = population(40, 8);
    let salt = 7;
    let rate = 100_000;
    let lanes = schedule::lane_count(rate);
    let window = SimDuration::from_secs(30);
    let rows_of = |targets: &TargetSet, routes: &PrefixTable| {
        let census = schedule::census(targets, routes, &[], None, lanes, salt, None);
        let layout = LaneLayout::new(rate, window, census.total, salt, None);
        let all: Vec<usize> = (0..lanes).collect();
        let s = Schedule::build_lanes(targets, routes, &[], None, &all, &census, &layout);
        let mut by_target: HashMap<IpAddr, Vec<(u64, IpAddr, u8)>> = HashMap::new();
        for q in s.iter_with(targets) {
            by_target.entry(q.target).or_default().push((
                q.at.as_nanos(),
                q.source,
                q.category as u8,
            ));
        }
        by_target
    };
    let small_rows = rows_of(&small, &routes_small);
    let large_rows = rows_of(&large, &routes_large);
    let shared: Vec<&IpAddr> = small_rows
        .keys()
        .filter(|a| large_rows.contains_key(*a))
        .collect();
    assert!(
        !shared.is_empty(),
        "populations must overlap for the test to bite: small={:?} large_n={}",
        small_rows.keys().collect::<Vec<_>>(),
        large_rows.len()
    );
    for addr in shared {
        assert_eq!(
            small_rows[addr], large_rows[addr],
            "{addr}: rows depend on surrounding population"
        );
    }
}

#[test]
fn phase_and_plan_survive_target_set_identity() {
    // Belt-and-braces on the derivation primitives themselves: the phase
    // and the deterministic source plan are functions of (salt, addr)
    // only, never of TargetSet membership or iteration order.
    let (targets, routes) = population(11, 5);
    let layout = LaneLayout::new(700, SimDuration::from_secs(5), 100, 99, None);
    for t in targets.iter() {
        let p1 = SourcePlan::build_deterministic(t.addr, &routes, &[], 99);
        let p2 = SourcePlan::build_deterministic(t.addr, &routes, &[], 99);
        assert_eq!(p1.sources, p2.sources);
        assert_eq!(layout.phase(t.addr), layout.phase(t.addr));
    }
}

#[test]
fn experiment_streaming_and_global_runs_are_identical() {
    let mut stream_cfg = ExperimentConfig::tiny(20_20);
    stream_cfg.schedule_mode = ScheduleMode::Streaming;
    stream_cfg.shards = 4;
    let mut global_cfg = ExperimentConfig::tiny(20_20);
    global_cfg.schedule_mode = ScheduleMode::Global;
    global_cfg.shards = 4;
    let streamed = run_clean(&stream_cfg);
    let global = run_clean(&global_cfg);
    assert!(!streamed.entries.is_empty(), "streamed run produced no log");
    assert_eq!(streamed.entries.len(), global.entries.len());
    assert_eq!(entries_digest(&streamed), entries_digest(&global));
    assert_eq!(
        format!("{:?}", streamed.scanner_stats),
        format!("{:?}", global.scanner_stats)
    );
}
