//! Shard-count invariance (the sharding layer's contract).
//!
//! A sharded survey partitions probes by destination AS, runs one engine
//! per shard over the *same* shared world, and merges the artifacts
//! deterministically. These tests lock in the observable guarantees:
//!
//! * the headline and the two most merge-sensitive tables render
//!   *byte-identically* for 1, 2, and 8 shards — across seeds, so the
//!   invariance is not an accident of one topology;
//! * the *raw* merged log-entry count is *equal* at every shard count.
//!   Entry counts are the sharpest invariant: the shared public-DNS hosts
//!   relay queries from many ASes, and before their upstream draws were
//!   derived from query identity (and pending queries demuxed by
//!   `(txid, sport)`), rare txid collisions made one-in-a-thousand probes
//!   retry — or not — depending on the shard layout.

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::{report, Experiment, ExperimentConfig};

fn run(seed: u64, shards: usize) -> (usize, [String; 3]) {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.shards = shards;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let cats = CategoryReport::compute(&reach);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    (
        data.entries.len(),
        [
            report::render_headline(&data.targets, &reach),
            report::render_table3(&cats),
            report::render_table4(&ports),
        ],
    )
}

#[test]
fn renders_and_entry_counts_are_shard_count_invariant() {
    for seed in [11u64, 2019] {
        let (count1, single) = run(seed, 1);
        assert!(count1 > 0, "seed {seed} produced an empty log");
        for shards in [2usize, 8] {
            let (count_n, sharded) = run(seed, shards);
            assert_eq!(
                count1, count_n,
                "raw merged entry count differs between 1 and {shards} shards at seed {seed}"
            );
            for (one, many) in single.iter().zip(sharded.iter()) {
                assert_eq!(
                    one, many,
                    "render differs between 1 and {shards} shards at seed {seed}"
                );
            }
        }
    }
}
