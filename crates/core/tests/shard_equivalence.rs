//! Shard-count invariance (the sharding layer's contract).
//!
//! A sharded survey partitions probes by destination AS, runs one engine
//! per shard, and merges the artifacts deterministically. These tests lock
//! in the observable guarantee: the headline and the two most
//! merge-sensitive tables render *byte-identically* for 1, 2, and 8 shards
//! — across seeds, so the invariance is not an accident of one topology.

use bcd_core::analysis::categories::CategoryReport;
use bcd_core::analysis::openclosed::OpenClosedReport;
use bcd_core::analysis::ports::PortReport;
use bcd_core::analysis::reachability::Reachability;
use bcd_core::{report, Experiment, ExperimentConfig};

fn renders(seed: u64, shards: usize) -> [String; 3] {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.shards = shards;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let cats = CategoryReport::compute(&reach);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    [
        report::render_headline(&data.targets, &reach),
        report::render_table3(&cats),
        report::render_table4(&ports),
    ]
}

#[test]
fn renders_are_shard_count_invariant() {
    for seed in [11u64, 2019] {
        let single = renders(seed, 1);
        for shards in [2usize, 8] {
            let sharded = renders(seed, shards);
            for (one, many) in single.iter().zip(sharded.iter()) {
                assert_eq!(
                    one, many,
                    "render differs between 1 and {shards} shards at seed {seed}"
                );
            }
        }
    }
}
