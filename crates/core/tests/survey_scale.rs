//! Survey-tier batch job: run the spoofing survey end-to-end over the
//! full `internet_scale` world — the paper's ~62k measured ASes and ~12M
//! DITL candidates — with a deterministic keep-1-in-N target subsample
//! bounding the probe count.
//!
//! This is the experiment-level counterpart of worldgen's
//! `internet_scale` smoke: the world is built at full population, the
//! target set is extracted at full population, the schedule census runs
//! over every kept target, and the per-shard streaming constructor never
//! materializes the global query vec — only the sampled schedule exists
//! in memory. The run must fit the same CI budget (< 8 GiB peak RSS) and
//! reproduce the Table 1/2 shape marginals at survey level.
//!
//! Knobs (all optional):
//! * `BCD_SURVEY_SAMPLE` — keep-1-in-N target sampling (default 4096).
//! * `BCD_SHARDS` / `BCD_WORKERS` — honoured by the config constructors.
//! * `BCD_SCHEDULE=global` — swap in the legacy-shaped oracle
//!   constructor (byte-equal, but materializes the global vec; expect a
//!   higher watermark).
//! * `BCD_SCALE_PROFILE=path.jsonl` — export the per-phase wall/RSS
//!   breakdown for the CI artifact.
//! * `BCD_SURVEY_REPORT=path.txt` — write the deterministic run report.
//!
//! Ignored by default: this is a release-mode batch job (`cargo test -r
//! -p bcd-core -- --ignored survey_full_population`). The CI
//! `survey-smoke` job runs it.

use bcd_core::analysis::reachability::Reachability;
use bcd_core::{Experiment, ExperimentConfig};
use bcd_netsim::{Asn, SimDuration};
use bcd_obs::ObsEnv;
use bcd_worldgen::WorldConfig;
use std::collections::HashSet;

/// Peak resident set size of this process in GiB (`VmHWM` from
/// `/proc/self/status`). Linux-only, like the CI runner.
fn peak_rss_gib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("VmHWM line")
        .parse()
        .expect("VmHWM value");
    kb / (1024.0 * 1024.0)
}

#[test]
#[ignore = "release-mode batch job: surveys the full 62k-AS world"]
fn survey_full_population_within_budget() {
    let sample: u64 = std::env::var("BCD_SURVEY_SAMPLE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    let mut cfg = ExperimentConfig::paper_shape(2019);
    cfg.world = WorldConfig::internet_scale(2019);
    cfg.target_sample = Some(sample);
    // Ask for a short window and let the rate cap extend it: the probe
    // count is what it is, and a dense schedule keeps sim time bounded.
    cfg.window = SimDuration::from_mins(5);
    let t0 = std::time::Instant::now();
    let data = Experiment::run_observed(cfg, &ObsEnv::from_env());
    let run_secs = t0.elapsed().as_secs_f64();

    // ---- Table 1 shape at survey level: the *full* target population was
    // extracted (sampling happens at schedule time, not extraction time).
    let n_targets = data.targets.len();
    assert!(
        (8_000_000..=16_000_000).contains(&n_targets),
        "targets: {n_targets}"
    );
    let expected_kept = n_targets as u64 / sample;
    // The keep set is a hash over canonical target bytes — binomial
    // around n/N. Allow a generous ±50% band around the expectation.
    let kept = data
        .obs
        .aggregate
        .counter(bcd_obs::report::names::SCHEDULE_TARGETS, &[]);
    assert!(
        kept >= expected_kept / 2 && kept <= expected_kept * 2,
        "sampled targets {kept} implausible for keep-1-in-{sample} of {n_targets}"
    );
    let probes = data
        .obs
        .aggregate
        .counter(bcd_obs::report::names::SCHEDULE_PROBES, &[]);
    assert_eq!(
        probes,
        data.scanner_stats.spoofed_sent + data.scanner_stats.opted_out,
        "schedule probe accounting must conserve through the scanner"
    );

    // ---- The survey actually ran: spoofed probes went out, the
    // authoritative log filled, and reached populations are non-trivial.
    assert!(
        data.scanner_stats.spoofed_sent > 0,
        "no spoofed probes sent"
    );
    assert!(!data.entries.is_empty(), "authoritative log is empty");
    assert!(!data.budget_exhausted, "a shard hit its event budget");
    let input = data.input();
    let reach = Reachability::compute(&input);
    let reached_addrs = reach.reached.len();
    let reached_asns: HashSet<Asn> = reach.reached.values().map(|h| h.asn).collect();
    assert!(reached_addrs > 0, "no target reached");
    assert!(
        reached_asns.len() >= 10,
        "reached ASNs: {} — survey shape collapsed",
        reached_asns.len()
    );
    // Table 2 shape: both families must appear among reached targets at
    // full population (v6 is >100k targets pre-sampling).
    assert!(
        reach.reached.keys().any(|a| a.is_ipv6()),
        "no v6 target reached"
    );

    // ---- Artifacts for the CI job.
    for p in &data.obs.profile.phases {
        let rss_gib = p
            .rss_peak_kib
            .map(|k| k as f64 / (1024.0 * 1024.0))
            .unwrap_or(f64::NAN);
        eprintln!(
            "survey-profile: {:<16} {:>8.2}s  rss-peak {rss_gib:.2} GiB",
            p.name,
            p.wall.as_secs_f64()
        );
    }
    if let Ok(path) = std::env::var("BCD_SCALE_PROFILE") {
        data.obs
            .write_jsonl(std::path::Path::new(&path))
            .expect("write BCD_SCALE_PROFILE export");
        eprintln!("survey-profile: exported to {path}");
    }
    if let Ok(path) = std::env::var("BCD_SURVEY_REPORT") {
        std::fs::write(
            &path,
            bcd_obs::report::render_run_report_deterministic(&data.obs),
        )
        .expect("write BCD_SURVEY_REPORT");
        eprintln!("survey-report: exported to {path}");
    }

    // ---- Resource budget: same bar as the worldgen smoke. The streaming
    // constructor is what keeps this under the build's own watermark —
    // the global query vec over 12M targets would not fit the margin.
    let rss = peak_rss_gib();
    eprintln!(
        "survey_scale: ran in {run_secs:.1}s, peak RSS {rss:.2} GiB, \
         {} spoofed probes, {reached_addrs} reached addrs, {} reached ASNs",
        data.scanner_stats.spoofed_sent,
        reached_asns.len()
    );
    assert!(rss < 8.0, "peak RSS {rss:.2} GiB exceeds the 8 GiB budget");
}
