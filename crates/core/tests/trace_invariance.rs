//! Shard- and scheduler-invariance of the causal span flight recorder.
//!
//! The tracing contract (ISSUE acceptance): with `BCD_TRACE` armed, the
//! merged flight recorder — every span, every step index, the eviction
//! count, and the rendered dump — is **byte-identical** for `BCD_SHARDS`
//! ∈ {1, 4, 8} under both event schedulers (`BCD_SCHED=heap|wheel`) at
//! the same seed. Trace ids derive from qnames (never host RNG), spans
//! evict in canonical `(time, trace, step)` order, and warmup resolver
//! traffic is never traced, so nothing in the recorder may betray how the
//! run was split or which queue implementation ordered its events.
//!
//! A golden snapshot additionally pins the rendered causal chain of one
//! sampled query. Regenerate after an intentional span change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bcd-core --test trace_invariance
//! ```

use bcd_core::chaos::{self, violation_artifact};
use bcd_core::{Experiment, ExperimentConfig, ExperimentData};
use bcd_netsim::{SchedKind, TraceSample};
use bcd_obs::{chrome_trace_json, ObsEnv, RunProfile, TraceConfig};
use std::path::PathBuf;

fn run_traced(seed: u64, shards: usize, sched: SchedKind, trace: TraceConfig) -> ExperimentData {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.shards = shards;
    cfg.world.sched = sched;
    Experiment::run_observed(cfg, &ObsEnv::with_trace(trace))
}

#[test]
fn flight_recorder_is_shard_and_scheduler_invariant() {
    for seed in [11u64, 2019] {
        let base = run_traced(seed, 1, SchedKind::Wheel, TraceConfig::default());
        let flight = base.flight.as_ref().expect("tracing was armed");
        assert!(!flight.is_empty(), "seed {seed}: no spans recorded");
        assert!(
            flight.traces().len() > 1,
            "seed {seed}: expected multiple traced queries"
        );
        let dump = flight.dump();
        // The pid-1 (sim clock) side of the Chrome export is a pure
        // function of the recorder; rendered against an empty profile the
        // whole document must be invariant too.
        let chrome = chrome_trace_json(flight, &RunProfile::new());
        for (shards, sched) in [
            (4usize, SchedKind::Wheel),
            (8, SchedKind::Wheel),
            (1, SchedKind::Heap),
            (4, SchedKind::Heap),
            (8, SchedKind::Heap),
        ] {
            let data = run_traced(seed, shards, sched, TraceConfig::default());
            let f = data.flight.as_ref().expect("tracing was armed");
            assert_eq!(
                flight.recorded(),
                f.recorded(),
                "seed {seed}, {shards} shards, {sched:?}: recorded-span totals differ"
            );
            assert_eq!(
                flight.evicted(),
                f.evicted(),
                "seed {seed}, {shards} shards, {sched:?}: eviction counts differ"
            );
            assert_eq!(
                dump,
                f.dump(),
                "seed {seed}, {shards} shards, {sched:?}: flight-recorder dump differs"
            );
            assert_eq!(
                chrome,
                chrome_trace_json(f, &RunProfile::new()),
                "seed {seed}, {shards} shards, {sched:?}: chrome export differs"
            );
        }
    }
}

#[test]
fn sampling_and_eviction_stay_invariant_under_pressure() {
    // 1-in-4 hash sampling plus a window far too small for the run: the
    // retained set must still be the same global top-capacity spans (and
    // the eviction counter the same telescoped difference) at any layout.
    let trace = TraceConfig {
        sample: TraceSample {
            every: 4,
            qname_suffix: None,
        },
        capacity: 64,
        ..TraceConfig::default()
    };
    let base = run_traced(11, 1, SchedKind::Wheel, trace.clone());
    let flight = base.flight.as_ref().unwrap();
    assert_eq!(flight.len(), 64, "window should be full");
    assert!(flight.evicted() > 0, "cap 64 should have evicted spans");
    let full = run_traced(11, 1, SchedKind::Wheel, TraceConfig::default());
    assert!(
        flight.recorded() < full.flight.as_ref().unwrap().recorded(),
        "1-in-4 sampling should record fewer spans than tracing everything"
    );
    for shards in [4usize, 8] {
        let data = run_traced(11, shards, SchedKind::Wheel, trace.clone());
        let f = data.flight.as_ref().unwrap();
        assert_eq!(flight.evicted(), f.evicted(), "{shards} shards: evictions");
        assert_eq!(flight.dump(), f.dump(), "{shards} shards: retained window");
    }
}

#[test]
fn chaos_violation_artifact_is_shard_invariant() {
    // The artifact a violation would upload — run report + replay line +
    // causal window — must match byte-for-byte however the run was split,
    // or a reproducer filed from an 8-shard CI job would not describe the
    // single-shard replay. (The run itself holds its invariants; the
    // artifact renderer does not care.)
    let seed = 2020u64;
    let mk = |shards: usize| {
        let mut base = ExperimentConfig::tiny(seed);
        base.shards = shards;
        let clean = chaos::run_clean(&base);
        let run = chaos::run_checked(
            &base,
            chaos::chaos_config(seed, "bursty").expect("known profile"),
            &clean,
        );
        assert!(
            run.data.flight.is_some(),
            "run_checked must arm the flight recorder"
        );
        violation_artifact(&clean, &run, None)
    };
    let one = mk(1);
    assert!(one.contains("-- causal window (flight recorder) --"));
    assert_eq!(
        one,
        mk(4),
        "violation artifact differs between 1 and 4 shards"
    );
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn sampled_query_trace_render_matches_golden_snapshot() {
    // Pin the rendered causal chain of one traced query: the span
    // vocabulary (send → route → deliver → cache-probe → upstream → ... →
    // reply) and the detail grammar are part of the observable surface.
    let data = run_traced(11, 1, SchedKind::Wheel, TraceConfig::default());
    let flight = data.flight.as_ref().unwrap();
    // The lowest trace id is a stable, layout-free choice of exemplar;
    // prefer one with a multi-hop chain so the render shows causality.
    let id = flight
        .traces()
        .iter()
        .copied()
        .filter(|&t| flight.trace_spans(t).len() >= 4)
        .min()
        .expect("at least one multi-span trace");
    let actual = flight.render_trace(id);
    let path = golden_path("trace_render");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing snapshot {path:?}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "trace render changed; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
