//! The authoritative DNS server node.
//!
//! Serves a list of [`Zone`]s over UDP and (simplified) TCP, logs every
//! query to the shared [`crate::QueryLog`], and implements the experiment-specific
//! behaviours: NXDOMAIN-for-everything, wildcard synthesis, and TC=1 UDP
//! truncation (§3.3, §3.5).
//!
//! TCP model: SYN → SYN-ACK → PSH(query) → PSH(response). The SYN's header
//! metadata is remembered per `(src, port)` and attached to the query's log
//! entry — that is the material §5.3.1 feeds to p0f.

use crate::log::{LogProto, QueryLogEntry, SharedLog, SynInfo};
use crate::zone::{zone_for, Zone, ZoneMode};
use bcd_dnswire::{Message, Name, RCode, RData, RType, Record, WireWriter};
use bcd_netsim::{Node, NodeCtx, Packet, Payload, TcpFlags, TcpSegment, Transport};
use std::collections::HashMap;
use std::net::IpAddr;

/// Authoritative server configuration.
pub struct AuthServerConfig {
    /// Zones this server is authoritative for (and infrastructure zones it
    /// serves referrals from).
    pub zones: Vec<Zone>,
    /// Shared query log (the experiment's measurement instrument).
    pub log: SharedLog,
    /// Whether to log queries at all (the root servers log — that's the
    /// DITL collection; the generic TLD sink does not need to).
    pub log_queries: bool,
}

/// The authoritative server node.
pub struct AuthServer {
    cfg: AuthServerConfig,
    /// SYN metadata per (peer addr, peer port), for TCP query logging.
    syn_seen: HashMap<(IpAddr, u16), SynInfo>,
    /// Reusable encode buffer: every response is serialized here, then
    /// copied once into the packet's shared payload.
    scratch: WireWriter,
    /// Queries answered, by transport.
    pub udp_queries: u64,
    pub tcp_queries: u64,
}

impl AuthServer {
    /// Create the node.
    pub fn new(cfg: AuthServerConfig) -> AuthServer {
        AuthServer {
            cfg,
            syn_seen: HashMap::new(),
            scratch: WireWriter::new(),
            udp_queries: 0,
            tcp_queries: 0,
        }
    }

    /// Change a served zone's answer mode (e.g. switch the experiment zone
    /// from NXDOMAIN to wildcard synthesis, the §3.6.4 ablation). Panics if
    /// the apex is not served here.
    pub fn set_zone_mode(&mut self, apex: &bcd_dnswire::Name, mode: ZoneMode) {
        let zone = self
            .cfg
            .zones
            .iter_mut()
            .find(|z| z.apex == *apex)
            .expect("zone not served by this host");
        zone.mode = mode;
    }

    /// Compose the response for `query` (also used directly by tests).
    /// Returns `None` for unparseable or non-query messages.
    pub fn answer(&self, query: &Message, over_tcp: bool) -> Option<Message> {
        if query.header.qr {
            return None;
        }
        let q = query.question()?.clone();
        let Some(zone) = zone_for(&self.cfg.zones, &q.name) else {
            // Not authoritative for anything covering this name.
            let mut resp = Message::response_to(query, RCode::Refused);
            resp.header.aa = false;
            return Some(resp);
        };

        // Delegated below a cut? Refer.
        if let Some(del) = zone.delegation_for(&q.name) {
            let mut resp = Message::response_to(query, RCode::NoError);
            for (ns_name, glue) in &del.ns {
                resp.authorities.push(Record::new(
                    del.cut.clone(),
                    86_400,
                    RData::Ns(ns_name.clone()),
                ));
                for addr in glue {
                    let rdata = match addr {
                        IpAddr::V4(a) => RData::A(*a),
                        IpAddr::V6(a) => RData::Aaaa(*a),
                    };
                    resp.additionals
                        .push(Record::new(ns_name.clone(), 86_400, rdata));
                }
            }
            return Some(resp);
        }

        // In-zone answer per mode.
        let mut resp = Message::response_to(query, RCode::NoError);
        resp.header.aa = true;
        match &zone.mode {
            ZoneMode::Nxdomain => {
                if q.name == zone.apex {
                    // The apex itself exists (SOA).
                    if q.rtype == RType::Soa {
                        resp.answers.push(zone.soa_record());
                    } else {
                        resp.authorities.push(zone.soa_record());
                    }
                } else {
                    resp.header.rcode = RCode::NXDomain;
                    resp.authorities.push(zone.soa_record());
                }
            }
            ZoneMode::Wildcard => {
                resp.answers.push(Record::new(
                    q.name.clone(),
                    60,
                    RData::Txt(b"bcd-experiment".to_vec()),
                ));
            }
            ZoneMode::TruncateUdp => {
                if over_tcp {
                    resp.header.rcode = RCode::NXDomain;
                    resp.authorities.push(zone.soa_record());
                } else {
                    resp.header.tc = true;
                }
            }
            ZoneMode::Static(records) => {
                let matching: Vec<Record> = records
                    .iter()
                    .filter(|r| r.name == q.name && r.rdata.rtype() == q.rtype)
                    .cloned()
                    .collect();
                if matching.is_empty() {
                    let exists = records.iter().any(|r| r.name == q.name);
                    if !exists && q.name != zone.apex {
                        resp.header.rcode = RCode::NXDomain;
                    }
                    resp.authorities.push(zone.soa_record());
                } else {
                    resp.answers = matching;
                }
            }
        }
        Some(resp)
    }

    fn log(&mut self, ctx: &NodeCtx<'_>, pkt: &Packet, qname: Name, proto: LogProto) {
        if !self.cfg.log_queries {
            return;
        }
        let syn = if proto == LogProto::Tcp {
            self.syn_seen
                .get(&(pkt.src, pkt.transport.src_port()))
                .copied()
        } else {
            None
        };
        self.cfg.log.borrow_mut().push(QueryLogEntry {
            time: ctx.now(),
            src: pkt.src,
            server: pkt.dst,
            src_port: pkt.transport.src_port(),
            qname,
            proto,
            observed_ttl: pkt.ttl,
            syn,
        });
    }
}

impl Node for AuthServer {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        match &pkt.transport {
            Transport::Udp(u) => {
                if u.dst_port != 53 {
                    return;
                }
                let Ok(query) = Message::decode(&u.payload) else {
                    return;
                };
                let Some(resp) = self.answer(&query, false) else {
                    return;
                };
                self.udp_queries += 1;
                if let Some(q) = query.question() {
                    self.log(ctx, &pkt, q.name.clone(), LogProto::Udp);
                }
                ctx.span(pkt.trace, bcd_netsim::SpanKind::Reply, || {
                    format!("auth {} udp rcode={:?}", pkt.dst, resp.header.rcode)
                });
                resp.encode_into(&mut self.scratch);
                ctx.send(
                    Packet::udp(pkt.dst, pkt.src, 53, u.src_port, self.scratch.as_bytes())
                        .with_trace(pkt.trace),
                );
            }
            Transport::Tcp(t) => {
                if t.dst_port != 53 {
                    return;
                }
                if t.flags.syn && !t.flags.ack {
                    // Remember the SYN's fingerprint material and accept.
                    self.syn_seen.insert(
                        (pkt.src, t.src_port),
                        SynInfo {
                            observed_ttl: pkt.ttl,
                            window: t.window,
                            mss: t.options.mss.unwrap_or(0),
                            layout: t.options.layout,
                        },
                    );
                    ctx.send(
                        Packet::tcp(
                            pkt.dst,
                            pkt.src,
                            TcpSegment {
                                src_port: 53,
                                dst_port: t.src_port,
                                flags: TcpFlags::SYN_ACK,
                                seq: 0,
                                ack: t.seq.wrapping_add(1),
                                window: 65_535,
                                options: Default::default(),
                                payload: Payload::empty(),
                            },
                        )
                        .with_trace(pkt.trace),
                    );
                } else if t.flags.psh && !t.payload.is_empty() {
                    // DNS-over-TCP: payload is a bare DNS message (we omit
                    // the 2-byte length prefix; the simulation preserves
                    // message boundaries).
                    let Ok(query) = Message::decode(&t.payload) else {
                        return;
                    };
                    let Some(resp) = self.answer(&query, true) else {
                        return;
                    };
                    self.tcp_queries += 1;
                    if let Some(q) = query.question() {
                        self.log(ctx, &pkt, q.name.clone(), LogProto::Tcp);
                    }
                    ctx.span(pkt.trace, bcd_netsim::SpanKind::Reply, || {
                        format!("auth {} tcp rcode={:?}", pkt.dst, resp.header.rcode)
                    });
                    resp.encode_into(&mut self.scratch);
                    ctx.send(
                        Packet::tcp(
                            pkt.dst,
                            pkt.src,
                            TcpSegment {
                                src_port: 53,
                                dst_port: t.src_port,
                                flags: TcpFlags::PSH_ACK,
                                seq: 1,
                                ack: t.seq.wrapping_add(t.payload.len() as u32),
                                window: 65_535,
                                options: Default::default(),
                                payload: Payload::from(self.scratch.as_bytes()),
                            },
                        )
                        .with_trace(pkt.trace),
                    );
                }
                // Bare ACK / FIN segments need no action in this model.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::shared_log;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn experiment_server() -> AuthServer {
        let zones = vec![
            Zone::new(n("dns-lab.org"), ZoneMode::Nxdomain).delegate(
                n("f4.dns-lab.org"),
                vec![(n("ns.f4.dns-lab.org"), vec!["192.0.2.20".parse().unwrap()])],
            ),
            Zone::new(n("tcp.dns-lab.org"), ZoneMode::TruncateUdp),
        ];
        AuthServer::new(AuthServerConfig {
            zones,
            log: shared_log(),
            log_queries: true,
        })
    }

    #[test]
    fn nxdomain_for_experiment_names() {
        let s = experiment_server();
        let q = Message::query(1, n("ts1.src.dst.asn.kw.dns-lab.org"), RType::A);
        let resp = s.answer(&q, false).unwrap();
        assert_eq!(resp.header.rcode, RCode::NXDomain);
        assert!(resp.header.aa);
        assert!(resp
            .authorities
            .iter()
            .any(|r| matches!(r.rdata, RData::Soa(_))));
    }

    #[test]
    fn apex_answers_soa() {
        let s = experiment_server();
        let q = Message::query(2, n("dns-lab.org"), RType::Soa);
        let resp = s.answer(&q, false).unwrap();
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn delegation_returns_referral_with_glue() {
        let s = experiment_server();
        let q = Message::query(3, n("x.f4.dns-lab.org"), RType::A);
        let resp = s.answer(&q, false).unwrap();
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert!(!resp.header.aa);
        assert!(resp
            .authorities
            .iter()
            .any(|r| matches!(&r.rdata, RData::Ns(ns) if *ns == n("ns.f4.dns-lab.org"))));
        assert!(resp
            .additionals
            .iter()
            .any(|r| matches!(r.rdata, RData::A(a) if a == "192.0.2.20".parse::<std::net::Ipv4Addr>().unwrap())));
    }

    #[test]
    fn tc_zone_truncates_udp_but_answers_tcp() {
        let s = experiment_server();
        let q = Message::query(4, n("probe.tcp.dns-lab.org"), RType::A);
        let udp = s.answer(&q, false).unwrap();
        assert!(udp.header.tc);
        assert_eq!(udp.header.rcode, RCode::NoError);
        let tcp = s.answer(&q, true).unwrap();
        assert!(!tcp.header.tc);
        assert_eq!(tcp.header.rcode, RCode::NXDomain);
    }

    #[test]
    fn off_zone_names_are_refused() {
        let s = experiment_server();
        let q = Message::query(5, n("example.com"), RType::A);
        let resp = s.answer(&q, false).unwrap();
        assert_eq!(resp.header.rcode, RCode::Refused);
    }

    #[test]
    fn responses_are_ignored() {
        let s = experiment_server();
        let q = Message::query(6, n("x.dns-lab.org"), RType::A);
        let mut as_resp = q.clone();
        as_resp.header.qr = true;
        assert!(s.answer(&as_resp, false).is_none());
    }

    #[test]
    fn wildcard_mode_synthesizes() {
        let zones = vec![Zone::new(n("dns-lab.org"), ZoneMode::Wildcard)];
        let s = AuthServer::new(AuthServerConfig {
            zones,
            log: shared_log(),
            log_queries: false,
        });
        let q = Message::query(7, n("anything.at.all.dns-lab.org"), RType::A);
        let resp = s.answer(&q, false).unwrap();
        assert_eq!(resp.header.rcode, RCode::NoError);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn static_zone_serves_records_and_nxdomain() {
        let zones = vec![Zone {
            apex: n("org"),
            soa: Zone::new(n("org"), ZoneMode::Nxdomain).soa,
            delegations: vec![],
            mode: ZoneMode::Static(vec![Record::new(
                n("www.org"),
                60,
                RData::A("203.0.113.1".parse().unwrap()),
            )]),
        }];
        let s = AuthServer::new(AuthServerConfig {
            zones,
            log: shared_log(),
            log_queries: false,
        });
        let hit = s
            .answer(&Message::query(8, n("www.org"), RType::A), false)
            .unwrap();
        assert_eq!(hit.answers.len(), 1);
        let nodata = s
            .answer(&Message::query(9, n("www.org"), RType::Aaaa), false)
            .unwrap();
        assert_eq!(nodata.header.rcode, RCode::NoError);
        assert!(nodata.answers.is_empty());
        let nx = s
            .answer(&Message::query(10, n("missing.org"), RType::A), false)
            .unwrap();
        assert_eq!(nx.header.rcode, RCode::NXDomain);
    }
}
