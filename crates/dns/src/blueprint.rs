//! Node blueprints: the immutable recipe for a host's behaviour.
//!
//! The Topology/Runtime split in `bcd-netsim` keeps node *state* out of the
//! shared world, but something still has to describe how each host behaves
//! so that every shard runtime can construct identical fresh nodes. That is
//! a [`NodeBlueprint`]: a plain-data description (`Send + Sync`, shareable
//! behind the same `Arc` as the topology) that [`NodeBlueprint::instantiate`]
//! turns into a live [`Node`].
//!
//! The one thing a blueprint cannot carry is the query log — [`SharedLog`]
//! is an `Rc<RefCell<..>>` confined to its runtime's thread. Blueprints
//! therefore store a *log slot index*, and each runtime passes its own
//! freshly created logs at instantiation time. Slot assignments are the
//! world builder's contract (in `bcd-worldgen`: slot 0 = experiment log,
//! slot 1 = root/DITL log).

use crate::auth::{AuthServer, AuthServerConfig};
use crate::interceptor::Interceptor;
use crate::log::SharedLog;
use crate::resolver::{RecursiveResolver, ResolverConfig};
use crate::zone::Zone;
use bcd_netsim::Node;
use std::net::IpAddr;

/// A host behaviour recipe. One per topology host, in host-id order.
#[derive(Debug, Clone)]
pub enum NodeBlueprint {
    /// An authoritative server: zones, which log slot it writes to, and
    /// whether it logs at all.
    Auth {
        zones: Vec<Zone>,
        /// Index into the runtime's log-slot table.
        log: usize,
        log_queries: bool,
    },
    /// A recursive resolver (fully described by its config).
    Resolver(ResolverConfig),
    /// A transparent DNS middlebox proxying to `upstream`.
    Interceptor { addr: IpAddr, upstream: IpAddr },
    /// A host that silently accepts everything (placeholder / counter).
    Sink,
}

impl NodeBlueprint {
    /// Construct a fresh node from this blueprint. `logs` is the runtime's
    /// log-slot table; only `Auth` blueprints consult it.
    pub fn instantiate(&self, logs: &[SharedLog]) -> Box<dyn Node> {
        match self {
            NodeBlueprint::Auth {
                zones,
                log,
                log_queries,
            } => Box::new(AuthServer::new(AuthServerConfig {
                zones: zones.clone(),
                log: logs[*log].clone(),
                log_queries: *log_queries,
            })),
            NodeBlueprint::Resolver(cfg) => Box::new(RecursiveResolver::new(cfg.clone())),
            NodeBlueprint::Interceptor { addr, upstream } => {
                Box::new(Interceptor::new(*addr, *upstream))
            }
            NodeBlueprint::Sink => Box::new(bcd_netsim::node::SinkNode::default()),
        }
    }
}
