//! The resolver cache: positive answers, negative (NXDOMAIN) entries with
//! RFC 8020 subtree semantics, and zone-cut (NS/glue) entries.
//!
//! The experiment's query names embed a timestamp precisely so they are
//! *never* cache hits (§3.3); what caching buys the simulation is realism
//! for the infrastructure path — after the first resolution, the resolver
//! goes straight to the `dns-lab.org` servers instead of re-walking root
//! and `org`, exactly like a real resolver (and exactly why DITL only sees
//! cache-cold resolvers, §3.6.2).

use bcd_dnswire::{Name, NameArena, NameId, RCode, RType, Record};
use bcd_netsim::SimTime;
use std::collections::HashMap;
use std::net::IpAddr;

/// A cached response.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    pub rcode: RCode,
    pub answers: Vec<Record>,
    pub expires: SimTime,
}

/// A cached zone cut: the addresses of a zone's nameservers.
#[derive(Debug, Clone)]
pub struct CachedCut {
    pub servers: Vec<IpAddr>,
    pub expires: SimTime,
}

/// The resolver cache.
///
/// Every key is a [`NameId`] into the cache's own [`NameArena`]: the label
/// vectors of a name are stored once however many entries reference it,
/// map probes hash a `u32` instead of case-folding labels, and the
/// RFC 8020 / zone-cut suffix walks slice one canonical byte buffer
/// instead of allocating a `Name` per ancestor.
#[derive(Debug, Default)]
pub struct Cache {
    arena: NameArena,
    answers: HashMap<(NameId, RType), CachedAnswer>,
    /// NXDOMAIN names (RFC 8020: implies nothing exists beneath them).
    nxdomain: HashMap<NameId, SimTime>,
    cuts: HashMap<NameId, CachedCut>,
}

/// Visit `name`'s suffixes deepest-first as slices of its canonical bytes
/// (the full name, then each ancestor, ending with the root `"."`),
/// stopping at the first `Some` the visitor returns. A suffix's canonical
/// form is a tail of the full name's — `"a.b.c."` contains `"b.c."`,
/// `"c."` — so the walk needs no allocation beyond `canon` itself.
fn walk_suffixes<T>(
    name: &Name,
    canon: &[u8],
    mut visit: impl FnMut(&[u8]) -> Option<T>,
) -> Option<T> {
    let mut off = 0usize;
    for label in name.labels() {
        if let Some(hit) = visit(&canon[off..]) {
            return Some(hit);
        }
        off += label.len() + 1;
    }
    visit(b".")
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Store a positive (or NODATA) answer.
    pub fn put_answer(
        &mut self,
        name: Name,
        rtype: RType,
        rcode: RCode,
        answers: Vec<Record>,
        expires: SimTime,
    ) {
        let id = self.arena.intern(&name);
        self.answers.insert(
            (id, rtype),
            CachedAnswer {
                rcode,
                answers,
                expires,
            },
        );
    }

    /// Store an NXDOMAIN for `name`.
    pub fn put_nxdomain(&mut self, name: Name, expires: SimTime) {
        let id = self.arena.intern(&name);
        self.nxdomain.insert(id, expires);
    }

    /// Store a zone cut.
    pub fn put_cut(&mut self, zone: Name, servers: Vec<IpAddr>, expires: SimTime) {
        let id = self.arena.intern(&zone);
        self.cuts.insert(id, CachedCut { servers, expires });
    }

    /// Look up an answer. NXDOMAIN entries cover the whole subtree
    /// (RFC 8020): a cached NXDOMAIN for `b.c` answers `a.b.c` too.
    pub fn get_answer(&self, name: &Name, rtype: RType, now: SimTime) -> Option<CachedAnswer> {
        let mut buf = [0u8; bcd_dnswire::MAX_NAME_WIRE_LEN];
        let len = name.canonical_into(&mut buf);
        let canon = &buf[..len];
        // Subtree negative match first. Skipped entirely while no NXDOMAIN
        // has ever been cached — the common case for cache-cold experiment
        // names.
        if !self.nxdomain.is_empty() {
            let neg = walk_suffixes(name, canon, |suffix| {
                let id = self.arena.lookup_canonical(suffix)?;
                let &exp = self.nxdomain.get(&id)?;
                (exp > now).then_some(exp)
            });
            if let Some(exp) = neg {
                return Some(CachedAnswer {
                    rcode: RCode::NXDomain,
                    answers: Vec::new(),
                    expires: exp,
                });
            }
        }
        let id = self.arena.lookup_canonical(canon)?;
        self.answers
            .get(&(id, rtype))
            .filter(|a| a.expires > now)
            .cloned()
    }

    /// The deepest cached zone cut enclosing `name` that is still fresh.
    /// Returns `(zone, servers)`.
    pub fn best_cut(&self, name: &Name, now: SimTime) -> Option<(Name, Vec<IpAddr>)> {
        let mut buf = [0u8; bcd_dnswire::MAX_NAME_WIRE_LEN];
        let len = name.canonical_into(&mut buf);
        let canon = &buf[..len];
        walk_suffixes(name, canon, |suffix| {
            let id = self.arena.lookup_canonical(suffix)?;
            let cut = self.cuts.get(&id)?;
            (cut.expires > now).then(|| (self.arena.get(id).clone(), cut.servers.clone()))
        })
    }

    /// Drop expired entries (called opportunistically). The arena keeps
    /// interned names — it is append-only by design; entry counts, not
    /// name storage, are what eviction bounds.
    pub fn evict_expired(&mut self, now: SimTime) {
        self.answers.retain(|_, a| a.expires > now);
        self.nxdomain.retain(|_, &mut exp| exp > now);
        self.cuts.retain(|_, c| c.expires > now);
    }

    /// Entry counts `(answers, nxdomains, cuts)` for tests/metrics.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.answers.len(), self.nxdomain.len(), self.cuts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_dnswire::RData;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn answers_respect_ttl() {
        let mut c = Cache::new();
        let rec = Record::new(n("www.org"), 60, RData::A("192.0.2.1".parse().unwrap()));
        c.put_answer(n("www.org"), RType::A, RCode::NoError, vec![rec], t(100));
        assert!(c.get_answer(&n("www.org"), RType::A, t(50)).is_some());
        assert!(c.get_answer(&n("www.org"), RType::A, t(100)).is_none());
        assert!(c.get_answer(&n("www.org"), RType::Aaaa, t(50)).is_none());
        // Case-insensitive key.
        assert!(c.get_answer(&n("WWW.ORG"), RType::A, t(50)).is_some());
    }

    #[test]
    fn rfc8020_subtree_negative() {
        let mut c = Cache::new();
        c.put_nxdomain(n("kw.dns-lab.org"), t(100));
        // The name itself and anything below it are negative.
        let hit = c.get_answer(&n("kw.dns-lab.org"), RType::A, t(10)).unwrap();
        assert_eq!(hit.rcode, RCode::NXDomain);
        let below = c
            .get_answer(&n("ts.src.dst.asn.kw.dns-lab.org"), RType::A, t(10))
            .unwrap();
        assert_eq!(below.rcode, RCode::NXDomain);
        // Siblings and ancestors are not.
        assert!(c
            .get_answer(&n("other.dns-lab.org"), RType::A, t(10))
            .is_none());
        assert!(c.get_answer(&n("dns-lab.org"), RType::A, t(10)).is_none());
        // Expiry honoured.
        assert!(c
            .get_answer(&n("kw.dns-lab.org"), RType::A, t(100))
            .is_none());
    }

    #[test]
    fn deepest_cut_wins() {
        let mut c = Cache::new();
        c.put_cut(Name::root(), vec!["198.41.0.4".parse().unwrap()], t(1000));
        c.put_cut(n("org"), vec!["199.19.56.1".parse().unwrap()], t(1000));
        c.put_cut(
            n("dns-lab.org"),
            vec!["203.0.113.53".parse().unwrap()],
            t(1000),
        );
        let (zone, servers) = c.best_cut(&n("a.b.kw.dns-lab.org"), t(1)).unwrap();
        assert_eq!(zone, n("dns-lab.org"));
        assert_eq!(servers.len(), 1);
        let (zone, _) = c.best_cut(&n("example.org"), t(1)).unwrap();
        assert_eq!(zone, n("org"));
        let (zone, _) = c.best_cut(&n("example.com"), t(1)).unwrap();
        assert_eq!(zone, Name::root());
    }

    #[test]
    fn expired_cut_falls_back_to_parent() {
        let mut c = Cache::new();
        c.put_cut(Name::root(), vec!["198.41.0.4".parse().unwrap()], t(1000));
        c.put_cut(n("org"), vec!["199.19.56.1".parse().unwrap()], t(10));
        let (zone, _) = c.best_cut(&n("example.org"), t(50)).unwrap();
        assert_eq!(zone, Name::root());
    }

    #[test]
    fn eviction_clears_expired() {
        let mut c = Cache::new();
        c.put_nxdomain(n("a.org"), t(10));
        c.put_nxdomain(n("b.org"), t(100));
        c.put_cut(n("org"), vec![], t(10));
        c.put_answer(n("x.org"), RType::A, RCode::NoError, vec![], t(10));
        c.evict_expired(t(50));
        assert_eq!(c.sizes(), (0, 1, 0));
    }
}
