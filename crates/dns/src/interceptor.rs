//! A transparent DNS-intercepting middlebox (§3.6.1).
//!
//! Some networks terminate all outbound-or-inbound UDP/53 at a middlebox
//! that answers on behalf of the nominal destination, typically by
//! forwarding to a public DNS service. For the experiment this matters
//! because a spoofed query can *enter the AS* (proving no DSAV) without the
//! target resolver itself handling it — the recursive-to-authoritative
//! query then arrives from Cloudflare/Google/etc. instead of the target AS.
//!
//! The engine redirects UDP/53 entering an AS to this node (see
//! [`bcd_netsim::Network::set_dns_interceptor`]); the node proxies to its
//! upstream and relays the answer with the original destination spoofed as
//! the response source, like real intercepting middleboxes do.

use bcd_dnswire::MessageView;
use bcd_netsim::{Node, NodeCtx, Packet, Transport};
use rand::Rng;
use std::collections::HashMap;
use std::net::IpAddr;

struct Flow {
    client: IpAddr,
    client_port: u16,
    client_txid: u16,
    /// The address the client thought it was querying.
    original_dst: IpAddr,
    /// Causal trace id of the intercepted query (0 = untraced), restored
    /// onto the relayed answer.
    trace: u64,
}

/// The middlebox node.
pub struct Interceptor {
    /// Our own address (used as the source of upstream queries).
    addr: IpAddr,
    /// Upstream resolver (a public DNS service in the simulation).
    upstream: IpAddr,
    flows: HashMap<u16, Flow>,
    /// Queries proxied, for tests.
    pub proxied: u64,
}

impl Interceptor {
    /// Create a middlebox proxying to `upstream`.
    pub fn new(addr: IpAddr, upstream: IpAddr) -> Interceptor {
        assert_eq!(
            addr.is_ipv6(),
            upstream.is_ipv6(),
            "interceptor and upstream must share a family"
        );
        Interceptor {
            addr,
            upstream,
            flows: HashMap::new(),
            proxied: 0,
        }
    }
}

impl Node for Interceptor {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        let Transport::Udp(u) = &pkt.transport else {
            return;
        };
        // Lazy decode: the middlebox only reads header fields and rewrites
        // the txid (plus RD on the forward leg), so it patches the wire
        // bytes in place instead of decode → modify → re-encode. For
        // messages our own encoder produced the two are byte-identical.
        let Ok(view) = MessageView::parse(&u.payload) else {
            return;
        };
        if !view.qr() && u.dst_port == 53 {
            // Client → middlebox (possibly addressed to someone else):
            // re-originate toward the upstream.
            if pkt.src.is_ipv6() != self.addr.is_ipv6() {
                return;
            }
            // A loopback "client" has no reply path through a middlebox;
            // such packets are dropped rather than proxied.
            if pkt.has_loopback_src() {
                return;
            }
            // Sanity-check the QNAME parses before proxying garbage.
            let Ok(Some(_)) = view.question() else {
                return;
            };
            let txid: u16 = ctx.rng().gen();
            self.flows.insert(
                txid,
                Flow {
                    client: pkt.src,
                    client_port: u.src_port,
                    client_txid: view.id(),
                    original_dst: pkt.dst,
                    trace: pkt.trace,
                },
            );
            self.proxied += 1;
            ctx.span(pkt.trace, bcd_netsim::SpanKind::Intercept, || {
                format!(
                    "middlebox {} re-originated query for {} to upstream {} (txid rewritten)",
                    self.addr, pkt.dst, self.upstream
                )
            });
            ctx.send(
                Packet::udp(
                    self.addr,
                    self.upstream,
                    53_000,
                    53,
                    view.to_bytes_with_id_rd(txid),
                )
                .with_trace(pkt.trace),
            );
        } else if view.qr() && pkt.src == self.upstream {
            // Upstream → middlebox: relay to the client, spoofing the
            // original destination as the source.
            let Some(flow) = self.flows.remove(&view.id()) else {
                return;
            };
            ctx.span(flow.trace, bcd_netsim::SpanKind::Intercept, || {
                format!(
                    "middlebox relayed answer to {} spoofing source {}",
                    flow.client, flow.original_dst
                )
            });
            ctx.send(
                Packet::udp(
                    flow.original_dst,
                    flow.client,
                    53,
                    flow.client_port,
                    view.to_bytes_with_id(flow.client_txid),
                )
                .with_trace(flow.trace),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_dnswire::{Message, Name, RType};
    use bcd_netsim::SimTime;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn proxies_query_and_relays_response() {
        let mbx_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let upstream: IpAddr = "203.0.113.1".parse().unwrap();
        let client: IpAddr = "192.0.2.9".parse().unwrap();
        let target: IpAddr = "198.51.100.10".parse().unwrap();
        let mut mbx = Interceptor::new(mbx_addr, upstream);

        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut effects = Vec::new();
        let mut ctx = NodeCtx::new(SimTime::ZERO, 0, &mut rng, &mut effects);

        // Client query addressed to the *target*, delivered to the middlebox.
        let q = Message::query(0x7777, "x.dns-lab.org".parse::<Name>().unwrap(), RType::A);
        mbx.on_packet(
            &mut ctx,
            Packet::udp(client, target, 40_000, 53, q.encode()),
        );
        assert_eq!(mbx.proxied, 1);
        assert_eq!(effects.len(), 1);
        let (fwd_txid, fwd);
        match &effects[0] {
            bcd_netsim::node::Effect::Send(p) => {
                assert_eq!(p.src, mbx_addr);
                assert_eq!(p.dst, upstream);
                fwd = Message::decode(p.transport.payload()).unwrap();
                assert!(fwd.header.rd);
                fwd_txid = fwd.header.id;
            }
            _ => panic!("expected send"),
        }

        // Upstream answer comes back; middlebox must relay with the original
        // destination spoofed as source and the client's txid restored.
        effects.clear();
        let mut ctx = NodeCtx::new(SimTime::ZERO, 0, &mut rng, &mut effects);
        let mut resp = Message::response_to(&fwd, bcd_dnswire::RCode::NXDomain);
        resp.header.id = fwd_txid;
        mbx.on_packet(
            &mut ctx,
            Packet::udp(upstream, mbx_addr, 53, 53_000, resp.encode()),
        );
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            bcd_netsim::node::Effect::Send(p) => {
                assert_eq!(p.src, target, "source spoofed as original destination");
                assert_eq!(p.dst, client);
                let relayed = Message::decode(p.transport.payload()).unwrap();
                assert_eq!(relayed.header.id, 0x7777);
            }
            _ => panic!("expected send"),
        }
    }

    #[test]
    fn ignores_unrelated_responses() {
        let mbx_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let upstream: IpAddr = "203.0.113.1".parse().unwrap();
        let mut mbx = Interceptor::new(mbx_addr, upstream);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut effects = Vec::new();
        let mut ctx = NodeCtx::new(SimTime::ZERO, 0, &mut rng, &mut effects);
        let q = Message::query(1, "x.org".parse::<Name>().unwrap(), RType::A);
        let mut resp = Message::response_to(&q, bcd_dnswire::RCode::NoError);
        resp.header.id = 0xBEEF;
        mbx.on_packet(
            &mut ctx,
            Packet::udp(upstream, mbx_addr, 53, 53_000, resp.encode()),
        );
        assert!(effects.is_empty());
    }
}
