//! # bcd-dns — DNS node behaviours for the simulator
//!
//! Everything that speaks DNS inside the simulated Internet:
//!
//! * [`AuthServer`] — authoritative servers with zones, referrals/glue,
//!   NXDOMAIN or wildcard experiment zones (§3.3), a TC=1 zone that forces
//!   DNS-over-TCP (§3.5), and a shared [`QueryLog`] capturing exactly what
//!   the paper's authoritative servers logged (source address, source port,
//!   transport, TCP SYN fingerprint material, observed TTL, timestamps),
//! * [`RecursiveResolver`] — a full recursive resolver: iterative resolution
//!   from root hints with zone-cut caching, positive/negative caching,
//!   optional QNAME minimization with RFC 8020 NXDOMAIN halting (§3.6.4),
//!   optional forwarding (§5.4), client ACLs (open vs. closed, §5.1),
//!   retransmission with SERVFAIL fallback, TCP retry on truncation, and a
//!   pluggable source-port allocator (§5.2),
//! * [`Interceptor`] — a transparent DNS middlebox that grabs UDP/53 at the
//!   AS border and proxies to an upstream resolver (§3.6.1),
//! * [`StubClient`] — a lab client for the controlled experiments of §5.3.

pub mod auth;
pub mod blueprint;
pub mod cache;
pub mod interceptor;
pub mod log;
pub mod resolver;
pub mod stub;
pub mod zone;

pub use auth::{AuthServer, AuthServerConfig};
pub use blueprint::NodeBlueprint;
pub use interceptor::Interceptor;
pub use log::{LogProto, QueryLog, QueryLogEntry, SharedLog};
pub use resolver::{Acl, RecursiveResolver, ResolverConfig};
pub use stub::StubClient;
pub use zone::{Delegation, Zone, ZoneMode};
