//! The authoritative-server query log — the experiment's primary instrument.
//!
//! Every query arriving at an authoritative server becomes a
//! [`QueryLogEntry`]. The fields are exactly what the paper's analysis
//! consumes: arrival time (for the §3.6.3 lifetime filter), source address
//! (direct vs. forwarded, §5.4; middlebox attribution, §3.6.1), source port
//! (the §5.2 randomization census), transport and TCP SYN metadata (p0f,
//! §5.3.1), and the full query name (which encodes `ts.src.dst.asn.kw`,
//! §3.3).
//!
//! The log is shared between nodes via [`SharedLog`] (`Rc<RefCell<…>>` — the
//! engine is single-threaded). The scanner reads it with a cursor to trigger
//! follow-up queries "in real time" (§3.5).

use bcd_dnswire::Name;
use bcd_netsim::SimTime;
use std::cell::RefCell;
use std::net::IpAddr;
use std::rc::Rc;

/// Transport a logged query arrived over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogProto {
    Udp,
    Tcp,
}

/// TCP SYN metadata captured alongside DNS-over-TCP queries (the p0f
/// observables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynInfo {
    /// TTL of the SYN as observed at the server.
    pub observed_ttl: u8,
    pub window: u16,
    pub mss: u16,
    pub layout: &'static str,
}

/// One query observed at an authoritative server.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    /// Arrival time at the authoritative server.
    pub time: SimTime,
    /// Source address of the recursive-to-authoritative query.
    pub src: IpAddr,
    /// Address of the authoritative server that received it.
    pub server: IpAddr,
    /// UDP/TCP source port of the query — the §5.2 observable.
    pub src_port: u16,
    /// The full query name.
    pub qname: Name,
    /// Transport.
    pub proto: LogProto,
    /// IP TTL of the query packet as observed (initial minus path hops).
    pub observed_ttl: u8,
    /// SYN metadata if this query came over TCP.
    pub syn: Option<SynInfo>,
}

/// An append-only query log.
#[derive(Debug, Default)]
pub struct QueryLog {
    entries: Vec<QueryLogEntry>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> QueryLog {
        QueryLog::default()
    }

    /// Append an entry.
    pub fn push(&mut self, e: QueryLogEntry) {
        self.entries.push(e);
    }

    /// All entries, in arrival order.
    pub fn entries(&self) -> &[QueryLogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries from `cursor` onward (the scanner's real-time tail); returns
    /// the new cursor.
    pub fn tail_from(&self, cursor: usize) -> (&[QueryLogEntry], usize) {
        (
            &self.entries[cursor.min(self.entries.len())..],
            self.entries.len(),
        )
    }
}

/// Shared handle to a [`QueryLog`].
pub type SharedLog = Rc<RefCell<QueryLog>>;

/// Create a fresh shared log.
pub fn shared_log() -> SharedLog {
    Rc::new(RefCell::new(QueryLog::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64) -> QueryLogEntry {
        QueryLogEntry {
            time: SimTime::from_secs(t),
            src: "192.0.2.1".parse().unwrap(),
            server: "198.51.100.1".parse().unwrap(),
            src_port: 4242,
            qname: "x.dns-lab.org".parse().unwrap(),
            proto: LogProto::Udp,
            observed_ttl: 52,
            syn: None,
        }
    }

    #[test]
    fn append_and_tail() {
        let log = shared_log();
        log.borrow_mut().push(entry(1));
        log.borrow_mut().push(entry(2));
        let (fresh, cursor) = {
            let l = log.borrow();
            let (t, c) = l.tail_from(0);
            (t.len(), c)
        };
        assert_eq!(fresh, 2);
        assert_eq!(cursor, 2);
        log.borrow_mut().push(entry(3));
        let l = log.borrow();
        let (t, c) = l.tail_from(cursor);
        assert_eq!(t.len(), 1);
        assert_eq!(c, 3);
        // Cursor beyond end is safe.
        assert_eq!(l.tail_from(99).0.len(), 0);
    }

    #[test]
    fn entries_preserve_order() {
        let mut log = QueryLog::new();
        for t in 0..5 {
            log.push(entry(t));
        }
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        let times: Vec<u64> = log.entries().iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }
}
