//! The recursive DNS resolver node.
//!
//! Implements the resolver behaviours the experiment depends on:
//!
//! * **client ACLs** — open resolvers answer anyone; closed resolvers
//!   REFUSE sources outside their allow-list (§5.1, §3.8). A spoofed-source
//!   query that *reaches* a closed resolver is only handled if the spoofed
//!   source falls inside the ACL — which is precisely why the paper uses
//!   many spoofed-source categories (§3.2),
//! * **iterative resolution** from root hints, with zone-cut caching and
//!   glue chasing,
//! * **QNAME minimization** (RFC 7816) with the RFC 8020 NXDOMAIN-halting
//!   side effect that hid 55% of qmin resolvers' sources from the
//!   experiment (§3.6.4),
//! * **forwarding** to an upstream resolver (§5.4),
//! * **source-port allocation** via a pluggable [`PortAllocator`] — the
//!   §5.2 observable,
//! * **retransmission** with server rotation and SERVFAIL fallback,
//! * **DNS-over-TCP retry** on TC=1, emitting the resolver OS's TCP SYN
//!   fingerprint (§5.3.1).

use crate::cache::Cache;
use bcd_dnswire::{Message, Name, RCode, RData, RType, Record, WireWriter};
use bcd_netsim::{
    Node, NodeCtx, Packet, Payload, Prefix, SimDuration, SimTime, SpanKind, TcpFlags, TcpSegment,
    Transport,
};
use bcd_osmodel::{p0f, Os, PortAllocator};
use rand::Rng;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// Client access control.
#[derive(Debug, Clone)]
pub enum Acl {
    /// Answer queries from any source (an *open* resolver).
    Open,
    /// Answer only sources inside these prefixes; REFUSE everyone else
    /// (a *closed* resolver). The prefix list is `Arc`-shared: world
    /// generation hands the same allocation to every resolver with the
    /// same allow-list (AS-wide lists can run to hundreds of prefixes,
    /// and an Internet-scale world holds ~a million resolver configs).
    Allow(Arc<[Prefix]>),
}

impl Acl {
    /// Does this ACL permit a query from `src`?
    pub fn permits(&self, src: IpAddr) -> bool {
        match self {
            Acl::Open => true,
            Acl::Allow(prefixes) => prefixes.iter().any(|p| p.contains(src)),
        }
    }

    /// True for open resolvers.
    pub fn is_open(&self) -> bool {
        matches!(self, Acl::Open)
    }
}

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Addresses this resolver answers on (v4 and/or v6; must match the
    /// host's bound addresses).
    pub addrs: Vec<IpAddr>,
    /// Client access control.
    pub acl: Acl,
    /// Forward all queries to this upstream instead of recursing.
    pub forward_to: Option<IpAddr>,
    /// QNAME minimization enabled (RFC 7816).
    pub qmin: bool,
    /// With qmin: stop on NXDOMAIN for an intermediate label (RFC 8020
    /// semantics — the behaviour that hides the full QNAME, §3.6.4).
    pub qmin_halts_on_nxdomain: bool,
    /// Source-port allocation strategy (§5.2 / Table 5).
    pub allocator: PortAllocator,
    /// Operating system (TTL, TCP fingerprint).
    pub os: Os,
    /// If false, SYNs are emitted with a generic (scrubbed) signature that
    /// p0f cannot classify — models the paper's 90% unknown rate.
    pub p0f_visible: bool,
    /// Root server addresses (shared across every resolver in a world).
    pub root_hints: Arc<[IpAddr]>,
    /// Per-attempt upstream timeout.
    pub timeout: SimDuration,
    /// Total upstream attempts per stage before SERVFAIL.
    pub max_attempts: u8,
    /// Self-initiated background queries `(delay after start, name, type)` —
    /// these are what the root servers' DITL collection sees (§3.1).
    pub warmup: Vec<(SimDuration, Name, RType)>,
    /// When set, upstream txid and source-port draws are derived from the
    /// *identity* of the pending query (name, stage, attempt, client) mixed
    /// with this salt, instead of consuming the host RNG stream in sequence.
    ///
    /// A resolver serving clients from many ASes (the shared public DNS
    /// hosts) sees a different interleaving of queries under different
    /// survey shardings; sequence-position draws would then give the same
    /// query different ports in different runs. Identity-derived draws make
    /// each relayed query's ephemeral port a pure function of the query
    /// itself, which is what keeps the sharded survey's merged log identical
    /// at every shard count. Only meaningful with a stateless (pool-style)
    /// [`PortAllocator`]; sequential allocators would lose their sequence.
    pub identity_draw_salt: Option<u64>,
    /// Zone cuts `(apex, nameserver addresses)` installed in the cache at
    /// start-up and never expiring.
    ///
    /// Complements `identity_draw_salt` for resolvers whose clients span
    /// many ASes: which cuts a cache has *learned* at a given instant
    /// otherwise depends on which client's query arrived first, so a
    /// referral walk (and the queries it logs at the parent zone) would
    /// appear or vanish with the traffic interleaving. Pre-warming models a
    /// long-running public service whose popular cuts are permanently hot.
    pub preload_cuts: Arc<[(Name, Vec<IpAddr>)]>,
}

impl ResolverConfig {
    /// A sane open-resolver configuration for tests: modern Linux, OS port
    /// pool, no qmin, recursion from the given root hints.
    pub fn test_default(addrs: Vec<IpAddr>, root_hints: Vec<IpAddr>) -> ResolverConfig {
        ResolverConfig {
            addrs,
            acl: Acl::Open,
            forward_to: None,
            qmin: false,
            qmin_halts_on_nxdomain: true,
            allocator: Os::LinuxModern.default_port_allocator(),
            os: Os::LinuxModern,
            p0f_visible: true,
            root_hints: root_hints.into(),
            timeout: SimDuration::from_secs(2),
            max_attempts: 3,
            warmup: Vec::new(),
            identity_draw_salt: None,
            preload_cuts: Vec::new().into(),
        }
    }
}

/// Counters exposed for tests and analyses.
#[derive(Debug, Default, Clone)]
pub struct ResolverStats {
    pub client_queries: u64,
    pub refused: u64,
    pub answered: u64,
    pub servfail: u64,
    pub upstream_queries: u64,
    pub tcp_retries: u64,
    pub cache_hits: u64,
    /// Client queries that missed the cache and started a resolution (the
    /// complement of `cache_hits` among permitted queries; REFUSED queries
    /// count as neither).
    pub cache_misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct ClientRef {
    addr: IpAddr,
    port: u16,
    txid: u16,
    /// The resolver address the client queried (source of our reply).
    our_addr: IpAddr,
    /// Causal trace id of the client's query (0 = untraced). Carried so the
    /// reply — and every upstream query resolving it — joins the same trace.
    trace: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TcpPhase {
    SynSent,
    QuerySent,
}

#[derive(Debug)]
struct Pending {
    client: Option<ClientRef>,
    qname: Name,
    qtype: RType,
    /// Forward mode (true) vs. iterative.
    forwarding: bool,
    /// Zone currently being queried.
    zone: Name,
    /// Nameserver addresses for that zone.
    servers: Vec<IpAddr>,
    /// Name currently being asked (equals `qname` unless qmin is walking).
    current_qname: Name,
    txid: u16,
    sport: u16,
    /// Server the in-flight query went to.
    server: Option<IpAddr>,
    attempts: u8,
    tcp: Option<TcpPhase>,
    /// Causal trace id inherited from the client query (0 for warm-up
    /// resolutions, which repeat per shard and must stay untraced).
    trace: u64,
}

/// The recursive resolver node.
pub struct RecursiveResolver {
    cfg: ResolverConfig,
    cache: Cache,
    pending: HashMap<u64, Pending>,
    /// In-flight upstream queries, demuxed by `(txid, source port)` — each
    /// query effectively has its own UDP socket, so a response is matched by
    /// the socket it arrives on *and* the txid, like a real resolver. (Keying
    /// by txid alone would let two co-pending queries that happen to draw the
    /// same 16-bit txid evict each other's registration, turning a harmless
    /// collision into a spurious timeout-and-retry.)
    by_key: HashMap<(u16, u16), u64>,
    next_id: u64,
    ops_since_evict: u32,
    /// Reusable encode buffer: every outgoing message is serialized here,
    /// then copied once into the packet's shared payload.
    scratch: WireWriter,
    /// Public counters.
    pub stats: ResolverStats,
}

const WARMUP_BIT: u64 = 1 << 63;
const ANSWER_TTL_SECS: u64 = 60;
const CUT_TTL_SECS: u64 = 86_400;

/// Our address in the same family as `peer`, if we have one.
fn our_addr_for(addrs: &[IpAddr], peer: IpAddr) -> Option<IpAddr> {
    addrs
        .iter()
        .copied()
        .find(|a| a.is_ipv6() == peer.is_ipv6())
}

/// Pick a usable server (matching one of our address families) from a list,
/// rotating by attempt number. Prefers IPv4 when dual-stack.
fn pick_server(addrs: &[IpAddr], servers: &[IpAddr], attempt: u8) -> Option<IpAddr> {
    let mut v4: Vec<IpAddr> = Vec::new();
    let mut v6: Vec<IpAddr> = Vec::new();
    for s in servers {
        if our_addr_for(addrs, *s).is_some() {
            if s.is_ipv6() {
                v6.push(*s);
            } else {
                v4.push(*s);
            }
        }
    }
    let usable = if !v4.is_empty() { v4 } else { v6 };
    if usable.is_empty() {
        None
    } else {
        Some(usable[attempt as usize % usable.len()])
    }
}

/// Throwaway RNG for one upstream transmission, seeded purely from the
/// pending query's identity (see [`ResolverConfig::identity_draw_salt`]).
/// Every input is a property of the query itself — never of when it arrived
/// relative to other clients' traffic — so the draws are invariant under
/// re-interleaving.
fn identity_rng(salt: u64, p: &Pending) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(p.current_qname.to_string().as_bytes());
    eat(&p.qtype.to_u16().to_le_bytes());
    eat(&[p.attempts, p.tcp.is_some() as u8, p.forwarding as u8]);
    match &p.client {
        Some(c) => {
            eat(c.addr.to_string().as_bytes());
            eat(&c.port.to_le_bytes());
            eat(&c.txid.to_le_bytes());
        }
        None => eat(b"warmup"),
    }
    rand_chacha::ChaCha8Rng::seed_from_u64(bcd_netsim::stream_seed(salt, h))
}

impl RecursiveResolver {
    /// Create the node.
    pub fn new(cfg: ResolverConfig) -> RecursiveResolver {
        let mut cache = Cache::new();
        for (apex, servers) in cfg.preload_cuts.iter() {
            cache.put_cut(apex.clone(), servers.clone(), SimTime::MAX);
        }
        RecursiveResolver {
            cfg,
            cache,
            pending: HashMap::new(),
            by_key: HashMap::new(),
            next_id: 0,
            ops_since_evict: 0,
            scratch: WireWriter::new(),
            stats: ResolverStats::default(),
        }
    }

    /// The configured access-control list.
    pub fn acl(&self) -> &Acl {
        &self.cfg.acl
    }

    /// Configuration access for analyses.
    pub fn config(&self) -> &ResolverConfig {
        &self.cfg
    }

    /// Read access to the cache — used by attack simulations and tests to
    /// check what a poisoning attempt actually planted.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    fn our_addr_for(&self, peer: IpAddr) -> Option<IpAddr> {
        our_addr_for(&self.cfg.addrs, peer)
    }

    fn reply_to_client(&mut self, ctx: &mut NodeCtx<'_>, client: ClientRef, mut resp: Message) {
        resp.header.id = client.txid;
        resp.header.qr = true;
        resp.header.ra = true;
        self.stats.answered += 1;
        ctx.span(client.trace, SpanKind::Reply, || {
            format!(
                "resolver {} -> {} rcode={:?} answers={}",
                client.our_addr,
                client.addr,
                resp.header.rcode,
                resp.answers.len()
            )
        });
        resp.encode_into(&mut self.scratch);
        ctx.send(
            Packet::udp(
                client.our_addr,
                client.addr,
                53,
                client.port,
                self.scratch.as_bytes(),
            )
            .with_ttl(self.cfg.os.initial_ttl())
            .with_trace(client.trace),
        );
    }

    fn respond_rcode(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        client: ClientRef,
        qname: Name,
        qtype: RType,
        rcode: RCode,
        answers: Vec<Record>,
    ) {
        let mut resp = Message::query(client.txid, qname, qtype);
        resp.header.qr = true;
        resp.header.rcode = rcode;
        resp.answers = answers;
        self.reply_to_client(ctx, client, resp);
    }

    /// Begin resolution of a client query (ACL and cache already checked).
    fn start_resolution(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        client: Option<ClientRef>,
        qname: Name,
        qtype: RType,
    ) {
        let id = self.next_id;
        self.next_id += 1;
        let trace = client.as_ref().map_or(0, |c| c.trace);

        if let Some(upstream) = self.cfg.forward_to {
            let p = Pending {
                client,
                qname: qname.clone(),
                qtype,
                forwarding: true,
                zone: Name::root(),
                servers: vec![upstream],
                current_qname: qname,
                txid: 0,
                sport: 0,
                server: None,
                attempts: 0,
                tcp: None,
                trace,
            };
            self.pending.insert(id, p);
            self.send_upstream(ctx, id);
            return;
        }

        // Iterative: start from the deepest cached cut (or root hints).
        let (zone, servers) = self
            .cache
            .best_cut(&qname, ctx.now())
            .unwrap_or_else(|| (Name::root(), self.cfg.root_hints.to_vec()));
        let current_qname = if self.cfg.qmin {
            qname.suffix((zone.label_count() + 1).min(qname.label_count()))
        } else {
            qname.clone()
        };
        let p = Pending {
            client,
            qname,
            qtype,
            forwarding: false,
            zone,
            servers,
            current_qname,
            txid: 0,
            sport: 0,
            server: None,
            attempts: 0,
            tcp: None,
            trace,
        };
        self.pending.insert(id, p);
        self.send_upstream(ctx, id);
    }

    /// Transmit (or re-transmit) the current stage's query.
    fn send_upstream(&mut self, ctx: &mut NodeCtx<'_>, id: u64) {
        let Some(p) = self.pending.get_mut(&id) else {
            return;
        };
        let Some(server) = (if p.forwarding {
            p.servers.first().copied()
        } else {
            pick_server(&self.cfg.addrs, &p.servers, p.attempts)
        }) else {
            self.finish_servfail(ctx, id);
            return;
        };
        let Some(our_addr) = self.our_addr_for(server) else {
            self.finish_servfail(ctx, id);
            return;
        };

        let (txid, sport) = if let Some(salt) = self.cfg.identity_draw_salt {
            let mut rng = identity_rng(salt, self.pending.get(&id).unwrap());
            let txid: u16 = rng.gen();
            (txid, self.cfg.allocator.next_port(&mut rng))
        } else {
            let txid: u16 = ctx.rng().gen();
            (txid, self.cfg.allocator.next_port(ctx.rng()))
        };
        let p = self.pending.get_mut(&id).unwrap();
        // Replace any previous registration for this pending query.
        self.by_key.remove(&(p.txid, p.sport));
        p.txid = txid;
        p.sport = sport;
        p.server = Some(server);
        self.by_key.insert((txid, sport), id);

        let qtype = if p.current_qname == p.qname {
            p.qtype
        } else {
            // Intermediate qmin probe.
            RType::A
        };
        let mut query = Message::query(txid, p.current_qname.clone(), qtype);
        query.header.rd = p.forwarding;
        self.stats.upstream_queries += 1;

        if p.tcp.is_some() {
            // TCP retry path: open the connection; the query goes out after
            // the SYN-ACK.
            let sig = if self.cfg.p0f_visible {
                self.cfg.os.syn_signature()
            } else {
                p0f::generic_signature()
            };
            let seg = p0f::syn_segment(sig, sport, 53, txid as u32);
            let p = self.pending.get_mut(&id).unwrap();
            p.tcp = Some(TcpPhase::SynSent);
            self.stats.tcp_retries += 1;
            ctx.span(p.trace, SpanKind::Upstream, || {
                format!(
                    "tcp syn {} -> {} (stage retried over tcp)",
                    our_addr, server
                )
            });
            ctx.send(
                Packet::tcp(our_addr, server, seg)
                    .with_ttl(sig.ittl)
                    .with_trace(p.trace),
            );
        } else {
            ctx.span(p.trace, SpanKind::Upstream, || {
                format!(
                    "{} {} {:?} -> {} zone={} attempt={}",
                    if p.forwarding { "forward" } else { "query" },
                    p.current_qname,
                    qtype,
                    server,
                    p.zone,
                    p.attempts
                )
            });
            query.encode_into(&mut self.scratch);
            ctx.send(
                Packet::udp(our_addr, server, sport, 53, self.scratch.as_bytes())
                    .with_ttl(self.cfg.os.initial_ttl())
                    .with_trace(p.trace),
            );
        }
        let attempts = self.pending.get(&id).unwrap().attempts;
        ctx.set_timer(self.cfg.timeout, (id << 8) | attempts as u64);
    }

    fn finish_servfail(&mut self, ctx: &mut NodeCtx<'_>, id: u64) {
        if let Some(p) = self.pending.remove(&id) {
            self.by_key.remove(&(p.txid, p.sport));
            self.stats.servfail += 1;
            ctx.span(p.trace, SpanKind::Validate, || {
                format!(
                    "resolution of {} abandoned after {} attempts -> SERVFAIL",
                    p.qname, p.attempts
                )
            });
            if let Some(client) = p.client {
                self.respond_rcode(ctx, client, p.qname, p.qtype, RCode::ServFail, vec![]);
            }
        }
    }

    fn finish_answer(&mut self, ctx: &mut NodeCtx<'_>, id: u64, resp: &Message) {
        let Some(p) = self.pending.remove(&id) else {
            return;
        };
        self.by_key.remove(&(p.txid, p.sport));
        ctx.span(p.trace, SpanKind::Validate, || {
            format!(
                "final {:?} for {} ({} answers, cached)",
                resp.header.rcode,
                p.qname,
                resp.answers.len()
            )
        });
        let expires = ctx.now() + SimDuration::from_secs(ANSWER_TTL_SECS);
        match resp.header.rcode {
            RCode::NXDomain => {
                // RFC 8020: cache the negative name (the *asked* name — for
                // qmin halting that is the intermediate label).
                self.cache.put_nxdomain(p.current_qname.clone(), expires);
            }
            _ => {
                self.cache.put_answer(
                    p.qname.clone(),
                    p.qtype,
                    resp.header.rcode,
                    resp.answers.clone(),
                    expires,
                );
            }
        }
        if let Some(client) = p.client {
            self.respond_rcode(
                ctx,
                client,
                p.qname,
                p.qtype,
                resp.header.rcode,
                resp.answers.clone(),
            );
        }
    }

    /// Interpret an upstream response for pending query `id`.
    fn process_response(&mut self, ctx: &mut NodeCtx<'_>, id: u64, resp: Message) {
        let Some(p) = self.pending.get_mut(&id) else {
            return;
        };

        // Truncated: retry this stage over TCP.
        if resp.header.tc && p.tcp.is_none() {
            ctx.span(p.trace, SpanKind::Validate, || {
                "tc=1 -> retry stage over tcp".to_string()
            });
            p.tcp = Some(TcpPhase::SynSent);
            p.attempts = 0;
            self.send_upstream(ctx, id);
            return;
        }

        if p.forwarding {
            self.finish_answer(ctx, id, &resp);
            return;
        }

        // Referral: no answers, NOERROR, NS records for a deeper zone.
        let is_referral = resp.header.rcode == RCode::NoError
            && resp.answers.is_empty()
            && resp.authorities.iter().any(|r| {
                matches!(r.rdata, RData::Ns(_))
                    && r.name.is_subdomain_of(&p.zone)
                    && r.name != p.zone
            });
        if is_referral {
            let cut = resp
                .authorities
                .iter()
                .filter(|r| matches!(r.rdata, RData::Ns(_)))
                .map(|r| r.name.clone())
                .next()
                .unwrap();
            let mut glue: Vec<IpAddr> = Vec::new();
            for add in &resp.additionals {
                match add.rdata {
                    RData::A(a) => glue.push(IpAddr::V4(a)),
                    RData::Aaaa(a) => glue.push(IpAddr::V6(a)),
                    _ => {}
                }
            }
            if glue.is_empty() {
                self.finish_servfail(ctx, id);
                return;
            }
            self.cache.put_cut(
                cut.clone(),
                glue.clone(),
                ctx.now() + SimDuration::from_secs(CUT_TTL_SECS),
            );
            ctx.span(p.trace, SpanKind::Validate, || {
                format!("referral to zone {} ({} glue addrs)", cut, glue.len())
            });
            p.zone = cut;
            p.servers = glue;
            p.attempts = 0;
            p.tcp = None;
            if self.cfg.qmin {
                p.current_qname = p
                    .qname
                    .suffix((p.zone.label_count() + 1).min(p.qname.label_count()));
            }
            self.send_upstream(ctx, id);
            return;
        }

        // Terminal rcodes / answers at the current stage.
        let at_full_name = p.current_qname == p.qname;
        match resp.header.rcode {
            RCode::NXDomain => {
                if at_full_name || self.cfg.qmin_halts_on_nxdomain {
                    // RFC 8020: nothing exists beneath an NXDOMAIN name, so
                    // a minimizing resolver stops here — the full QNAME is
                    // never sent (§3.6.4).
                    if !at_full_name {
                        ctx.span(p.trace, SpanKind::Validate, || {
                            format!(
                                "nxdomain at {} -> halt, full qname withheld (rfc 8020)",
                                p.current_qname
                            )
                        });
                    }
                    self.finish_answer(ctx, id, &resp);
                } else {
                    // Some implementations ignore the implication and press
                    // on with the full name.
                    ctx.span(p.trace, SpanKind::Validate, || {
                        format!(
                            "nxdomain at {} -> press on with full qname",
                            p.current_qname
                        )
                    });
                    p.current_qname = p.qname.clone();
                    p.attempts = 0;
                    p.tcp = None;
                    self.send_upstream(ctx, id);
                }
            }
            RCode::NoError if !at_full_name => {
                // Intermediate label exists; extend by one label.
                let next_len = p.current_qname.label_count() + 1;
                p.current_qname = p.qname.suffix(next_len.min(p.qname.label_count()));
                ctx.span(p.trace, SpanKind::Validate, || {
                    format!("qmin step -> {}", p.current_qname)
                });
                p.attempts = 0;
                p.tcp = None;
                self.send_upstream(ctx, id);
            }
            RCode::NoError => self.finish_answer(ctx, id, &resp),
            RCode::Refused | RCode::ServFail => {
                // Try another server / give up.
                ctx.span(p.trace, SpanKind::Validate, || {
                    format!("upstream {:?} -> rotate server", resp.header.rcode)
                });
                p.attempts = p.attempts.saturating_add(1);
                if p.attempts >= self.cfg.max_attempts {
                    self.finish_servfail(ctx, id);
                } else {
                    self.send_upstream(ctx, id);
                }
            }
            _ => self.finish_answer(ctx, id, &resp),
        }
    }

    fn handle_client_query(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet, query: Message) {
        let Some(q) = query.question().cloned() else {
            return;
        };
        self.stats.client_queries += 1;
        let client = ClientRef {
            addr: pkt.src,
            port: pkt.transport.src_port(),
            txid: query.header.id,
            our_addr: pkt.dst,
            trace: pkt.trace,
        };

        // Access control: the closed-resolver defence (§5.1).
        if !self.cfg.acl.permits(pkt.src) {
            self.stats.refused += 1;
            ctx.span(pkt.trace, SpanKind::Validate, || {
                format!("acl refused client {}", pkt.src)
            });
            self.respond_rcode(ctx, client, q.name, q.rtype, RCode::Refused, vec![]);
            return;
        }

        // Cache (positive, negative, RFC 8020 subtree).
        if let Some(hit) = self.cache.get_answer(&q.name, q.rtype, ctx.now()) {
            self.stats.cache_hits += 1;
            ctx.span(pkt.trace, SpanKind::CacheProbe, || {
                format!("cache hit {} {:?} rcode={:?}", q.name, q.rtype, hit.rcode)
            });
            self.respond_rcode(ctx, client, q.name, q.rtype, hit.rcode, hit.answers);
            return;
        }
        self.stats.cache_misses += 1;
        ctx.span(pkt.trace, SpanKind::CacheProbe, || {
            format!(
                "cache miss {} {:?} -> {}",
                q.name,
                q.rtype,
                if self.cfg.forward_to.is_some() {
                    "forward"
                } else {
                    "recurse"
                }
            )
        });

        self.ops_since_evict += 1;
        if self.ops_since_evict >= 256 {
            self.ops_since_evict = 0;
            self.cache.evict_expired(ctx.now());
        }

        self.start_resolution(ctx, Some(client), q.name, q.rtype);
    }

    fn handle_upstream_udp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet, resp: Message) {
        // Demux by (txid, the port the response arrived on) — the response
        // must land on the socket the query left from *and* echo its txid,
        // which is what makes port randomization a defence: an off-path
        // attacker must hit both (§5.2).
        let key = (resp.header.id, pkt.transport.dst_port());
        let Some(&id) = self.by_key.get(&key) else {
            return; // unsolicited or stale
        };
        let Some(p) = self.pending.get(&id) else {
            return;
        };
        if p.server != Some(pkt.src) {
            return;
        }
        self.process_response(ctx, id, resp);
    }

    fn handle_tcp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet, seg: &TcpSegment) {
        // Find the pending TCP exchange by our ephemeral port. A late or
        // chaos-duplicated segment can arrive after the exchange completed
        // (entry gone, or back in UDP mode) — every lookup below must
        // tolerate a miss rather than unwrap. When several entries match
        // (port reuse), take the lowest id: HashMap iteration order is not
        // deterministic, and the choice must not depend on it.
        let Some(id) = self
            .pending
            .iter()
            .filter(|(_, p)| {
                p.tcp.is_some() && p.sport == seg.dst_port && p.server == Some(pkt.src)
            })
            .map(|(&id, _)| id)
            .min()
        else {
            return; // late, duplicated, or unsolicited segment
        };
        if seg.flags.syn && seg.flags.ack {
            // Connection open: send the query.
            let Some(p) = self.pending.get_mut(&id) else {
                return;
            };
            if p.tcp != Some(TcpPhase::SynSent) {
                return; // duplicated SYN-ACK: the query already went out
            }
            p.tcp = Some(TcpPhase::QuerySent);
            let qtype = if p.current_qname == p.qname {
                p.qtype
            } else {
                RType::A
            };
            let query = Message::query(p.txid, p.current_qname.clone(), qtype);
            let (sport, server, trace) = (p.sport, p.server.unwrap(), p.trace);
            let our_addr = self.our_addr_for(server).unwrap();
            query.encode_into(&mut self.scratch);
            ctx.send(
                Packet::tcp(
                    our_addr,
                    server,
                    TcpSegment {
                        src_port: sport,
                        dst_port: 53,
                        flags: TcpFlags::PSH_ACK,
                        seq: 1,
                        ack: seg.seq.wrapping_add(1),
                        window: 65_535,
                        options: Default::default(),
                        payload: Payload::from(self.scratch.as_bytes()),
                    },
                )
                .with_ttl(self.cfg.os.initial_ttl())
                .with_trace(trace),
            );
        } else if seg.flags.psh && !seg.payload.is_empty() {
            let Ok(resp) = Message::decode(&seg.payload) else {
                return;
            };
            // Only an exchange that actually sent its query over this
            // connection may consume a data segment; a duplicated PSH
            // replayed after the stage completed (tcp back to None, or the
            // entry re-keyed for the next stage) must fall through, not
            // panic on a stale id.
            let Some(p) = self.pending.get_mut(&id) else {
                return;
            };
            if p.tcp != Some(TcpPhase::QuerySent) || resp.header.id != p.txid {
                return;
            }
            // Leaving TCP mode: the response is final for this stage.
            p.tcp = None;
            self.process_response(ctx, id, resp);
        }
    }
}

impl Node for RecursiveResolver {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for (i, (delay, _, _)) in self.cfg.warmup.iter().enumerate() {
            ctx.set_timer(*delay, WARMUP_BIT | i as u64);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        match &pkt.transport {
            Transport::Udp(u) => {
                let Ok(msg) = Message::decode(&u.payload) else {
                    return;
                };
                if !msg.header.qr && u.dst_port == 53 {
                    self.handle_client_query(ctx, &pkt, msg);
                } else if msg.header.qr {
                    self.handle_upstream_udp(ctx, &pkt, msg);
                }
            }
            Transport::Tcp(t) => {
                let t = t.clone();
                self.handle_tcp(ctx, &pkt, &t);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token & WARMUP_BIT != 0 {
            let idx = (token & !WARMUP_BIT) as usize;
            if let Some((_, name, rtype)) = self.cfg.warmup.get(idx).cloned() {
                if self.cache.get_answer(&name, rtype, ctx.now()).is_none() {
                    self.start_resolution(ctx, None, name, rtype);
                }
            }
            return;
        }
        let id = token >> 8;
        let attempt = (token & 0xFF) as u8;
        let Some(p) = self.pending.get_mut(&id) else {
            return; // already completed
        };
        if p.attempts != attempt {
            return; // stale timer from an earlier attempt
        }
        p.attempts = p.attempts.saturating_add(1);
        if p.attempts >= self.cfg.max_attempts {
            self.finish_servfail(ctx, id);
        } else {
            self.send_upstream(ctx, id);
        }
    }
}
