//! A stub DNS client for lab harnesses (§5.3's controlled experiments) and
//! tests: sends a schedule of queries to a resolver and records responses.

use bcd_dnswire::{Message, Name, RCode, RType, WireWriter, MAX_NAME_WIRE_LEN};
use bcd_netsim::{Node, NodeCtx, Packet, SimDuration, SimTime, Transport};
use std::net::IpAddr;

/// One scheduled stub query.
#[derive(Debug, Clone)]
pub struct StubQuery {
    /// Delay after simulation start.
    pub at: SimDuration,
    /// Resolver to query.
    pub resolver: IpAddr,
    pub qname: Name,
    pub qtype: RType,
}

/// A recorded response.
#[derive(Debug, Clone)]
pub struct StubResponse {
    pub time: SimTime,
    pub from: IpAddr,
    pub txid: u16,
    pub rcode: RCode,
    pub answers: usize,
}

/// The stub client node.
pub struct StubClient {
    addr: IpAddr,
    queries: Vec<StubQuery>,
    /// Reusable encode buffer for outgoing queries.
    scratch: WireWriter,
    /// Responses received, in arrival order.
    pub responses: Vec<StubResponse>,
}

impl StubClient {
    /// A stub bound to `addr` with a query schedule.
    pub fn new(addr: IpAddr, queries: Vec<StubQuery>) -> StubClient {
        StubClient {
            addr,
            queries,
            scratch: WireWriter::new(),
            responses: Vec::new(),
        }
    }

    /// The response for a given transaction id, if received.
    pub fn response_for(&self, txid: u16) -> Option<&StubResponse> {
        self.responses.iter().find(|r| r.txid == txid)
    }
}

impl Node for StubClient {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for (i, q) in self.queries.iter().enumerate() {
            ctx.set_timer(q.at, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let Some(q) = self.queries.get(token as usize).cloned() else {
            return;
        };
        // Causal trace id from shard-invariant query identity (0 unless
        // the engine's flight recorder is armed and the sampler keeps it).
        let trace = if ctx.tracing() {
            let mut canon = [0u8; MAX_NAME_WIRE_LEN];
            let n = q.qname.canonical_into(&mut canon);
            ctx.sample_trace(std::str::from_utf8(&canon[..n]).unwrap_or("."))
        } else {
            0
        };
        // txid = schedule index, so tests can correlate.
        let msg = Message::query(token as u16, q.qname, q.qtype);
        msg.encode_into(&mut self.scratch);
        ctx.send(
            Packet::udp(
                self.addr,
                q.resolver,
                10_000 + (token as u16 % 50_000),
                53,
                self.scratch.as_bytes(),
            )
            .with_trace(trace),
        );
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        let Transport::Udp(u) = &pkt.transport else {
            return;
        };
        let Ok(msg) = Message::decode(&u.payload) else {
            return;
        };
        if !msg.header.qr {
            return;
        }
        self.responses.push(StubResponse {
            time: ctx.now(),
            from: pkt.src,
            txid: msg.header.id,
            rcode: msg.header.rcode,
            answers: msg.answers.len(),
        });
    }
}
