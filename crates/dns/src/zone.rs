//! Zones served by authoritative servers.
//!
//! The experiment's DNS estate (§3.3, §3.5):
//!
//! * the root zone, delegating TLDs (its servers' logs are the DITL
//!   collection of §3.1),
//! * the `org` TLD, delegating `dns-lab.org`,
//! * the experiment zone `dns-lab.org`, answering NXDOMAIN to everything
//!   (with the SOA carrying the project's contact info, §3.7), and
//!   delegating:
//!   * `f4.dns-lab.org` — servers with IPv4-only glue,
//!   * `f6.dns-lab.org` — servers with IPv6-only glue,
//!   * `tcp.dns-lab.org` — a zone whose server always answers UDP with
//!     TC=1, forcing the resolver onto TCP.

use bcd_dnswire::{Name, RData, Record, Soa};
use std::net::IpAddr;

/// A delegation: a zone cut with its nameserver names and glue addresses.
#[derive(Debug, Clone)]
pub struct Delegation {
    /// The child zone apex.
    pub cut: Name,
    /// Nameservers: `(ns name, glue addresses)`.
    pub ns: Vec<(Name, Vec<IpAddr>)>,
}

/// How a zone answers in-zone (non-delegated) queries.
#[derive(Debug, Clone)]
pub enum ZoneMode {
    /// NXDOMAIN for every name below the apex (the experiment zone's
    /// behaviour, §3.3 — with the QNAME-minimization side effect of §3.6.4).
    Nxdomain,
    /// Synthesize a TXT answer for every name (the "wildcard" fix §3.6.4
    /// proposes for a future run).
    Wildcard,
    /// Respond to UDP with TC=1 and no answer; answer (NXDOMAIN) over TCP.
    TruncateUdp,
    /// A static record set (root/TLD infrastructure zones).
    Static(Vec<Record>),
}

/// An authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    pub apex: Name,
    pub soa: Soa,
    pub delegations: Vec<Delegation>,
    pub mode: ZoneMode,
}

impl Zone {
    /// A zone with the standard experiment SOA (MNAME pointing at the
    /// project web server, RNAME at the contact address — §3.7's opt-out
    /// channel).
    pub fn new(apex: Name, mode: ZoneMode) -> Zone {
        let mname = apex.child("project").unwrap_or_else(|_| apex.clone());
        let rname = apex.child("contact").unwrap_or_else(|_| apex.clone());
        Zone {
            apex,
            soa: Soa {
                mname,
                rname,
                serial: 20191106, // 2019-11-06, the campaign start date
                refresh: 7_200,
                retry: 900,
                expire: 1_209_600,
                minimum: 60,
            },
            delegations: Vec::new(),
            mode,
        }
    }

    /// Add a delegation.
    pub fn delegate(mut self, cut: Name, ns: Vec<(Name, Vec<IpAddr>)>) -> Zone {
        assert!(cut.is_subdomain_of(&self.apex), "delegation outside zone");
        self.delegations.push(Delegation { cut, ns });
        self
    }

    /// The most specific delegation covering `qname`, if any (and it must be
    /// a *proper* subdomain relationship: the apex itself is never
    /// delegated).
    pub fn delegation_for(&self, qname: &Name) -> Option<&Delegation> {
        self.delegations
            .iter()
            .filter(|d| qname.is_subdomain_of(&d.cut))
            .max_by_key(|d| d.cut.label_count())
    }

    /// The SOA record for negative responses.
    pub fn soa_record(&self) -> Record {
        Record::new(
            self.apex.clone(),
            self.soa.minimum,
            RData::Soa(self.soa.clone()),
        )
    }
}

/// Pick the zone (from a server's zone list) that should answer `qname`:
/// the one with the longest apex that is a suffix of `qname`.
pub fn zone_for<'a>(zones: &'a [Zone], qname: &Name) -> Option<&'a Zone> {
    zones
        .iter()
        .filter(|z| qname.is_subdomain_of(&z.apex))
        .max_by_key(|z| z.apex.label_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn zone_selection_longest_apex() {
        let zones = vec![
            Zone::new(Name::root(), ZoneMode::Static(vec![])),
            Zone::new(n("org"), ZoneMode::Static(vec![])),
            Zone::new(n("dns-lab.org"), ZoneMode::Nxdomain),
        ];
        assert_eq!(
            zone_for(&zones, &n("a.b.dns-lab.org")).unwrap().apex,
            n("dns-lab.org")
        );
        assert_eq!(zone_for(&zones, &n("example.org")).unwrap().apex, n("org"));
        assert_eq!(
            zone_for(&zones, &n("example.com")).unwrap().apex,
            Name::root()
        );
        let no_root = &zones[1..];
        assert!(zone_for(no_root, &n("example.com")).is_none());
    }

    #[test]
    fn delegation_matching() {
        let zone = Zone::new(n("dns-lab.org"), ZoneMode::Nxdomain)
            .delegate(
                n("f4.dns-lab.org"),
                vec![(n("ns.f4.dns-lab.org"), vec!["192.0.2.10".parse().unwrap()])],
            )
            .delegate(
                n("f6.dns-lab.org"),
                vec![(
                    n("ns.f6.dns-lab.org"),
                    vec!["2001:db8::10".parse().unwrap()],
                )],
            );
        assert_eq!(
            zone.delegation_for(&n("x.f4.dns-lab.org")).unwrap().cut,
            n("f4.dns-lab.org")
        );
        assert_eq!(
            zone.delegation_for(&n("a.b.f6.dns-lab.org")).unwrap().cut,
            n("f6.dns-lab.org")
        );
        assert!(zone.delegation_for(&n("x.dns-lab.org")).is_none());
        // The cut name itself matches its delegation.
        assert!(zone.delegation_for(&n("f4.dns-lab.org")).is_some());
    }

    #[test]
    #[should_panic(expected = "delegation outside zone")]
    fn delegation_must_nest() {
        let _ = Zone::new(n("dns-lab.org"), ZoneMode::Nxdomain).delegate(n("example.com"), vec![]);
    }

    #[test]
    fn soa_carries_contact_info() {
        let zone = Zone::new(n("dns-lab.org"), ZoneMode::Nxdomain);
        assert_eq!(zone.soa.mname, n("project.dns-lab.org"));
        assert_eq!(zone.soa.rname, n("contact.dns-lab.org"));
        let rec = zone.soa_record();
        assert_eq!(rec.name, n("dns-lab.org"));
        assert_eq!(rec.ttl, 60);
    }
}
