//! End-to-end DNS tests on the simulator: a miniature copy of the
//! experiment's estate (root, `org` TLD, `dns-lab.org` + `tcp.dns-lab.org`
//! zones) plus recursive resolvers in a client AS.

use bcd_dns::log::shared_log;
use bcd_dns::stub::StubQuery;
use bcd_dns::{
    Acl, AuthServer, AuthServerConfig, LogProto, RecursiveResolver, ResolverConfig, SharedLog,
    StubClient, Zone, ZoneMode,
};
use bcd_dnswire::{Name, RCode, RType};
use bcd_netsim::{
    Asn, BorderPolicy, HostConfig, LinkProfile, Network, NetworkConfig, Prefix, SimDuration,
    StackPolicy,
};
use bcd_osmodel::{DnsSoftware, Os};
use std::net::IpAddr;

fn n(s: &str) -> Name {
    s.parse().unwrap()
}

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

fn pre(s: &str) -> Prefix {
    s.parse().unwrap()
}

const ROOT: &str = "198.41.0.4";
const ORG: &str = "199.19.56.1";
const LAB: &str = "203.0.113.53";
const RESOLVER: &str = "192.0.2.53";
const CLIENT: &str = "192.0.2.9";

/// Build the world; returns (network, shared auth log, resolver host id,
/// stub host id).
fn build_world(
    resolver_cfg_mut: impl FnOnce(&mut ResolverConfig),
    stub_queries: Vec<StubQuery>,
) -> (Network, SharedLog, usize, usize) {
    let mut net = Network::new(NetworkConfig {
        seed: 42,
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    // Infrastructure AS (root/TLD/lab servers) and a client AS.
    net.add_simple_as(Asn(10), BorderPolicy::strict());
    net.add_simple_as(Asn(20), BorderPolicy::open());
    net.announce(pre("198.41.0.0/24"), Asn(10));
    net.announce(pre("199.19.56.0/24"), Asn(10));
    net.announce(pre("203.0.113.0/24"), Asn(10));
    net.announce(pre("192.0.2.0/24"), Asn(20));

    let log = shared_log();

    // Root zone: delegates org.
    let root_zone = Zone::new(Name::root(), ZoneMode::Static(vec![])).delegate(
        n("org"),
        vec![(n("a0.org.afilias-nst.info"), vec![ip(ORG)])],
    );
    net.add_host(
        HostConfig {
            addrs: vec![ip(ROOT)],
            asn: Asn(10),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root_zone],
            log: log.clone(),
            log_queries: false,
        })),
    );

    // org TLD: delegates dns-lab.org.
    let org_zone = Zone::new(n("org"), ZoneMode::Static(vec![])).delegate(
        n("dns-lab.org"),
        vec![(n("ns1.dns-lab.org"), vec![ip(LAB)])],
    );
    net.add_host(
        HostConfig {
            addrs: vec![ip(ORG)],
            asn: Asn(10),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![org_zone],
            log: log.clone(),
            log_queries: false,
        })),
    );

    // The experiment zone + the TC zone, one server, logging.
    let lab_zone = Zone::new(n("dns-lab.org"), ZoneMode::Nxdomain).delegate(
        n("tcp.dns-lab.org"),
        vec![(n("ns1.tcp.dns-lab.org"), vec![ip(LAB)])],
    );
    let tcp_zone = Zone::new(n("tcp.dns-lab.org"), ZoneMode::TruncateUdp);
    net.add_host(
        HostConfig {
            addrs: vec![ip(LAB)],
            asn: Asn(10),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![lab_zone, tcp_zone],
            log: log.clone(),
            log_queries: true,
        })),
    );

    // Recursive resolver in the client AS.
    let mut cfg = ResolverConfig::test_default(vec![ip(RESOLVER)], vec![ip(ROOT)]);
    resolver_cfg_mut(&mut cfg);
    let resolver_id = net.add_host(
        HostConfig {
            addrs: vec![ip(RESOLVER)],
            asn: Asn(20),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(cfg)),
    );

    // Stub client in the same AS.
    let stub_id = net.add_host(
        HostConfig {
            addrs: vec![ip(CLIENT)],
            asn: Asn(20),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(ip(CLIENT), stub_queries)),
    );
    (net, log, resolver_id, stub_id)
}

fn q(at_secs: u64, name: &str) -> StubQuery {
    StubQuery {
        at: SimDuration::from_secs(at_secs),
        resolver: ip(RESOLVER),
        qname: n(name),
        qtype: RType::A,
    }
}

#[test]
fn full_recursion_reaches_the_authoritative_log() {
    let (mut net, log, _, stub) =
        build_world(|_| {}, vec![q(1, "ts100.src.dst.asn.kw.dns-lab.org")]);
    net.run();
    // The stub got an NXDOMAIN answer.
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1);
    assert_eq!(stub_node.responses[0].rcode, RCode::NXDomain);
    // The lab auth server logged the recursive-to-authoritative query with
    // the resolver's source address and the full query name.
    let log = log.borrow();
    assert_eq!(
        log.len(),
        1,
        "exactly one logged query, got: {:?}",
        log.entries()
    );
    let e = &log.entries()[0];
    assert_eq!(e.src, ip(RESOLVER));
    assert_eq!(e.qname, n("ts100.src.dst.asn.kw.dns-lab.org"));
    assert_eq!(e.proto, LogProto::Udp);
    assert!(e.src_port >= 32_768 && (e.src_port as u32) < 32_768 + 28_232);
}

#[test]
fn second_query_skips_root_via_zone_cut_cache() {
    let (mut net, log, resolver, stub) = build_world(
        |_| {},
        vec![q(1, "ts1.a.kw.dns-lab.org"), q(100, "ts2.b.kw.dns-lab.org")],
    );
    net.run();
    assert_eq!(net.node::<StubClient>(stub).unwrap().responses.len(), 2);
    assert_eq!(log.borrow().len(), 2);
    // First resolution walks root -> org -> lab (3 upstream queries);
    // second goes straight to the lab server (1 more).
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert_eq!(stats.upstream_queries, 4, "{stats:?}");
}

#[test]
fn unique_names_are_never_cache_hits_but_repeats_are() {
    let (mut net, _, resolver, stub) = build_world(
        |_| {},
        vec![
            q(1, "same.kw.dns-lab.org"),
            q(200, "same.kw.dns-lab.org"), // within negative TTL? 60s -> expired at 200
            q(210, "same.kw.dns-lab.org"), // 10s after previous -> cached NXDOMAIN
        ],
    );
    net.run();
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert_eq!(stats.cache_hits, 1, "{stats:?}");
    assert_eq!(net.node::<StubClient>(stub).unwrap().responses.len(), 3);
}

#[test]
fn qmin_halts_on_nxdomain_hiding_the_full_qname() {
    let (mut net, log, _, stub) = build_world(
        |cfg| {
            cfg.qmin = true;
            cfg.qmin_halts_on_nxdomain = true;
        },
        vec![q(1, "ts9.src.dst.asn.kw.dns-lab.org")],
    );
    net.run();
    // Client still gets NXDOMAIN...
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1);
    assert_eq!(stub_node.responses[0].rcode, RCode::NXDomain);
    // ...but the auth server only ever saw the minimized label, never the
    // full QNAME (§3.6.4).
    let log = log.borrow();
    assert!(!log.is_empty());
    for e in log.entries() {
        assert_eq!(
            e.qname,
            n("kw.dns-lab.org"),
            "full QNAME must not appear, saw {}",
            e.qname
        );
    }
}

#[test]
fn qmin_without_halting_eventually_sends_full_qname() {
    let (mut net, log, _, _) = build_world(
        |cfg| {
            cfg.qmin = true;
            cfg.qmin_halts_on_nxdomain = false;
        },
        vec![q(1, "ts9.src.dst.asn.kw.dns-lab.org")],
    );
    net.run();
    let log = log.borrow();
    let saw_full = log
        .entries()
        .iter()
        .any(|e| e.qname == n("ts9.src.dst.asn.kw.dns-lab.org"));
    let saw_min = log.entries().iter().any(|e| e.qname == n("kw.dns-lab.org"));
    assert!(saw_full, "full QNAME expected");
    assert!(saw_min, "minimized first probe expected");
}

#[test]
fn tc_zone_forces_tcp_with_fingerprint() {
    let (mut net, log, resolver, stub) =
        build_world(|_| {}, vec![q(1, "probe1.x.tcp.dns-lab.org")]);
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1, "{:?}", stub_node.responses);
    assert_eq!(stub_node.responses[0].rcode, RCode::NXDomain);
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert_eq!(stats.tcp_retries, 1, "{stats:?}");
    // The log must contain the TCP query with SYN fingerprint material.
    let log = log.borrow();
    let tcp_entries: Vec<_> = log
        .entries()
        .iter()
        .filter(|e| e.proto == LogProto::Tcp)
        .collect();
    assert_eq!(tcp_entries.len(), 1);
    let syn = tcp_entries[0].syn.expect("SYN info attached");
    // Linux signature survives TTL decay and classifies correctly.
    let class = bcd_osmodel::P0fClassifier::new().classify_fields(
        bcd_osmodel::P0fClassifier::infer_initial_ttl(syn.observed_ttl),
        syn.window,
        syn.mss,
        syn.layout,
    );
    assert_eq!(class, bcd_osmodel::P0fClass::Linux);
}

#[test]
fn scrubbed_resolver_is_unclassifiable() {
    let (mut net, log, _, _) = build_world(
        |cfg| cfg.p0f_visible = false,
        vec![q(1, "probe1.x.tcp.dns-lab.org")],
    );
    net.run();
    let log = log.borrow();
    let syn = log
        .entries()
        .iter()
        .find(|e| e.proto == LogProto::Tcp)
        .and_then(|e| e.syn)
        .expect("tcp query logged");
    let class = bcd_osmodel::P0fClassifier::new().classify_fields(
        bcd_osmodel::P0fClassifier::infer_initial_ttl(syn.observed_ttl),
        syn.window,
        syn.mss,
        syn.layout,
    );
    assert_eq!(class, bcd_osmodel::P0fClass::Unknown);
}

#[test]
fn closed_resolver_refuses_outside_acl() {
    let (mut net, log, resolver, stub) = build_world(
        |cfg| {
            // Allow only a prefix that does NOT contain the stub.
            cfg.acl = Acl::Allow(vec![pre("10.0.0.0/8")].into());
        },
        vec![q(1, "ts1.x.kw.dns-lab.org")],
    );
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1);
    assert_eq!(stub_node.responses[0].rcode, RCode::Refused);
    assert!(log.borrow().is_empty(), "no recursion for refused queries");
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert_eq!(stats.refused, 1);
}

#[test]
fn closed_resolver_accepts_inside_acl() {
    let (mut net, log, _, stub) = build_world(
        |cfg| {
            cfg.acl = Acl::Allow(vec![pre("192.0.2.0/24")].into());
        },
        vec![q(1, "ts1.x.kw.dns-lab.org")],
    );
    net.run();
    assert_eq!(
        net.node::<StubClient>(stub).unwrap().responses[0].rcode,
        RCode::NXDomain
    );
    assert_eq!(log.borrow().len(), 1);
}

#[test]
fn forwarder_sends_through_upstream() {
    // Two resolvers: the target forwards to an open recursive upstream in
    // the infrastructure AS.
    let upstream_addr = "203.0.113.99";
    let (mut net, log, _, stub) = build_world(
        |cfg| {
            cfg.forward_to = Some(ip(upstream_addr));
        },
        vec![q(1, "ts1.fw.kw.dns-lab.org")],
    );
    // Add the upstream open resolver.
    net.add_host(
        HostConfig {
            addrs: vec![ip(upstream_addr)],
            asn: Asn(10),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig::test_default(
            vec![ip(upstream_addr)],
            vec![ip(ROOT)],
        ))),
    );
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1);
    assert_eq!(stub_node.responses[0].rcode, RCode::NXDomain);
    // The authoritative log shows the *upstream's* source address, not the
    // forwarder's — the §5.4 signal.
    let log = log.borrow();
    assert_eq!(log.len(), 1);
    assert_eq!(log.entries()[0].src, ip(upstream_addr));
}

#[test]
fn unreachable_servers_end_in_servfail_after_retries() {
    let (mut net, _, resolver, stub) = build_world(
        |cfg| {
            // Point root hints at a black hole.
            cfg.root_hints = vec![ip("203.0.113.250")].into();
            cfg.timeout = SimDuration::from_secs(1);
            cfg.max_attempts = 3;
        },
        vec![q(1, "ts1.x.kw.dns-lab.org")],
    );
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1);
    assert_eq!(stub_node.responses[0].rcode, RCode::ServFail);
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert_eq!(stats.servfail, 1);
    assert_eq!(stats.upstream_queries, 3, "3 attempts before giving up");
}

#[test]
fn source_ports_follow_the_allocator() {
    // A fixed-port resolver uses port 53 for every upstream query — the
    // §5.2.1 vulnerable configuration.
    let (mut net, log, _, _) = build_world(
        |cfg| {
            cfg.allocator =
                DnsSoftware::FixedPort53.allocator(Os::LinuxModern, &mut rand::thread_rng());
        },
        (0..10)
            .map(|i| q(1 + i * 120, &format!("t{i}.u.kw.dns-lab.org")))
            .collect(),
    );
    net.run();
    let log = log.borrow();
    assert_eq!(log.len(), 10);
    assert!(log.entries().iter().all(|e| e.src_port == 53));
}

#[test]
fn deterministic_replay() {
    let run = || {
        let (mut net, log, _, _) = build_world(
            |_| {},
            (0..5)
                .map(|i| q(1 + i, &format!("t{i}.d.kw.dns-lab.org")))
                .collect(),
        );
        net.run();
        let log = log.borrow();
        log.entries()
            .iter()
            .map(|e| (e.time, e.src_port, e.qname.to_string()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
