//! Resolver resilience under adverse conditions: lossy links, refusing
//! upstreams, server rotation, and in-engine middlebox interception.

use bcd_dns::log::shared_log;
use bcd_dns::stub::StubQuery;
use bcd_dns::{
    AuthServer, AuthServerConfig, Interceptor, RecursiveResolver, ResolverConfig, SharedLog,
    StubClient, Zone, ZoneMode,
};
use bcd_dnswire::{Name, RCode, RType};
use bcd_netsim::{
    Asn, BorderPolicy, ChaosConfig, ChaosProfile, FaultDomain, FaultSchedule, HostConfig,
    LinkProfile, Network, NetworkConfig, Prefix, SimDuration, StackPolicy,
};
use bcd_osmodel::Os;
use std::net::IpAddr;

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

fn n(s: &str) -> Name {
    s.parse().unwrap()
}

fn pre(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// A world with a root+zone server reachable over a configurable link, a
/// resolver, and a stub client issuing `queries`.
fn world(core_link: LinkProfile, queries: Vec<StubQuery>) -> (Network, SharedLog, usize, usize) {
    let mut net = Network::new(NetworkConfig {
        seed: 11,
        core_link,
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::strict());
    net.add_simple_as(Asn(2), BorderPolicy::open());
    net.announce(pre("20.0.0.0/24"), Asn(1));
    net.announce(pre("21.0.0.0/24"), Asn(2));

    let log = shared_log();
    let auth = ip("20.0.0.53");
    let root = Zone::new(Name::root(), ZoneMode::Static(vec![]))
        .delegate(n("zone.test"), vec![(n("ns.zone.test"), vec![auth])]);
    net.add_host(
        HostConfig {
            addrs: vec![auth],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root, Zone::new(n("zone.test"), ZoneMode::Wildcard)],
            log: log.clone(),
            log_queries: true,
        })),
    );
    let resolver = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.53")],
            asn: Asn(2),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig {
            timeout: SimDuration::from_millis(500),
            ..ResolverConfig::test_default(vec![ip("21.0.0.53")], vec![auth])
        })),
    );
    let stub = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.9")],
            asn: Asn(2),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(ip("21.0.0.9"), queries)),
    );
    (net, log, resolver, stub)
}

fn q(at: u64, name: &str) -> StubQuery {
    StubQuery {
        at: SimDuration::from_secs(at),
        resolver: ip("21.0.0.53"),
        qname: n(name),
        qtype: RType::A,
    }
}

#[test]
fn retransmission_recovers_from_heavy_loss() {
    // 40% loss on the wide-area path; with 3 attempts per stage most
    // resolutions still complete (p_fail per stage ≈ (1-0.36)^3 where a
    // round trip needs both directions: p_rt ≈ 0.36).
    let queries: Vec<StubQuery> = (0..40)
        .map(|i| q(1 + i * 5, &format!("u{i}.zone.test")))
        .collect();
    let (mut net, _, resolver, stub) = world(LinkProfile::lossy(0.4), queries);
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    let ok = stub_node
        .responses
        .iter()
        .filter(|r| r.rcode == RCode::NoError)
        .count();
    assert!(
        ok >= 25,
        "only {ok}/40 resolutions succeeded under 40% loss"
    );
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert!(
        stats.upstream_queries > 40,
        "retransmissions expected: {stats:?}"
    );
}

#[test]
fn refused_upstream_rotates_to_working_server() {
    // Zone delegated to two servers; the first REFUSES (serves nothing for
    // the zone), the second answers. The resolver must rotate.
    let mut net = Network::new(NetworkConfig {
        seed: 3,
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::strict());
    net.add_simple_as(Asn(2), BorderPolicy::open());
    net.announce(pre("20.0.0.0/24"), Asn(1));
    net.announce(pre("21.0.0.0/24"), Asn(2));
    let log = shared_log();
    let bad = ip("20.0.0.66");
    let good = ip("20.0.0.53");
    let root = Zone::new(Name::root(), ZoneMode::Static(vec![]))
        .delegate(n("zone.test"), vec![(n("ns.zone.test"), vec![bad, good])]);
    // Root host also serves the root zone; the "bad" server serves an
    // unrelated zone so queries for zone.test come back REFUSED.
    net.add_host(
        HostConfig {
            addrs: vec![good],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root, Zone::new(n("zone.test"), ZoneMode::Wildcard)],
            log: log.clone(),
            log_queries: false,
        })),
    );
    net.add_host(
        HostConfig {
            addrs: vec![bad],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![Zone::new(n("other.test"), ZoneMode::Wildcard)],
            log: log.clone(),
            log_queries: false,
        })),
    );
    let resolver = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.53")],
            asn: Asn(2),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig::test_default(
            vec![ip("21.0.0.53")],
            vec![good],
        ))),
    );
    // Many queries: server rotation starts at attempt 0 with server index
    // `attempts % len`, so some go to the bad server first and must retry.
    let queries: Vec<StubQuery> = (0..10)
        .map(|i| q(1 + i, &format!("r{i}.zone.test")))
        .collect();
    let stub = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.9")],
            asn: Asn(2),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(ip("21.0.0.9"), queries)),
    );
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    let ok = stub_node
        .responses
        .iter()
        .filter(|r| r.rcode == RCode::NoError)
        .count();
    assert_eq!(ok, 10, "all queries must eventually succeed via rotation");
    let _ = resolver;
}

#[test]
fn middlebox_intercepts_inside_the_engine() {
    // Full in-engine interception: external client queries a *nonexistent*
    // internal resolver; the AS's middlebox answers via a public upstream.
    let mut net = Network::new(NetworkConfig {
        seed: 4,
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::strict()); // infra
    net.add_simple_as(Asn(2), BorderPolicy::open()); // victim AS w/ middlebox
    net.add_simple_as(Asn(3), BorderPolicy::open()); // client AS
    net.announce(pre("20.0.0.0/24"), Asn(1));
    net.announce(pre("21.0.0.0/24"), Asn(2));
    net.announce(pre("22.0.0.0/24"), Asn(3));
    let log = shared_log();
    let auth = ip("20.0.0.53");
    let root = Zone::new(Name::root(), ZoneMode::Static(vec![]))
        .delegate(n("zone.test"), vec![(n("ns.zone.test"), vec![auth])]);
    net.add_host(
        HostConfig {
            addrs: vec![auth],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root, Zone::new(n("zone.test"), ZoneMode::Wildcard)],
            log: log.clone(),
            log_queries: true,
        })),
    );
    // Public upstream resolver in the infra AS.
    let upstream = ip("20.0.0.99");
    net.add_host(
        HostConfig {
            addrs: vec![upstream],
            asn: Asn(1),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig::test_default(
            vec![upstream],
            vec![auth],
        ))),
    );
    // The middlebox in AS 2.
    let mbx_addr = ip("21.0.0.250");
    let mbx = net.add_host(
        HostConfig {
            addrs: vec![mbx_addr],
            asn: Asn(2),
            stack: StackPolicy::permissive(),
        },
        Box::new(Interceptor::new(mbx_addr, upstream)),
    );
    net.set_dns_interceptor(Asn(2), mbx);
    // Client queries 21.0.0.53 — an address with NO host behind it.
    let stub = net.add_host(
        HostConfig {
            addrs: vec![ip("22.0.0.9")],
            asn: Asn(3),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(
            ip("22.0.0.9"),
            vec![StubQuery {
                at: SimDuration::from_secs(1),
                resolver: ip("21.0.0.53"),
                qname: n("probe.zone.test"),
                qtype: RType::A,
            }],
        )),
    );
    net.run();
    // The client got an answer that *looks* like it came from 21.0.0.53.
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 1);
    assert_eq!(stub_node.responses[0].from, ip("21.0.0.53"));
    assert_eq!(stub_node.responses[0].rcode, RCode::NoError);
    // And the authoritative log shows the upstream, not the ghost resolver.
    let log = log.borrow();
    assert!(log.entries().iter().all(|e| e.src == upstream));
    assert_eq!(net.counters.intercepted, 1);
}

#[test]
fn negative_cache_suppresses_repeat_upstream_traffic() {
    // Same NXDOMAIN name queried twice in quick succession: the second is
    // served from the negative cache.
    let mut net = Network::new(NetworkConfig {
        seed: 5,
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::strict());
    net.add_simple_as(Asn(2), BorderPolicy::open());
    net.announce(pre("20.0.0.0/24"), Asn(1));
    net.announce(pre("21.0.0.0/24"), Asn(2));
    let log = shared_log();
    let auth = ip("20.0.0.53");
    let root = Zone::new(Name::root(), ZoneMode::Static(vec![]))
        .delegate(n("zone.test"), vec![(n("ns.zone.test"), vec![auth])]);
    net.add_host(
        HostConfig {
            addrs: vec![auth],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![root, Zone::new(n("zone.test"), ZoneMode::Nxdomain)],
            log: log.clone(),
            log_queries: true,
        })),
    );
    let resolver = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.53")],
            asn: Asn(2),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig::test_default(
            vec![ip("21.0.0.53")],
            vec![auth],
        ))),
    );
    let stub = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.9")],
            asn: Asn(2),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(
            ip("21.0.0.9"),
            vec![q(1, "gone.zone.test"), q(5, "gone.zone.test")],
        )),
    );
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    assert_eq!(stub_node.responses.len(), 2);
    assert!(stub_node
        .responses
        .iter()
        .all(|r| r.rcode == RCode::NXDomain));
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert_eq!(stats.cache_hits, 1, "{stats:?}");
}

#[test]
fn duplicated_tcp_answer_does_not_panic_the_resolver() {
    // Regression: the resolver removed its pending entry when the first
    // TCP answer segment arrived, then `unwrap()`ed the (now-missing)
    // entry when a chaos-duplicated copy of the same PSH landed. A 100%
    // duplication fault schedule replays every inter-AS packet twice, so
    // the TCP answer to a TC-forced retry is guaranteed to arrive again
    // after the transaction completed.
    let mut net = Network::new(NetworkConfig {
        seed: 6,
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::strict());
    net.add_simple_as(Asn(2), BorderPolicy::open());
    net.announce(pre("20.0.0.0/24"), Asn(1));
    net.announce(pre("21.0.0.0/24"), Asn(2));
    let log = shared_log();
    let auth = ip("20.0.0.53");
    let root = Zone::new(Name::root(), ZoneMode::Static(vec![]))
        .delegate(n("zone.test"), vec![(n("ns.zone.test"), vec![auth])]);
    net.add_host(
        HostConfig {
            addrs: vec![auth],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            // TruncateUdp forces TC=1 over UDP; the real answer only
            // arrives over the TCP retry — the path under test.
            zones: vec![root, Zone::new(n("zone.test"), ZoneMode::TruncateUdp)],
            log: log.clone(),
            log_queries: true,
        })),
    );
    let resolver = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.53")],
            asn: Asn(2),
            stack: Os::LinuxModern.stack_policy(),
        },
        Box::new(RecursiveResolver::new(ResolverConfig::test_default(
            vec![ip("21.0.0.53")],
            vec![auth],
        ))),
    );
    let stub = net.add_host(
        HostConfig {
            addrs: vec![ip("21.0.0.9")],
            asn: Asn(2),
            stack: StackPolicy::strict(),
        },
        Box::new(StubClient::new(
            ip("21.0.0.9"),
            (0..5)
                .map(|i| q(1 + i, &format!("d{i}.zone.test")))
                .collect(),
        )),
    );
    let chaos = ChaosConfig::custom(
        7,
        "dup-all",
        ChaosProfile {
            duplicate: 1.0,
            ..ChaosProfile::calm()
        },
    );
    let domain = FaultDomain {
        asns: vec![Asn(1), Asn(2)],
        crash_hosts: vec![],
    };
    net.set_faults(Some(std::sync::Arc::new(FaultSchedule::compile(
        &chaos, &domain,
    ))));
    net.run();
    let stub_node = net.node::<StubClient>(stub).unwrap();
    // TruncateUdp answers NXDOMAIN over TCP: five delivered NXDomains
    // prove five completed TCP exchanges (and no panic on the replayed
    // data segments).
    let ok = stub_node
        .responses
        .iter()
        .filter(|r| r.rcode == RCode::NXDomain)
        .count();
    assert_eq!(ok, 5, "every TC-forced resolution must still complete");
    let stats = &net.node::<RecursiveResolver>(resolver).unwrap().stats;
    assert!(stats.tcp_retries >= 5, "TCP path not exercised: {stats:?}");
}
