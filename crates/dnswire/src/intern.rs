//! Name interning: a shared arena mapping case-folded names to dense ids.
//!
//! A [`Name`] owns one heap `Vec` per label; structures that key maps by
//! `Name` (resolver caches, zone-cut tables) pay that allocation — and the
//! per-label case-folding hash — on every insert *and* every probe. At
//! Internet scale (millions of resolver caches) that is the dominant DNS-
//! side cost. A [`NameArena`] stores each distinct name once and hands out
//! a copyable [`NameId`]; equal names (case-insensitively, like `Name`'s
//! own `Eq`) always receive the same id, so `NameId` equality and hashing
//! replace label-by-label comparison.
//!
//! The arena is append-only and its id space is allocation-ordered:
//! iterating `0..len` visits names in first-intern order, which is
//! deterministic whenever the intern call sequence is — the property every
//! consumer in this workspace already guarantees (seeded RNG, ordered
//! event loop). Nothing here iterates the internal hash index.

use crate::name::Name;
use std::collections::HashMap;

/// Dense handle to a name interned in a [`NameArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The arena slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only name arena. See the module docs.
#[derive(Debug, Default)]
pub struct NameArena {
    names: Vec<Name>,
    /// Canonical (lowercased, dot-terminated) bytes → slot. Probes accept
    /// `&[u8]` so suffix walks can slice one canonical buffer instead of
    /// building a `Name` per ancestor.
    by_canon: HashMap<Vec<u8>, u32>,
}

impl NameArena {
    /// An empty arena.
    pub fn new() -> NameArena {
        NameArena::default()
    }

    /// Intern `name`, returning the existing id if an equal (case-
    /// insensitive) name is already present. The first-interned spelling
    /// is the one [`get`](Self::get) returns.
    pub fn intern(&mut self, name: &Name) -> NameId {
        let canon = name.canonical_bytes();
        if let Some(&id) = self.by_canon.get(&canon) {
            return NameId(id);
        }
        let id = u32::try_from(self.names.len()).expect("arena overflow");
        self.names.push(name.clone());
        self.by_canon.insert(canon, id);
        NameId(id)
    }

    /// The interned name for an id issued by this arena.
    pub fn get(&self, id: NameId) -> &Name {
        &self.names[id.0 as usize]
    }

    /// The id of `name`, if it has been interned.
    pub fn lookup(&self, name: &Name) -> Option<NameId> {
        self.lookup_canonical(&name.canonical_bytes())
    }

    /// The id for pre-computed canonical bytes (as produced by
    /// [`Name::canonical_bytes`]: lowercased labels, each dot-terminated;
    /// the root is `"."`).
    pub fn lookup_canonical(&self, canon: &[u8]) -> Option<NameId> {
        self.by_canon.get(canon).map(|&id| NameId(id))
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn equal_names_share_an_id() {
        let mut a = NameArena::new();
        let id1 = a.intern(&n("Example.ORG"));
        let id2 = a.intern(&n("example.org"));
        assert_eq!(id1, id2);
        assert_eq!(a.len(), 1);
        // First spelling wins.
        assert_eq!(a.get(id1).to_string(), "Example.ORG");
    }

    #[test]
    fn distinct_names_get_dense_sequential_ids() {
        let mut a = NameArena::new();
        let ids: Vec<NameId> = ["a.org", "b.org", "c.org"]
            .iter()
            .map(|s| a.intern(&n(s)))
            .collect();
        assert_eq!(ids.iter().map(|i| i.index()).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn lookup_without_interning() {
        let mut a = NameArena::new();
        assert_eq!(a.lookup(&n("x.org")), None);
        let id = a.intern(&n("x.org"));
        assert_eq!(a.lookup(&n("X.ORG")), Some(id));
        assert_eq!(a.lookup_canonical(b"x.org."), Some(id));
        assert_eq!(a.lookup_canonical(b"y.org."), None);
    }

    #[test]
    fn root_is_internable() {
        let mut a = NameArena::new();
        let id = a.intern(&Name::root());
        assert_eq!(a.lookup_canonical(b"."), Some(id));
        assert!(a.get(id).is_root());
    }
}
