//! # bcd-dnswire — DNS wire format
//!
//! A self-contained implementation of the DNS message format (RFC 1035 plus
//! the bits of RFC 2181/6891/7766 the experiment touches):
//!
//! * [`Name`] — domain names with label semantics, case-insensitive
//!   comparison, parent/child navigation (needed for QNAME minimization and
//!   RFC 8020 NXDOMAIN cut semantics),
//! * [`Message`] / [`Header`] / [`Question`] / [`Record`] — full messages
//!   with encode/decode, including name-compression pointers on decode and
//!   compression on encode,
//! * [`RData`] — A, AAAA, NS, CNAME, SOA, PTR, TXT, OPT,
//! * hardened decoding: pointer loops, truncated buffers, over-long names
//!   and labels all return typed errors rather than panicking (property
//!   tests fuzz this),
//! * [`MessageView`] — a borrowed lazy-decode view for hot paths that only
//!   need header fields / the QNAME, with in-place id/RD patching for
//!   forwarding,
//! * the header bits the paper's methodology depends on: `TC` (elicits
//!   DNS-over-TCP retry, §3.5), `RD`/`RA`, and rcodes `NXDOMAIN` (§3.3) and
//!   `REFUSED` (closed resolvers, §3.8).

pub mod intern;
pub mod message;
pub mod name;
pub mod rdata;
pub mod types;
pub mod view;
pub mod wire;

pub use intern::{NameArena, NameId};
pub use message::{Header, Message, Question};
pub use name::{Name, NameError, MAX_NAME_WIRE_LEN};
pub use rdata::{RData, Record, Soa};
pub use types::{Opcode, RClass, RCode, RType};
pub use view::MessageView;
pub use wire::{WireError, WireReader, WireWriter};
