//! DNS messages: header, question, and the four record sections.

use crate::name::Name;
use crate::rdata::Record;
use crate::types::{Opcode, RClass, RCode, RType};
use crate::wire::{WireError, WireReader, WireWriter};

/// The 12-byte message header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Transaction ID — one of the two secrets cache-poisoning must guess
    /// (§5.2.1: with a fixed source port only these 16 bits remain).
    pub id: u16,
    /// True for responses.
    pub qr: bool,
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated — set by our authoritative server to force a TCP retry
    /// (§3.5 follow-up queries).
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    pub rcode: RCode,
}

impl Header {
    /// A recursive query header with the given transaction ID.
    pub fn query(id: u16) -> Header {
        Header {
            id,
            qr: false,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: RCode::NoError,
        }
    }

    /// A response header mirroring a query.
    pub fn response_to(query: &Header, rcode: RCode) -> Header {
        Header {
            id: query.id,
            qr: true,
            opcode: query.opcode,
            aa: false,
            tc: false,
            rd: query.rd,
            ra: false,
            rcode,
        }
    }

    fn flags(&self) -> u16 {
        let mut f = 0u16;
        if self.qr {
            f |= 1 << 15;
        }
        f |= (self.opcode.to_u8() as u16 & 0x0F) << 11;
        if self.aa {
            f |= 1 << 10;
        }
        if self.tc {
            f |= 1 << 9;
        }
        if self.rd {
            f |= 1 << 8;
        }
        if self.ra {
            f |= 1 << 7;
        }
        f |= self.rcode.to_u8() as u16 & 0x0F;
        f
    }

    fn from_flags(id: u16, f: u16) -> Header {
        Header {
            id,
            qr: f & (1 << 15) != 0,
            opcode: Opcode::from_u8(((f >> 11) & 0x0F) as u8),
            aa: f & (1 << 10) != 0,
            tc: f & (1 << 9) != 0,
            rd: f & (1 << 8) != 0,
            ra: f & (1 << 7) != 0,
            rcode: RCode::from_u8((f & 0x0F) as u8),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    pub name: Name,
    pub rtype: RType,
    pub class: RClass,
}

impl Question {
    /// An IN-class question.
    pub fn new(name: Name, rtype: RType) -> Question {
        Question {
            name,
            rtype,
            class: RClass::In,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
}

impl Message {
    /// A single-question recursive query.
    pub fn query(id: u16, name: Name, rtype: RType) -> Message {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(name, rtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A response skeleton echoing the query's ID, question, and RD bit.
    pub fn response_to(query: &Message, rcode: RCode) -> Message {
        Message {
            header: Header::response_to(&query.header, rcode),
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The first question, if present (all our traffic is single-question).
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Serialize to wire bytes with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Serialize into a reusable scratch writer (cleared first — name
    /// compression offsets are absolute from the message start). Hot
    /// senders keep one writer per node so steady-state encoding costs no
    /// buffer or dictionary allocation; read the result via
    /// [`WireWriter::as_bytes`].
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.clear();
        w.u16(self.header.id);
        w.u16(self.header.flags());
        w.u16(self.questions.len() as u16);
        w.u16(self.answers.len() as u16);
        w.u16(self.authorities.len() as u16);
        w.u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.name.encode(&mut *w);
            w.u16(q.rtype.to_u16());
            w.u16(q.class.to_u16());
        }
        for section in [&self.answers, &self.authorities, &self.additionals] {
            for rec in section {
                rec.encode(&mut *w);
            }
        }
    }

    /// Decode from wire bytes; rejects trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(buf);
        let id = r.u16()?;
        let flags = r.u16()?;
        let qd = r.u16()? as usize;
        let an = r.u16()? as usize;
        let ns = r.u16()? as usize;
        let ar = r.u16()? as usize;
        // Cap section counts defensively: a 12-byte header can't honestly
        // promise more records than remaining bytes.
        let remaining = r.remaining();
        if qd.saturating_mul(5) > remaining
            || an.saturating_mul(11) > remaining
            || ns.saturating_mul(11) > remaining
            || ar.saturating_mul(11) > remaining
        {
            return Err(WireError::Truncated);
        }
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = Name::decode(&mut r)?;
            let rtype = RType::from_u16(r.u16()?);
            let class = RClass::from_u16(r.u16()?);
            questions.push(Question { name, rtype, class });
        }
        let mut sections: [Vec<Record>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, count) in [an, ns, ar].into_iter().enumerate() {
            for _ in 0..count {
                sections[i].push(Record::decode(&mut r)?);
            }
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            header: Header::from_flags(id, flags),
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::{RData, Soa};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0x4242, n("ts.src.dst.asn.kw.dns-lab.org"), RType::A);
        let bytes = q.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, q);
        assert!(back.header.rd);
        assert!(!back.header.qr);
    }

    #[test]
    fn nxdomain_response_with_soa_round_trips() {
        let q = Message::query(7, n("nope.dns-lab.org"), RType::A);
        let mut resp = Message::response_to(&q, RCode::NXDomain);
        resp.header.aa = true;
        resp.authorities.push(Record::new(
            n("dns-lab.org"),
            60,
            RData::Soa(Soa {
                mname: n("project.dns-lab.org"),
                rname: n("contact.dns-lab.org"),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 60,
            }),
        ));
        let bytes = resp.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.header.rcode, RCode::NXDomain);
        assert_eq!(back.header.id, 7);
        assert!(back.header.qr);
    }

    #[test]
    fn tc_bit_round_trips() {
        let q = Message::query(9, n("x.org"), RType::A);
        let mut resp = Message::response_to(&q, RCode::NoError);
        resp.header.tc = true;
        let back = Message::decode(&resp.encode()).unwrap();
        assert!(back.header.tc);
    }

    #[test]
    fn all_flag_combinations_round_trip() {
        for bits in 0..32u8 {
            let h = Header {
                id: 0x1000 + bits as u16,
                qr: bits & 1 != 0,
                opcode: Opcode::Query,
                aa: bits & 2 != 0,
                tc: bits & 4 != 0,
                rd: bits & 8 != 0,
                ra: bits & 16 != 0,
                rcode: RCode::Refused,
            };
            let m = Message {
                header: h.clone(),
                questions: vec![],
                answers: vec![],
                authorities: vec![],
                additionals: vec![],
            };
            let back = Message::decode(&m.encode()).unwrap();
            assert_eq!(back.header, h);
        }
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(1, n("a.example.org"), RType::A);
        let mut resp = Message::response_to(&q, RCode::NoError);
        resp.answers.push(Record::new(
            n("a.example.org"),
            60,
            RData::A("192.0.2.1".parse().unwrap()),
        ));
        resp.answers.push(Record::new(
            n("a.example.org"),
            60,
            RData::A("192.0.2.2".parse().unwrap()),
        ));
        let bytes = resp.encode();
        // Owner name repeats twice; compressed encoding must be well under
        // the uncompressed size (3 copies * 15 bytes).
        assert!(bytes.len() < 12 + 19 + 15 + 2 * (2 + 10 + 4) + 10);
        assert_eq!(Message::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn rejects_truncated_and_trailing() {
        let q = Message::query(1, n("x.org"), RType::A);
        let bytes = q.encode();
        assert_eq!(Message::decode(&bytes[..8]), Err(WireError::Truncated));
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(Message::decode(&extra), Err(WireError::TrailingBytes));
    }

    #[test]
    fn rejects_absurd_section_counts() {
        // Header claiming 65535 questions with no body.
        let mut bytes = vec![0u8; 12];
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(Message::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn empty_message_decodes() {
        let m = Message {
            header: Header::query(0),
            questions: vec![],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }
}
