//! Domain names.
//!
//! [`Name`] stores a sequence of labels (without the root's empty label).
//! Comparison and hashing are case-insensitive per RFC 1035 §2.3.3; the
//! original case is preserved for display. The experiment builds deeply
//! structured names (`ts.src.dst.asn.kw.dns-lab.org`, §3.3) and needs
//! parent/suffix navigation for QNAME minimization (§3.6.4), so those
//! operations are first-class.

use crate::wire::{WireError, WireReader, WireWriter};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// Maximum total wire length of a name (RFC 1035 §3.1).
pub const MAX_NAME_WIRE_LEN: usize = 255;
/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum compression-pointer indirections tolerated while decoding.
const MAX_POINTER_HOPS: usize = 64;

/// Errors constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or exceeded 63 bytes.
    BadLabel(String),
    /// The total wire length would exceed 255 bytes.
    TooLong,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadLabel(l) => write!(f, "bad label: {l:?}"),
            NameError::TooLong => write!(f, "name exceeds 255 wire bytes"),
        }
    }
}

impl std::error::Error for NameError {}

/// A domain name: zero or more labels, root last (implicit).
#[derive(Debug, Clone, Eq)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Build from label byte strings, validating lengths.
    pub fn from_labels<I, L>(labels: I) -> Result<Name, NameError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(NameError::BadLabel(String::from_utf8_lossy(l).into_owned()));
            }
            out.push(l.to_vec());
        }
        let name = Name { labels: out };
        if name.wire_len() > MAX_NAME_WIRE_LEN {
            return Err(NameError::TooLong);
        }
        Ok(name)
    }

    /// Number of labels (root excluded).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(Vec::as_slice)
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels.first().map(Vec::as_slice)
    }

    /// Total encoded length without compression: each label costs `1 + len`,
    /// plus the terminating root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// The name with the leftmost label removed (`a.b.c` → `b.c`);
    /// root's parent is root.
    pub fn parent(&self) -> Name {
        if self.labels.is_empty() {
            Name::root()
        } else {
            Name {
                labels: self.labels[1..].to_vec(),
            }
        }
    }

    /// The suffix keeping the rightmost `n` labels (`n = 0` → root).
    /// `n` larger than the label count returns the whole name.
    pub fn suffix(&self, n: usize) -> Name {
        let keep = n.min(self.labels.len());
        Name {
            labels: self.labels[self.labels.len() - keep..].to_vec(),
        }
    }

    /// Prepend a label (`child("www")` on `example.org` → `www.example.org`).
    pub fn child<L: AsRef<[u8]>>(&self, label: L) -> Result<Name, NameError> {
        let l = label.as_ref();
        if l.is_empty() || l.len() > MAX_LABEL_LEN {
            return Err(NameError::BadLabel(String::from_utf8_lossy(l).into_owned()));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(l.to_vec());
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_WIRE_LEN {
            return Err(NameError::TooLong);
        }
        Ok(name)
    }

    /// True if `self` equals `other` or is a descendant of it
    /// (case-insensitive). Everything is under the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&other.labels)
            .all(|(a, b)| eq_label(a, b))
    }

    /// Canonical (lowercased) representation used for compression-dictionary
    /// keys and hashing.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for l in &self.labels {
            out.extend(l.iter().map(|b| b.to_ascii_lowercase()));
            out.push(b'.');
        }
        if out.is_empty() {
            out.push(b'.');
        }
        out
    }

    /// Allocation-free [`canonical_bytes`](Self::canonical_bytes): writes
    /// the canonical form into `buf` and returns the length used. A name's
    /// canonical form is at most `MAX_NAME_WIRE_LEN` bytes (one less than
    /// its wire length, or a single dot for the root), so a
    /// `[u8; MAX_NAME_WIRE_LEN]` stack buffer always fits — hot paths that
    /// probe a [`NameArena`](crate::NameArena) per lookup use this instead
    /// of allocating a `Vec` per probe.
    pub fn canonical_into(&self, buf: &mut [u8; MAX_NAME_WIRE_LEN]) -> usize {
        let mut n = 0;
        for l in &self.labels {
            for &b in l {
                buf[n] = b.to_ascii_lowercase();
                n += 1;
            }
            buf[n] = b'.';
            n += 1;
        }
        if n == 0 {
            buf[0] = b'.';
            n = 1;
        }
        n
    }

    /// The reverse-DNS (PTR) name for an address: `d.c.b.a.in-addr.arpa`
    /// for IPv4, nibble-reversed `ip6.arpa` for IPv6 — what the paper used
    /// to find administrator contacts for vulnerable resolvers (§5.2.1).
    pub fn reverse_ptr(ip: std::net::IpAddr) -> Name {
        match ip {
            std::net::IpAddr::V4(a) => {
                let o = a.octets();
                format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0])
                    .parse()
                    .expect("constructed PTR name is valid")
            }
            std::net::IpAddr::V6(a) => {
                let mut labels: Vec<String> = Vec::with_capacity(34);
                for byte in a.octets().iter().rev() {
                    labels.push(format!("{:x}", byte & 0x0F));
                    labels.push(format!("{:x}", byte >> 4));
                }
                labels.push("ip6".into());
                labels.push("arpa".into());
                Name::from_labels(labels.iter().map(|l| l.as_bytes()))
                    .expect("constructed PTR name is valid")
            }
        }
    }

    /// Encode with compression against (and updating) the writer's
    /// dictionary.
    pub fn encode(&self, w: &mut WireWriter) {
        // Walk suffixes from the full name down; emit labels until a suffix
        // is found among the already-written names, then emit a pointer.
        // Matching is done against the wire bytes in place, so this path
        // allocates nothing.
        let n = self.labels.len();
        for i in 0..n {
            if let Some(off) = w.find_name(&self.labels[i..]) {
                w.u16(0xC000 | off as u16);
                return;
            }
            w.note_name_start(w.len());
            let label = &self.labels[i];
            w.u8(label.len() as u8);
            w.bytes(label);
        }
        w.u8(0); // root
    }

    /// Encode without compression (for contexts where pointers are not
    /// allowed, e.g. inside SOA RDATA in some conservative encoders).
    pub fn encode_uncompressed(&self, w: &mut WireWriter) {
        for label in &self.labels {
            w.u8(label.len() as u8);
            w.bytes(label);
        }
        w.u8(0);
    }

    /// Decode a (possibly compressed) name starting at the reader's
    /// position. The reader ends up just past the name's in-place bytes
    /// regardless of pointer following.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Name, WireError> {
        let mut labels = Vec::new();
        let mut wire_len = 1usize; // terminating root byte
        let mut hops = 0usize;
        // Position to restore after following pointers: set on first pointer.
        let mut resume: Option<usize> = None;
        let mut pos = r.pos();

        loop {
            r.seek(pos)?;
            let len = r.u8()?;
            match len {
                0 => break,
                l if l & 0xC0 == 0xC0 => {
                    let lo = r.u8()? as usize;
                    let target = ((l as usize & 0x3F) << 8) | lo;
                    if resume.is_none() {
                        resume = Some(r.pos());
                    }
                    // Pointers must point strictly backwards to prevent
                    // loops; also bound total hops defensively.
                    if target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    pos = target;
                }
                l if l & 0xC0 != 0 => return Err(WireError::BadLabel),
                l => {
                    let bytes = r.bytes(l as usize)?;
                    wire_len += 1 + l as usize;
                    if wire_len > MAX_NAME_WIRE_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(bytes.to_vec());
                    pos = r.pos();
                }
            }
        }
        if let Some(p) = resume {
            r.seek(p)?;
        }
        Ok(Name { labels })
    }
}

fn eq_label(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| eq_label(a, b))
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            state.write_usize(l.len());
            for b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Lexicographic over lowercased labels (not the DNSSEC canonical order;
    /// sufficient for deterministic map iteration).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.canonical_bytes();
        let b = other.canonical_bytes();
        a.cmp(&b)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            for &b in l {
                // Escape dots and non-printables inside labels.
                if b == b'.' || b == b'\\' {
                    write!(f, "\\{}", b as char)?;
                } else if (0x20..0x7F).contains(&b) {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = NameError;

    /// Parse a dotted name; a single `"."` is the root; a trailing dot is
    /// allowed (and ignored). Escapes are not supported in parsing — the
    /// experiment's generated names never need them.
    fn from_str(s: &str) -> Result<Name, NameError> {
        if s == "." || s.is_empty() {
            return Ok(Name::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        Name::from_labels(s.split('.').map(str::as_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("www.Example.ORG").to_string(), "www.Example.ORG");
        assert_eq!(n("a.b.").label_count(), 2);
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(n(".").label_count(), 0);
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        assert_eq!(n("WWW.example.Org"), n("www.EXAMPLE.org"));
        let mut set = HashSet::new();
        set.insert(n("Example.ORG"));
        assert!(set.contains(&n("example.org")));
    }

    #[test]
    fn navigation() {
        let x = n("a.b.c.example.org");
        assert_eq!(x.parent(), n("b.c.example.org"));
        assert_eq!(x.suffix(2), n("example.org"));
        assert_eq!(x.suffix(0), Name::root());
        assert_eq!(x.suffix(99), x);
        assert_eq!(n("example.org").child("www").unwrap(), n("www.example.org"));
        assert_eq!(Name::root().parent(), Name::root());
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("a.b.example.org").is_subdomain_of(&n("example.org")));
        assert!(n("example.org").is_subdomain_of(&n("example.org")));
        assert!(n("example.org").is_subdomain_of(&Name::root()));
        assert!(!n("example.org").is_subdomain_of(&n("a.example.org")));
        assert!(!n("badexample.org").is_subdomain_of(&n("example.org")));
        assert!(n("A.EXAMPLE.org").is_subdomain_of(&n("a.example.ORG")));
    }

    #[test]
    fn label_validation() {
        assert!(Name::from_labels(["ok"]).is_ok());
        assert!(Name::from_labels([""]).is_err());
        assert!(Name::from_labels([&[b'x'; 64][..]]).is_err());
        assert!(Name::from_labels([&[b'x'; 63][..]]).is_ok());
        // 255-byte total cap: four 63-byte labels = 4*64+1 = 257 > 255.
        let l = [b'a'; 63];
        assert!(Name::from_labels([&l[..], &l[..], &l[..], &l[..]]).is_err());
    }

    #[test]
    fn wire_round_trip_plain() {
        let name = n("ts123.src.dst.asn.kw.dns-lab.org");
        let mut w = WireWriter::new();
        name.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        let back = Name::decode(&mut r).unwrap();
        assert_eq!(back, name);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn compression_round_trip() {
        let a = n("host.example.org");
        let b = n("other.example.org");
        let mut w = WireWriter::new();
        a.encode(&mut w);
        let mid = w.len();
        b.encode(&mut w);
        let buf = w.into_bytes();
        // Second encoding must be shorter thanks to the pointer.
        assert!(buf.len() - mid < b.wire_len());
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
        assert_eq!(Name::decode(&mut r).unwrap(), b);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn exact_duplicate_compresses_to_pointer_only() {
        let a = n("dup.example.org");
        let mut w = WireWriter::new();
        a.encode(&mut w);
        let mid = w.len();
        a.encode(&mut w);
        let buf = w.into_bytes();
        assert_eq!(buf.len() - mid, 2, "second copy should be a bare pointer");
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
        assert_eq!(Name::decode(&mut r).unwrap(), a);
    }

    #[test]
    fn compression_at_pointer_range_boundary() {
        // A name whose first occurrence starts exactly at offset 0x3FFF —
        // the largest representable 14-bit pointer target — must be
        // remembered and compressed to (0xC000 | 0x3FFF).
        let a = n("edge.example.org");
        let mut w = WireWriter::new();
        w.bytes(&vec![0u8; 0x3FFF]);
        assert_eq!(w.len(), 0x3FFF);
        a.encode(&mut w);
        let mid = w.len();
        a.encode(&mut w);
        let buf = w.into_bytes();
        assert_eq!(buf.len() - mid, 2, "second copy should be a bare pointer");
        assert_eq!(&buf[mid..], &[0xFF, 0xFF], "pointer to offset 0x3FFF");
        let mut r = WireReader::new(&buf);
        r.seek(mid).unwrap();
        assert_eq!(Name::decode(&mut r).unwrap(), a);

        // One byte further the offset no longer fits in 14 bits: the name
        // must be written in full again, never as a corrupt pointer.
        let mut w = WireWriter::new();
        w.bytes(&vec![0u8; 0x4000]);
        a.encode(&mut w);
        let mid = w.len();
        a.encode(&mut w);
        let buf = w.into_bytes();
        assert_eq!(buf.len() - mid, a.wire_len());
        let mut r = WireReader::new(&buf);
        r.seek(mid).unwrap();
        assert_eq!(Name::decode(&mut r).unwrap(), a);
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 pointing to offset 0 (self-loop).
        let buf = [0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_pointer_chain_loop() {
        // name at 0: pointer to 2; at 2: label "x" then pointer back to 0.
        let buf = [0xC0, 0x02, 0x01, b'x', 0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        // Forward pointer (0 -> 2) already rejected.
        assert_eq!(Name::decode(&mut r), Err(WireError::BadPointer));
        // Start decoding at 2: pointer back to 0 -> pointer to 2 again = loop;
        // rejected because 2 >= 2 after the first backward hop.
        let mut r2 = WireReader::new(&buf);
        r2.seek(2).unwrap();
        assert_eq!(Name::decode(&mut r2), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_truncation_and_bad_label_type() {
        let buf = [5, b'a', b'b']; // label claims 5 bytes, only 2 present
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::Truncated));

        let buf = [0x80, 0x01]; // reserved label type 10xxxxxx
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::BadLabel));
    }

    #[test]
    fn decode_rejects_overlong_assembled_name() {
        // Build 5 chained 63-byte labels (would be 321 wire bytes).
        let mut buf = Vec::new();
        for _ in 0..5 {
            buf.push(63);
            buf.extend_from_slice(&[b'a'; 63]);
        }
        buf.push(0);
        let mut r = WireReader::new(&buf);
        assert_eq!(Name::decode(&mut r), Err(WireError::NameTooLong));
    }

    #[test]
    fn display_escapes_weird_bytes() {
        let name = Name::from_labels([&b"a.b"[..], &b"c\\d"[..], &[0x07][..]]).unwrap();
        assert_eq!(name.to_string(), "a\\.b.c\\\\d.\\007");
    }

    #[test]
    fn reverse_ptr_names() {
        assert_eq!(
            Name::reverse_ptr("192.0.2.7".parse().unwrap()).to_string(),
            "7.2.0.192.in-addr.arpa"
        );
        let v6 = Name::reverse_ptr("2001:db8::1".parse().unwrap());
        let text = v6.to_string();
        assert!(text.starts_with("1.0.0.0."), "{text}");
        assert!(text.ends_with("8.b.d.0.1.0.0.2.ip6.arpa"), "{text}");
        assert_eq!(v6.label_count(), 34);
        assert!(v6.wire_len() <= 255);
    }

    #[test]
    fn canonical_into_matches_canonical_bytes() {
        for s in ["Example.ORG", "a.b.c.d.example.com", "x", "."] {
            let name: Name = s.parse().unwrap();
            let mut buf = [0u8; MAX_NAME_WIRE_LEN];
            let len = name.canonical_into(&mut buf);
            assert_eq!(&buf[..len], name.canonical_bytes().as_slice());
        }
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut v = [n("b.org"), n("a.org"), n("A.com")];
        v.sort();
        assert_eq!(v[0], n("a.com"));
    }
}
