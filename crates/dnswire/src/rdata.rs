//! Resource records and RDATA.

use crate::name::Name;
use crate::types::{RClass, RType};
use crate::wire::{WireError, WireReader, WireWriter};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// SOA RDATA. The experiment publishes contact/opt-out details through
/// `mname` (project web server) and `rname` (contact email), §3.7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// Typed RDATA for the record types the experiment uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(Name),
    Cname(Name),
    Ptr(Name),
    Txt(Vec<u8>),
    Soa(Soa),
    /// EDNS pseudo-record payload (opaque; size negotiated via class).
    Opt(Vec<u8>),
    /// Unknown type carried opaquely.
    Unknown(u16, Vec<u8>),
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::Aaaa,
            RData::Ns(_) => RType::Ns,
            RData::Cname(_) => RType::Cname,
            RData::Ptr(_) => RType::Ptr,
            RData::Txt(_) => RType::Txt,
            RData::Soa(_) => RType::Soa,
            RData::Opt(_) => RType::Opt,
            RData::Unknown(t, _) => RType::from_u16(*t),
        }
    }

    /// Encode the RDATA body (caller writes the RDLENGTH around it).
    /// Names inside RDATA are encoded without compression — safe for all
    /// decoders and required for unknown-type transparency.
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            RData::A(a) => w.bytes(&a.octets()),
            RData::Aaaa(a) => w.bytes(&a.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_uncompressed(w),
            RData::Txt(t) => {
                // Single character-string, chunked at 255.
                for chunk in t.chunks(255) {
                    w.u8(chunk.len() as u8);
                    w.bytes(chunk);
                }
                if t.is_empty() {
                    w.u8(0);
                }
            }
            RData::Soa(soa) => {
                soa.mname.encode_uncompressed(w);
                soa.rname.encode_uncompressed(w);
                w.u32(soa.serial);
                w.u32(soa.refresh);
                w.u32(soa.retry);
                w.u32(soa.expire);
                w.u32(soa.minimum);
            }
            RData::Opt(b) | RData::Unknown(_, b) => w.bytes(b),
        }
    }

    /// Decode RDATA of the given type from exactly `rdlen` bytes.
    pub fn decode(rtype: RType, r: &mut WireReader<'_>, rdlen: usize) -> Result<RData, WireError> {
        let end = r.pos() + rdlen;
        let data = match rtype {
            RType::A => {
                let b = r.bytes(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RType::Aaaa => {
                let b = r.bytes(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RType::Ns => RData::Ns(Name::decode(r)?),
            RType::Cname => RData::Cname(Name::decode(r)?),
            RType::Ptr => RData::Ptr(Name::decode(r)?),
            RType::Txt => {
                let mut out = Vec::new();
                while r.pos() < end {
                    let l = r.u8()? as usize;
                    out.extend_from_slice(r.bytes(l)?);
                }
                RData::Txt(out)
            }
            RType::Soa => RData::Soa(Soa {
                mname: Name::decode(r)?,
                rname: Name::decode(r)?,
                serial: r.u32()?,
                refresh: r.u32()?,
                retry: r.u32()?,
                expire: r.u32()?,
                minimum: r.u32()?,
            }),
            RType::Opt => RData::Opt(r.bytes(rdlen)?.to_vec()),
            other => RData::Unknown(other.to_u16(), r.bytes(rdlen)?.to_vec()),
        };
        if r.pos() != end {
            return Err(WireError::BadRdataLength);
        }
        Ok(data)
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub name: Name,
    pub class: RClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl Record {
    /// A record in class IN.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            class: RClass::In,
            ttl,
            rdata,
        }
    }

    /// Encode the full record (owner, type, class, TTL, RDLENGTH, RDATA),
    /// compressing the owner name.
    pub fn encode(&self, w: &mut WireWriter) {
        self.name.encode(w);
        w.u16(self.rdata.rtype().to_u16());
        w.u16(self.class.to_u16());
        w.u32(self.ttl);
        let len_at = w.len();
        w.u16(0);
        let start = w.len();
        self.rdata.encode(w);
        let rdlen = w.len() - start;
        let patched = w.patch_u16(len_at, rdlen as u16);
        debug_assert!(patched, "RDLENGTH back-patch offset is always in range");
    }

    /// Decode a full record.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Record, WireError> {
        let name = Name::decode(r)?;
        let rtype = RType::from_u16(r.u16()?);
        let class = RClass::from_u16(r.u16()?);
        let ttl = r.u32()?;
        let rdlen = r.u16()? as usize;
        let rdata = RData::decode(rtype, r, rdlen)?;
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} ", self.name, self.ttl, self.rdata.rtype())?;
        match &self.rdata {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Txt(t) => write!(f, "{:?}", String::from_utf8_lossy(t)),
            RData::Soa(s) => write!(f, "{} {} {}", s.mname, s.rname, s.serial),
            RData::Opt(_) => write!(f, "<opt>"),
            RData::Unknown(t, b) => write!(f, "\\# {t} len {}", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn round_trip(rec: Record) -> Record {
        let mut w = WireWriter::new();
        rec.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        let back = Record::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        back
    }

    #[test]
    fn a_and_aaaa_round_trip() {
        let rec = Record::new(
            n("h.example.org"),
            300,
            RData::A("192.0.2.7".parse().unwrap()),
        );
        assert_eq!(round_trip(rec.clone()), rec);
        let rec6 = Record::new(
            n("h.example.org"),
            300,
            RData::Aaaa("2001:db8::7".parse().unwrap()),
        );
        assert_eq!(round_trip(rec6.clone()), rec6);
    }

    #[test]
    fn soa_round_trip() {
        let rec = Record::new(
            n("dns-lab.org"),
            3600,
            RData::Soa(Soa {
                mname: n("project.dns-lab.org"),
                rname: n("contact.dns-lab.org"),
                serial: 2019110601,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 60,
            }),
        );
        assert_eq!(round_trip(rec.clone()), rec);
    }

    #[test]
    fn txt_round_trip_including_long_and_empty() {
        let rec = Record::new(n("t.example.org"), 60, RData::Txt(vec![b'x'; 600]));
        assert_eq!(round_trip(rec.clone()), rec);
        let empty = Record::new(n("t.example.org"), 60, RData::Txt(vec![]));
        assert_eq!(round_trip(empty.clone()), empty);
    }

    #[test]
    fn ns_cname_ptr_round_trip() {
        for rd in [
            RData::Ns(n("ns1.example.org")),
            RData::Cname(n("alias.example.org")),
            RData::Ptr(n("7.2.0.192.in-addr.arpa")),
        ] {
            let rec = Record::new(n("x.example.org"), 120, rd);
            assert_eq!(round_trip(rec.clone()), rec);
        }
    }

    #[test]
    fn unknown_type_round_trip() {
        let rec = Record::new(n("x.example.org"), 0, RData::Unknown(999, vec![1, 2, 3]));
        assert_eq!(round_trip(rec.clone()), rec);
    }

    #[test]
    fn rdata_length_mismatch_is_rejected() {
        // A record claiming 5 RDATA bytes for an A (which consumes 4).
        let mut w = WireWriter::new();
        n("x.org").encode(&mut w);
        w.u16(RType::A.to_u16());
        w.u16(1);
        w.u32(60);
        w.u16(5);
        w.bytes(&[1, 2, 3, 4, 9]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(Record::decode(&mut r), Err(WireError::BadRdataLength));
    }

    #[test]
    fn display_formats() {
        let rec = Record::new(n("h.org"), 60, RData::A("192.0.2.1".parse().unwrap()));
        assert_eq!(rec.to_string(), "h.org 60 A 192.0.2.1");
    }
}
