//! Enumerated protocol constants: record types, classes, rcodes, opcodes.

use std::fmt;

/// Resource-record types used by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Txt,
    Aaaa,
    Opt,
    /// Anything else, preserved numerically.
    Other(u16),
}

impl RType {
    /// Numeric wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RType::A => 1,
            RType::Ns => 2,
            RType::Cname => 5,
            RType::Soa => 6,
            RType::Ptr => 12,
            RType::Txt => 16,
            RType::Aaaa => 28,
            RType::Opt => 41,
            RType::Other(v) => v,
        }
    }

    /// From the numeric wire value.
    pub fn from_u16(v: u16) -> RType {
        match v {
            1 => RType::A,
            2 => RType::Ns,
            5 => RType::Cname,
            6 => RType::Soa,
            12 => RType::Ptr,
            16 => RType::Txt,
            28 => RType::Aaaa,
            41 => RType::Opt,
            other => RType::Other(other),
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::A => write!(f, "A"),
            RType::Ns => write!(f, "NS"),
            RType::Cname => write!(f, "CNAME"),
            RType::Soa => write!(f, "SOA"),
            RType::Ptr => write!(f, "PTR"),
            RType::Txt => write!(f, "TXT"),
            RType::Aaaa => write!(f, "AAAA"),
            RType::Opt => write!(f, "OPT"),
            RType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Record classes (IN covers everything the experiment does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RClass {
    In,
    Ch,
    Other(u16),
}

impl RClass {
    pub fn to_u16(self) -> u16 {
        match self {
            RClass::In => 1,
            RClass::Ch => 3,
            RClass::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> RClass {
        match v {
            1 => RClass::In,
            3 => RClass::Ch,
            other => RClass::Other(other),
        }
    }
}

/// Response codes. `NXDomain` is what the experiment's authoritative servers
/// return for every query (§3.3); `Refused` is what closed resolvers return
/// to unauthorized clients (§3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RCode {
    NoError,
    FormErr,
    ServFail,
    NXDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl RCode {
    pub fn to_u8(self) -> u8 {
        match self {
            RCode::NoError => 0,
            RCode::FormErr => 1,
            RCode::ServFail => 2,
            RCode::NXDomain => 3,
            RCode::NotImp => 4,
            RCode::Refused => 5,
            RCode::Other(v) => v,
        }
    }

    pub fn from_u8(v: u8) -> RCode {
        match v & 0x0F {
            0 => RCode::NoError,
            1 => RCode::FormErr,
            2 => RCode::ServFail,
            3 => RCode::NXDomain,
            4 => RCode::NotImp,
            5 => RCode::Refused,
            other => RCode::Other(other),
        }
    }
}

impl fmt::Display for RCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RCode::NoError => write!(f, "NOERROR"),
            RCode::FormErr => write!(f, "FORMERR"),
            RCode::ServFail => write!(f, "SERVFAIL"),
            RCode::NXDomain => write!(f, "NXDOMAIN"),
            RCode::NotImp => write!(f, "NOTIMP"),
            RCode::Refused => write!(f, "REFUSED"),
            RCode::Other(v) => write!(f, "RCODE{v}"),
        }
    }
}

/// Opcodes (only QUERY is exercised).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    Query,
    Other(u8),
}

impl Opcode {
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(v) => v,
        }
    }

    pub fn from_u8(v: u8) -> Opcode {
        match v & 0x0F {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_round_trip() {
        for v in 0..300u16 {
            assert_eq!(RType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RType::from_u16(28), RType::Aaaa);
        assert_eq!(RType::A.to_string(), "A");
        assert_eq!(RType::Other(99).to_string(), "TYPE99");
    }

    #[test]
    fn rclass_round_trip() {
        for v in 0..10u16 {
            assert_eq!(RClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn rcode_round_trip_and_masking() {
        for v in 0..16u8 {
            assert_eq!(RCode::from_u8(v).to_u8(), v);
        }
        // High bits are masked off (rcode is a 4-bit field).
        assert_eq!(RCode::from_u8(0xF3), RCode::NXDomain);
        assert_eq!(RCode::Refused.to_string(), "REFUSED");
    }

    #[test]
    fn opcode_round_trip() {
        assert_eq!(Opcode::from_u8(0), Opcode::Query);
        assert_eq!(Opcode::from_u8(2).to_u8(), 2);
    }
}
