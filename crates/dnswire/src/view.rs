//! Borrowed lazy-decode fast path.
//!
//! The transparent-interceptor and border-check paths only need the
//! header fields (and occasionally the QNAME) of a packet, and — when
//! forwarding — only rewrite the transaction ID and RD bit. Fully
//! decoding a [`Message`](crate::Message) there costs one heap
//! allocation per label plus one per section; [`MessageView`] reads the
//! same fields straight out of the wire bytes and patches forwarded
//! copies in place, which is byte-identical to decode → modify →
//! re-encode for any message our own encoder produced.

use crate::name::Name;
use crate::types::{Opcode, RCode, RType};
use crate::wire::{WireError, WireReader};

/// A borrowed view over an encoded DNS message. Construction only checks
/// that the 12-byte header is present; everything else is read on demand.
#[derive(Clone, Copy)]
pub struct MessageView<'a> {
    buf: &'a [u8],
}

impl<'a> MessageView<'a> {
    /// Wrap `buf`, requiring only a complete header.
    pub fn parse(buf: &'a [u8]) -> Result<MessageView<'a>, WireError> {
        if buf.len() < 12 {
            return Err(WireError::Truncated);
        }
        Ok(MessageView { buf })
    }

    fn u16_at(&self, at: usize) -> u16 {
        u16::from_be_bytes([self.buf[at], self.buf[at + 1]])
    }

    /// Transaction ID.
    pub fn id(&self) -> u16 {
        self.u16_at(0)
    }

    fn flags(&self) -> u16 {
        self.u16_at(2)
    }

    /// QR bit — true for responses.
    pub fn qr(&self) -> bool {
        self.flags() & (1 << 15) != 0
    }

    pub fn opcode(&self) -> Opcode {
        Opcode::from_u8(((self.flags() >> 11) & 0x0F) as u8)
    }

    /// RD (recursion desired) bit.
    pub fn rd(&self) -> bool {
        self.flags() & (1 << 8) != 0
    }

    /// TC (truncated) bit.
    pub fn tc(&self) -> bool {
        self.flags() & (1 << 9) != 0
    }

    pub fn rcode(&self) -> RCode {
        RCode::from_u8((self.flags() & 0x0F) as u8)
    }

    /// QDCOUNT.
    pub fn question_count(&self) -> u16 {
        self.u16_at(4)
    }

    /// The first question's name and type, decoded on demand (the one
    /// allocation this path permits, for callers that need the QNAME).
    pub fn question(&self) -> Result<Option<(Name, RType)>, WireError> {
        if self.question_count() == 0 {
            return Ok(None);
        }
        let mut r = WireReader::new(self.buf);
        r.seek(12)?;
        let name = Name::decode(&mut r)?;
        let rtype = RType::from_u16(r.u16()?);
        Ok(Some((name, rtype)))
    }

    /// The underlying wire bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// A copy of the message with the transaction ID replaced — the
    /// interceptor's upstream-response rewrite. One allocation, no parse.
    pub fn to_bytes_with_id(&self, id: u16) -> Vec<u8> {
        let mut out = self.buf.to_vec();
        out[0..2].copy_from_slice(&id.to_be_bytes());
        out
    }

    /// A copy with the transaction ID replaced and RD forced on — the
    /// interceptor's client-query forward (it always requests recursion
    /// from its upstream).
    pub fn to_bytes_with_id_rd(&self, id: u16) -> Vec<u8> {
        let mut out = self.to_bytes_with_id(id);
        out[2] |= 0x01; // RD is bit 8 of FLAGS == bit 0 of byte 2
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::types::RType;

    fn sample() -> Message {
        let mut m = Message::query(0x1234, "ts.example.org".parse().unwrap(), RType::A);
        m.header.rd = false;
        m
    }

    #[test]
    fn header_fields_match_full_decode() {
        let msg = sample();
        let bytes = msg.encode();
        let v = MessageView::parse(&bytes).unwrap();
        assert_eq!(v.id(), 0x1234);
        assert!(!v.qr());
        assert!(!v.rd());
        assert!(!v.tc());
        assert_eq!(v.rcode(), msg.header.rcode);
        assert_eq!(v.opcode(), msg.header.opcode);
        assert_eq!(v.question_count(), 1);
        let (qname, qtype) = v.question().unwrap().unwrap();
        assert_eq!(qname, msg.questions[0].name);
        assert_eq!(qtype, RType::A);
    }

    #[test]
    fn rejects_short_buffers() {
        assert!(matches!(
            MessageView::parse(&[0; 11]),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn id_and_rd_patch_equal_reencode() {
        let msg = sample();
        let bytes = msg.encode();
        let v = MessageView::parse(&bytes).unwrap();

        let mut expect = msg.clone();
        expect.header.id = 0xBEEF;
        assert_eq!(v.to_bytes_with_id(0xBEEF), expect.encode());

        expect.header.rd = true;
        assert_eq!(v.to_bytes_with_id_rd(0xBEEF), expect.encode());

        // Patching must not disturb the original view.
        assert_eq!(v.id(), 0x1234);
    }

    #[test]
    fn no_question_is_none() {
        let mut m = sample();
        m.questions.clear();
        let bytes = m.encode();
        let v = MessageView::parse(&bytes).unwrap();
        assert_eq!(v.question().unwrap(), None);
    }
}
