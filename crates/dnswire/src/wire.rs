//! Low-level wire primitives: a bounds-checked reader and a writer with
//! name-compression bookkeeping.

use std::fmt;

/// Errors produced while decoding (or, rarely, encoding) wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Read past the end of the buffer.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label exceeded 63 bytes or used reserved type bits.
    BadLabel,
    /// A name exceeded 255 wire bytes.
    NameTooLong,
    /// RDATA length did not match its declared size.
    BadRdataLength,
    /// A field held a value outside its domain (e.g. unknown class).
    BadValue(&'static str),
    /// Trailing garbage after the message.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabel => write!(f, "bad label"),
            WireError::NameTooLong => write!(f, "name exceeds 255 bytes"),
            WireError::BadRdataLength => write!(f, "rdata length mismatch"),
            WireError::BadValue(what) => write!(f, "bad value for {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an immutable byte buffer with bounds-checked reads.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading at offset 0.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Jump to an absolute offset (used to follow compression pointers).
    /// The target must be inside the buffer.
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.buf.len() {
            return Err(WireError::BadPointer);
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The whole underlying buffer (for pointer resolution).
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let hi = self.u8()? as u16;
        let lo = self.u8()? as u16;
        Ok(hi << 8 | lo)
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let hi = self.u16()? as u32;
        let lo = self.u16()? as u32;
        Ok(hi << 16 | lo)
    }

    /// Read exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Compression-pointer indirections tolerated while matching a dictionary
/// candidate. Names this writer itself produced form strictly-backward
/// chains far shorter than this; the bound is a defensive backstop.
const MAX_DICT_HOPS: usize = 64;

/// An append-only buffer with a compression dictionary of *offsets* into
/// the already-written bytes. Earlier revisions keyed a fresh
/// `HashMap<Vec<u8>, usize>` by canonical name bytes, which cost one
/// `Vec` (and one hash insert) per suffix per encoded name; the offset
/// list matches candidate suffixes against the wire bytes in place, so
/// steady-state encoding allocates nothing beyond the (reusable) buffer.
pub struct WireWriter {
    buf: Vec<u8>,
    /// Offsets (all ≤ 0x3FFF) where an already-written label run starts,
    /// in write order — so a linear scan finds the *first* occurrence,
    /// exactly as the old map's first-insert-wins rule did.
    name_starts: Vec<u32>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter {
            buf: Vec::with_capacity(512),
            name_starts: Vec::new(),
        }
    }

    /// Reset for reuse without releasing capacity: this is the pooled
    /// "scratch" mode — a node keeps one writer and encodes every
    /// outgoing message into it. Compression offsets are absolute from
    /// the message start, so the buffer must be cleared between messages.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.name_starts.clear();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far (borrowed; the writer stays reusable).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite a previously written big-endian u16 (e.g. RDLENGTH
    /// back-patching). An out-of-range `at` is a checked no-op returning
    /// `false` instead of a slice-index panic, so a malformed back-patch
    /// cannot abort a shard thread mid-survey.
    pub fn patch_u16(&mut self, at: usize, v: u16) -> bool {
        match self.buf.get_mut(at..at.wrapping_add(2)) {
            Some(span) => {
                span.copy_from_slice(&v.to_be_bytes());
                true
            }
            None => false,
        }
    }

    /// Remember that a name's label run starts at `offset`. Offsets beyond
    /// the 14-bit pointer range are not recorded; `0x3FFF` itself is the
    /// largest representable pointer target and *is* valid.
    pub fn note_name_start(&mut self, offset: usize) {
        if offset <= 0x3FFF {
            self.name_starts.push(offset as u32);
        }
    }

    /// Look up a compression target for a label sequence: the offset of
    /// the first already-written name whose labels (following any
    /// compression pointers it ends in) equal `labels` case-insensitively
    /// and terminate at the root.
    pub fn find_name(&self, labels: &[Vec<u8>]) -> Option<usize> {
        'starts: for &start in &self.name_starts {
            let mut pos = start as usize;
            let mut hops = 0usize;
            let mut i = 0usize;
            loop {
                let Some(&len) = self.buf.get(pos) else {
                    continue 'starts;
                };
                if len & 0xC0 == 0xC0 {
                    let Some(&lo) = self.buf.get(pos + 1) else {
                        continue 'starts;
                    };
                    hops += 1;
                    if hops > MAX_DICT_HOPS {
                        continue 'starts;
                    }
                    pos = ((len as usize & 0x3F) << 8) | lo as usize;
                } else if len == 0 {
                    if i == labels.len() {
                        return Some(start as usize);
                    }
                    continue 'starts;
                } else if len & 0xC0 != 0 {
                    // Reserved label type: never written by this writer.
                    continue 'starts;
                } else {
                    if i >= labels.len() {
                        continue 'starts;
                    }
                    let end = pos + 1 + len as usize;
                    let Some(wire) = self.buf.get(pos + 1..end) else {
                        continue 'starts;
                    };
                    if !wire.eq_ignore_ascii_case(&labels[i]) {
                        continue 'starts;
                    }
                    i += 1;
                    pos = end;
                }
            }
        }
        None
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for WireWriter {
    fn default() -> Self {
        WireWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_round_trip() {
        let mut w = WireWriter::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEADBEEF);
        w.bytes(b"xyz");
        let buf = w.into_bytes();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }

    #[test]
    fn seek_bounds() {
        let buf = [0u8; 4];
        let mut r = WireReader::new(&buf);
        assert!(r.seek(4).is_ok());
        assert_eq!(r.seek(5), Err(WireError::BadPointer));
    }

    #[test]
    fn patch_u16_overwrites() {
        let mut w = WireWriter::new();
        w.u16(0);
        w.u8(9);
        assert!(w.patch_u16(0, 0xBEEF));
        assert_eq!(w.into_bytes(), vec![0xBE, 0xEF, 9]);
    }

    #[test]
    fn patch_u16_out_of_range_is_checked_noop() {
        let mut w = WireWriter::new();
        w.u16(0x1234);
        // Straddling the end, fully past the end, and overflow-adjacent
        // offsets must all be rejected without panicking or writing.
        assert!(!w.patch_u16(1, 0xBEEF));
        assert!(!w.patch_u16(2, 0xBEEF));
        assert!(!w.patch_u16(usize::MAX, 0xBEEF));
        assert_eq!(w.into_bytes(), vec![0x12, 0x34]);
    }

    fn labels(parts: &[&str]) -> Vec<Vec<u8>> {
        parts.iter().map(|p| p.as_bytes().to_vec()).collect()
    }

    #[test]
    fn compression_dictionary_matches_written_bytes() {
        let mut w = WireWriter::new();
        // Write "host.example" by hand, noting each label-run start.
        w.note_name_start(w.len());
        w.u8(4);
        w.bytes(b"host");
        w.note_name_start(w.len());
        w.u8(7);
        w.bytes(b"example");
        w.u8(0);
        assert_eq!(w.find_name(&labels(&["host", "example"])), Some(0));
        // Case-insensitive, first occurrence wins, suffix match.
        assert_eq!(w.find_name(&labels(&["HOST", "Example"])), Some(0));
        assert_eq!(w.find_name(&labels(&["example"])), Some(5));
        // Shorter or longer sequences must not match.
        assert_eq!(w.find_name(&labels(&["host"])), None);
        assert_eq!(w.find_name(&labels(&["no", "example"])), None);
        assert_eq!(w.find_name(&labels(&["host", "example", "org"])), None);
    }

    #[test]
    fn compression_dictionary_follows_pointers() {
        let mut w = WireWriter::new();
        w.note_name_start(w.len());
        w.u8(3);
        w.bytes(b"org");
        w.u8(0);
        // "www" + pointer back to "org".
        w.note_name_start(w.len());
        w.u8(3);
        w.bytes(b"www");
        w.u16(0xC000);
        assert_eq!(w.find_name(&labels(&["www", "org"])), Some(5));
        assert_eq!(w.find_name(&labels(&["www"])), None);
    }

    #[test]
    fn compression_dictionary_offset_range() {
        let mut w = WireWriter::new();
        // Out-of-range starts are never recorded; 0x3FFF itself is valid.
        w.bytes(&vec![0u8; 0x3FFF]);
        w.note_name_start(0x4000);
        w.note_name_start(w.len()); // exactly 0x3FFF
        w.u8(1);
        w.bytes(b"x");
        w.u8(0);
        assert_eq!(w.find_name(&labels(&["x"])), Some(0x3FFF));
    }

    #[test]
    fn clear_resets_buffer_and_dictionary() {
        let mut w = WireWriter::new();
        w.note_name_start(w.len());
        w.u8(1);
        w.bytes(b"a");
        w.u8(0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.as_bytes(), b"");
        assert_eq!(w.find_name(&labels(&["a"])), None);
    }
}
