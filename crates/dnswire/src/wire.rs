//! Low-level wire primitives: a bounds-checked reader and a writer with
//! name-compression bookkeeping.

use std::collections::HashMap;
use std::fmt;

/// Errors produced while decoding (or, rarely, encoding) wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Read past the end of the buffer.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label exceeded 63 bytes or used reserved type bits.
    BadLabel,
    /// A name exceeded 255 wire bytes.
    NameTooLong,
    /// RDATA length did not match its declared size.
    BadRdataLength,
    /// A field held a value outside its domain (e.g. unknown class).
    BadValue(&'static str),
    /// Trailing garbage after the message.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabel => write!(f, "bad label"),
            WireError::NameTooLong => write!(f, "name exceeds 255 bytes"),
            WireError::BadRdataLength => write!(f, "rdata length mismatch"),
            WireError::BadValue(what) => write!(f, "bad value for {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an immutable byte buffer with bounds-checked reads.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading at offset 0.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Jump to an absolute offset (used to follow compression pointers).
    /// The target must be inside the buffer.
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.buf.len() {
            return Err(WireError::BadPointer);
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The whole underlying buffer (for pointer resolution).
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let hi = self.u8()? as u16;
        let lo = self.u8()? as u16;
        Ok(hi << 8 | lo)
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let hi = self.u16()? as u32;
        let lo = self.u16()? as u32;
        Ok(hi << 16 | lo)
    }

    /// Read exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// An append-only buffer with a compression dictionary mapping already-
/// written names (as canonical byte strings) to their offsets.
pub struct WireWriter {
    buf: Vec<u8>,
    /// canonical name bytes → offset of its first occurrence
    name_offsets: HashMap<Vec<u8>, usize>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter {
            buf: Vec::with_capacity(512),
            name_offsets: HashMap::new(),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite a previously written big-endian u16 (e.g. RDLENGTH
    /// back-patching).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Look up a compression target for a (canonical, lowercased) name
    /// suffix.
    pub fn compression_offset(&self, canonical: &[u8]) -> Option<usize> {
        self.name_offsets.get(canonical).copied()
    }

    /// Remember that a canonical name suffix starts at `offset`. Offsets
    /// beyond the 14-bit pointer range are not recorded.
    pub fn remember_name(&mut self, canonical: Vec<u8>, offset: usize) {
        if offset < 0x3FFF {
            self.name_offsets.entry(canonical).or_insert(offset);
        }
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for WireWriter {
    fn default() -> Self {
        WireWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_round_trip() {
        let mut w = WireWriter::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEADBEEF);
        w.bytes(b"xyz");
        let buf = w.into_bytes();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }

    #[test]
    fn seek_bounds() {
        let buf = [0u8; 4];
        let mut r = WireReader::new(&buf);
        assert!(r.seek(4).is_ok());
        assert_eq!(r.seek(5), Err(WireError::BadPointer));
    }

    #[test]
    fn patch_u16_overwrites() {
        let mut w = WireWriter::new();
        w.u16(0);
        w.u8(9);
        w.patch_u16(0, 0xBEEF);
        assert_eq!(w.into_bytes(), vec![0xBE, 0xEF, 9]);
    }

    #[test]
    fn compression_dictionary() {
        let mut w = WireWriter::new();
        w.remember_name(b"example.".to_vec(), 12);
        assert_eq!(w.compression_offset(b"example."), Some(12));
        assert_eq!(w.compression_offset(b"other."), None);
        // First offset wins.
        w.remember_name(b"example.".to_vec(), 99);
        assert_eq!(w.compression_offset(b"example."), Some(12));
        // Out-of-range offsets ignored.
        w.remember_name(b"far.".to_vec(), 0x4000);
        assert_eq!(w.compression_offset(b"far."), None);
    }
}
