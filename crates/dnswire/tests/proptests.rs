//! Property-based tests for the DNS wire codec.
//!
//! Two classes of property:
//! 1. round-trip — any structurally valid message encodes and decodes back
//!    to itself,
//! 2. robustness — the decoder never panics on arbitrary bytes (it may
//!    error, it may accept; it must not crash or loop).

use bcd_dnswire::{
    Header, Message, Name, NameArena, Opcode, Question, RCode, RData, RType, Record, Soa,
};
use proptest::prelude::*;

/// Round a name through an arena: intern it, then take the arena's stored
/// spelling back out. With the lowercase-only strategies below this is the
/// identity on bytes; interning must therefore be invisible on the wire.
fn via_arena(arena: &mut NameArena, name: &Name) -> Name {
    let id = arena.intern(name);
    arena.get(id).clone()
}

/// Rebuild a message with every owner name and every name embedded in
/// rdata resolved through the arena.
fn message_via_arena(arena: &mut NameArena, msg: &Message) -> Message {
    let rec = |arena: &mut NameArena, r: &Record| {
        let rdata = match &r.rdata {
            RData::Ns(n) => RData::Ns(via_arena(arena, n)),
            RData::Cname(n) => RData::Cname(via_arena(arena, n)),
            RData::Ptr(n) => RData::Ptr(via_arena(arena, n)),
            RData::Soa(s) => RData::Soa(Soa {
                mname: via_arena(arena, &s.mname),
                rname: via_arena(arena, &s.rname),
                ..s.clone()
            }),
            other => other.clone(),
        };
        Record::new(via_arena(arena, &r.name), r.ttl, rdata)
    };
    Message {
        header: msg.header.clone(),
        questions: msg
            .questions
            .iter()
            .map(|q| Question::new(via_arena(arena, &q.name), q.rtype))
            .collect(),
        answers: msg.answers.iter().map(|r| rec(arena, r)).collect(),
        authorities: msg.authorities.iter().map(|r| rec(arena, r)).collect(),
        additionals: msg.additionals.iter().map(|r| rec(arena, r)).collect(),
    }
}

fn label_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Letters/digits/hyphen, 1..=20 bytes: what the experiment generates.
    proptest::collection::vec(
        prop_oneof![
            (b'a'..=b'z').prop_map(|b| b),
            (b'0'..=b'9').prop_map(|b| b),
            Just(b'-'),
        ],
        1..=20,
    )
}

fn name_strategy() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label_strategy(), 0..=6)
        .prop_map(|labels| Name::from_labels(labels).unwrap())
}

fn rdata_strategy() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        name_strategy().prop_map(RData::Ns),
        name_strategy().prop_map(RData::Cname),
        name_strategy().prop_map(RData::Ptr),
        proptest::collection::vec(any::<u8>(), 0..300).prop_map(RData::Txt),
        (
            name_strategy(),
            name_strategy(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (200u16..60000, proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(t, b)| RData::Unknown(t, b)),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (name_strategy(), any::<u32>(), rdata_strategy())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

fn header_strategy() -> impl Strategy<Value = Header> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(id, qr, aa, tc, rd, ra, rcode)| Header {
            id,
            qr,
            opcode: Opcode::Query,
            aa,
            tc,
            rd,
            ra,
            rcode: RCode::from_u8(rcode),
        })
}

fn message_strategy() -> impl Strategy<Value = Message> {
    (
        header_strategy(),
        proptest::collection::vec(
            (name_strategy(), 0u16..300).prop_map(|(n, t)| Question::new(n, RType::from_u16(t))),
            0..3,
        ),
        proptest::collection::vec(record_strategy(), 0..4),
        proptest::collection::vec(record_strategy(), 0..3),
        proptest::collection::vec(record_strategy(), 0..3),
    )
        .prop_map(
            |(header, questions, answers, authorities, additionals)| Message {
                header,
                questions,
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_encode_decode_round_trip(msg in message_strategy()) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("self-encoded message must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Any result is fine; panics and infinite loops are not.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_messages(
        msg in message_strategy(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = msg.encode();
        if !bytes.is_empty() {
            for (idx, val) in flips {
                let i = idx.index(bytes.len());
                bytes[i] ^= val;
            }
        }
        let _ = Message::decode(&bytes);
    }

    /// Messages larger than 16 KB cross the 14-bit compression-pointer
    /// range: a name whose first occurrence lands at an offset above
    /// 0x3FFF cannot be a pointer target and must be written verbatim,
    /// while repeats of early names keep compressing. Either way the
    /// message must round-trip.
    #[test]
    fn oversized_messages_round_trip_across_pointer_range(
        pool_labels in proptest::collection::vec(
            proptest::collection::vec(label_strategy(), 1..=4),
            2..=5,
        ),
        picks in proptest::collection::vec(
            (
                any::<prop::sample::Index>(),
                proptest::collection::vec(any::<u8>(), 350..=460),
            ),
            50..=80,
        ),
    ) {
        // A small owner-name pool: every name recurs many times, so the
        // same name is encoded both below and above the 0x3FFF boundary.
        let pool: Vec<Name> = pool_labels
            .into_iter()
            .map(|ls| Name::from_labels(ls).unwrap())
            .collect();
        let answers: Vec<Record> = picks
            .into_iter()
            .map(|(idx, txt)| {
                Record::new(pool[idx.index(pool.len())].clone(), 3600, RData::Txt(txt))
            })
            .collect();
        let msg = Message {
            header: Header {
                id: 0x1616,
                qr: true,
                opcode: Opcode::Query,
                aa: true,
                tc: false,
                rd: false,
                ra: false,
                rcode: RCode::NoError,
            },
            questions: vec![Question::new(pool[0].clone(), RType::Txt)],
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        let bytes = msg.encode();
        prop_assert!(
            bytes.len() > 0x4000,
            "message must exceed the pointer range; got {} bytes",
            bytes.len()
        );
        let back = Message::decode(&bytes).expect("oversized self-encoded message must decode");
        prop_assert_eq!(back, msg);
    }

    /// Interning round trip: every id resolves back to a name equal to the
    /// one interned, equal names (case-insensitively) share one id, and
    /// re-interning is stable.
    #[test]
    fn interning_round_trips_and_is_stable(
        names in proptest::collection::vec(name_strategy(), 1..24),
    ) {
        let mut arena = NameArena::new();
        let ids: Vec<_> = names.iter().map(|n| arena.intern(n)).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(arena.get(id), name);
            prop_assert_eq!(arena.lookup(name), Some(id));
            prop_assert_eq!(arena.lookup_canonical(&name.canonical_bytes()), Some(id));
        }
        // Second pass is the identity, and the arena did not grow.
        let len = arena.len();
        let again: Vec<_> = names.iter().map(|n| arena.intern(n)).collect();
        prop_assert_eq!(again, ids);
        prop_assert_eq!(arena.len(), len);
        // Dense id space: every index below len is an issued id.
        prop_assert!(ids.iter().all(|i| i.index() < len));
    }

    /// Interning is invisible on the wire: a message whose names were all
    /// resolved through an arena encodes to the *same bytes* (including
    /// compression-pointer layout) and decodes back to an equal message.
    #[test]
    fn interned_names_preserve_wire_encoding(msg in message_strategy()) {
        let mut arena = NameArena::new();
        let via = message_via_arena(&mut arena, &msg);
        let bytes = msg.encode();
        prop_assert_eq!(via.encode(), bytes.clone());
        let back = Message::decode(&bytes).expect("self-encoded message must decode");
        prop_assert_eq!(back, via);
    }

    #[test]
    fn name_round_trip_via_text(labels in proptest::collection::vec(label_strategy(), 1..5)) {
        let name = Name::from_labels(labels).unwrap();
        let text = name.to_string();
        let back: Name = text.parse().unwrap();
        prop_assert_eq!(back, name);
    }

    #[test]
    fn subdomain_is_reflexive_and_parent_monotone(name in name_strategy()) {
        prop_assert!(name.is_subdomain_of(&name));
        prop_assert!(name.is_subdomain_of(&name.parent()));
        prop_assert!(name.is_subdomain_of(&Name::root()));
        if !name.is_root() {
            prop_assert!(!name.parent().is_subdomain_of(&name));
            prop_assert_eq!(name.parent().label_count(), name.label_count() - 1);
        }
    }

    #[test]
    fn suffixes_nest(name in name_strategy(), k in 0usize..7) {
        let s = name.suffix(k);
        prop_assert!(name.is_subdomain_of(&s));
        prop_assert_eq!(s.label_count(), k.min(name.label_count()));
    }
}
