//! The country registry and per-country calibration profiles.
//!
//! Every number here is lifted from the paper's Tables 1 and 2 (IPv4 + IPv6
//! combined):
//!
//! * `as_share` — the country's fraction of all ASes in the study
//!   (e.g. the US had 16,782 of ~61,800 country-attributed ASes),
//! * `no_dsav_rate` — the fraction of that country's ASes found reachable
//!   (lacking DSAV): US 28%, Brazil 59%, Ukraine 63%, Eswatini 86%, …
//! * `targets_per_as` — mean DITL-derived target addresses per AS
//!   (US ≈ 174, Germany ≈ 404, Algeria ≈ 1,058, Kosovo ≈ 10, …),
//! * `accept_rate` — the probability that a targeted address inside a
//!   no-DSAV AS actually *handles* a spoofed query (captures resolver
//!   churn, REFUSED responses, and middleboxes; back-derived from each
//!   country's IP-reachability column),
//! * `size_bias` — how strongly missing DSAV correlates with AS size in
//!   that country (Algeria reaches 73% of IPs with only 40% of ASes
//!   reachable, so its large ASes must be the unprotected ones).

use rand::Rng;
use std::fmt;

/// A country, identified by ISO-3166-ish code. Copyable and cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Country(pub &'static str);

impl Country {
    /// The registry entry for this country, if it is a named one.
    pub fn profile(self) -> Option<&'static CountryProfile> {
        COUNTRIES.iter().find(|p| p.code == self.0)
    }

    /// Full display name (falls back to the code).
    pub fn name(self) -> &'static str {
        self.profile().map(|p| p.name).unwrap_or(self.0)
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibration profile for one country (see module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryProfile {
    pub code: &'static str,
    pub name: &'static str,
    pub as_share: f64,
    pub no_dsav_rate: f64,
    pub targets_per_as: f64,
    pub accept_rate: f64,
    pub size_bias: f64,
}

impl CountryProfile {
    /// The [`Country`] key for this profile.
    pub fn country(&self) -> Country {
        Country(self.code)
    }
}

/// The registry: the paper's Table 1 countries (largest AS counts), its
/// Table 2 countries (highest IP reachability), and a long-tail aggregate.
///
/// `as_share` values are the paper's AS counts normalized by the 61,826
/// country-attributed ASes; the long tail absorbs the remainder.
pub const COUNTRIES: &[CountryProfile] = &[
    // ----- Table 1: most ASes -----
    CountryProfile {
        code: "US",
        name: "United States",
        as_share: 0.2715,
        no_dsav_rate: 0.28,
        targets_per_as: 174.0,
        accept_rate: 0.114,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "BR",
        name: "Brazil",
        as_share: 0.1046,
        no_dsav_rate: 0.59,
        targets_per_as: 61.0,
        accept_rate: 0.081,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "RU",
        name: "Russia",
        as_share: 0.0799,
        no_dsav_rate: 0.59,
        targets_per_as: 73.0,
        accept_rate: 0.197,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "DE",
        name: "Germany",
        as_share: 0.0400,
        no_dsav_rate: 0.36,
        targets_per_as: 404.0,
        accept_rate: 0.106,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "GB",
        name: "United Kingdom",
        as_share: 0.0363,
        no_dsav_rate: 0.33,
        targets_per_as: 181.0,
        accept_rate: 0.136,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "PL",
        name: "Poland",
        as_share: 0.0330,
        no_dsav_rate: 0.52,
        targets_per_as: 58.0,
        accept_rate: 0.115,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "UA",
        name: "Ukraine",
        as_share: 0.0276,
        no_dsav_rate: 0.63,
        targets_per_as: 40.0,
        accept_rate: 0.244,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "IN",
        name: "India",
        as_share: 0.0258,
        no_dsav_rate: 0.41,
        targets_per_as: 212.0,
        accept_rate: 0.283,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "AU",
        name: "Australia",
        as_share: 0.0253,
        no_dsav_rate: 0.32,
        targets_per_as: 114.0,
        accept_rate: 0.144,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "CA",
        name: "Canada",
        as_share: 0.0246,
        no_dsav_rate: 0.36,
        targets_per_as: 196.0,
        accept_rate: 0.078,
        size_bias: 0.0,
    },
    // ----- Table 2: highest IP reachability -----
    CountryProfile {
        code: "DZ",
        name: "Algeria",
        as_share: 0.00024,
        no_dsav_rate: 0.40,
        targets_per_as: 1058.0,
        accept_rate: 0.90,
        size_bias: 3.0,
    },
    CountryProfile {
        code: "MA",
        name: "Morocco",
        as_share: 0.00036,
        no_dsav_rate: 0.45,
        targets_per_as: 1132.0,
        accept_rate: 0.85,
        size_bias: 3.0,
    },
    CountryProfile {
        code: "SZ",
        name: "Eswatini",
        as_share: 0.00011,
        no_dsav_rate: 0.86,
        targets_per_as: 91.0,
        accept_rate: 0.50,
        size_bias: 1.0,
    },
    CountryProfile {
        code: "BZ",
        name: "Belize",
        as_share: 0.00049,
        no_dsav_rate: 0.40,
        targets_per_as: 44.0,
        accept_rate: 0.80,
        size_bias: 2.0,
    },
    CountryProfile {
        code: "BF",
        name: "Burkina Faso",
        as_share: 0.00023,
        no_dsav_rate: 0.43,
        targets_per_as: 91.0,
        accept_rate: 0.70,
        size_bias: 2.0,
    },
    CountryProfile {
        code: "XK",
        name: "Kosovo",
        as_share: 0.00008,
        no_dsav_rate: 0.60,
        targets_per_as: 10.0,
        accept_rate: 0.60,
        size_bias: 1.0,
    },
    CountryProfile {
        code: "BA",
        name: "Bosnia & Herzegovina",
        as_share: 0.00078,
        no_dsav_rate: 0.54,
        targets_per_as: 104.0,
        accept_rate: 0.55,
        size_bias: 1.0,
    },
    CountryProfile {
        code: "SC",
        name: "Seychelles",
        as_share: 0.00040,
        no_dsav_rate: 0.44,
        targets_per_as: 32.0,
        accept_rate: 0.60,
        size_bias: 1.0,
    },
    CountryProfile {
        code: "WF",
        name: "Wallis & Futuna",
        as_share: 0.00002,
        no_dsav_rate: 1.00,
        targets_per_as: 11.0,
        accept_rate: 0.27,
        size_bias: 0.0,
    },
    CountryProfile {
        code: "CI",
        name: "Ivory Coast",
        as_share: 0.00024,
        no_dsav_rate: 0.53,
        targets_per_as: 441.0,
        accept_rate: 0.45,
        size_bias: 1.0,
    },
    // ----- Long tail: everything else, at the global averages -----
    CountryProfile {
        code: "ZZ",
        name: "(other)",
        as_share: 0.3270,
        no_dsav_rate: 0.55,
        targets_per_as: 150.0,
        accept_rate: 0.105,
        size_bias: 0.0,
    },
];

/// Draw a country weighted by `as_share` (the long-tail entry included).
pub fn sample_country<R: Rng + ?Sized>(rng: &mut R) -> Country {
    let total: f64 = COUNTRIES.iter().map(|p| p.as_share).sum();
    let mut roll = rng.gen_range(0.0..total);
    for p in COUNTRIES {
        if roll < p.as_share {
            return p.country();
        }
        roll -= p.as_share;
    }
    COUNTRIES.last().unwrap().country()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn registry_covers_tables_one_and_two() {
        for code in [
            "US", "BR", "RU", "DE", "GB", "PL", "UA", "IN", "AU", "CA", // Table 1
            "DZ", "MA", "SZ", "BZ", "BF", "XK", "BA", "SC", "WF", "CI", // Table 2
        ] {
            assert!(
                Country(code).profile().is_some(),
                "missing profile for {code}"
            );
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = COUNTRIES.iter().map(|p| p.as_share).sum();
        assert!((total - 1.0).abs() < 0.01, "shares sum to {total}");
    }

    #[test]
    fn rates_are_probabilities() {
        for p in COUNTRIES {
            assert!((0.0..=1.0).contains(&p.no_dsav_rate), "{}", p.code);
            assert!((0.0..=1.0).contains(&p.accept_rate), "{}", p.code);
            assert!(p.targets_per_as > 0.0);
            assert!(p.as_share > 0.0);
        }
    }

    #[test]
    fn us_has_most_ases_and_low_reachability() {
        // The paper's headline contrast: the US is over-represented in ASes
        // yet *below* average in missing DSAV; Ukraine/Brazil/Russia are
        // well above half.
        let us = Country("US").profile().unwrap();
        assert!(COUNTRIES
            .iter()
            .all(|p| p.as_share <= us.as_share || p.code == "ZZ"));
        assert!(us.no_dsav_rate < 0.30);
        for code in ["BR", "RU", "UA"] {
            assert!(
                Country(code).profile().unwrap().no_dsav_rate > 0.5,
                "{code}"
            );
        }
    }

    #[test]
    fn sampling_matches_shares() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let us = (0..n)
            .filter(|_| sample_country(&mut rng) == Country("US"))
            .count();
        let frac = us as f64 / n as f64;
        assert!((frac - 0.2715).abs() < 0.01, "US share sampled at {frac}");
    }

    #[test]
    fn display_and_fallback() {
        assert_eq!(Country("US").to_string(), "United States");
        assert_eq!(Country("QQ").name(), "QQ");
        assert_eq!(Country("WF").to_string(), "Wallis & Futuna");
    }
}
