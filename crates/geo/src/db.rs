//! The prefix → country database and AS → countries aggregation.

use crate::country::Country;
use bcd_netsim::{Asn, Prefix, PrefixMap};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// A GeoLite2-style database: longest-prefix-match from address to country,
/// plus the paper's per-AS country set ("an AS might be counted multiple
/// times in different countries", §4).
#[derive(Default)]
pub struct GeoDb {
    map: PrefixMap<Country>,
    by_asn: BTreeMap<Asn, BTreeSet<Country>>,
}

impl GeoDb {
    /// An empty database.
    pub fn new() -> GeoDb {
        GeoDb::default()
    }

    /// Register a prefix as located in `country`, announced by `asn`.
    pub fn insert(&mut self, prefix: Prefix, asn: Asn, country: Country) {
        self.map.insert(prefix, country);
        self.by_asn.entry(asn).or_default().insert(country);
    }

    /// The country of the most specific registered prefix covering `ip`.
    pub fn country_of(&self, ip: IpAddr) -> Option<Country> {
        self.map.get(ip)
    }

    /// All countries associated with an AS (usually one; multi-homed or
    /// multi-national ASes may have several).
    pub fn countries_of(&self, asn: Asn) -> impl Iterator<Item = Country> + '_ {
        self.by_asn.get(&asn).into_iter().flatten().copied()
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All ASNs with at least one registered prefix.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.by_asn.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_by_longest_prefix() {
        let mut db = GeoDb::new();
        db.insert(p("10.0.0.0/8"), Asn(1), Country("US"));
        db.insert(p("10.5.0.0/16"), Asn(1), Country("CA"));
        assert_eq!(
            db.country_of("10.1.1.1".parse().unwrap()),
            Some(Country("US"))
        );
        assert_eq!(
            db.country_of("10.5.9.9".parse().unwrap()),
            Some(Country("CA"))
        );
        assert_eq!(db.country_of("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn multi_country_as() {
        let mut db = GeoDb::new();
        db.insert(p("192.0.2.0/24"), Asn(7), Country("US"));
        db.insert(p("198.51.100.0/24"), Asn(7), Country("CA"));
        db.insert(p("203.0.113.0/24"), Asn(7), Country("US"));
        let countries: Vec<Country> = db.countries_of(Asn(7)).collect();
        assert_eq!(countries.len(), 2);
        assert!(countries.contains(&Country("US")));
        assert!(countries.contains(&Country("CA")));
        assert_eq!(db.countries_of(Asn(9)).count(), 0);
        assert_eq!(db.len(), 3);
        assert_eq!(db.asns().count(), 1);
    }

    #[test]
    fn v6_prefixes_supported() {
        let mut db = GeoDb::new();
        db.insert(p("2001:db8::/32"), Asn(3), Country("DE"));
        assert_eq!(
            db.country_of("2001:db8::1".parse().unwrap()),
            Some(Country("DE"))
        );
    }
}
