//! # bcd-geo — synthetic geolocation (GeoLite2 stand-in)
//!
//! The paper geolocates every target with MaxMind GeoLite2 and associates an
//! AS "with one or more countries based on the GeoIP data for its
//! constituent IP addresses" (§4). This crate provides:
//!
//! * a [`Country`] registry with the 20 countries named in Tables 1–2 plus a
//!   long tail, each carrying the *calibration profile* the world generator
//!   samples from: relative AS share, probability that an AS lacks DSAV,
//!   and resolver density,
//! * a [`GeoDb`]: prefix → country database with longest-prefix-match
//!   lookup, and the paper's AS → countries aggregation.
//!
//! The substitution argument (DESIGN.md): geography only enters the analysis
//! as a *grouping key* for Tables 1–2; any consistent assignment whose
//! marginals match the paper's reproduces the tables' mechanics and shape.

pub mod country;
pub mod db;

pub use country::{sample_country, Country, CountryProfile, COUNTRIES};
pub use db::GeoDb;
