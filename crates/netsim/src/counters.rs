//! Network-wide accounting: why packets were dropped, how many were
//! delivered. Tests and the analysis pipeline use these to assert filter
//! semantics (e.g. "the DSAV border dropped exactly the internal-source
//! probes").

use std::collections::BTreeMap;
use std::fmt;

/// The reason a packet failed to reach its destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// Egress-filtered by origin AS (BCP 38 / OSAV): source not internal.
    Osav,
    /// Ingress-filtered by destination AS (DSAV): source *was* internal.
    Dsav,
    /// Ingress-filtered at subnet granularity: source claimed the
    /// destination's own /24 (IPv4) or /64 (IPv6).
    SubnetSavi,
    /// Ingress-filtered by partial internal SAV: the source's subnet is one
    /// of the internally-filtered prefixes.
    PartialSav,
    /// Ingress bogon ACL: private / unique-local source.
    PrivateIngress,
    /// Ingress martian ACL: IPv4 source equals destination.
    MartianDs,
    /// Ingress bogon ACL: loopback source.
    LoopbackIngress,
    /// No announced route covers the destination address.
    NoRoute,
    /// Routed to an AS, but no host is bound to the destination address.
    NoHost,
    /// Host kernel refused a destination-as-source packet (Table 6).
    StackDstAsSrc,
    /// Host kernel refused a loopback-source packet (Table 6).
    StackLoopback,
    /// Random link loss (fault injection).
    LinkLoss,
    /// Seeded chaos loss (ambient or burst state, `FaultSchedule`).
    ChaosLoss,
    /// Dropped while an AS border was flapped dark (`FaultSchedule`).
    LinkFlap,
    /// Sender or destination host was inside a crash epoch
    /// (`FaultSchedule`).
    HostDown,
    /// Event budget exhausted while the packet was in flight.
    Truncated,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::Osav => "osav-egress",
            DropReason::Dsav => "dsav-ingress",
            DropReason::SubnetSavi => "subnet-savi-ingress",
            DropReason::PartialSav => "partial-sav-ingress",
            DropReason::PrivateIngress => "private-ingress-acl",
            DropReason::MartianDs => "martian-ds-ingress",
            DropReason::LoopbackIngress => "loopback-ingress-acl",
            DropReason::NoRoute => "no-route",
            DropReason::NoHost => "no-host",
            DropReason::StackDstAsSrc => "stack-dst-as-src",
            DropReason::StackLoopback => "stack-loopback",
            DropReason::LinkLoss => "link-loss",
            DropReason::ChaosLoss => "chaos-loss",
            DropReason::LinkFlap => "link-flap",
            DropReason::HostDown => "host-down",
            DropReason::Truncated => "truncated",
        };
        f.write_str(s)
    }
}

/// Aggregate packet accounting for a simulation run.
#[derive(Debug, Default, Clone)]
pub struct NetCounters {
    /// Packets handed to the network by nodes.
    pub sent: u64,
    /// Packets delivered to a destination node.
    pub delivered: u64,
    /// Duplicated deliveries from link fault injection.
    pub duplicated: u64,
    /// Forged packets injected by the off-path spoofed-response adversary
    /// (`FaultSchedule::spoof_response`).
    pub injected: u64,
    /// Packets redirected to a middlebox interceptor.
    pub intercepted: u64,
    /// Drop counts by reason.
    pub drops: BTreeMap<DropReason, u64>,
}

impl NetCounters {
    /// Record a drop.
    pub fn drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
    }

    /// Total drops across all reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Drops for one reason (0 if none recorded).
    pub fn dropped(&self, reason: DropReason) -> u64 {
        self.drops.get(&reason).copied().unwrap_or(0)
    }
}

impl fmt::Display for NetCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sent={} delivered={} duplicated={} injected={} intercepted={} dropped={}",
            self.sent,
            self.delivered,
            self.duplicated,
            self.injected,
            self.intercepted,
            self.total_drops()
        )?;
        for (reason, n) in &self.drops {
            writeln!(f, "  {reason}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut c = NetCounters::default();
        c.drop(DropReason::Dsav);
        c.drop(DropReason::Dsav);
        c.drop(DropReason::NoHost);
        assert_eq!(c.dropped(DropReason::Dsav), 2);
        assert_eq!(c.dropped(DropReason::Osav), 0);
        assert_eq!(c.total_drops(), 3);
    }

    #[test]
    fn display_includes_reasons() {
        let mut c = NetCounters {
            sent: 10,
            delivered: 9,
            ..Default::default()
        };
        c.drop(DropReason::LinkLoss);
        let s = c.to_string();
        assert!(s.contains("sent=10"));
        assert!(s.contains("link-loss: 1"));
    }
}
