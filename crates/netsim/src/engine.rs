//! The discrete-event network engine.
//!
//! The simulated Internet is split into two layers:
//!
//! * [`Topology`] — the **immutable** world: registered ASes with their
//!   border policies, announced prefixes (longest-prefix-match routing),
//!   link profiles, and the static host table (addresses, AS membership,
//!   stack policy). Built once through a [`TopologyBuilder`], then frozen
//!   and shared across engines via `Arc` — a sharded survey pays for world
//!   construction exactly once, and memory stays flat in the shard count
//!   (the same separation of immutable target/route state from per-worker
//!   probe state that high-rate scanners like ZMap rely on).
//! * [`Runtime`] — the **mutable** run: per-host [`Node`] behaviours and
//!   RNG streams, the event queue, clock, counters, and traces. A runtime
//!   is cheap to instantiate from a shared topology; each shard gets its
//!   own.
//!
//! [`Network`] bundles the two for the common single-engine case and keeps
//! the classic build-then-run API (`add_as` / `announce` / `add_host` /
//! `run`): it owns its topology exclusively, so construction mutates it in
//! place with no copying.
//!
//! The packet pipeline models exactly the two border crossings the paper
//! cares about (§1):
//!
//! ```text
//!  node --send--> [origin AS border: OSAV?] --core link: delay/loss/dup-->
//!       [destination AS border: DSAV? bogon ACLs? middlebox?] -->
//!       [host stack: dst-as-src / loopback acceptance] --> node
//! ```
//!
//! Determinism: the event queue orders by `(time, sequence)`; the sequence
//! number is allocated monotonically at enqueue, so equal-time events fire in
//! enqueue order and every run with the same seed is identical.

use crate::counters::{DropReason, NetCounters};
use crate::faults::{FaultSchedule, LinkFate};
use crate::link::LinkProfile;
use crate::node::{Effect, HostId, Node, NodeCtx};
use crate::packet::{Packet, Transport};
use crate::prefix::{special, Prefix};
use crate::routing::PrefixTable;
use crate::sched::{EngineSched, EventKind, EventQueue, QueuedEvent, SchedKind};
use crate::span::{FlightRecorder, SpanKind};
use crate::time::{SimDuration, SimTime};
use crate::topology::{AsInfo, Asn, BorderPolicy, StackPolicy};
use crate::trace::{Trace, TracePoint};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;
use std::sync::Arc;

/// Global engine configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Seed for all simulation randomness.
    pub seed: u64,
    /// Link profile for inter-AS (wide-area) traversals.
    pub core_link: LinkProfile,
    /// Link profile for intra-AS traversals.
    pub intra_link: LinkProfile,
    /// Capture packets into a [`Trace`] with this capacity.
    pub trace_capacity: Option<usize>,
    /// Hard event budget; the run stops (and flags it) when exhausted.
    pub max_events: u64,
    /// Event-scheduler implementation (see [`crate::sched`]). The two are
    /// observationally identical; the default honours `BCD_SCHED`.
    pub sched: SchedKind,
}

impl Default for NetworkConfig {
    fn default() -> NetworkConfig {
        NetworkConfig {
            seed: 0,
            core_link: LinkProfile::internet(),
            intra_link: LinkProfile::ideal(),
            trace_capacity: None,
            max_events: 2_000_000_000,
            sched: SchedKind::from_env(),
        }
    }
}

/// Static host attributes (behaviour is supplied separately as a [`Node`]).
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Addresses bound to this host (v4 and/or v6).
    pub addrs: Vec<IpAddr>,
    /// The AS this host sits in.
    pub asn: Asn,
    /// Kernel acceptance policy for anomalous-source packets.
    pub stack: StackPolicy,
}

struct HostState {
    node: Box<dyn Node>,
    /// Per-host RNG stream, seeded `stream_seed(cfg.seed, host_id)`.
    ///
    /// Giving every host its own stream (instead of one engine-global
    /// stream) makes a host's random draws a function of *its own* event
    /// sequence only. That is what lets a sharded survey partition hosts
    /// across independent engines and still produce byte-identical
    /// per-host observables: a host that sees the same inbound packets at
    /// the same times draws the same values, no matter what the rest of
    /// the world is doing.
    rng: ChaCha8Rng,
}

/// splitmix64 finalizer — mixes a 64-bit value into an avalanche-quality
/// hash. Used to derive independent seed streams from one master seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for an independent RNG stream (`stream`) from a master
/// seed. Distinct streams of the same master are decorrelated by the
/// splitmix64 avalanche.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0x5EED_CAFE_F00D_D00D)))
}

/// Deterministic per-(AS, source-subnet) permille bucket for partial
/// internal SAV (FNV-1a over ASN and subnet bits). Public so ground-truth
/// oracles (cross-method agreement scoring) can predict exactly which
/// source subnets a partially-filtering border admits.
pub fn subnet_permille(asn: Asn, src: IpAddr) -> u64 {
    let sub = Prefix::subprefix_of(src, if src.is_ipv6() { 64 } else { 24 });
    let (key, _) = sub.key();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in asn.0.to_le_bytes().into_iter().chain(key.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h % 1000
}

fn fnv_str(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// The immutable half of a simulated Internet: ASes and their border
/// policies, announced prefixes, and the static host table.
///
/// A `Topology` holds no run state — no clocks, queues, node behaviour, or
/// RNGs — so it is `Send + Sync` and can back any number of concurrent
/// [`Runtime`]s through an `Arc`. All accessors are read-only; the only way
/// to shape a topology is through a [`TopologyBuilder`] (or a [`Network`],
/// which owns its topology exclusively).
/// The host table is struct-of-arrays: per-host attributes live in
/// parallel `Vec`s indexed by dense [`HostId`], and the address → host map
/// is one sorted `Vec` searched by binary search. At internet scale
/// (~14M bound addresses) this removes the per-host `HostConfig`
/// allocation and the per-address hash-map entry overhead, and makes
/// iteration order a total order over addresses — never hash order.
#[derive(Debug)]
pub struct Topology {
    cfg: NetworkConfig,
    ases: BTreeMap<u32, AsInfo>,
    routes: PrefixTable,
    /// Origin AS per host, indexed by `HostId`.
    host_asn: Vec<Asn>,
    /// Network-stack policy per host, indexed by `HostId`.
    host_stack: Vec<StackPolicy>,
    /// All host addresses, flattened; host `i`'s addresses are
    /// `addrs[addr_start[i] .. addr_start[i + 1]]`.
    addrs: Vec<IpAddr>,
    addr_start: Vec<u32>,
    /// `(address, host)` pairs, sorted by address once sealed; lookups are
    /// binary searches. The builder appends unsorted and sorts in
    /// `finish`; a [`Network`] (exclusively owned, test-scale) inserts in
    /// sorted position per host.
    ip_index: Vec<(IpAddr, u32)>,
}

impl Topology {
    /// Start building a topology with the given engine configuration.
    pub fn builder(cfg: NetworkConfig) -> TopologyBuilder {
        TopologyBuilder {
            topo: Topology {
                cfg,
                ases: BTreeMap::new(),
                routes: PrefixTable::new(),
                host_asn: Vec::new(),
                host_stack: Vec::new(),
                addrs: Vec::new(),
                addr_start: vec![0],
                ip_index: Vec::new(),
            },
        }
    }

    /// The engine configuration runtimes built on this topology will use.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The master seed (host RNG streams derive from it by host id).
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Announced routes (prefix → origin ASN).
    pub fn routes(&self) -> &PrefixTable {
        &self.routes
    }

    /// The AS info for an ASN, if registered.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.ases.get(&asn.0)
    }

    /// All registered ASNs.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ases.keys().map(|&n| Asn(n))
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.host_asn.len()
    }

    /// The origin AS of a host.
    pub fn host_asn(&self, id: HostId) -> Asn {
        self.host_asn[id]
    }

    /// The network-stack policy of a host.
    pub fn host_stack(&self, id: HostId) -> StackPolicy {
        self.host_stack[id]
    }

    /// The addresses bound to a host, in binding order.
    pub fn host_addrs(&self, id: HostId) -> &[IpAddr] {
        &self.addrs[self.addr_start[id] as usize..self.addr_start[id + 1] as usize]
    }

    /// The host bound to `addr`, if any. The index must be sealed (it is
    /// for any topology obtained from `finish` or owned by a `Network`).
    pub fn host_for_ip(&self, addr: IpAddr) -> Option<HostId> {
        self.ip_index
            .binary_search_by(|(a, _)| a.cmp(&addr))
            .ok()
            .map(|i| self.ip_index[i].1 as HostId)
    }

    /// A stable FNV-1a fingerprint of the full topology contents (config,
    /// ASes, routes, host table). Iteration orders are deterministic
    /// (BTreeMap / announcement order / host-id order), so equal topologies
    /// digest equally across runs and platforms. Tests use this to assert a
    /// shared topology survives concurrent runtimes bit-identical.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fnv_str(&mut h, &format!("{:?}", self.cfg));
        for info in self.ases.values() {
            fnv_str(&mut h, &format!("{info:?}"));
        }
        for (prefix, asn) in self.routes.iter() {
            fnv_str(&mut h, &format!("{prefix}>{asn}"));
        }
        for id in 0..self.host_count() {
            fnv_str(
                &mut h,
                &format!(
                    "{:?}|{:?}|{:?}",
                    self.host_addrs(id),
                    self.host_asn[id],
                    self.host_stack[id]
                ),
            );
        }
        h
    }

    /// Append a host's static attributes into the SoA columns; returns its
    /// id. The address index entries are appended *unsorted* — callers
    /// either seal afterwards (builder) or keep the index sorted
    /// themselves (`bind_host_sorted`).
    fn push_host(&mut self, cfg: HostConfig) -> HostId {
        let id = self.host_asn.len();
        self.host_asn.push(cfg.asn);
        self.host_stack.push(cfg.stack);
        self.addrs.extend(cfg.addrs.iter().copied());
        self.addr_start.push(self.addrs.len() as u32);
        id
    }

    /// Register a host during bulk building: index entries append unsorted
    /// (O(1) per address); `seal` sorts once and rejects duplicates.
    fn bind_host(&mut self, cfg: HostConfig) -> HostId {
        let start = self.addrs.len();
        let id = self.push_host(cfg);
        for i in start..self.addrs.len() {
            self.ip_index.push((self.addrs[i], id as u32));
        }
        id
    }

    /// Register a host keeping the address index sorted (used by
    /// [`Network`], whose topologies stay test-scale). Panics on a
    /// duplicate address binding.
    fn bind_host_sorted(&mut self, cfg: HostConfig) -> HostId {
        let start = self.addrs.len();
        let id = self.push_host(cfg);
        for i in start..self.addrs.len() {
            let a = self.addrs[i];
            match self.ip_index.binary_search_by(|(x, _)| x.cmp(&a)) {
                Ok(_) => panic!("address {a} bound twice"),
                Err(pos) => self.ip_index.insert(pos, (a, id as u32)),
            }
        }
        id
    }

    /// Sort the address index and reject duplicate bindings. Idempotent;
    /// runs once per bulk build, in `TopologyBuilder::finish`.
    fn seal(&mut self) {
        self.ip_index.sort_unstable_by_key(|(a, _)| *a);
        for w in self.ip_index.windows(2) {
            assert!(w[0].0 != w[1].0, "address {} bound twice", w[0].0);
        }
    }
}

/// Write access to a [`Topology`] under construction. `finish` freezes it;
/// after that the only handle is immutable.
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Register an AS. Panics if the ASN is already registered.
    pub fn add_as(&mut self, info: AsInfo) {
        let prev = self.topo.ases.insert(info.asn.0, info);
        assert!(prev.is_none(), "duplicate AS registration");
    }

    /// Register an AS with the given policy (convenience).
    pub fn add_simple_as(&mut self, asn: Asn, policy: BorderPolicy) {
        self.add_as(AsInfo::new(asn, policy));
    }

    /// Announce a prefix as originated by an AS. The AS must exist.
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) {
        assert!(
            self.topo.ases.contains_key(&asn.0),
            "announce for unknown {asn}"
        );
        self.topo.routes.announce(prefix, asn);
    }

    /// Register a host slot (behaviour is supplied later, per runtime, as a
    /// [`Node`]); returns its id. All its addresses become deliverable.
    pub fn add_host(&mut self, cfg: HostConfig) -> HostId {
        self.topo.bind_host(cfg)
    }

    /// Install a transparent DNS interceptor (middlebox) for an AS: UDP/53
    /// packets entering the AS from outside are redirected to `host`.
    pub fn set_dns_interceptor(&mut self, asn: Asn, host: HostId) {
        self.topo
            .ases
            .get_mut(&asn.0)
            .expect("interceptor for unknown AS")
            .dns_interceptor = Some(host);
    }

    /// Read access to the topology built so far.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Freeze the topology: sort the address index (rejecting duplicate
    /// bindings) and hand out the immutable result.
    pub fn finish(mut self) -> Topology {
        self.topo.seal();
        self.topo
    }
}

/// The mutable half of a simulation: node behaviours, RNG streams, event
/// queue, clock, counters, and traces, all running over a shared immutable
/// [`Topology`].
///
/// Instantiating a runtime is cheap relative to building a topology — it
/// allocates per-host node state and RNG streams but reuses the AS table,
/// routes, and host table through the `Arc`. Hosts may also be attached
/// dynamically to one runtime only (e.g. each survey shard's scanner) via
/// [`Runtime::add_host`]; they overlay the shared table without touching it.
pub struct Runtime {
    topo: Arc<Topology>,
    /// Node + RNG state for every host: topology hosts first (same ids),
    /// then dynamically added hosts.
    hosts: Vec<HostState>,
    /// Static attributes of dynamically added hosts (ids continue after the
    /// topology's).
    extra_cfgs: Vec<HostConfig>,
    extra_ip_index: HashMap<IpAddr, HostId>,
    queue: EventQueue,
    now: SimTime,
    seq: u64,
    rng: ChaCha8Rng,
    /// Compiled chaos schedule, if fault injection is armed for this run.
    faults: Option<Arc<FaultSchedule>>,
    /// Occurrence counters for shard-local flows: how many packets of the
    /// flow `(src, dst)` were sent at the current instant. Keys per-packet
    /// chaos draws so they are invariant to shard layout (see
    /// [`crate::faults`]). Only populated while `faults` is armed.
    fault_flows: HashMap<(IpAddr, IpAddr), (SimTime, u32)>,
    /// One-entry memo for `FaultSchedule::host_down` at the current
    /// instant: a batch of same-tick sends from one host (the scanner's
    /// steady state) consults the fault schedule once, not per packet.
    down_memo: Option<(HostId, SimTime, bool)>,
    /// Reusable effects buffer for node callbacks (drained after each
    /// invoke, so a warm engine stages effects with zero allocation).
    effects_buf: Vec<Effect>,
    /// Reusable placeholder node swapped into the host table while a
    /// callback runs (see `invoke`).
    parked_node: Option<Box<dyn Node>>,
    /// Packet accounting for the whole run.
    pub counters: NetCounters,
    /// Optional packet capture.
    pub trace: Option<Trace>,
    /// Optional causal span flight recorder (armed per run via
    /// [`Runtime::arm_flight`], never via topology config, so arming does
    /// not perturb topology digests or shared worlds).
    flight: Option<FlightRecorder>,
    started: bool,
    events_processed: u64,
    /// True if `max_events` was hit and the queue was abandoned.
    pub budget_exhausted: bool,
}

impl Runtime {
    /// Instantiate a runtime over a shared topology. `nodes` supplies the
    /// behaviour for every topology host, in host-id order; host `i`'s RNG
    /// stream is seeded `stream_seed(seed, i)` exactly as it would be on a
    /// freshly built [`Network`], so a runtime over a rebuilt-equivalent
    /// topology reproduces the same run byte for byte.
    pub fn new(topo: Arc<Topology>, nodes: Vec<Box<dyn Node>>) -> Runtime {
        assert_eq!(
            nodes.len(),
            topo.host_count(),
            "one node per topology host, in host-id order"
        );
        let seed = topo.cfg.seed;
        let sched = topo.cfg.sched;
        let rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = topo.cfg.trace_capacity.map(Trace::with_capacity);
        let hosts = nodes
            .into_iter()
            .enumerate()
            .map(|(id, node)| HostState {
                node,
                rng: ChaCha8Rng::seed_from_u64(stream_seed(seed, id as u64)),
            })
            .collect();
        Runtime {
            topo,
            hosts,
            extra_cfgs: Vec::new(),
            extra_ip_index: HashMap::new(),
            queue: EventQueue::new(sched),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            faults: None,
            fault_flows: HashMap::new(),
            down_memo: None,
            effects_buf: Vec::new(),
            parked_node: None,
            counters: NetCounters::default(),
            trace,
            flight: None,
            started: false,
            events_processed: 0,
            budget_exhausted: false,
        }
    }

    /// The shared topology this runtime executes over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Attach a host with its behaviour to *this runtime only*; returns its
    /// id (continuing after the topology's hosts). The shared topology is
    /// not modified, so other runtimes over the same `Arc` are unaffected.
    /// Panics on a duplicate address binding.
    pub fn add_host(&mut self, cfg: HostConfig, node: Box<dyn Node>) -> HostId {
        let id = self.hosts.len();
        for a in &cfg.addrs {
            assert!(
                self.topo.host_for_ip(*a).is_none(),
                "address {a} bound twice"
            );
            let prev = self.extra_ip_index.insert(*a, id);
            assert!(prev.is_none(), "address {a} bound twice");
        }
        let rng = ChaCha8Rng::seed_from_u64(stream_seed(self.topo.cfg.seed, id as u64));
        self.extra_cfgs.push(cfg);
        self.hosts.push(HostState { node, rng });
        id
    }

    /// Arm a compiled chaos schedule: from now on every inter-AS traversal
    /// and host touch consults it (see [`crate::faults`]). Pass the same
    /// `Arc` to every shard of a sharded run.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultSchedule>>) {
        self.faults = faults;
        self.fault_flows.clear();
        self.down_memo = None;
    }

    /// The armed chaos schedule, if any.
    pub fn faults(&self) -> Option<&Arc<FaultSchedule>> {
        self.faults.as_ref()
    }

    /// Deliver events still queued (sent but neither delivered nor
    /// dropped). Conservation checks account these as in-flight at the
    /// instant the run stopped.
    pub fn pending_deliveries(&self) -> u64 {
        self.queue.pending_delivers()
    }

    /// Arm the causal span flight recorder with a window of `capacity`
    /// spans. Packets with a non-zero [`Packet::trace`] id leave typed
    /// spans at every pipeline stage from then on; see [`crate::span`].
    pub fn arm_flight(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::with_capacity(capacity));
    }

    /// Arm the flight recorder with an origin-side sampling policy (see
    /// [`crate::TraceSample`]): originators consult it through
    /// [`crate::NodeCtx::sample_trace`] when stamping trace ids.
    pub fn arm_flight_sampled(&mut self, capacity: usize, sampling: crate::span::TraceSample) {
        self.flight = Some(FlightRecorder::with_capacity(capacity).with_sampling(sampling));
    }

    /// Detach the flight recorder (shard harvest).
    pub fn take_flight(&mut self) -> Option<FlightRecorder> {
        self.flight.take()
    }

    /// The armed flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Emit one span for a traced packet (no-op when unarmed or untraced;
    /// the detail closure only runs when recording).
    fn span(&mut self, trace: u64, kind: SpanKind, detail: impl FnOnce() -> String) {
        if trace == 0 {
            return;
        }
        if let Some(fr) = self.flight.as_mut() {
            fr.record(self.now, trace, kind, detail());
        }
    }

    /// Reseed the engine-level noise RNG (link-fault sampling). Hosts keep
    /// their own streams; this only affects environment randomness, so a
    /// sharded run can give each shard decorrelated link noise without
    /// perturbing host behaviour.
    pub fn reseed_noise(&mut self, seed: u64) {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The origin AS of a host — topology hosts and dynamically added ones
    /// alike.
    pub fn host_asn(&self, id: HostId) -> Asn {
        let n = self.topo.host_count();
        if id < n {
            self.topo.host_asn(id)
        } else {
            self.extra_cfgs[id - n].asn
        }
    }

    /// The network-stack policy of a host.
    pub fn host_stack(&self, id: HostId) -> StackPolicy {
        let n = self.topo.host_count();
        if id < n {
            self.topo.host_stack(id)
        } else {
            self.extra_cfgs[id - n].stack
        }
    }

    /// The addresses bound to a host, in binding order.
    pub fn host_addrs(&self, id: HostId) -> &[IpAddr] {
        let n = self.topo.host_count();
        if id < n {
            self.topo.host_addrs(id)
        } else {
            &self.extra_cfgs[id - n].addrs
        }
    }

    /// Announced routes (prefix → origin ASN), from the shared topology.
    pub fn routes(&self) -> &PrefixTable {
        &self.topo.routes
    }

    /// Mutable access to a host's node, downcast to a concrete type.
    /// Returns `None` if the type does not match.
    pub fn node_mut<T: Node>(&mut self, id: HostId) -> Option<&mut T> {
        let node: &mut dyn Node = self.hosts[id].node.as_mut();
        let any: &mut dyn std::any::Any = node;
        any.downcast_mut::<T>()
    }

    /// Shared access to a host's node, downcast to a concrete type.
    pub fn node<T: Node>(&self, id: HostId) -> Option<&T> {
        let node: &dyn Node = self.hosts[id].node.as_ref();
        let any: &dyn std::any::Any = node;
        any.downcast_ref::<T>()
    }

    /// The AS info for an ASN, if registered.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.topo.as_info(asn)
    }

    /// All registered ASNs.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.topo.asns()
    }

    /// Number of hosts (topology + dynamically added).
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    fn host_for_ip(&self, addr: IpAddr) -> Option<HostId> {
        self.topo
            .host_for_ip(addr)
            .or_else(|| self.extra_ip_index.get(&addr).copied())
    }

    /// Schedule an external timer for a host at an absolute time.
    pub fn schedule(&mut self, host: HostId, at: SimTime, token: u64) {
        let seq = self.next_seq();
        self.queue.push(QueuedEvent {
            at,
            seq,
            kind: EventKind::Timer { host, token },
        });
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Deterministic per-path hop count in `[4, 24]`, used to decrement TTLs
    /// so receivers (p0f) can infer initial TTL without us simulating every
    /// router.
    fn path_hops(a: Asn, b: Asn) -> u8 {
        if a == b {
            return 2;
        }
        // FNV-1a over the ASN pair — stable across platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in a.0.to_le_bytes().into_iter().chain(b.0.to_le_bytes()) {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        4 + (h % 21) as u8
    }

    fn record(&mut self, point: TracePoint, pkt: &Packet) {
        if let Some(t) = self.trace.as_mut() {
            t.record(self.now, point, pkt);
        }
    }

    /// Account a drop: counter, packet trace, and (for traced packets) a
    /// `Fate` span naming the reason.
    fn drop_packet(&mut self, reason: DropReason, pkt: &Packet) {
        self.counters.drop(reason);
        self.record(TracePoint::Dropped(reason), pkt);
        self.span(pkt.trace, SpanKind::Fate, || format!("drop {reason}"));
    }

    /// `FaultSchedule::host_down` with a one-entry memo keyed on
    /// `(host, now)`: the scanner emits whole same-tick batches from one
    /// host, so the batch pays for one schedule consult. The predicate is a
    /// pure function of the armed schedule, so memoization cannot change
    /// results.
    fn cached_host_down(&mut self, host: HostId) -> bool {
        if let Some((h, t, d)) = self.down_memo {
            if h == host && t == self.now {
                return d;
            }
        }
        let d = self
            .faults
            .as_ref()
            .is_some_and(|f| f.host_down(host, self.now));
        self.down_memo = Some((host, self.now, d));
        d
    }

    /// Accept a packet from a node and run the origin-side pipeline; if it
    /// survives, enqueue delivery.
    fn dispatch_send(&mut self, from: HostId, pkt: Packet) {
        self.counters.sent += 1;
        self.record(TracePoint::Sent, &pkt);
        self.span(pkt.trace, SpanKind::Send, || {
            let proto = match &pkt.transport {
                Transport::Udp(_) => "udp",
                Transport::Tcp(_) => "tcp",
            };
            format!(
                "{proto} {}:{} -> {}:{}",
                pkt.src,
                pkt.transport.src_port(),
                pkt.dst,
                pkt.transport.dst_port()
            )
        });

        // Chaos: a host inside a crash epoch emits nothing.
        if self.faults.is_some() && self.cached_host_down(from) {
            self.drop_packet(DropReason::HostDown, &pkt);
            return;
        }

        let origin_asn = self.host_asn(from);
        let Some(dst_asn) = self.topo.routes.origin(pkt.dst) else {
            self.drop_packet(DropReason::NoRoute, &pkt);
            return;
        };
        let crossing = origin_asn != dst_asn;

        // Origin-side SAV (BCP 38): applies only when leaving the AS.
        if crossing {
            let policy = self
                .topo
                .ases
                .get(&origin_asn.0)
                .map(|a| a.policy)
                .unwrap_or_else(BorderPolicy::open);
            if policy.osav && self.topo.routes.origin(pkt.src) != Some(origin_asn) {
                self.drop_packet(DropReason::Osav, &pkt);
                return;
            }
        }

        // Link traversal with fault injection.
        let profile = if crossing {
            self.topo.cfg.core_link
        } else {
            self.topo.cfg.intra_link
        };
        let Some((delay, dup)) = profile.sample(&mut self.rng) else {
            self.drop_packet(DropReason::LinkLoss, &pkt);
            return;
        };

        // Chaos: seeded fate for inter-AS traversals. The decision is a
        // pure function of a shard-invariant packet key and sim time, so a
        // sharded run drops/delays exactly the packets a single-engine run
        // would (see `crate::faults`).
        let mut chaos_extra = SimDuration::ZERO;
        let mut chaos_dup: Option<SimDuration> = None;
        let mut chaos_spoof = false;
        if crossing {
            // Take/restore instead of cloning the Arc: the schedule is
            // consulted for every crossing packet, and the refcount bump
            // showed up in profiles.
            if let Some(f) = self.faults.take() {
                let key = self.flow_key(&f, &pkt, origin_asn, dst_asn);
                let fate = f.link_fate(key, self.now, origin_asn, dst_asn);
                chaos_spoof = f.spoof_response(key, &pkt);
                self.faults = Some(f);
                match fate {
                    LinkFate::Drop(reason) => {
                        self.drop_packet(reason, &pkt);
                        return;
                    }
                    LinkFate::Pass {
                        extra_delay,
                        duplicate,
                    } => {
                        chaos_extra = extra_delay;
                        chaos_dup = duplicate;
                    }
                }
            }
        }

        // TTL decrement across the path.
        let hops = Self::path_hops(origin_asn, dst_asn);
        self.span(pkt.trace, SpanKind::Route, || {
            format!(
                "as{} -> as{} hops={}{}",
                origin_asn.0,
                dst_asn.0,
                hops,
                if crossing { "" } else { " intra" }
            )
        });
        if chaos_extra > SimDuration::ZERO {
            self.span(pkt.trace, SpanKind::Fate, || {
                format!("chaos-delay +{}ns", chaos_extra.as_nanos())
            });
        }
        if chaos_dup.is_some() {
            self.span(pkt.trace, SpanKind::Fate, || "chaos-dup".to_string());
        }
        let mut delivered = pkt;
        delivered.ttl = delivered.ttl.saturating_sub(hops).max(1);

        // Chaos: the off-path spoofed-response adversary races the genuine
        // answer with a forged copy — same flow and ports, wrong txid —
        // injected at half the link delay so it always arrives first.
        // Receivers demultiplexing on (txid, port) reject it; the injection
        // is a pure function of the shard-invariant flow key.
        if chaos_spoof {
            self.counters.injected += 1;
            self.span(delivered.trace, SpanKind::Fate, || {
                "chaos-spoof-inject".to_string()
            });
            let mut forged = delivered.clone();
            if let Transport::Udp(u) = &mut forged.transport {
                let mut bytes = u.payload.as_slice().to_vec();
                bytes[0] ^= 0xFF;
                bytes[1] ^= 0xA5;
                u.payload = bytes.into();
            }
            let seq = self.next_seq();
            self.queue.push(QueuedEvent {
                at: self.now + SimDuration::from_nanos(delay.as_nanos() / 2),
                seq,
                kind: EventKind::Deliver {
                    pkt: forged,
                    from_asn: origin_asn,
                    dst_asn,
                },
            });
        }

        if let Some(dup_delay) = dup {
            self.counters.duplicated += 1;
            let seq = self.next_seq();
            self.queue.push(QueuedEvent {
                at: self.now + dup_delay,
                seq,
                kind: EventKind::Deliver {
                    // Payload bytes are Arc-shared, so duplicating a
                    // delivery (like every trace capture) is a refcount
                    // bump, not a deep copy of the DNS message.
                    pkt: delivered.clone(),
                    from_asn: origin_asn,
                    dst_asn,
                },
            });
        }
        if let Some(dup_extra) = chaos_dup {
            self.counters.duplicated += 1;
            let seq = self.next_seq();
            self.queue.push(QueuedEvent {
                at: self.now + delay + dup_extra,
                seq,
                kind: EventKind::Deliver {
                    pkt: delivered.clone(),
                    from_asn: origin_asn,
                    dst_asn,
                },
            });
        }
        let seq = self.next_seq();
        self.queue.push(QueuedEvent {
            at: self.now + delay + chaos_extra,
            seq,
            kind: EventKind::Deliver {
                pkt: delivered,
                from_asn: origin_asn,
                dst_asn,
            },
        });
    }

    /// Shard-invariant chaos key for one packet emission: occurrence-
    /// counted for flows touching a measured AS (those are shard-local),
    /// content-hashed for infrastructure-only flows (see `crate::faults`).
    fn flow_key(&mut self, f: &FaultSchedule, pkt: &Packet, a: Asn, b: Asn) -> u64 {
        if f.keys_by_occurrence(a, b) {
            let slot = self
                .fault_flows
                .entry((pkt.src, pkt.dst))
                .or_insert((SimTime::MAX, 0));
            if slot.0 == self.now {
                slot.1 += 1;
            } else {
                *slot = (self.now, 0);
            }
            f.occurrence_key(pkt.src, pkt.dst, self.now, slot.1)
        } else {
            f.content_key(pkt, self.now)
        }
    }

    /// Run the destination-side pipeline and deliver to the node.
    /// `dst_asn` was resolved at send time (routes are static during a
    /// run), so delivery pays no longest-prefix match for it.
    fn dispatch_deliver(&mut self, pkt: Packet, from_asn: Asn, dst_asn: Asn) {
        let crossing = from_asn != dst_asn;
        let mut deliver_to: Option<HostId> = None;

        if crossing {
            let info = self.topo.ases.get(&dst_asn.0);
            let policy = info.map(|a| a.policy).unwrap_or_else(BorderPolicy::open);
            let interceptor = info.and_then(|a| a.dns_interceptor);
            // Both DSAV and partial internal SAV ask whether the claimed
            // source is internal to the destination AS; resolve the
            // longest-prefix match once for both.
            let src_is_internal = (policy.dsav || policy.internal_pass_permille < 1000)
                && self.topo.routes.origin(pkt.src) == Some(dst_asn);

            let lb_filtered = if pkt.is_v6() {
                policy.filter_loopback_ingress_v6
            } else {
                policy.filter_loopback_ingress
            };
            if lb_filtered && special::is_loopback(pkt.src) {
                self.drop_packet(DropReason::LoopbackIngress, &pkt);
                return;
            }
            if policy.filter_ds_ingress_v4 && !pkt.is_v6() && pkt.is_dst_as_src() {
                self.drop_packet(DropReason::MartianDs, &pkt);
                return;
            }
            if policy.filter_private_ingress && special::is_private_or_ula(pkt.src) {
                self.drop_packet(DropReason::PrivateIngress, &pkt);
                return;
            }
            // DSAV: inbound packet claiming an internal source.
            if policy.dsav && src_is_internal {
                self.drop_packet(DropReason::Dsav, &pkt);
                return;
            }
            // Subnet-level SAVI: source in the destination's own /24 or /64.
            if policy.subnet_savi
                && pkt.src.is_ipv6() == pkt.dst.is_ipv6()
                && Prefix::subprefix_of(pkt.dst, if pkt.dst.is_ipv6() { 64 } else { 24 })
                    .contains(pkt.src)
            {
                self.drop_packet(DropReason::SubnetSavi, &pkt);
                return;
            }
            // Partial internal SAV: internal-source spoofs from *other*
            // subnets pass only if their subnet hashes under the permille
            // threshold (deterministic per AS+subnet). The destination's
            // own subnet is always feasible.
            if policy.internal_pass_permille < 1000
                && src_is_internal
                && pkt.src.is_ipv6() == pkt.dst.is_ipv6()
                && !Prefix::subprefix_of(pkt.dst, if pkt.dst.is_ipv6() { 64 } else { 24 })
                    .contains(pkt.src)
                && subnet_permille(dst_asn, pkt.src) >= policy.internal_pass_permille as u64
            {
                self.drop_packet(DropReason::PartialSav, &pkt);
                return;
            }
            // Transparent DNS middlebox: UDP/53 entering the AS is grabbed.
            if let Some(mbx) = interceptor {
                if matches!(&pkt.transport, Transport::Udp(u) if u.dst_port == 53) {
                    self.counters.intercepted += 1;
                    self.record(TracePoint::Intercepted, &pkt);
                    self.span(pkt.trace, SpanKind::Intercept, || {
                        format!("as{} middlebox grabbed udp/53 for {}", dst_asn.0, pkt.dst)
                    });
                    deliver_to = Some(mbx);
                }
            }
        }

        let host = match deliver_to {
            Some(h) => h,
            None => {
                let Some(h) = self.host_for_ip(pkt.dst) else {
                    self.drop_packet(DropReason::NoHost, &pkt);
                    return;
                };
                // Host network-stack acceptance (paper Table 6). Middlebox
                // deliveries bypass this: an in-path interceptor is not the
                // packet's addressee.
                let stack = self.host_stack(h);
                let ds = pkt.is_dst_as_src();
                let lb = pkt.has_loopback_src();
                if !stack.accepts(ds, lb, pkt.is_v6()) {
                    let reason = if lb {
                        DropReason::StackLoopback
                    } else {
                        DropReason::StackDstAsSrc
                    };
                    self.drop_packet(reason, &pkt);
                    return;
                }
                h
            }
        };

        // Chaos: a destination inside a crash epoch accepts nothing
        // (middlebox deliveries included — interceptors can crash too).
        if self.faults.is_some() && self.cached_host_down(host) {
            self.drop_packet(DropReason::HostDown, &pkt);
            return;
        }

        self.counters.delivered += 1;
        self.record(TracePoint::Delivered, &pkt);
        self.span(pkt.trace, SpanKind::Deliver, || format!("dst={}", pkt.dst));
        self.invoke(host, |node, ctx| node.on_packet(ctx, pkt));
    }

    /// Invoke a node callback with a fresh context, then apply staged
    /// effects.
    fn invoke(&mut self, host: HostId, f: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        // Both scratch objects are reused across invocations: the effects
        // buffer keeps its capacity, and the parked placeholder node is the
        // same box every time. The previous version allocated both per
        // event, which dominated the dispatch profile.
        let mut effects = std::mem::take(&mut self.effects_buf);
        {
            // Split borrows: node is taken out of the host table for the
            // duration of the callback so the ctx can borrow the host rng.
            let placeholder = self
                .parked_node
                .take()
                .unwrap_or_else(|| Box::<crate::node::SinkNode>::default());
            let mut node = std::mem::replace(&mut self.hosts[host].node, placeholder);
            let mut ctx = NodeCtx::with_recorder(
                self.now,
                host,
                &mut self.hosts[host].rng,
                &mut effects,
                self.flight.as_mut(),
            );
            f(node.as_mut(), &mut ctx);
            self.parked_node = Some(std::mem::replace(&mut self.hosts[host].node, node));
        }
        for e in effects.drain(..) {
            match e {
                Effect::Send(p) => self.dispatch_send(host, p),
                Effect::Timer { after, token } => {
                    let seq = self.next_seq();
                    self.queue.push(QueuedEvent {
                        at: self.now + after,
                        seq,
                        kind: EventKind::Timer { host, token },
                    });
                }
            }
        }
        self.effects_buf = effects;
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for h in 0..self.hosts.len() {
            self.invoke(h, |node, ctx| node.on_start(ctx));
        }
    }

    /// Process a single event. Returns the time of the processed event, or
    /// `None` if the queue is empty or the budget is exhausted.
    pub fn step(&mut self) -> Option<SimTime> {
        self.start_if_needed();
        if self.events_processed >= self.topo.cfg.max_events {
            if !self.queue.is_empty() {
                self.budget_exhausted = true;
                for _ in 0..self.queue.len() {
                    self.counters.drop(DropReason::Truncated);
                }
                self.queue.clear();
            }
            return None;
        }
        let ev = self.queue.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at.max(self.now);
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver {
                pkt,
                from_asn,
                dst_asn,
            } => self.dispatch_deliver(pkt, from_asn, dst_asn),
            EventKind::Timer { host, token } => {
                self.invoke(host, |node, ctx| node.on_timer(ctx, token))
            }
        }
        Some(self.now)
    }

    /// Run until the queue drains (or the event budget is exhausted).
    pub fn run(&mut self) {
        while self.step().is_some() {}
    }

    /// Run while events exist with time ≤ `until`. The clock is advanced to
    /// `until` afterwards even if the queue drained earlier.
    pub fn run_until(&mut self, until: SimTime) {
        self.start_if_needed();
        while let Some(at) = self.queue.peek_time() {
            if at > until || self.step().is_none() {
                break;
            }
        }
        self.now = self.now.max(until);
    }

    /// Advance the clock by `d`, processing everything due in between.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }
}

/// The simulated Internet: one [`Topology`] plus one [`Runtime`], with the
/// classic build-then-run API.
///
/// `Network` owns its topology exclusively (its `Arc` is never shared), so
/// the mutating builder methods (`add_as`, `announce`, `add_host`, ...)
/// edit it in place at zero cost. Everything else — running, counters,
/// node access — comes from the embedded [`Runtime`] via `Deref`.
///
/// To share one world across engines, build the topology with a
/// [`TopologyBuilder`] instead and spawn [`Runtime`]s from the `Arc`.
pub struct Network {
    rt: Runtime,
}

impl Network {
    /// A new, empty network.
    pub fn new(cfg: NetworkConfig) -> Network {
        let topo = Arc::new(Topology::builder(cfg).finish());
        Network {
            rt: Runtime::new(topo, Vec::new()),
        }
    }

    fn topo_mut(&mut self) -> &mut Topology {
        Arc::get_mut(&mut self.rt.topo)
            .expect("Network topology is shared; mutate before sharing the Arc")
    }

    /// The topology, for sharing with further [`Runtime`]s. Mutating this
    /// network after cloning the returned `Arc` panics.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.rt.topo
    }

    /// Register an AS. Panics if the ASN is already registered.
    pub fn add_as(&mut self, info: AsInfo) {
        let prev = self.topo_mut().ases.insert(info.asn.0, info);
        assert!(prev.is_none(), "duplicate AS registration");
    }

    /// Register an AS with the given policy (convenience).
    pub fn add_simple_as(&mut self, asn: Asn, policy: BorderPolicy) {
        self.add_as(AsInfo::new(asn, policy));
    }

    /// Announce a prefix as originated by an AS. The AS must exist.
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) {
        let topo = self.topo_mut();
        assert!(topo.ases.contains_key(&asn.0), "announce for unknown {asn}");
        topo.routes.announce(prefix, asn);
    }

    /// Attach a host with its behaviour; returns its id. All its addresses
    /// become deliverable. Panics on a duplicate address binding.
    pub fn add_host(&mut self, cfg: HostConfig, node: Box<dyn Node>) -> HostId {
        assert!(
            self.rt.extra_cfgs.is_empty(),
            "topology hosts must be added before runtime-dynamic hosts"
        );
        let seed = self.rt.topo.cfg.seed;
        let id = self.topo_mut().bind_host_sorted(cfg);
        let rng = ChaCha8Rng::seed_from_u64(stream_seed(seed, id as u64));
        self.rt.hosts.push(HostState { node, rng });
        id
    }

    /// Install a transparent DNS interceptor (middlebox) for an AS: UDP/53
    /// packets entering the AS from outside are redirected to `host`.
    pub fn set_dns_interceptor(&mut self, asn: Asn, host: HostId) {
        self.topo_mut()
            .ases
            .get_mut(&asn.0)
            .expect("interceptor for unknown AS")
            .dns_interceptor = Some(host);
    }

    /// Mutable AS info (e.g. to flip a policy mid-run in tests).
    pub fn as_info_mut(&mut self, asn: Asn) -> Option<&mut AsInfo> {
        self.topo_mut().ases.get_mut(&asn.0)
    }
}

impl std::ops::Deref for Network {
    type Target = Runtime;
    fn deref(&self) -> &Runtime {
        &self.rt
    }
}

impl std::ops::DerefMut for Network {
    fn deref_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SinkNode;
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn pre(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Two ASes; a sender in AS 100 that fires one packet at start.
    struct Shooter {
        src: IpAddr,
        dst: IpAddr,
    }
    impl Node for Shooter {
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {}
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.send(Packet::udp(self.src, self.dst, 1000, 53, vec![1]));
        }
    }

    fn two_as_net(src_policy: BorderPolicy, dst_policy: BorderPolicy) -> (Network, HostId) {
        let mut net = Network::new(NetworkConfig {
            core_link: LinkProfile::ideal(),
            ..Default::default()
        });
        net.add_simple_as(Asn(100), src_policy);
        net.add_simple_as(Asn(200), dst_policy);
        net.announce(pre("192.0.2.0/24"), Asn(100));
        net.announce(pre("198.51.100.0/24"), Asn(200));
        let sink = net.add_host(
            HostConfig {
                addrs: vec![ip("198.51.100.10")],
                asn: Asn(200),
                stack: StackPolicy::permissive(),
            },
            Box::new(SinkNode::default()),
        );
        (net, sink)
    }

    fn add_shooter(net: &mut Network, src: &str, dst: &str) {
        net.add_host(
            HostConfig {
                addrs: vec![ip("192.0.2.1")],
                asn: Asn(100),
                stack: StackPolicy::permissive(),
            },
            Box::new(Shooter {
                src: ip(src),
                dst: ip(dst),
            }),
        );
    }

    #[test]
    fn honest_packet_is_delivered() {
        let (mut net, sink) = two_as_net(BorderPolicy::strict(), BorderPolicy::strict());
        add_shooter(&mut net, "192.0.2.1", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.delivered, 1);
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 1);
    }

    #[test]
    fn osav_blocks_spoofed_egress() {
        // Source spoofed to a prefix not announced by AS 100.
        let (mut net, sink) = two_as_net(BorderPolicy::strict(), BorderPolicy::open());
        add_shooter(&mut net, "198.51.100.200", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::Osav), 1);
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 0);
    }

    #[test]
    fn dsav_blocks_internal_source_ingress() {
        // No OSAV at origin; destination runs DSAV; source claims to be
        // inside the destination AS.
        let (mut net, sink) = two_as_net(
            BorderPolicy::open(),
            BorderPolicy {
                dsav: true,
                ..BorderPolicy::open()
            },
        );
        add_shooter(&mut net, "198.51.100.200", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::Dsav), 1);
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 0);
    }

    #[test]
    fn no_dsav_admits_internal_source_spoof() {
        let (mut net, sink) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        add_shooter(&mut net, "198.51.100.200", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.delivered, 1);
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 1);
    }

    #[test]
    fn dst_as_src_is_caught_by_dsav_but_not_open_borders() {
        let (mut net, sink) = two_as_net(
            BorderPolicy::open(),
            BorderPolicy {
                dsav: true,
                ..BorderPolicy::open()
            },
        );
        add_shooter(&mut net, "198.51.100.10", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::Dsav), 1);

        let (mut net, sink2) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        add_shooter(&mut net, "198.51.100.10", "198.51.100.10");
        net.run();
        assert_eq!(net.node::<SinkNode>(sink2).unwrap().received, 1);
        let _ = sink;
    }

    #[test]
    fn subnet_savi_blocks_same_prefix_but_not_other_prefix() {
        let savi = BorderPolicy {
            subnet_savi: true,
            ..BorderPolicy::open()
        };
        // Same-/24 spoof: dropped by subnet SAVI.
        let (mut net, sink) = two_as_net(BorderPolicy::open(), savi);
        add_shooter(&mut net, "198.51.100.200", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::SubnetSavi), 1);
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 0);

        // Dst-as-src is inside the destination's /24 too: also dropped.
        let (mut net, _) = two_as_net(BorderPolicy::open(), savi);
        add_shooter(&mut net, "198.51.100.10", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::SubnetSavi), 1);

        // An other-prefix spoof (different /24 of the same AS) passes.
        let (mut net, _) = two_as_net(BorderPolicy::open(), savi);
        net.announce(pre("198.51.101.0/24"), Asn(200));
        add_shooter(&mut net, "198.51.101.77", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::SubnetSavi), 0);
        assert_eq!(net.counters.delivered, 1);
    }

    #[test]
    fn private_and_loopback_ingress_acls() {
        let acl = BorderPolicy {
            filter_private_ingress: true,
            filter_loopback_ingress: true,
            ..BorderPolicy::open()
        };
        let (mut net, _) = two_as_net(BorderPolicy::open(), acl);
        add_shooter(&mut net, "192.168.0.10", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::PrivateIngress), 1);

        let (mut net, _) = two_as_net(BorderPolicy::open(), acl);
        add_shooter(&mut net, "127.0.0.1", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::LoopbackIngress), 1);

        // With open borders they reach the (permissive) host stack.
        let (mut net, sink) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        add_shooter(&mut net, "192.168.0.10", "198.51.100.10");
        net.run();
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 1);
    }

    #[test]
    fn stack_policy_drops_loopback_at_host() {
        let (mut net, _) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        // Replace sink host stack with strict (drop anomalies): easiest is a
        // second host with a strict stack.
        let strict_sink = net.add_host(
            HostConfig {
                addrs: vec![ip("198.51.100.77")],
                asn: Asn(200),
                stack: StackPolicy::strict(),
            },
            Box::new(SinkNode::default()),
        );
        add_shooter(&mut net, "127.0.0.1", "198.51.100.77");
        net.run();
        assert_eq!(net.counters.dropped(DropReason::StackLoopback), 1);
        assert_eq!(net.node::<SinkNode>(strict_sink).unwrap().received, 0);
    }

    #[test]
    fn unrouted_destination_and_unbound_address() {
        let (mut net, _) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        add_shooter(&mut net, "192.0.2.1", "203.0.113.5"); // no route
        net.run();
        assert_eq!(net.counters.dropped(DropReason::NoRoute), 1);

        let (mut net, _) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        add_shooter(&mut net, "192.0.2.1", "198.51.100.99"); // routed, no host
        net.run();
        assert_eq!(net.counters.dropped(DropReason::NoHost), 1);
    }

    #[test]
    fn ttl_is_decremented_on_path() {
        struct TtlProbe {
            seen: Option<u8>,
        }
        impl Node for TtlProbe {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, pkt: Packet) {
                self.seen = Some(pkt.ttl);
            }
        }
        let (mut net, _) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        let probe = net.add_host(
            HostConfig {
                addrs: vec![ip("198.51.100.42")],
                asn: Asn(200),
                stack: StackPolicy::permissive(),
            },
            Box::new(TtlProbe { seen: None }),
        );
        add_shooter(&mut net, "192.0.2.1", "198.51.100.42");
        net.run();
        let seen = net.node::<TtlProbe>(probe).unwrap().seen.unwrap();
        assert!(seen < 64, "ttl should have been decremented, got {seen}");
        assert!(seen >= 64 - 24, "hop count bounded, got {seen}");
    }

    #[test]
    fn timers_fire_in_order_and_runs_are_deterministic() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {}
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimDuration::from_secs(2), 2);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(2), 3);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let run = || {
            let mut net = Network::new(NetworkConfig::default());
            net.add_simple_as(Asn(1), BorderPolicy::open());
            net.announce(pre("192.0.2.0/24"), Asn(1));
            let h = net.add_host(
                HostConfig {
                    addrs: vec![ip("192.0.2.1")],
                    asn: Asn(1),
                    stack: StackPolicy::default(),
                },
                Box::new(TimerNode { fired: vec![] }),
            );
            net.run();
            (net.node::<TimerNode>(h).unwrap().fired.clone(), net.now())
        };
        let (fired1, t1) = run();
        let (fired2, t2) = run();
        assert_eq!(fired1, vec![1, 2, 3]); // FIFO among equal times
        assert_eq!(fired1, fired2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn event_budget_stops_runaway_loops() {
        struct PingPong {
            me: IpAddr,
            peer: IpAddr,
        }
        impl Node for PingPong {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.send(Packet::udp(self.me, self.peer, 1, 1, vec![]));
            }
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
                ctx.send(Packet::udp(pkt.dst, pkt.src, 1, 1, vec![]));
            }
        }
        let mut net = Network::new(NetworkConfig {
            max_events: 100,
            core_link: LinkProfile::ideal(),
            ..Default::default()
        });
        net.add_simple_as(Asn(1), BorderPolicy::open());
        net.announce(pre("192.0.2.0/24"), Asn(1));
        let a = ip("192.0.2.1");
        let b = ip("192.0.2.2");
        net.add_host(
            HostConfig {
                addrs: vec![a],
                asn: Asn(1),
                stack: StackPolicy::default(),
            },
            Box::new(PingPong { me: a, peer: b }),
        );
        net.add_host(
            HostConfig {
                addrs: vec![b],
                asn: Asn(1),
                stack: StackPolicy::default(),
            },
            Box::new(PingPong { me: b, peer: a }),
        );
        net.run();
        assert!(net.budget_exhausted);
        assert_eq!(net.events_processed(), 100);
    }

    #[test]
    fn middlebox_intercepts_udp53_from_outside_only() {
        let (mut net, sink) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        let mbx = net.add_host(
            HostConfig {
                addrs: vec![ip("198.51.100.53")],
                asn: Asn(200),
                stack: StackPolicy::permissive(),
            },
            Box::new(SinkNode::default()),
        );
        net.set_dns_interceptor(Asn(200), mbx);
        add_shooter(&mut net, "192.0.2.1", "198.51.100.10");
        net.run();
        assert_eq!(net.counters.intercepted, 1);
        assert_eq!(net.node::<SinkNode>(mbx).unwrap().received, 1);
        assert_eq!(net.node::<SinkNode>(sink).unwrap().received, 0);
    }

    #[test]
    fn run_until_advances_clock() {
        let mut net = Network::new(NetworkConfig::default());
        net.add_simple_as(Asn(1), BorderPolicy::open());
        net.run_until(SimTime::from_secs(100));
        assert_eq!(net.now(), SimTime::from_secs(100));
        net.run_for(SimDuration::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(105));
    }

    #[test]
    fn trace_captures_pipeline() {
        let mut net = Network::new(NetworkConfig {
            trace_capacity: Some(100),
            core_link: LinkProfile::ideal(),
            ..Default::default()
        });
        net.add_simple_as(Asn(100), BorderPolicy::open());
        net.add_simple_as(Asn(200), BorderPolicy::open());
        net.announce(pre("192.0.2.0/24"), Asn(100));
        net.announce(pre("198.51.100.0/24"), Asn(200));
        net.add_host(
            HostConfig {
                addrs: vec![ip("198.51.100.10")],
                asn: Asn(200),
                stack: StackPolicy::permissive(),
            },
            Box::new(SinkNode::default()),
        );
        add_shooter(&mut net, "192.0.2.1", "198.51.100.10");
        net.run();
        let trace = net.trace.as_ref().unwrap();
        assert_eq!(trace.filter(|e| e.point == TracePoint::Sent).count(), 1);
        assert_eq!(
            trace.filter(|e| e.point == TracePoint::Delivered).count(),
            1
        );
    }

    /// One shared topology, many runtimes: the topology stays bit-identical
    /// across runs, a shared runtime reproduces a rebuilt network's run
    /// exactly, and dynamic hosts stay runtime-local.
    #[test]
    fn shared_topology_runtimes_match_rebuilt_networks() {
        // Build the same two-AS world as a bare (frozen) topology.
        let mut b = Topology::builder(NetworkConfig {
            core_link: LinkProfile::ideal(),
            ..Default::default()
        });
        b.add_simple_as(Asn(100), BorderPolicy::open());
        b.add_simple_as(Asn(200), BorderPolicy::open());
        b.announce(pre("192.0.2.0/24"), Asn(100));
        b.announce(pre("198.51.100.0/24"), Asn(200));
        let sink = b.add_host(HostConfig {
            addrs: vec![ip("198.51.100.10")],
            asn: Asn(200),
            stack: StackPolicy::permissive(),
        });
        let shooter = b.add_host(HostConfig {
            addrs: vec![ip("192.0.2.1")],
            asn: Asn(100),
            stack: StackPolicy::permissive(),
        });
        let topo = Arc::new(b.finish());
        let digest_before = topo.digest();

        let spawn_nodes = || -> Vec<Box<dyn Node>> {
            vec![
                Box::new(SinkNode::default()),
                Box::new(Shooter {
                    src: ip("192.0.2.1"),
                    dst: ip("198.51.100.10"),
                }),
            ]
        };

        // Two runtimes off one Arc, run back to back.
        for _ in 0..2 {
            let mut rt = Runtime::new(Arc::clone(&topo), spawn_nodes());
            // A runtime-local extra host must not leak into the topology.
            let extra = rt.add_host(
                HostConfig {
                    addrs: vec![ip("198.51.100.99")],
                    asn: Asn(200),
                    stack: StackPolicy::permissive(),
                },
                Box::new(SinkNode::default()),
            );
            assert_eq!(extra, topo.host_count());
            rt.run();
            assert_eq!(rt.counters.delivered, 1);
            assert_eq!(rt.node::<SinkNode>(sink).unwrap().received, 1);
            assert_eq!(rt.node::<SinkNode>(extra).unwrap().received, 0);
        }
        assert_eq!(topo.digest(), digest_before, "topology mutated by a run");
        assert_eq!(topo.host_count(), 2, "dynamic host leaked into topology");

        // The shared-topology run matches a rebuilt Network's run.
        let (mut net, sink2) = two_as_net(BorderPolicy::open(), BorderPolicy::open());
        add_shooter(&mut net, "192.0.2.1", "198.51.100.10");
        net.run();
        assert_eq!(net.node::<SinkNode>(sink2).unwrap().received, 1);
        let _ = shooter;
    }

    #[test]
    fn topology_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Topology>();
    }
}
