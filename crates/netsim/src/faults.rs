//! Seeded, deterministic fault schedules ("chaos") for the engine.
//!
//! A [`FaultSchedule`] is compiled once per run from `(chaos seed, profile,
//! domain)` and then consulted by the engine on every inter-AS traversal
//! ([`FaultSchedule::link_fate`]) and every host touch
//! ([`FaultSchedule::host_down`]). It layers:
//!
//! * **ambient loss** — i.i.d. per-packet drop probability,
//! * **delay jitter** — extra per-packet delay uniform in `[0, jitter]`,
//! * **reordering** — a fraction of packets get a large extra delay, so
//!   later sends overtake them,
//! * **duplication** — a fraction of packets deliver twice,
//! * **burst loss** — Gilbert–Elliott-style two-state loss: each affected
//!   AS alternates between a good state (ambient loss only) and a bad
//!   state (high loss) over seeded sim-time windows,
//! * **link flaps** — an affected AS's border goes fully dark for a
//!   window; everything crossing it drops,
//! * **crash/restart epochs** — an affected resolver host goes down for a
//!   window; packets to or from it drop.
//!
//! Determinism across shard layouts is the hard requirement (the survey
//! merge must stay byte-identical for `BCD_SHARDS=1/4/8`), and it shapes
//! the whole design:
//!
//! * Window-type faults (bursts, flaps, crashes) are **precompiled** from
//!   per-entity RNG streams (`stream_seed(chaos_seed, KIND ^ entity)`),
//!   so they are pure functions of sim time — traffic- and
//!   layout-independent by construction.
//! * Per-packet decisions (loss, jitter, reorder, duplicate) are **pure
//!   hash draws over a packet key**, never engine-RNG draws. For flows
//!   touching a *measured* AS — which live entirely inside the shard that
//!   owns that AS — the key is `(src, dst, send time, occurrence index)`,
//!   counted per flow at each instant. For infrastructure-only flows
//!   (public resolver ↔ auth estate), which mix traffic from many shards,
//!   occurrence indices are layout-dependent; there the key hashes the
//!   packet *content* (ports + payload) instead, which is
//!   layout-invariant because public-resolver query identities are
//!   derived from query content, not stream position.
//!
//! Every fault is a [`FaultEvent`] with a stable id; disabling a subset
//! (`with_events`) reruns the exact same world minus those events, which
//! is what the chaos sweep's delta-debugging shrinker drives. A schedule
//! is reproducible from the [`ChaosSpec`] replay line
//! (`BCD_CHAOS=seed=..,profile=..,events=..`).

use crate::counters::DropReason;
use crate::engine::{splitmix64, stream_seed};
use crate::node::HostId;
use crate::packet::{Packet, Transport};
use crate::time::{SimDuration, SimTime};
use crate::topology::Asn;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::net::IpAddr;
use std::str::FromStr;

// Per-entity stream tags for window generation.
const BURST_STREAM: u64 = 0x4348_414F_5342_5253;
const FLAP_STREAM: u64 = 0x4348_414F_5346_4C50;
const CRASH_STREAM: u64 = 0x4348_414F_5343_5253;

// Per-decision salts for packet-key hash draws.
const LOSS_SALT: u64 = 0x10;
const JITTER_SALT: u64 = 0x20;
const REORDER_SALT: u64 = 0x30;
const REORDER_SPREAD_SALT: u64 = 0x31;
const DUP_SALT: u64 = 0x40;
const DUP_DELAY_SALT: u64 = 0x41;
const SPOOF_SALT: u64 = 0x50;

/// Map a 64-bit hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn mix(key: u64, salt: u64) -> u64 {
    splitmix64(key ^ splitmix64(salt))
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn fnv_ip(h: &mut u64, ip: IpAddr) {
    match ip {
        IpAddr::V4(a) => fnv(h, &a.octets()),
        IpAddr::V6(a) => fnv(h, &a.octets()),
    }
}

/// Gilbert–Elliott-style two-state burst loss over an AS's border.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Fraction of domain ASes affected (per-AS seeded coin).
    pub fraction: f64,
    /// Loss probability while in the bad state.
    pub bad_loss: f64,
    /// Mean dwell time in the good state.
    pub mean_good: SimDuration,
    /// Mean dwell time in the bad state.
    pub mean_bad: SimDuration,
}

/// Full link-flap windows: an affected AS's border drops everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFlap {
    /// Fraction of domain ASes affected.
    pub fraction: f64,
    /// Mean dwell time up.
    pub mean_up: SimDuration,
    /// Mean dwell time down (flapped).
    pub mean_down: SimDuration,
}

/// Resolver crash/restart epochs: an affected host is unreachable and
/// sends nothing while down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashRestart {
    /// Fraction of eligible hosts affected.
    pub fraction: f64,
    /// Mean dwell time up.
    pub mean_up: SimDuration,
    /// Mean dwell time down (crashed).
    pub mean_down: SimDuration,
}

/// A named bundle of fault-injection knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosProfile {
    /// Ambient i.i.d. per-packet loss probability on inter-AS traversals.
    pub loss: f64,
    /// Max extra per-packet delay (uniform in `[0, jitter]`).
    pub jitter: SimDuration,
    /// Probability a packet is held back long enough to be overtaken.
    pub reorder: f64,
    /// Base hold-back for reordered packets (scaled ×[0.5, 1.5)).
    pub reorder_delay: SimDuration,
    /// Probability a packet delivers twice.
    pub duplicate: f64,
    /// Probability a DNS response is raced by an off-path spoofed copy
    /// with a wrong txid (Whac-A-Mole-style adversary). The forgery is
    /// injected *ahead* of the genuine answer; receivers that validate
    /// `(txid, port)` must reject it.
    pub spoof: f64,
    /// Two-state burst loss, if enabled.
    pub burst: Option<BurstLoss>,
    /// Link flaps, if enabled.
    pub flap: Option<LinkFlap>,
    /// Resolver crash/restart epochs, if enabled.
    pub crash: Option<CrashRestart>,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile::calm()
    }
}

impl ChaosProfile {
    /// No faults at all.
    pub fn calm() -> ChaosProfile {
        ChaosProfile {
            loss: 0.0,
            jitter: SimDuration::ZERO,
            reorder: 0.0,
            reorder_delay: SimDuration::ZERO,
            duplicate: 0.0,
            spoof: 0.0,
            burst: None,
            flap: None,
            crash: None,
        }
    }

    /// Ambient loss only — the compatibility shape behind the classic
    /// `link_loss` worldgen knob.
    pub fn loss_only(p: f64) -> ChaosProfile {
        ChaosProfile {
            loss: p,
            ..ChaosProfile::calm()
        }
    }

    /// All registered profile names, in replay-line order.
    pub fn names() -> &'static [&'static str] {
        &[
            "calm", "drizzle", "lossy", "bursty", "jittery", "flaky", "crashy", "hostile", "spoofy",
        ]
    }

    /// Look a profile up by name (the `profile=` field of a replay line).
    pub fn named(name: &str) -> Option<ChaosProfile> {
        Some(match name {
            "calm" => ChaosProfile::calm(),
            "drizzle" => ChaosProfile {
                loss: 0.02,
                jitter: SimDuration::from_millis(25),
                ..ChaosProfile::calm()
            },
            "lossy" => ChaosProfile {
                loss: 0.15,
                jitter: SimDuration::from_millis(60),
                duplicate: 0.01,
                ..ChaosProfile::calm()
            },
            "bursty" => ChaosProfile {
                loss: 0.002,
                burst: Some(BurstLoss {
                    fraction: 0.5,
                    bad_loss: 0.7,
                    mean_good: SimDuration::from_mins(8),
                    mean_bad: SimDuration::from_secs(45),
                }),
                ..ChaosProfile::calm()
            },
            "jittery" => ChaosProfile {
                jitter: SimDuration::from_millis(350),
                reorder: 0.30,
                reorder_delay: SimDuration::from_millis(250),
                duplicate: 0.02,
                ..ChaosProfile::calm()
            },
            "flaky" => ChaosProfile {
                loss: 0.01,
                flap: Some(LinkFlap {
                    fraction: 0.35,
                    mean_up: SimDuration::from_mins(22),
                    mean_down: SimDuration::from_secs(100),
                }),
                ..ChaosProfile::calm()
            },
            "crashy" => ChaosProfile {
                crash: Some(CrashRestart {
                    fraction: 0.30,
                    mean_up: SimDuration::from_mins(35),
                    mean_down: SimDuration::from_mins(4),
                }),
                ..ChaosProfile::calm()
            },
            "spoofy" => ChaosProfile {
                spoof: 0.35,
                ..ChaosProfile::calm()
            },
            "hostile" => ChaosProfile {
                loss: 0.05,
                jitter: SimDuration::from_millis(120),
                reorder: 0.15,
                reorder_delay: SimDuration::from_millis(200),
                duplicate: 0.01,
                spoof: 0.0,
                burst: Some(BurstLoss {
                    fraction: 0.25,
                    bad_loss: 0.5,
                    mean_good: SimDuration::from_mins(12),
                    mean_bad: SimDuration::from_secs(40),
                }),
                flap: Some(LinkFlap {
                    fraction: 0.15,
                    mean_up: SimDuration::from_mins(30),
                    mean_down: SimDuration::from_secs(70),
                }),
                crash: Some(CrashRestart {
                    fraction: 0.15,
                    mean_up: SimDuration::from_mins(45),
                    mean_down: SimDuration::from_mins(3),
                }),
            },
            _ => return None,
        })
    }

    /// True if every knob is off (a schedule compiled from it is empty).
    pub fn is_calm(&self) -> bool {
        *self == ChaosProfile::calm()
    }
}

/// A chaos run request: which faults, under which seed, over which horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Chaos seed — all fault randomness flows from it (usually derived
    /// from the world seed through its own stream).
    pub seed: u64,
    /// Name recorded in replay lines ("custom" for hand-built profiles).
    pub profile_name: String,
    /// Resolved knobs.
    pub profile: ChaosProfile,
    /// Restrict the schedule to these event ids (shrinker replays);
    /// `None` means all events are enabled.
    pub only_events: Option<Vec<u32>>,
    /// Sim-time horizon windows are generated over. Must cover the run.
    pub horizon: SimDuration,
}

impl ChaosConfig {
    /// Default horizon: covers a survey window plus the post-survey drain
    /// for every config in the tree.
    pub const DEFAULT_HORIZON: SimDuration = SimDuration::from_hours(8);

    /// A config for a named profile.
    pub fn named(seed: u64, name: &str) -> Option<ChaosConfig> {
        Some(ChaosConfig {
            seed,
            profile_name: name.to_string(),
            profile: ChaosProfile::named(name)?,
            only_events: None,
            horizon: Self::DEFAULT_HORIZON,
        })
    }

    /// A config for a hand-built profile (replay lines will carry `name`,
    /// which only round-trips through [`ChaosSpec`] if it is registered).
    pub fn custom(seed: u64, name: &str, profile: ChaosProfile) -> ChaosConfig {
        ChaosConfig {
            seed,
            profile_name: name.to_string(),
            profile,
            only_events: None,
            horizon: Self::DEFAULT_HORIZON,
        }
    }

    /// Resolve a replay spec (named profiles only).
    pub fn from_spec(spec: &ChaosSpec) -> Option<ChaosConfig> {
        let mut cfg = ChaosConfig::named(spec.seed, &spec.profile)?;
        cfg.only_events = spec.events.clone();
        Some(cfg)
    }

    /// The replay spec for this config.
    pub fn spec(&self) -> ChaosSpec {
        ChaosSpec {
            seed: self.seed,
            profile: self.profile_name.clone(),
            events: self.only_events.clone(),
        }
    }
}

/// A parsed `BCD_CHAOS` replay line: `seed=201,profile=hostile` or, after
/// shrinking, `seed=201,profile=hostile,events=3+17+40`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    pub seed: u64,
    pub profile: String,
    /// Enabled event ids; `None` means all.
    pub events: Option<Vec<u32>>,
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={},profile={}", self.seed, self.profile)?;
        if let Some(ids) = &self.events {
            let ids: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
            write!(f, ",events={}", ids.join("+"))?;
        }
        Ok(())
    }
}

impl FromStr for ChaosSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ChaosSpec, String> {
        let mut seed = None;
        let mut profile = None;
        let mut events = None;
        for part in s.split(',') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec field without '=': {part:?}"))?;
            match k {
                "seed" => {
                    seed = Some(v.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?);
                }
                "profile" => profile = Some(v.to_string()),
                "events" => {
                    if v == "all" {
                        events = None;
                    } else {
                        let ids = v
                            .split('+')
                            .map(|t| t.parse::<u32>().map_err(|e| format!("bad event id: {e}")))
                            .collect::<Result<Vec<u32>, String>>()?;
                        events = Some(ids);
                    }
                }
                other => return Err(format!("unknown chaos spec field {other:?}")),
            }
        }
        Ok(ChaosSpec {
            seed: seed.ok_or("chaos spec missing seed=")?,
            profile: profile.ok_or("chaos spec missing profile=")?,
            events,
        })
    }
}

/// What a fault event does, and to which entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Ambient i.i.d. loss on every inter-AS traversal.
    AmbientLoss { p: f64 },
    /// Per-packet extra delay uniform in `[0, max]`.
    Jitter { max: SimDuration },
    /// Hold back a fraction of packets so later sends overtake them.
    Reorder { p: f64, delay: SimDuration },
    /// Deliver a fraction of packets twice.
    Duplicate { p: f64 },
    /// Race a fraction of DNS responses with an off-path spoofed copy
    /// carrying a wrong txid.
    SpoofInject { p: f64 },
    /// One bad-state window of two-state burst loss at an AS border.
    BurstLoss { asn: Asn, loss: f64 },
    /// One link-flap window: the AS border drops everything.
    LinkFlap { asn: Asn },
    /// One crash epoch: the host is down.
    Crash { host: HostId },
}

impl FaultKind {
    /// Stable kind label (metrics, reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::AmbientLoss { .. } => "ambient-loss",
            FaultKind::Jitter { .. } => "jitter",
            FaultKind::Reorder { .. } => "reorder",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::SpoofInject { .. } => "spoof-inject",
            FaultKind::BurstLoss { .. } => "burst-loss",
            FaultKind::LinkFlap { .. } => "link-flap",
            FaultKind::Crash { .. } => "crash",
        }
    }
}

/// One schedulable fault with a stable id. Ambient layers span the whole
/// horizon; window faults carry their `[from, until)` span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub id: u32,
    pub kind: FaultKind,
    pub from: SimTime,
    pub until: SimTime,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} [{:.1}s, {:.1}s)",
            self.id,
            self.kind.name(),
            self.from.as_secs_f64(),
            self.until.as_secs_f64()
        )?;
        match self.kind {
            FaultKind::BurstLoss { asn, loss } => write!(f, " {asn} loss={loss}"),
            FaultKind::LinkFlap { asn } => write!(f, " {asn}"),
            FaultKind::Crash { host } => write!(f, " host={host}"),
            _ => Ok(()),
        }
    }
}

/// The entities a schedule may touch. Only *measured* ASes (and hosts
/// inside them) are eligible for window faults — infrastructure ASes mix
/// traffic from every shard, and faulting them per-window is fine, but the
/// survey semantics want chaos aimed at the measured edge.
#[derive(Debug, Clone, Default)]
pub struct FaultDomain {
    /// Measured ASNs: eligible for burst/flap windows, and the shard-local
    /// side of the packet-key dichotomy.
    pub asns: Vec<Asn>,
    /// Hosts eligible for crash/restart epochs (resolver hosts in
    /// measured ASes).
    pub crash_hosts: Vec<HostId>,
}

/// The verdict for one inter-AS traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFate {
    /// Drop the packet, attributing it to `DropReason`.
    Drop(DropReason),
    /// Deliver, with extra delay; `duplicate` carries the extra delay of a
    /// second copy if the packet duplicates.
    Pass {
        extra_delay: SimDuration,
        duplicate: Option<SimDuration>,
    },
}

/// A compiled, immutable fault schedule. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    profile_name: String,
    horizon: SimDuration,
    events: Vec<FaultEvent>,
    enabled: Vec<bool>,
    /// Measured ASNs: packet keys for flows touching these use occurrence
    /// counting (shard-local); all other flows use content keys.
    local_asns: HashSet<u32>,
    // ---- index over *enabled* events ----
    loss: f64,
    jitter_ns: u64,
    reorder: f64,
    reorder_delay_ns: u64,
    duplicate: f64,
    spoof: f64,
    /// Per-AS bad-state windows, sorted, non-overlapping: (from, until, loss).
    burst: HashMap<u32, Vec<(u64, u64, f64)>>,
    /// Per-AS flap windows, sorted, non-overlapping: (from, until).
    flap: HashMap<u32, Vec<(u64, u64)>>,
    /// Per-host crash epochs, sorted, non-overlapping: (from, until).
    crash: HashMap<HostId, Vec<(u64, u64)>>,
}

/// Alternating up/down spans from one entity stream: returns the *down*
/// (fault-active) windows in `[0, horizon)`, non-overlapping and sorted.
fn windows(
    rng: &mut ChaCha8Rng,
    mean_up: SimDuration,
    mean_down: SimDuration,
    horizon: SimDuration,
) -> Vec<(u64, u64)> {
    let horizon = horizon.as_nanos();
    let draw = |rng: &mut ChaCha8Rng, mean: SimDuration| -> u64 {
        let scale: f64 = rng.gen_range(0.3..1.7);
        ((mean.as_nanos() as f64 * scale) as u64).max(1)
    };
    if mean_up == SimDuration::ZERO || mean_down == SimDuration::ZERO {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut t = draw(rng, mean_up);
    while t < horizon {
        let until = (t + draw(rng, mean_down)).min(horizon);
        out.push((t, until));
        t = until + draw(rng, mean_up);
    }
    out
}

fn in_window(ws: &[(u64, u64)], now_ns: u64) -> bool {
    let i = ws.partition_point(|&(_, until)| until <= now_ns);
    i < ws.len() && ws[i].0 <= now_ns
}

impl FaultSchedule {
    /// Compile the schedule for `(cfg, domain)`. Event ids are stable for
    /// a given input: ambient layers first, then burst windows (ASN-major,
    /// time-minor), flap windows, crash epochs (host-major).
    pub fn compile(cfg: &ChaosConfig, domain: &FaultDomain) -> FaultSchedule {
        let p = &cfg.profile;
        let horizon = cfg.horizon;
        let end = SimTime::ZERO + horizon;
        let mut events = Vec::new();
        let mut push = |kind: FaultKind, from: SimTime, until: SimTime| {
            let id = events.len() as u32;
            events.push(FaultEvent {
                id,
                kind,
                from,
                until,
            });
        };

        if p.loss > 0.0 {
            push(FaultKind::AmbientLoss { p: p.loss }, SimTime::ZERO, end);
        }
        if p.jitter > SimDuration::ZERO {
            push(FaultKind::Jitter { max: p.jitter }, SimTime::ZERO, end);
        }
        if p.reorder > 0.0 && p.reorder_delay > SimDuration::ZERO {
            push(
                FaultKind::Reorder {
                    p: p.reorder,
                    delay: p.reorder_delay,
                },
                SimTime::ZERO,
                end,
            );
        }
        if p.duplicate > 0.0 {
            push(FaultKind::Duplicate { p: p.duplicate }, SimTime::ZERO, end);
        }
        if p.spoof > 0.0 {
            push(FaultKind::SpoofInject { p: p.spoof }, SimTime::ZERO, end);
        }
        if let Some(b) = p.burst {
            for &asn in &domain.asns {
                let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(
                    cfg.seed,
                    BURST_STREAM ^ splitmix64(asn.0 as u64),
                ));
                if !rng.gen_bool(b.fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                for (from, until) in windows(&mut rng, b.mean_good, b.mean_bad, horizon) {
                    push(
                        FaultKind::BurstLoss {
                            asn,
                            loss: b.bad_loss,
                        },
                        SimTime::ZERO + SimDuration::from_nanos(from),
                        SimTime::ZERO + SimDuration::from_nanos(until),
                    );
                }
            }
        }
        if let Some(fl) = p.flap {
            for &asn in &domain.asns {
                let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(
                    cfg.seed,
                    FLAP_STREAM ^ splitmix64(asn.0 as u64),
                ));
                if !rng.gen_bool(fl.fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                for (from, until) in windows(&mut rng, fl.mean_up, fl.mean_down, horizon) {
                    push(
                        FaultKind::LinkFlap { asn },
                        SimTime::ZERO + SimDuration::from_nanos(from),
                        SimTime::ZERO + SimDuration::from_nanos(until),
                    );
                }
            }
        }
        if let Some(c) = p.crash {
            for &host in &domain.crash_hosts {
                let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(
                    cfg.seed,
                    CRASH_STREAM ^ splitmix64(host as u64),
                ));
                if !rng.gen_bool(c.fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                for (from, until) in windows(&mut rng, c.mean_up, c.mean_down, horizon) {
                    push(
                        FaultKind::Crash { host },
                        SimTime::ZERO + SimDuration::from_nanos(from),
                        SimTime::ZERO + SimDuration::from_nanos(until),
                    );
                }
            }
        }

        let enabled = match &cfg.only_events {
            None => vec![true; events.len()],
            Some(ids) => {
                let keep: HashSet<u32> = ids.iter().copied().collect();
                events.iter().map(|e| keep.contains(&e.id)).collect()
            }
        };

        let mut sched = FaultSchedule {
            seed: cfg.seed,
            profile_name: cfg.profile_name.clone(),
            horizon,
            events,
            enabled,
            local_asns: domain.asns.iter().map(|a| a.0).collect(),
            loss: 0.0,
            jitter_ns: 0,
            reorder: 0.0,
            reorder_delay_ns: 0,
            duplicate: 0.0,
            spoof: 0.0,
            burst: HashMap::new(),
            flap: HashMap::new(),
            crash: HashMap::new(),
        };
        sched.reindex();
        sched
    }

    /// The same schedule with only `ids` enabled (delta-debugging replays).
    pub fn with_events(&self, ids: &[u32]) -> FaultSchedule {
        let keep: HashSet<u32> = ids.iter().copied().collect();
        let mut s = self.clone();
        s.enabled = s.events.iter().map(|e| keep.contains(&e.id)).collect();
        s.reindex();
        s
    }

    fn reindex(&mut self) {
        self.loss = 0.0;
        self.jitter_ns = 0;
        self.reorder = 0.0;
        self.reorder_delay_ns = 0;
        self.duplicate = 0.0;
        self.spoof = 0.0;
        self.burst.clear();
        self.flap.clear();
        self.crash.clear();
        for (e, &on) in self.events.iter().zip(&self.enabled) {
            if !on {
                continue;
            }
            let span = (e.from.as_nanos(), e.until.as_nanos());
            match e.kind {
                FaultKind::AmbientLoss { p } => self.loss = p,
                FaultKind::Jitter { max } => self.jitter_ns = max.as_nanos(),
                FaultKind::Reorder { p, delay } => {
                    self.reorder = p;
                    self.reorder_delay_ns = delay.as_nanos();
                }
                FaultKind::Duplicate { p } => self.duplicate = p,
                FaultKind::SpoofInject { p } => self.spoof = p,
                FaultKind::BurstLoss { asn, loss } => {
                    self.burst
                        .entry(asn.0)
                        .or_default()
                        .push((span.0, span.1, loss));
                }
                FaultKind::LinkFlap { asn } => {
                    self.flap.entry(asn.0).or_default().push(span);
                }
                FaultKind::Crash { host } => {
                    self.crash.entry(host).or_default().push(span);
                }
            }
        }
        // Windows were generated in time order per entity; enabling a
        // subset preserves that, so the per-entity lists stay sorted.
    }

    /// The chaos seed this schedule was compiled from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The profile name this schedule was compiled from.
    pub fn profile_name(&self) -> &str {
        &self.profile_name
    }

    /// The horizon windows were generated over.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// All events (enabled or not), id order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Ids of the currently enabled events.
    pub fn enabled_ids(&self) -> Vec<u32> {
        self.events
            .iter()
            .zip(&self.enabled)
            .filter(|(_, &on)| on)
            .map(|(e, _)| e.id)
            .collect()
    }

    /// Enabled-event counts by kind label (metrics, reports).
    pub fn event_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for (e, &on) in self.events.iter().zip(&self.enabled) {
            if on {
                *out.entry(e.kind.name()).or_insert(0) += 1;
            }
        }
        out
    }

    /// True if flows between `a` and `b` are shard-local (either side is a
    /// measured AS) and must use occurrence-counted packet keys.
    pub fn keys_by_occurrence(&self, a: Asn, b: Asn) -> bool {
        self.local_asns.contains(&a.0) || self.local_asns.contains(&b.0)
    }

    /// Packet key for shard-local flows: `(src, dst, send time, occurrence
    /// index among same-flow sends at that instant)`.
    pub fn occurrence_key(&self, src: IpAddr, dst: IpAddr, now: SimTime, occurrence: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fnv(&mut h, &self.seed.to_le_bytes());
        fnv_ip(&mut h, src);
        fnv_ip(&mut h, dst);
        fnv(&mut h, &(now.as_nanos()).to_le_bytes());
        fnv(&mut h, &occurrence.to_le_bytes());
        h
    }

    /// Packet key for infrastructure-only flows: hash the content. Public
    /// resolver identities (txid, source port) derive from query content,
    /// so this is invariant to shard layout even where traffic from many
    /// shards interleaves.
    pub fn content_key(&self, pkt: &Packet, now: SimTime) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fnv(&mut h, &self.seed.to_le_bytes());
        fnv_ip(&mut h, pkt.src);
        fnv_ip(&mut h, pkt.dst);
        fnv(&mut h, &(now.as_nanos()).to_le_bytes());
        match &pkt.transport {
            Transport::Udp(u) => {
                fnv(&mut h, &u.src_port.to_le_bytes());
                fnv(&mut h, &u.dst_port.to_le_bytes());
                fnv(&mut h, u.payload.as_slice());
            }
            Transport::Tcp(t) => {
                fnv(&mut h, &t.src_port.to_le_bytes());
                fnv(&mut h, &t.dst_port.to_le_bytes());
                fnv(&mut h, &t.seq.to_le_bytes());
                fnv(&mut h, t.payload.as_slice());
            }
        }
        h
    }

    /// True if an off-path attacker spoofs a forged copy of this DNS
    /// response (same flow, wrong txid) that races the genuine answer.
    /// A pure hash draw over the shard-invariant packet key, so the
    /// injection pattern is byte-identical across `BCD_SHARDS`. Only UDP
    /// packets sourced from port 53 (responses) with a demuxable header
    /// are eligible.
    pub fn spoof_response(&self, key: u64, pkt: &Packet) -> bool {
        if self.spoof <= 0.0 {
            return false;
        }
        let Transport::Udp(u) = &pkt.transport else {
            return false;
        };
        u.src_port == 53 && u.payload.len() >= 2 && unit(mix(key, SPOOF_SALT)) < self.spoof
    }

    /// True if `host` is inside a crash epoch at `now`.
    pub fn host_down(&self, host: HostId, now: SimTime) -> bool {
        self.crash
            .get(&host)
            .is_some_and(|ws| in_window(ws, now.as_nanos()))
    }

    /// Decide the fate of one inter-AS traversal from `a` to `b` at `now`,
    /// given the packet's shard-invariant key.
    pub fn link_fate(&self, key: u64, now: SimTime, a: Asn, b: Asn) -> LinkFate {
        let now_ns = now.as_nanos();
        let mut p_loss = self.loss;
        for asn in [a.0, b.0] {
            if let Some(ws) = self.flap.get(&asn) {
                if in_window(ws, now_ns) {
                    return LinkFate::Drop(DropReason::LinkFlap);
                }
            }
            if let Some(ws) = self.burst.get(&asn) {
                let i = ws.partition_point(|&(_, until, _)| until <= now_ns);
                if i < ws.len() && ws[i].0 <= now_ns {
                    p_loss = 1.0 - (1.0 - p_loss) * (1.0 - ws[i].2);
                }
            }
        }
        if p_loss > 0.0 && unit(mix(key, LOSS_SALT)) < p_loss {
            return LinkFate::Drop(DropReason::ChaosLoss);
        }
        let mut extra_ns: u64 = 0;
        if self.jitter_ns > 0 {
            extra_ns += (unit(mix(key, JITTER_SALT)) * self.jitter_ns as f64) as u64;
        }
        if self.reorder > 0.0 && unit(mix(key, REORDER_SALT)) < self.reorder {
            let scale = 0.5 + unit(mix(key, REORDER_SPREAD_SALT));
            extra_ns += (self.reorder_delay_ns as f64 * scale) as u64;
        }
        let duplicate = if self.duplicate > 0.0 && unit(mix(key, DUP_SALT)) < self.duplicate {
            // The copy trails the original by up to the jitter span (with a
            // 1ms floor so the copy is never simultaneous).
            let span = self.jitter_ns.max(1_000_000);
            Some(SimDuration::from_nanos(
                extra_ns + 1 + (unit(mix(key, DUP_DELAY_SALT)) * span as f64) as u64,
            ))
        } else {
            None
        };
        LinkFate::Pass {
            extra_delay: SimDuration::from_nanos(extra_ns),
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FaultDomain {
        FaultDomain {
            asns: (1000..1040).map(Asn).collect(),
            crash_hosts: (0..60).collect(),
        }
    }

    fn hostile(seed: u64) -> FaultSchedule {
        FaultSchedule::compile(&ChaosConfig::named(seed, "hostile").unwrap(), &domain())
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let a = hostile(7);
        let b = hostile(7);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.enabled_ids(), b.enabled_ids());
        let c = hostile(8);
        assert_ne!(
            a.events(),
            c.events(),
            "different chaos seeds must give different window layouts"
        );
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let s = hostile(7);
        for (i, e) in s.events().iter().enumerate() {
            assert_eq!(e.id as usize, i);
        }
        assert!(s.events().len() > 10, "hostile should generate many events");
    }

    #[test]
    fn with_events_restricts_and_reindexes() {
        let s = hostile(7);
        // Find a crash event and keep only it.
        let crash_id = s
            .events()
            .iter()
            .find(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .expect("hostile generates crash epochs")
            .id;
        let only = s.with_events(&[crash_id]);
        assert_eq!(only.enabled_ids(), vec![crash_id]);
        let FaultKind::Crash { host } = only.events()[crash_id as usize].kind else {
            unreachable!()
        };
        let mid = SimTime::ZERO
            + SimDuration::from_nanos(
                (only.events()[crash_id as usize].from.as_nanos()
                    + only.events()[crash_id as usize].until.as_nanos())
                    / 2,
            );
        assert!(only.host_down(host, mid));
        // Ambient layers are disabled: every link passes with no delay.
        match only.link_fate(12345, mid, Asn(1), Asn(2)) {
            LinkFate::Pass {
                extra_delay,
                duplicate,
            } => {
                assert_eq!(extra_delay, SimDuration::ZERO);
                assert!(duplicate.is_none());
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let s = hostile(42);
        for ws in s.flap.values().chain(s.crash.values()) {
            for w in ws.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping windows: {w:?}");
            }
        }
        for ws in s.burst.values() {
            for w in ws.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping windows: {w:?}");
            }
        }
    }

    #[test]
    fn link_fate_is_a_pure_function_of_key_and_time() {
        let s = hostile(7);
        let t = SimTime::from_secs(100);
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(
                s.link_fate(key, t, Asn(1000), Asn(64502)),
                s.link_fate(key, t, Asn(1000), Asn(64502))
            );
        }
    }

    #[test]
    fn ambient_loss_rate_is_near_nominal() {
        let s = FaultSchedule::compile(
            &ChaosConfig::custom(3, "loss", ChaosProfile::loss_only(0.2)),
            &domain(),
        );
        let t = SimTime::from_secs(1);
        let dropped = (0..20_000)
            .filter(|&i| {
                matches!(
                    s.link_fate(splitmix64(i), t, Asn(1000), Asn(1001)),
                    LinkFate::Drop(DropReason::ChaosLoss)
                )
            })
            .count();
        let rate = dropped as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "loss rate {rate} far from 0.2");
    }

    #[test]
    fn flap_window_drops_everything_for_affected_as_only() {
        let s = FaultSchedule::compile(
            &ChaosConfig::custom(
                11,
                "flaponly",
                ChaosProfile {
                    flap: Some(LinkFlap {
                        fraction: 1.0,
                        mean_up: SimDuration::from_mins(10),
                        mean_down: SimDuration::from_mins(2),
                    }),
                    ..ChaosProfile::calm()
                },
            ),
            &domain(),
        );
        let e = s
            .events()
            .iter()
            .find(|e| matches!(e.kind, FaultKind::LinkFlap { .. }))
            .unwrap();
        let FaultKind::LinkFlap { asn } = e.kind else {
            unreachable!()
        };
        let mid =
            SimTime::ZERO + SimDuration::from_nanos((e.from.as_nanos() + e.until.as_nanos()) / 2);
        assert_eq!(
            s.link_fate(5, mid, asn, Asn(64502)),
            LinkFate::Drop(DropReason::LinkFlap)
        );
        assert_eq!(
            s.link_fate(5, mid, Asn(64502), asn),
            LinkFate::Drop(DropReason::LinkFlap),
            "flap applies in both directions"
        );
        // Before the window starts the link is up.
        if e.from > SimTime::ZERO {
            let before = SimTime::ZERO + SimDuration::from_nanos(e.from.as_nanos() - 1);
            assert!(matches!(
                s.link_fate(5, before, asn, Asn(64502)),
                LinkFate::Pass { .. }
            ));
        }
    }

    #[test]
    fn spoof_draw_targets_responses_only_and_is_pure() {
        let s = FaultSchedule::compile(&ChaosConfig::named(5, "spoofy").unwrap(), &domain());
        assert_eq!(s.event_counts().get("spoof-inject"), Some(&1));
        let src: IpAddr = "60.0.0.1".parse().unwrap();
        let dst: IpAddr = "60.1.0.1".parse().unwrap();
        let response = Packet::udp(src, dst, 53, 31111, vec![0xAB, 0xCD, 1, 2]);
        let query = Packet::udp(src, dst, 31111, 53, vec![0xAB, 0xCD, 1, 2]);
        let spoofed = (0..20_000)
            .filter(|&i| s.spoof_response(splitmix64(i), &response))
            .count();
        let rate = spoofed as f64 / 20_000.0;
        assert!(
            (rate - 0.35).abs() < 0.02,
            "spoof rate {rate} far from nominal 0.35"
        );
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(
                s.spoof_response(key, &response),
                s.spoof_response(key, &response),
                "spoof draw must be a pure function of the key"
            );
            assert!(
                !s.spoof_response(key, &query),
                "queries (dst port 53) must never be spoof-raced"
            );
        }
        // Disabling the single ambient event turns the adversary off.
        let off = s.with_events(&[]);
        assert!((0..1000).all(|i| !off.spoof_response(splitmix64(i), &response)));
    }

    #[test]
    fn chaos_spec_round_trips() {
        for line in [
            "seed=201,profile=hostile",
            "seed=0,profile=calm",
            "seed=18446744073709551615,profile=flaky,events=0+4+17",
        ] {
            let spec: ChaosSpec = line.parse().unwrap();
            assert_eq!(spec.to_string(), line);
        }
        let spec: ChaosSpec = "seed=1,profile=lossy,events=all".parse().unwrap();
        assert_eq!(spec.events, None);
        assert!("profile=lossy".parse::<ChaosSpec>().is_err());
        assert!("seed=1".parse::<ChaosSpec>().is_err());
        assert!("seed=x,profile=lossy".parse::<ChaosSpec>().is_err());
    }

    #[test]
    fn named_profiles_resolve_and_calm_is_empty() {
        for name in ChaosProfile::names() {
            assert!(ChaosProfile::named(name).is_some(), "missing {name}");
            assert!(ChaosConfig::named(1, name).is_some());
        }
        assert!(ChaosProfile::named("no-such-profile").is_none());
        let calm = FaultSchedule::compile(&ChaosConfig::named(1, "calm").unwrap(), &domain());
        assert!(calm.events().is_empty());
    }

    #[test]
    fn spec_round_trips_through_config() {
        let spec: ChaosSpec = "seed=9,profile=bursty,events=1+2".parse().unwrap();
        let cfg = ChaosConfig::from_spec(&spec).unwrap();
        assert_eq!(cfg.spec(), spec);
        assert!(ChaosConfig::from_spec(&ChaosSpec {
            seed: 1,
            profile: "bogus".into(),
            events: None
        })
        .is_none());
    }
}
