//! # bcd-netsim — deterministic discrete-event Internet simulator
//!
//! This crate is the substrate on which the *Behind Closed Doors* (IMC 2020)
//! measurement methodology runs. It models exactly the pieces of the Internet
//! the paper's experiment observes:
//!
//! * **virtual time** with nanosecond resolution ([`SimTime`], [`SimDuration`]),
//! * an **event engine** split into an immutable, `Arc`-shareable world
//!   ([`Topology`]) and a cheap per-run execution state ([`Runtime`]) driving
//!   host nodes ([`Node`]) with packet deliveries and timers, fully
//!   deterministic for a given seed ([`Network`] bundles the two for the
//!   single-engine case),
//! * **IPv4/IPv6 packets** carrying UDP datagrams or a simplified-but-
//!   fingerprintable TCP ([`Packet`], [`TcpSegment`]),
//! * **autonomous systems** announcing prefixes, with per-AS border policies:
//!   origin-side and destination-side source address validation (OSAV/DSAV)
//!   and bogon (private / loopback source) ingress filtering
//!   ([`AsInfo`], [`BorderPolicy`]),
//! * **longest-prefix-match routing** ([`PrefixTable`]),
//! * **links with fault injection** — delay, jitter, loss, duplication
//!   ([`LinkProfile`]),
//! * **host network stacks** that accept or drop packets whose source equals
//!   the destination address ("destination-as-source") or the loopback
//!   address, per OS ([`StackPolicy`]; the per-OS tables live in
//!   `bcd-osmodel`),
//! * a **packet trace** facility for debugging and tests ([`Trace`]),
//! * a **causal span flight recorder** for per-query tracing: deterministic
//!   [`TraceId`]s carried on packets, typed [`SpanKind`] steps, bounded
//!   shard-mergeable windows ([`FlightRecorder`]).
//!
//! Determinism: all simulation randomness flows from one `u64` seed through a
//! `ChaCha8Rng`; event ties are broken by a monotone sequence number, so a run
//! is bit-for-bit reproducible across platforms.
//!
//! The design follows the smoltcp idiom from the session's networking guides:
//! event-driven, no async runtime (the workload is CPU-bound with virtual
//! time), typed packet layers, explicit state machines, and first-class fault
//! injection.

pub mod counters;
pub mod engine;
pub mod faults;
pub mod link;
pub mod lpm;
pub mod merge;
pub mod node;
pub mod packet;
pub mod payload;
pub mod pcap;
pub mod prefix;
pub mod routing;
pub mod sched;
pub mod span;
pub mod time;
pub mod topology;
pub mod trace;

pub use counters::{DropReason, NetCounters};
pub use engine::{
    splitmix64, stream_seed, subnet_permille, HostConfig, Network, NetworkConfig, Runtime,
    Topology, TopologyBuilder,
};
pub use faults::{
    BurstLoss, ChaosConfig, ChaosProfile, ChaosSpec, CrashRestart, FaultDomain, FaultEvent,
    FaultKind, FaultSchedule, LinkFate, LinkFlap,
};
pub use link::LinkProfile;
pub use lpm::LpmTrie;
pub use merge::Merge;
pub use node::{HostId, Node, NodeCtx};
pub use packet::{Packet, TcpFlags, TcpOptions, TcpSegment, Transport, UdpDatagram};
pub use payload::Payload;
pub use prefix::Prefix;
pub use routing::{PrefixMap, PrefixTable};
pub use sched::{EngineSched, EventQueue, HeapSched, QueuedEvent, SchedKind, WheelSched};
pub use span::{trace_id, FlightRecorder, Span, SpanKind, TraceId, TraceSample};
pub use time::{SimDuration, SimTime};
pub use topology::{AsInfo, Asn, BorderPolicy, StackPolicy};
pub use trace::{Trace, TraceEntry, TracePoint};
