//! Link models with fault injection.
//!
//! Every packet traversal samples one [`LinkProfile`]: a base propagation
//! delay, uniform jitter, a loss probability and a duplication probability.
//! Fault injection is first-class (per the smoltcp idiom) so tests can
//! exercise retransmission, reordering, and measurement robustness under
//! packet loss — the paper's methodology must (and does) tolerate all three.

use crate::time::SimDuration;
use rand::Rng;

/// Stochastic link behaviour. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Fixed one-way propagation + queueing delay.
    pub base_delay: SimDuration,
    /// Additional delay sampled uniformly from `[0, jitter]`.
    pub jitter: SimDuration,
    /// Probability the packet is silently dropped.
    pub loss: f64,
    /// Probability the packet is delivered twice (the duplicate gets an
    /// independent delay sample).
    pub duplicate: f64,
}

impl LinkProfile {
    /// An ideal link: no delay variance, no faults. 10 ms one-way.
    pub fn ideal() -> LinkProfile {
        LinkProfile {
            base_delay: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            duplicate: 0.0,
        }
    }

    /// A typical wide-area path: 40 ms ± 20 ms, 0.2% loss.
    pub fn internet() -> LinkProfile {
        LinkProfile {
            base_delay: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(20),
            loss: 0.002,
            duplicate: 0.0001,
        }
    }

    /// A lossy path for failure-injection tests.
    pub fn lossy(loss: f64) -> LinkProfile {
        LinkProfile {
            loss,
            ..LinkProfile::internet()
        }
    }

    /// Zero-latency loopback-style link, used by lab harnesses where latency
    /// is irrelevant (queries still get strictly ordered by event sequence).
    pub fn instant() -> LinkProfile {
        LinkProfile {
            base_delay: SimDuration::from_micros(50),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            duplicate: 0.0,
        }
    }

    /// Sample the fate of one traversal: `None` = lost; `Some((d, dup))` =
    /// delivered after `d`, plus an optional duplicate delivered after `dup`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(SimDuration, Option<SimDuration>)> {
        if self.loss > 0.0 && rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return None;
        }
        let d = self.base_delay + self.sample_jitter(rng);
        let dup = if self.duplicate > 0.0 && rng.gen_bool(self.duplicate.clamp(0.0, 1.0)) {
            Some(self.base_delay + self.sample_jitter(rng))
        } else {
            None
        };
        Some((d, dup))
    }

    fn sample_jitter<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let j = self.jitter.as_nanos();
        if j == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.gen_range(0..=j))
        }
    }
}

impl Default for LinkProfile {
    fn default() -> LinkProfile {
        LinkProfile::internet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_link_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let l = LinkProfile::ideal();
        for _ in 0..100 {
            let (d, dup) = l.sample(&mut rng).unwrap();
            assert_eq!(d, SimDuration::from_millis(10));
            assert!(dup.is_none());
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let l = LinkProfile::lossy(1.0);
        for _ in 0..50 {
            assert!(l.sample(&mut rng).is_none());
        }
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let l = LinkProfile::lossy(0.3);
        let delivered = (0..10_000).filter(|_| l.sample(&mut rng).is_some()).count();
        // 70% ± 2.5% delivery over 10k samples.
        assert!(
            (6_750..=7_250).contains(&delivered),
            "delivered = {delivered}"
        );
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let l = LinkProfile {
            base_delay: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(20),
            loss: 0.0,
            duplicate: 0.0,
        };
        for _ in 0..1_000 {
            let (d, _) = l.sample(&mut rng).unwrap();
            assert!(d >= SimDuration::from_millis(40));
            assert!(d <= SimDuration::from_millis(60));
        }
    }

    #[test]
    fn duplication_produces_second_copy() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let l = LinkProfile {
            base_delay: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            duplicate: 1.0,
        };
        let (_, dup) = l.sample(&mut rng).unwrap();
        assert_eq!(dup, Some(SimDuration::from_millis(1)));
    }
}
