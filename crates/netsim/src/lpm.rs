//! Compact arena-backed longest-prefix-match trie.
//!
//! [`LpmTrie`] is the scale-oriented replacement for the boxed-node
//! [`crate::PrefixMap`]: a path-compressed binary trie over left-aligned
//! `u128` keys whose nodes live in one flat `Vec` with `u32` child indices.
//! Compression means interior chains of single-child nodes never exist —
//! a node is either a stored prefix, a branch point, or both — so a table
//! of `n` prefixes needs at most `2n + 2` nodes regardless of prefix
//! length, and a lookup touches at most one cache line per *branching*
//! level instead of one heap allocation per bit.
//!
//! Semantics are identical to `PrefixMap` (the differential proptests in
//! `tests/proptests.rs` and the `BCD_LPM=map` oracle switch in
//! [`crate::PrefixTable`] hold the two to byte-equal answers): insert
//! replaces, lookup returns the most specific stored prefix covering the
//! address, and the two address families are fully independent (IPv4 keys
//! are left-aligned into the same `u128` space but rooted separately).

use crate::prefix::Prefix;
use std::net::IpAddr;

const NONE: u32 = u32::MAX;
/// Arena index of the IPv4 root (len-0 pseudo-node).
const ROOT_V4: usize = 0;
/// Arena index of the IPv6 root.
const ROOT_V6: usize = 1;

#[derive(Debug, Clone)]
struct Node<T> {
    /// Left-aligned prefix bits; bits at positions `>= len` are zero.
    key: u128,
    /// Prefix length this node represents. Path compression lets child
    /// lengths jump by more than one.
    len: u8,
    /// Value stored at this exact prefix, if announced.
    value: Option<T>,
    /// Children indexed by the bit at position `len` ([`NONE`] = absent).
    children: [u32; 2],
}

impl<T> Node<T> {
    fn pseudo_root() -> Node<T> {
        Node {
            key: 0,
            len: 0,
            value: None,
            children: [NONE, NONE],
        }
    }
}

/// A longest-prefix-match map from [`Prefix`] to `T`, arena-backed and
/// path-compressed.
#[derive(Debug, Clone)]
pub struct LpmTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

/// Bit `i` (MSB-first) of a left-aligned key.
#[inline]
fn bit_at(key: u128, i: u8) -> usize {
    ((key >> (127 - i as u32)) & 1) as usize
}

/// Length of the common prefix of two left-aligned keys (0..=128).
#[inline]
fn common_prefix(a: u128, b: u128) -> u8 {
    (a ^ b).leading_zeros() as u8
}

/// Zero every bit at position `>= len`.
#[inline]
fn mask(key: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        key & (u128::MAX << (128 - len as u32))
    }
}

impl<T: Copy> Default for LpmTrie<T> {
    fn default() -> Self {
        LpmTrie {
            nodes: vec![Node::pseudo_root(), Node::pseudo_root()],
            len: 0,
        }
    }
}

impl<T: Copy> LpmTrie<T> {
    /// An empty trie.
    pub fn new() -> LpmTrie<T> {
        LpmTrie::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arena size in nodes (capacity diagnostics; bounded by `2·len + 2`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn root_of(&self, v6: bool) -> usize {
        if v6 {
            ROOT_V6
        } else {
            ROOT_V4
        }
    }

    /// Insert (or replace) the value at `prefix`; returns the old value.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let (raw, plen) = prefix.key();
        let key = mask(raw, plen);
        let mut cur = self.root_of(prefix.is_v6());
        loop {
            let (nkey, nlen) = (self.nodes[cur].key, self.nodes[cur].len);
            let cpl = common_prefix(key, nkey).min(plen).min(nlen);
            if cpl < nlen {
                // The new prefix diverges inside this node's compressed
                // span: split at the divergence point. `cur` keeps its
                // identity (parent pointers stay valid) and becomes the
                // split node; the old contents move to a fresh child.
                let moved = self.nodes.len() as u32;
                let old_node = Node {
                    key: nkey,
                    len: nlen,
                    value: self.nodes[cur].value,
                    children: self.nodes[cur].children,
                };
                self.nodes.push(old_node);
                let split = &mut self.nodes[cur];
                split.key = mask(key, cpl);
                split.len = cpl;
                split.value = None;
                split.children = [NONE, NONE];
                split.children[bit_at(nkey, cpl)] = moved;
                if cpl == plen {
                    // The inserted prefix *is* the split point.
                    self.nodes[cur].value = Some(value);
                    self.len += 1;
                    return None;
                }
                let leaf = self.nodes.len() as u32;
                self.nodes.push(Node {
                    key,
                    len: plen,
                    value: Some(value),
                    children: [NONE, NONE],
                });
                self.nodes[cur].children[bit_at(key, cpl)] = leaf;
                self.len += 1;
                return None;
            }
            // This node's prefix covers the key.
            if plen == nlen {
                let old = self.nodes[cur].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            let b = bit_at(key, nlen);
            match self.nodes[cur].children[b] {
                NONE => {
                    let leaf = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        key,
                        len: plen,
                        value: Some(value),
                        children: [NONE, NONE],
                    });
                    self.nodes[cur].children[b] = leaf;
                    self.len += 1;
                    return None;
                }
                c => cur = c as usize,
            }
        }
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `ip`, with its value.
    pub fn lookup(&self, ip: IpAddr) -> Option<(Prefix, T)> {
        let v6 = ip.is_ipv6();
        let width: u8 = if v6 { 128 } else { 32 };
        let (key, _) = Prefix::new(ip, width).key();
        let mut cur = self.root_of(v6);
        let mut best: Option<(u8, T)> = None;
        loop {
            let n = &self.nodes[cur];
            if common_prefix(key, n.key) < n.len {
                break;
            }
            if let Some(v) = n.value {
                best = Some((n.len, v));
            }
            if n.len >= width {
                break;
            }
            match n.children[bit_at(key, n.len)] {
                NONE => break,
                c => cur = c as usize,
            }
        }
        best.map(|(len, v)| (Prefix::new(ip, len), v))
    }

    /// The value at the most specific prefix covering `ip`, if any.
    pub fn get(&self, ip: IpAddr) -> Option<T> {
        self.lookup(ip).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let mut t = LpmTrie::new();
        t.insert(p("10.0.0.0/8"), Asn(100));
        t.insert(p("10.1.0.0/16"), Asn(200));
        t.insert(p("10.1.2.0/24"), Asn(300));
        assert_eq!(t.get(ip("10.9.9.9")), Some(Asn(100)));
        assert_eq!(t.get(ip("10.1.9.9")), Some(Asn(200)));
        assert_eq!(t.get(ip("10.1.2.9")), Some(Asn(300)));
        assert_eq!(t.get(ip("11.0.0.1")), None);
        let (pre, asn) = t.lookup(ip("10.1.2.3")).unwrap();
        assert_eq!(pre, p("10.1.2.0/24"));
        assert_eq!(asn, Asn(300));
    }

    #[test]
    fn families_are_independent() {
        let mut t = LpmTrie::new();
        t.insert(p("0.0.0.0/0"), 1u8);
        t.insert(p("2001:db8::/32"), 2);
        assert_eq!(t.get(ip("8.8.8.8")), Some(1));
        assert_eq!(t.get(ip("2001:db8::1")), Some(2));
        assert_eq!(t.get(ip("2600::1")), None);
    }

    #[test]
    fn split_point_handles_sibling_divergence() {
        let mut t = LpmTrie::new();
        // Two /24s diverging at bit 16 force a split node at /16.
        t.insert(p("192.0.2.0/24"), 1u8);
        t.insert(p("192.0.77.0/24"), 2);
        assert_eq!(t.get(ip("192.0.2.9")), Some(1));
        assert_eq!(t.get(ip("192.0.77.9")), Some(2));
        assert_eq!(t.get(ip("192.0.3.9")), None);
        // Now announce the split point itself.
        t.insert(p("192.0.0.0/16"), 3);
        assert_eq!(t.get(ip("192.0.3.9")), Some(3));
        assert_eq!(t.get(ip("192.0.2.9")), Some(1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_shorter_prefix_above_existing_leaf() {
        let mut t = LpmTrie::new();
        t.insert(p("10.1.2.0/24"), 1u8);
        // /8 is a strict prefix of the stored /24: split places the new
        // value at the intermediate node.
        t.insert(p("10.0.0.0/8"), 2);
        assert_eq!(t.get(ip("10.1.2.3")), Some(1));
        assert_eq!(t.get(ip("10.200.0.1")), Some(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reinsert_replaces_and_returns_old() {
        let mut t = LpmTrie::new();
        assert_eq!(t.insert(p("192.0.2.0/24"), 5u8), None);
        assert_eq!(t.insert(p("192.0.2.0/24"), 9), Some(5));
        assert_eq!(t.get(ip("192.0.2.1")), Some(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_routes_match_exactly() {
        let mut t = LpmTrie::new();
        t.insert(p("192.0.2.7/32"), 1u8);
        t.insert(p("2001:db8::7/128"), 2);
        assert_eq!(t.get(ip("192.0.2.7")), Some(1));
        assert_eq!(t.get(ip("192.0.2.8")), None);
        assert_eq!(t.get(ip("2001:db8::7")), Some(2));
        assert_eq!(t.get(ip("2001:db8::8")), None);
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let mut t = LpmTrie::new();
        t.insert(Prefix::v4_default(), 7u8);
        assert_eq!(t.get(ip("1.2.3.4")), Some(7));
        let (pre, _) = t.lookup(ip("1.2.3.4")).unwrap();
        assert_eq!(pre, Prefix::v4_default());
    }

    #[test]
    fn node_arena_stays_compact() {
        let mut t = LpmTrie::new();
        for i in 0..64u32 {
            let addr = IpAddr::V4(std::net::Ipv4Addr::from(0x0A00_0000 | (i << 8)));
            t.insert(Prefix::new(addr, 24), i);
        }
        assert_eq!(t.len(), 64);
        assert!(
            t.node_count() <= 2 * t.len() + 2,
            "arena grew past the 2n+2 bound: {} nodes for {} prefixes",
            t.node_count(),
            t.len()
        );
    }
}
