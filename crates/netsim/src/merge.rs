//! Deterministic combination of per-shard run artifacts.
//!
//! A sharded survey runs `S` independent [`crate::Network`] instances and
//! must fold their accounting back into one logical run. [`Merge`] is the
//! contract for that fold: commutative and associative for counter-like
//! types, so the merged result is independent of shard completion order
//! (the runner still merges in shard-id order for full determinism).

use crate::counters::NetCounters;
use crate::trace::Trace;

/// Fold another instance of `Self` into this one.
///
/// Implementations must be commutative and associative up to the semantics
/// of the type (counters: exact; ordered captures: order is re-established
/// by sorting on the entry timestamp).
pub trait Merge {
    fn merge(&mut self, other: Self);
}

impl Merge for NetCounters {
    fn merge(&mut self, other: NetCounters) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.duplicated += other.duplicated;
        self.injected += other.injected;
        self.intercepted += other.intercepted;
        for (reason, n) in other.drops {
            *self.drops.entry(reason).or_insert(0) += n;
        }
    }
}

impl Merge for Trace {
    /// Interleave two captures by timestamp (stable: at equal times, `self`
    /// entries precede `other`'s), keeping the larger capacity and counting
    /// anything beyond it as overflow.
    fn merge(&mut self, other: Trace) {
        self.absorb(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::DropReason;

    fn counters(sent: u64, dsav: u64) -> NetCounters {
        let mut c = NetCounters {
            sent,
            delivered: sent / 2,
            ..NetCounters::default()
        };
        for _ in 0..dsav {
            c.drop(DropReason::Dsav);
        }
        c
    }

    #[test]
    fn counters_merge_sums_everything() {
        let mut a = counters(10, 3);
        a.drop(DropReason::NoRoute);
        let b = counters(4, 2);
        a.merge(b);
        assert_eq!(a.sent, 14);
        assert_eq!(a.delivered, 7);
        assert_eq!(a.dropped(DropReason::Dsav), 5);
        assert_eq!(a.dropped(DropReason::NoRoute), 1);
        assert_eq!(a.total_drops(), 6);
    }

    #[test]
    fn counters_merge_commutes() {
        let mut ab = counters(10, 3);
        ab.merge(counters(4, 2));
        let mut ba = counters(4, 2);
        ba.merge(counters(10, 3));
        assert_eq!(ab.sent, ba.sent);
        assert_eq!(ab.drops, ba.drops);
    }
}
