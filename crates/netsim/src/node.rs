//! The node programming model.
//!
//! A [`Node`] is the behaviour attached to a host: a recursive resolver, an
//! authoritative server, the scanner client, a middlebox... Nodes are driven
//! by two callbacks — packet delivery and timer expiry — and interact with
//! the world exclusively through [`NodeCtx`], which *stages* effects (sends,
//! timers) that the engine applies after the callback returns. This is the
//! classic discrete-event pattern: it keeps the engine borrow-safe and makes
//! node logic trivially unit-testable with a synthetic context.

use crate::packet::Packet;
use crate::span::{FlightRecorder, SpanKind, TraceId};
use crate::time::{SimDuration, SimTime};
use rand_chacha::ChaCha8Rng;

/// Identifier of a host within a [`crate::Network`].
pub type HostId = usize;

/// An effect staged by a node during a callback.
#[derive(Debug)]
pub enum Effect {
    /// Transmit a packet (subject to routing, border policy, link faults).
    Send(Packet),
    /// Request a timer callback `after` from now with an opaque token.
    Timer { after: SimDuration, token: u64 },
}

/// Execution context passed to node callbacks.
pub struct NodeCtx<'a> {
    now: SimTime,
    host: HostId,
    rng: &'a mut ChaCha8Rng,
    effects: &'a mut Vec<Effect>,
    /// Span sink when the engine's flight recorder is armed; `None` keeps
    /// the disabled cost at one untaken branch per [`NodeCtx::span`] call.
    spans: Option<&'a mut FlightRecorder>,
}

impl<'a> NodeCtx<'a> {
    /// Construct a context (no span sink). Public so tests and alternative
    /// engines can drive nodes directly.
    pub fn new(
        now: SimTime,
        host: HostId,
        rng: &'a mut ChaCha8Rng,
        effects: &'a mut Vec<Effect>,
    ) -> NodeCtx<'a> {
        NodeCtx {
            now,
            host,
            rng,
            effects,
            spans: None,
        }
    }

    /// Construct a context with an optional span sink (what the engine
    /// builds when its flight recorder is armed).
    pub fn with_recorder(
        now: SimTime,
        host: HostId,
        rng: &'a mut ChaCha8Rng,
        effects: &'a mut Vec<Effect>,
        spans: Option<&'a mut FlightRecorder>,
    ) -> NodeCtx<'a> {
        NodeCtx {
            now,
            host,
            rng,
            effects,
            spans,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this node is attached to.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Deterministic RNG shared by the simulation.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Stage a packet for transmission.
    pub fn send(&mut self, pkt: Packet) {
        self.effects.push(Effect::Send(pkt));
    }

    /// Stage a timer that fires `after` from now, delivering `token` to
    /// [`Node::on_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { after, token });
    }

    /// True when a flight recorder is armed (nodes can skip building
    /// expensive detail strings otherwise — though the closure form of
    /// [`NodeCtx::span`] already defers that).
    pub fn tracing(&self) -> bool {
        self.spans.is_some()
    }

    /// Origin-side sampling decision for a query qname: the trace id to
    /// stamp on the packet, or `0` (untraced / recorder unarmed). See
    /// [`crate::TraceSample`].
    pub fn sample_trace(&self, qname: &str) -> TraceId {
        self.spans.as_ref().map_or(0, |rec| rec.sample(qname))
    }

    /// Emit a span for `trace` at the current instant. No-op when the
    /// recorder is unarmed or `trace == 0`; the detail closure only runs
    /// when the span is actually recorded.
    pub fn span(&mut self, trace: TraceId, kind: SpanKind, detail: impl FnOnce() -> String) {
        if trace == 0 {
            return;
        }
        if let Some(rec) = self.spans.as_deref_mut() {
            rec.record(self.now, trace, kind, detail());
        }
    }
}

/// Behaviour attached to a host.
///
/// The `Any` supertrait lets tests and analyses downcast a stored
/// `Box<dyn Node>` back to its concrete type via
/// [`crate::Network::node`] / [`crate::Network::node_mut`].
pub trait Node: std::any::Any {
    /// A packet addressed to (one of) this host's addresses was delivered.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet);

    /// A timer set via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// Called once when the simulation starts (in host-id order).
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
}

/// A node that silently absorbs all traffic. Useful as a placeholder for
/// hosts that exist only to occupy an address.
#[derive(Debug, Default)]
pub struct SinkNode {
    /// Packets received, for assertions in tests.
    pub received: u64,
}

impl Node for SinkNode {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {
        self.received += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::net::IpAddr;

    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
            // Reply by swapping addresses and ports.
            if let crate::packet::Transport::Udp(u) = &pkt.transport {
                ctx.send(Packet::udp(
                    pkt.dst,
                    pkt.src,
                    u.dst_port,
                    u.src_port,
                    u.payload.clone(),
                ));
                ctx.set_timer(SimDuration::from_secs(1), 7);
            }
        }
    }

    #[test]
    fn context_stages_effects() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut effects = Vec::new();
        let mut ctx = NodeCtx::new(SimTime::from_secs(5), 3, &mut rng, &mut effects);
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        assert_eq!(ctx.host(), 3);

        let a: IpAddr = "192.0.2.1".parse().unwrap();
        let b: IpAddr = "198.51.100.1".parse().unwrap();
        let mut echo = Echo;
        echo.on_packet(&mut ctx, Packet::udp(a, b, 1000, 53, vec![9]));

        assert_eq!(effects.len(), 2);
        match &effects[0] {
            Effect::Send(p) => {
                assert_eq!(p.src, b);
                assert_eq!(p.dst, a);
                assert_eq!(p.transport.src_port(), 53);
            }
            other => panic!("expected send, got {other:?}"),
        }
        match &effects[1] {
            Effect::Timer { after, token } => {
                assert_eq!(*after, SimDuration::from_secs(1));
                assert_eq!(*token, 7);
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }

    #[test]
    fn sink_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut effects = Vec::new();
        let mut ctx = NodeCtx::new(SimTime::ZERO, 0, &mut rng, &mut effects);
        let mut sink = SinkNode::default();
        let a: IpAddr = "192.0.2.1".parse().unwrap();
        sink.on_packet(&mut ctx, Packet::udp(a, a, 1, 2, vec![]));
        sink.on_packet(&mut ctx, Packet::udp(a, a, 1, 2, vec![]));
        assert_eq!(sink.received, 2);
        assert!(effects.is_empty());
    }
}
