//! The simulated packet model.
//!
//! A [`Packet`] carries the layer-3 fields the experiment's analysis can
//! observe (source/destination address, TTL / hop limit) plus one of two
//! transports:
//!
//! * [`UdpDatagram`] — the workhorse: all DNS queries and responses,
//! * [`TcpSegment`] — a simplified TCP carrying the header metadata that the
//!   p0f fingerprinting of §5.3.1 keys on (initial TTL, window size, MSS and
//!   option layout). We model the SYN / SYN-ACK handshake plus a single
//!   request/response exchange, which is all DNS-over-TCP (RFC 7766) needs
//!   for one query.
//!
//! Layer-3/layer-4 payloads are opaque shared byte buffers ([`Payload`],
//! an `Arc<[u8]>` so packet clones are refcount bumps); `bcd-dnswire`
//! provides the DNS wire codec that fills them.

use crate::payload::Payload;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// TCP header flags (only those the handshake model uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
    pub psh: bool,
}

impl TcpFlags {
    /// A bare SYN (connection open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN-ACK (connection accept).
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Plain ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Data push with ACK.
    pub const PSH_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: true,
    };
    /// RST (refuse / abort).
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
}

/// TCP options relevant to passive OS fingerprinting (p0f-style). The
/// `layout` string mirrors p0f's option-order signature component, e.g.
/// `"mss,sok,ts,nop,ws"` for a modern Linux SYN.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct TcpOptions {
    /// Maximum segment size advertised in the SYN.
    pub mss: Option<u16>,
    /// Window-scale shift count.
    pub window_scale: Option<u8>,
    /// SACK-permitted option present.
    pub sack_permitted: bool,
    /// Timestamp option present.
    pub timestamps: bool,
    /// Option ordering signature, comma-separated p0f-style mnemonics.
    pub layout: &'static str,
}

/// A simplified TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub flags: TcpFlags,
    pub seq: u32,
    pub ack: u32,
    /// Receive window as sent on the wire (unscaled).
    pub window: u16,
    pub options: TcpOptions,
    pub payload: Payload,
}

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Payload,
}

/// The transport layer of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    Udp(UdpDatagram),
    Tcp(TcpSegment),
}

impl Transport {
    /// Source port of either transport.
    pub fn src_port(&self) -> u16 {
        match self {
            Transport::Udp(u) => u.src_port,
            Transport::Tcp(t) => t.src_port,
        }
    }

    /// Destination port of either transport.
    pub fn dst_port(&self) -> u16 {
        match self {
            Transport::Udp(u) => u.dst_port,
            Transport::Tcp(t) => t.dst_port,
        }
    }

    /// The application payload bytes.
    pub fn payload(&self) -> &[u8] {
        match self {
            Transport::Udp(u) => &u.payload,
            Transport::Tcp(t) => &t.payload,
        }
    }
}

/// A simulated IP packet (either family).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub src: IpAddr,
    pub dst: IpAddr,
    /// IPv4 TTL or IPv6 hop limit *as observed at the receiver* — the engine
    /// decrements it per simulated hop, so p0f can infer the initial TTL.
    pub ttl: u8,
    /// Causal trace id ([`crate::span::TraceId`]); `0` means untraced.
    /// Originators stamp it from shard-invariant query identity; repliers
    /// and proxies copy it from the packet they are answering, so one
    /// query's whole causal chain shares an id without payload parsing.
    /// Not an on-wire field: it models the out-of-band correlation a real
    /// measurement would do by parsing QNAMEs out of captures.
    pub trace: u64,
    pub transport: Transport,
}

impl Packet {
    /// Construct a UDP packet. Panics if the address families differ: a
    /// packet with a v4 source and v6 destination cannot exist on the wire.
    pub fn udp(
        src: IpAddr,
        dst: IpAddr,
        src_port: u16,
        dst_port: u16,
        payload: impl Into<Payload>,
    ) -> Packet {
        assert_eq!(
            src.is_ipv6(),
            dst.is_ipv6(),
            "mixed address families in packet: {src} -> {dst}"
        );
        Packet {
            src,
            dst,
            ttl: 64,
            trace: 0,
            transport: Transport::Udp(UdpDatagram {
                src_port,
                dst_port,
                payload: payload.into(),
            }),
        }
    }

    /// Construct a TCP packet. Same family invariant as [`Packet::udp`].
    pub fn tcp(src: IpAddr, dst: IpAddr, seg: TcpSegment) -> Packet {
        assert_eq!(
            src.is_ipv6(),
            dst.is_ipv6(),
            "mixed address families in packet: {src} -> {dst}"
        );
        Packet {
            src,
            dst,
            ttl: 64,
            trace: 0,
            transport: Transport::Tcp(seg),
        }
    }

    /// Override the initial TTL (for OS models with non-default TTLs).
    pub fn with_ttl(mut self, ttl: u8) -> Packet {
        self.ttl = ttl;
        self
    }

    /// Attach a causal trace id (`0` leaves the packet untraced).
    pub fn with_trace(mut self, trace: u64) -> Packet {
        self.trace = trace;
        self
    }

    /// True if this packet is IPv6.
    pub fn is_v6(&self) -> bool {
        self.src.is_ipv6()
    }

    /// True if source address equals destination address
    /// ("destination-as-source" in the paper's terminology, §5.5).
    pub fn is_dst_as_src(&self) -> bool {
        self.src == self.dst
    }

    /// True if the source is a loopback address.
    pub fn has_loopback_src(&self) -> bool {
        crate::prefix::special::is_loopback(self.src)
    }

    /// The canonical v4 loopback / v6 loopback source used by the scanner.
    pub fn loopback_addr(v6: bool) -> IpAddr {
        if v6 {
            IpAddr::V6(Ipv6Addr::LOCALHOST)
        } else {
            IpAddr::V4(Ipv4Addr::LOCALHOST)
        }
    }

    /// Approximate on-wire size in bytes (IP header + transport header +
    /// payload); used by rate accounting and benchmarks.
    pub fn wire_len(&self) -> usize {
        let l3 = if self.is_v6() { 40 } else { 20 };
        let (l4, payload) = match &self.transport {
            Transport::Udp(u) => (8, u.payload.len()),
            Transport::Tcp(t) => (
                20 + if t.options.mss.is_some() { 12 } else { 0 },
                t.payload.len(),
            ),
        };
        l3 + l4 + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn udp_constructor_sets_defaults() {
        let p = Packet::udp(v4("192.0.2.1"), v4("198.51.100.2"), 5353, 53, vec![1, 2, 3]);
        assert_eq!(p.ttl, 64);
        assert_eq!(p.transport.src_port(), 5353);
        assert_eq!(p.transport.dst_port(), 53);
        assert_eq!(p.transport.payload(), &[1, 2, 3]);
        assert!(!p.is_v6());
    }

    #[test]
    #[should_panic(expected = "mixed address families")]
    fn mixed_family_panics() {
        let _ = Packet::udp(
            v4("192.0.2.1"),
            "2001:db8::1".parse().unwrap(),
            1,
            2,
            vec![],
        );
    }

    #[test]
    fn spoof_category_predicates() {
        let ds = Packet::udp(v4("192.0.2.1"), v4("192.0.2.1"), 1, 53, vec![]);
        assert!(ds.is_dst_as_src());
        let lb = Packet::udp(v4("127.0.0.1"), v4("192.0.2.1"), 1, 53, vec![]);
        assert!(lb.has_loopback_src());
        let lb6 = Packet::udp(
            Packet::loopback_addr(true),
            "2001:db8::1".parse().unwrap(),
            1,
            53,
            vec![],
        );
        assert!(lb6.has_loopback_src());
        let normal = Packet::udp(v4("203.0.113.9"), v4("192.0.2.1"), 1, 53, vec![]);
        assert!(!normal.is_dst_as_src() && !normal.has_loopback_src());
    }

    #[test]
    fn wire_len_counts_headers() {
        let p = Packet::udp(v4("192.0.2.1"), v4("198.51.100.2"), 1, 2, vec![0; 100]);
        assert_eq!(p.wire_len(), 20 + 8 + 100);
        let t = Packet::tcp(
            v4("192.0.2.1"),
            v4("198.51.100.2"),
            TcpSegment {
                src_port: 1,
                dst_port: 2,
                flags: TcpFlags::SYN,
                seq: 0,
                ack: 0,
                window: 65535,
                options: TcpOptions {
                    mss: Some(1460),
                    ..Default::default()
                },
                payload: Payload::empty(),
            },
        );
        assert_eq!(t.wire_len(), 20 + 32);
    }

    #[test]
    fn ttl_override() {
        let p = Packet::udp(v4("192.0.2.1"), v4("198.51.100.2"), 1, 2, vec![]).with_ttl(128);
        assert_eq!(p.ttl, 128);
    }
}
