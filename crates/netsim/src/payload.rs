//! Shared, immutable packet payload bytes.
//!
//! Every delivered packet used to deep-copy its payload `Vec<u8>` on
//! duplication and on every trace/pcap capture. `Payload` wraps the bytes
//! in an `Arc<[u8]>` so cloning a packet — the per-delivery hot path in
//! `Engine::dispatch_send` — is a refcount bump regardless of payload
//! size. Payloads are immutable once built; nodes that rewrite bytes
//! (e.g. the interceptor's txid swap) build a fresh buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared payload bytes. Derefs to `[u8]`, so existing
/// `&u.payload` read sites work unchanged.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// The shared empty payload (still one `Arc` allocation per call —
    /// callers in hot paths should reuse; control paths don't care).
    pub fn empty() -> Self {
        Payload(Arc::from(&[][..]))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(v.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Self {
        Payload(Arc::from(&v[..]))
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Payload").field(&&self.0[..]).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(p, q);
        assert!(std::ptr::eq(p.as_slice().as_ptr(), q.as_slice().as_ptr()));
    }

    #[test]
    fn deref_and_empty() {
        let p = Payload::from(vec![9u8; 4]);
        assert_eq!(p.len(), 4);
        assert_eq!(&p[..2], &[9, 9]);
        assert!(Payload::empty().is_empty());
    }
}
