//! Export packet traces as libpcap capture files.
//!
//! The simulator's packets are abstract (typed fields, no wire bytes), so
//! export synthesizes standards-compliant IPv4/IPv6 + UDP/TCP headers —
//! including real checksums — and writes a classic pcap file
//! (`LINKTYPE_RAW`, so records begin directly with the IP header). The
//! result opens in Wireshark/tcpdump, which is exactly how the paper's
//! authors debugged their own spoofed traffic.

use crate::packet::{Packet, TcpSegment, Transport};
use crate::trace::{Trace, TracePoint};
use std::io::{self, Write};
use std::net::IpAddr;

/// LINKTYPE_RAW: packets start with the IP header (v4 or v6).
const LINKTYPE_RAW: u32 = 101;

/// Serialize one simulated packet into on-the-wire bytes (IP + transport).
pub fn packet_bytes(pkt: &Packet) -> Vec<u8> {
    let l4 = transport_bytes(pkt);
    match (pkt.src, pkt.dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            let mut out = Vec::with_capacity(20 + l4.len());
            let total_len = 20 + l4.len() as u16 as usize;
            out.extend_from_slice(&[0x45, 0x00]); // v4, IHL 5, DSCP 0
            out.extend_from_slice(&(total_len as u16).to_be_bytes());
            out.extend_from_slice(&[0x00, 0x00]); // identification
            out.extend_from_slice(&[0x00, 0x00]); // flags/fragment
            out.push(pkt.ttl);
            out.push(match pkt.transport {
                Transport::Udp(_) => 17,
                Transport::Tcp(_) => 6,
            });
            out.extend_from_slice(&[0x00, 0x00]); // checksum placeholder
            out.extend_from_slice(&s.octets());
            out.extend_from_slice(&d.octets());
            let csum = internet_checksum(&out[..20]);
            out[10..12].copy_from_slice(&csum.to_be_bytes());
            out.extend_from_slice(&l4);
            out
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            let mut out = Vec::with_capacity(40 + l4.len());
            out.extend_from_slice(&[0x60, 0x00, 0x00, 0x00]); // v6, no TC/flow
            out.extend_from_slice(&(l4.len() as u16).to_be_bytes());
            out.push(match pkt.transport {
                Transport::Udp(_) => 17,
                Transport::Tcp(_) => 6,
            });
            out.push(pkt.ttl); // hop limit
            out.extend_from_slice(&s.octets());
            out.extend_from_slice(&d.octets());
            out.extend_from_slice(&l4);
            out
        }
        _ => unreachable!("mixed-family packets cannot be constructed"),
    }
}

fn transport_bytes(pkt: &Packet) -> Vec<u8> {
    match &pkt.transport {
        Transport::Udp(u) => {
            let len = 8 + u.payload.len();
            let mut out = Vec::with_capacity(len);
            out.extend_from_slice(&u.src_port.to_be_bytes());
            out.extend_from_slice(&u.dst_port.to_be_bytes());
            out.extend_from_slice(&(len as u16).to_be_bytes());
            out.extend_from_slice(&[0, 0]); // checksum placeholder
            out.extend_from_slice(&u.payload);
            let csum = l4_checksum(pkt, &out, 17);
            out[6..8].copy_from_slice(&csum.to_be_bytes());
            out
        }
        Transport::Tcp(t) => {
            let opts = tcp_option_bytes(t);
            let data_offset_words = 5 + opts.len() / 4;
            let mut out = Vec::with_capacity(20 + opts.len() + t.payload.len());
            out.extend_from_slice(&t.src_port.to_be_bytes());
            out.extend_from_slice(&t.dst_port.to_be_bytes());
            out.extend_from_slice(&t.seq.to_be_bytes());
            out.extend_from_slice(&t.ack.to_be_bytes());
            out.push((data_offset_words as u8) << 4);
            let mut flags = 0u8;
            if t.flags.fin {
                flags |= 0x01;
            }
            if t.flags.syn {
                flags |= 0x02;
            }
            if t.flags.rst {
                flags |= 0x04;
            }
            if t.flags.psh {
                flags |= 0x08;
            }
            if t.flags.ack {
                flags |= 0x10;
            }
            out.push(flags);
            out.extend_from_slice(&t.window.to_be_bytes());
            out.extend_from_slice(&[0, 0]); // checksum placeholder
            out.extend_from_slice(&[0, 0]); // urgent pointer
            out.extend_from_slice(&opts);
            out.extend_from_slice(&t.payload);
            let csum = l4_checksum(pkt, &out, 6);
            out[16..18].copy_from_slice(&csum.to_be_bytes());
            out
        }
    }
}

/// TCP options in the order advertised, padded to a 4-byte boundary.
fn tcp_option_bytes(t: &TcpSegment) -> Vec<u8> {
    let mut out = Vec::new();
    if let Some(mss) = t.options.mss {
        out.extend_from_slice(&[2, 4]);
        out.extend_from_slice(&mss.to_be_bytes());
    }
    if t.options.sack_permitted {
        out.extend_from_slice(&[4, 2]);
    }
    if t.options.timestamps {
        out.extend_from_slice(&[8, 10]);
        out.extend_from_slice(&[0; 8]); // TSval/TSecr (synthetic)
    }
    if let Some(ws) = t.options.window_scale {
        out.extend_from_slice(&[3, 3, ws]);
    }
    while out.len() % 4 != 0 {
        out.push(1); // NOP padding
    }
    out
}

/// RFC 1071 internet checksum.
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Transport checksum over the pseudo-header + segment.
fn l4_checksum(pkt: &Packet, segment: &[u8], proto: u8) -> u16 {
    let mut pseudo = Vec::with_capacity(40 + segment.len());
    match (pkt.src, pkt.dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            pseudo.extend_from_slice(&s.octets());
            pseudo.extend_from_slice(&d.octets());
            pseudo.push(0);
            pseudo.push(proto);
            pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            pseudo.extend_from_slice(&s.octets());
            pseudo.extend_from_slice(&d.octets());
            pseudo.extend_from_slice(&(segment.len() as u32).to_be_bytes());
            pseudo.extend_from_slice(&[0, 0, 0]);
            pseudo.push(proto);
        }
        _ => unreachable!(),
    }
    pseudo.extend_from_slice(segment);
    let c = internet_checksum(&pseudo);
    // UDP uses 0xFFFF to represent a computed zero.
    if c == 0 && proto == 17 {
        0xFFFF
    } else {
        c
    }
}

/// Serialize a whole trace to classic pcap bytes. By default only
/// `Delivered` records are included (one copy per packet); pass
/// `include_drops` to also capture filtered packets (useful to *see* DSAV
/// at work in Wireshark).
pub fn pcap_bytes(trace: &Trace, include_drops: bool) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // major
    out.extend_from_slice(&4u16.to_le_bytes()); // minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());

    for entry in trace.iter() {
        let keep = match entry.point {
            TracePoint::Delivered | TracePoint::Intercepted => true,
            TracePoint::Sent => false, // avoid duplicating delivered packets
            TracePoint::Dropped(_) => include_drops,
        };
        if !keep {
            continue;
        }
        let bytes = packet_bytes(&entry.packet);
        let ns = entry.time.as_nanos();
        out.extend_from_slice(&((ns / 1_000_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&(((ns % 1_000_000_000) / 1_000) as u32).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Write a trace to a pcap file.
pub fn write_pcap<W: Write>(trace: &Trace, include_drops: bool, mut w: W) -> io::Result<()> {
    w.write_all(&pcap_bytes(trace, include_drops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{TcpFlags, TcpOptions};
    use crate::time::SimTime;

    fn udp4() -> Packet {
        Packet::udp(
            "192.0.2.1".parse().unwrap(),
            "198.51.100.2".parse().unwrap(),
            40_000,
            53,
            vec![0xDE, 0xAD, 0xBE, 0xEF],
        )
    }

    fn syn6() -> Packet {
        Packet::tcp(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            TcpSegment {
                src_port: 50_000,
                dst_port: 53,
                flags: TcpFlags::SYN,
                seq: 7,
                ack: 0,
                window: 29_200,
                options: TcpOptions {
                    mss: Some(1_460),
                    window_scale: Some(7),
                    sack_permitted: true,
                    timestamps: true,
                    layout: "mss,sok,ts,nop,ws",
                },
                payload: crate::payload::Payload::empty(),
            },
        )
    }

    #[test]
    fn ipv4_header_is_well_formed() {
        let bytes = packet_bytes(&udp4());
        assert_eq!(bytes[0], 0x45);
        assert_eq!(bytes[9], 17); // UDP
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        assert_eq!(total_len, bytes.len());
        assert_eq!(total_len, 20 + 8 + 4);
        // Header checksum verifies to zero.
        assert_eq!(internet_checksum(&bytes[..20]), 0);
        // Source/destination octets in place.
        assert_eq!(&bytes[12..16], &[192, 0, 2, 1]);
        assert_eq!(&bytes[16..20], &[198, 51, 100, 2]);
    }

    #[test]
    fn udp_checksum_verifies() {
        let pkt = udp4();
        let bytes = packet_bytes(&pkt);
        let seg = &bytes[20..];
        // Recomputing over pseudo-header + segment (checksum field included)
        // must give 0 (or 0xFFFF handling aside, the complement property).
        let mut pseudo = Vec::new();
        pseudo.extend_from_slice(&[192, 0, 2, 1, 198, 51, 100, 2, 0, 17]);
        pseudo.extend_from_slice(&(seg.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(seg);
        assert_eq!(internet_checksum(&pseudo), 0);
    }

    #[test]
    fn ipv6_tcp_with_options_is_well_formed() {
        let bytes = packet_bytes(&syn6());
        assert_eq!(bytes[0] >> 4, 6);
        assert_eq!(bytes[6], 6); // next header TCP
        let payload_len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        assert_eq!(payload_len, bytes.len() - 40);
        // TCP data offset covers header + options (mss 4 + sack 2 + ts 10 +
        // ws 3 = 19 → padded to 20 → offset (20+20)/4 = 10 words).
        let tcp = &bytes[40..];
        assert_eq!(tcp[12] >> 4, 10);
        assert_eq!(tcp[13], 0x02); // SYN only
                                   // Options begin with MSS kind/len and the value.
        assert_eq!(&tcp[20..24], &[2, 4, 0x05, 0xB4]);
        // TCP checksum verifies over the v6 pseudo-header.
        let mut pseudo = Vec::new();
        let src: std::net::Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: std::net::Ipv6Addr = "2001:db8::2".parse().unwrap();
        pseudo.extend_from_slice(&src.octets());
        pseudo.extend_from_slice(&dst.octets());
        pseudo.extend_from_slice(&(tcp.len() as u32).to_be_bytes());
        pseudo.extend_from_slice(&[0, 0, 0, 6]);
        pseudo.extend_from_slice(tcp);
        assert_eq!(internet_checksum(&pseudo), 0);
    }

    #[test]
    fn pcap_file_structure() {
        let mut trace = Trace::with_capacity(10);
        trace.record(SimTime::from_secs(1), TracePoint::Sent, &udp4());
        trace.record(SimTime::from_secs(2), TracePoint::Delivered, &udp4());
        trace.record(
            SimTime::from_secs(3),
            TracePoint::Dropped(crate::counters::DropReason::Dsav),
            &udp4(),
        );
        let bytes = pcap_bytes(&trace, false);
        // Global header + exactly one record (Delivered only).
        assert_eq!(
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            0xa1b2_c3d4
        );
        assert_eq!(
            u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
        let rec_len = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), 24 + 16 + rec_len);
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 2); // ts_sec

        // With drops, two records.
        let with_drops = pcap_bytes(&trace, true);
        assert!(with_drops.len() > bytes.len());
    }

    #[test]
    fn internet_checksum_known_vector() {
        // RFC 1071 example: 0x0001f203f4f5f6f7 → checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }
}
