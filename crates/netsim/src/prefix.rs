//! IP prefixes (CIDR blocks) for both address families.
//!
//! The experiment's spoofed-source selection (paper §3.2) works in units of
//! /24 (IPv4) and /64 (IPv6) prefixes, and routing/border policy decisions are
//! all longest-prefix-match over announced prefixes, so this type is used
//! pervasively.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// A canonicalized CIDR prefix: the address with all host bits zeroed plus a
/// prefix length. Works for IPv4 (`len <= 32`) and IPv6 (`len <= 128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network bits, left-aligned in a u128 (IPv4 addresses occupy the high
    /// 32 bits of the low 32-bit space — i.e. stored as `u32 as u128 << 96`
    /// would waste comparisons; instead we store v4 in the low 32 bits and
    /// tag with `v6`).
    bits: u128,
    len: u8,
    v6: bool,
}

/// Error returned when parsing a prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

fn ip_to_bits(ip: IpAddr) -> (u128, bool) {
    match ip {
        IpAddr::V4(a) => (u32::from(a) as u128, false),
        IpAddr::V6(a) => (u128::from(a), true),
    }
}

fn bits_to_ip(bits: u128, v6: bool) -> IpAddr {
    if v6 {
        IpAddr::V6(Ipv6Addr::from(bits))
    } else {
        IpAddr::V4(Ipv4Addr::from(bits as u32))
    }
}

fn mask(len: u8, v6: bool) -> u128 {
    let width: u32 = if v6 { 128 } else { 32 };
    if len == 0 {
        0
    } else {
        // All-ones over the top `len` bits of a `width`-bit address.
        (!0u128 >> (128 - width)) & !((1u128 << (width - len as u32)) - 1)
    }
}

impl Prefix {
    /// Build a prefix from any address inside it and a length. Host bits are
    /// zeroed (canonical form). Panics if `len` exceeds the family width.
    pub fn new(ip: IpAddr, len: u8) -> Prefix {
        let (bits, v6) = ip_to_bits(ip);
        let width = if v6 { 128 } else { 32 };
        assert!(
            len <= width,
            "prefix length {len} exceeds family width {width}"
        );
        Prefix {
            bits: bits & mask(len, v6),
            len,
            v6,
        }
    }

    /// The IPv4 default route `0.0.0.0/0`.
    pub fn v4_default() -> Prefix {
        Prefix::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0)
    }

    /// The IPv6 default route `::/0`.
    pub fn v6_default() -> Prefix {
        Prefix::new(IpAddr::V6(Ipv6Addr::UNSPECIFIED), 0)
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // "len" is the CIDR length, not a container size
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True if this is an IPv6 prefix.
    pub fn is_v6(&self) -> bool {
        self.v6
    }

    /// Address-family bit width (32 or 128).
    pub fn width(&self) -> u8 {
        if self.v6 {
            128
        } else {
            32
        }
    }

    /// The network (first) address of the prefix.
    pub fn network(&self) -> IpAddr {
        bits_to_ip(self.bits, self.v6)
    }

    /// The last address of the prefix (broadcast address for IPv4 subnets).
    pub fn last(&self) -> IpAddr {
        let host_bits = (self.width() - self.len) as u32;
        let hi = if host_bits == 0 {
            self.bits
        } else if host_bits >= 128 {
            u128::MAX
        } else {
            self.bits | ((1u128 << host_bits) - 1)
        };
        bits_to_ip(hi, self.v6)
    }

    /// Number of addresses in the prefix, saturating at `u128::MAX` for `::/0`.
    pub fn size(&self) -> u128 {
        let host_bits = (self.width() - self.len) as u32;
        if host_bits >= 128 {
            u128::MAX
        } else {
            1u128 << host_bits
        }
    }

    /// True if `ip` (same family) is inside this prefix.
    pub fn contains(&self, ip: IpAddr) -> bool {
        let (bits, v6) = ip_to_bits(ip);
        v6 == self.v6 && bits & mask(self.len, self.v6) == self.bits
    }

    /// True if `other` is fully contained in `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        self.v6 == other.v6
            && self.len <= other.len
            && other.bits & mask(self.len, self.v6) == self.bits
    }

    /// The `i`-th address inside the prefix (0 = network address).
    /// Returns `None` if `i` is out of range.
    pub fn nth(&self, i: u128) -> Option<IpAddr> {
        if i >= self.size() {
            return None;
        }
        Some(bits_to_ip(self.bits + i, self.v6))
    }

    /// Index of `ip` within this prefix (inverse of [`Prefix::nth`]).
    pub fn index_of(&self, ip: IpAddr) -> Option<u128> {
        if !self.contains(ip) {
            return None;
        }
        let (bits, _) = ip_to_bits(ip);
        Some(bits - self.bits)
    }

    /// The sub-prefix of length `sublen` that contains `ip` — e.g. the /24
    /// containing a target IPv4 address. Panics if `sublen < self.len`.
    pub fn subprefix_of(ip: IpAddr, sublen: u8) -> Prefix {
        Prefix::new(ip, sublen)
    }

    /// Enumerate all sub-prefixes of length `sublen` within `self`, in address
    /// order. Returns an empty iterator if `sublen < self.len`. Capped by the
    /// caller via `.take(..)` for very large prefixes.
    pub fn subprefixes(&self, sublen: u8) -> SubPrefixIter {
        let valid = sublen >= self.len && sublen <= self.width();
        let count = if valid {
            let extra = (sublen - self.len) as u32;
            if extra >= 128 {
                u128::MAX
            } else {
                1u128 << extra
            }
        } else {
            0
        };
        SubPrefixIter {
            base: *self,
            sublen,
            next: 0,
            count,
        }
    }

    /// The prefix bits as a left-aligned `u128` key plus length; used by the
    /// routing trie. For IPv4 the 32 address bits are shifted to the top of
    /// the key so the trie walks the same most-significant-bit-first order
    /// for both families.
    pub(crate) fn key(&self) -> (u128, u8) {
        if self.v6 {
            (self.bits, self.len)
        } else {
            (self.bits << 96, self.len)
        }
    }
}

/// Iterator over equal-length sub-prefixes of a covering prefix.
pub struct SubPrefixIter {
    base: Prefix,
    sublen: u8,
    next: u128,
    count: u128,
}

impl Iterator for SubPrefixIter {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.next >= self.count {
            return None;
        }
        let host_bits = (self.base.width() - self.sublen) as u32;
        let bits = self.base.bits + (self.next << host_bits);
        self.next += 1;
        Some(Prefix {
            bits,
            len: self.sublen,
            v6: self.base.v6,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.count - self.next).min(usize::MAX as u128) as usize;
        (rem, Some(rem))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Prefix, PrefixParseError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(format!("missing '/': {s}")))?;
        let ip: IpAddr = addr
            .parse()
            .map_err(|e| PrefixParseError(format!("{s}: {e}")))?;
        let len: u8 = len
            .parse()
            .map_err(|e| PrefixParseError(format!("{s}: {e}")))?;
        let width = if ip.is_ipv6() { 128 } else { 32 };
        if len > width {
            return Err(PrefixParseError(format!("{s}: length {len} > {width}")));
        }
        Ok(Prefix::new(ip, len))
    }
}

/// Address-classification helpers mirroring the IANA special-purpose
/// registries (RFC 6890) that the paper uses to exclude ~4M DITL source
/// addresses (§3.1).
pub mod special {
    use super::*;

    /// True if `ip` is a loopback address (`127.0.0.0/8` or `::1`).
    pub fn is_loopback(ip: IpAddr) -> bool {
        match ip {
            IpAddr::V4(a) => a.is_loopback(),
            IpAddr::V6(a) => a.is_loopback(),
        }
    }

    /// True if `ip` is in private (RFC 1918) or unique-local (RFC 4193) space.
    pub fn is_private_or_ula(ip: IpAddr) -> bool {
        match ip {
            IpAddr::V4(a) => a.is_private(),
            IpAddr::V6(a) => (a.segments()[0] & 0xfe00) == 0xfc00,
        }
    }

    /// True if `ip` falls in any IANA special-purpose registry entry and thus
    /// can have no legitimate entry in the public routing table. This is the
    /// exclusion test the paper applies to DITL-derived targets (§3.1).
    pub fn is_special_purpose(ip: IpAddr) -> bool {
        match ip {
            IpAddr::V4(a) => {
                let o = a.octets();
                a.is_unspecified()
                    || a.is_loopback()
                    || a.is_private()
                    || a.is_link_local()
                    || a.is_broadcast()
                    || a.is_documentation()
                    || o[0] == 100 && (o[1] & 0xc0) == 64 // 100.64/10 CGN
                    || o[0] == 192 && o[1] == 0 && o[2] == 0 // 192.0.0/24
                    || o[0] == 198 && (o[1] & 0xfe) == 18 // 198.18/15 benchmarking
                    || o[0] >= 224 // multicast + class E
            }
            IpAddr::V6(a) => {
                let s = a.segments();
                a.is_unspecified()
                    || a.is_loopback()
                    || (s[0] & 0xfe00) == 0xfc00 // ULA
                    || (s[0] & 0xffc0) == 0xfe80 // link-local
                    || (s[0] & 0xff00) == 0xff00 // multicast
                    || s[0] == 0x2001 && s[1] == 0xdb8 // documentation
                    || s[0] == 0x2001 && s[1] == 0 // TEREDO
                    || s[0] == 0x0064 && s[1] == 0xff9b // NAT64
                    || s[0] == 0x2002 // 6to4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let pre = Prefix::new("192.0.2.77".parse().unwrap(), 24);
        assert_eq!(pre.to_string(), "192.0.2.0/24");
        assert_eq!(pre, p("192.0.2.0/24"));
    }

    #[test]
    fn contains_and_covers() {
        let pre = p("10.0.0.0/8");
        assert!(pre.contains("10.255.3.4".parse().unwrap()));
        assert!(!pre.contains("11.0.0.0".parse().unwrap()));
        assert!(pre.covers(&p("10.1.0.0/16")));
        assert!(!pre.covers(&p("11.1.0.0/16")));
        assert!(!pre.covers(&p("0.0.0.0/0")));
        // Cross-family never matches.
        assert!(!pre.contains("::1".parse().unwrap()));
        assert!(!p("2001:db8::/32").covers(&p("10.0.0.0/8")));
    }

    #[test]
    fn v6_prefixes_work() {
        let pre = p("2001:db8:abcd::/48");
        assert!(pre.contains("2001:db8:abcd:1::5".parse().unwrap()));
        assert!(!pre.contains("2001:db8:abce::5".parse().unwrap()));
        assert_eq!(pre.len(), 48);
        assert!(pre.is_v6());
    }

    #[test]
    fn nth_and_index_round_trip() {
        let pre = p("198.51.100.0/24");
        assert_eq!(pre.nth(0).unwrap().to_string(), "198.51.100.0");
        assert_eq!(pre.nth(255).unwrap().to_string(), "198.51.100.255");
        assert!(pre.nth(256).is_none());
        let ip = pre.nth(42).unwrap();
        assert_eq!(pre.index_of(ip), Some(42));
        assert_eq!(pre.index_of("10.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn size_last_and_defaults() {
        assert_eq!(p("192.0.2.0/24").size(), 256);
        assert_eq!(p("192.0.2.0/24").last().to_string(), "192.0.2.255");
        assert_eq!(Prefix::v4_default().size(), 1u128 << 32);
        assert_eq!(Prefix::v6_default().size(), u128::MAX);
        assert_eq!(p("2001:db8::/64").size(), 1u128 << 64);
    }

    #[test]
    fn subprefix_enumeration() {
        let pre = p("10.20.0.0/22");
        let subs: Vec<Prefix> = pre.subprefixes(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("10.20.0.0/24"));
        assert_eq!(subs[3], p("10.20.3.0/24"));
        // Degenerate: sublen shorter than prefix yields nothing.
        assert_eq!(pre.subprefixes(20).count(), 0);
        // Identity: same length yields self.
        assert_eq!(pre.subprefixes(22).collect::<Vec<_>>(), vec![pre]);
    }

    #[test]
    fn subprefix_of_finds_containing_block() {
        let ip: IpAddr = "203.0.113.200".parse().unwrap();
        assert_eq!(Prefix::subprefix_of(ip, 24), p("203.0.113.0/24"));
        let ip6: IpAddr = "2001:db8:1:2::99".parse().unwrap();
        assert_eq!(Prefix::subprefix_of(ip6, 64), p("2001:db8:1:2::/64"));
    }

    #[test]
    fn parse_errors() {
        assert!("192.0.2.0".parse::<Prefix>().is_err());
        assert!("192.0.2.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn special_purpose_classification() {
        use special::*;
        let yes = [
            "0.0.0.0",
            "127.0.0.1",
            "10.1.2.3",
            "172.16.9.9",
            "192.168.0.10",
            "169.254.1.1",
            "100.64.0.1",
            "192.0.0.5",
            "192.0.2.1",
            "198.18.0.1",
            "224.0.0.1",
            "240.0.0.1",
            "255.255.255.255",
            "::",
            "::1",
            "fc00::10",
            "fe80::1",
            "ff02::1",
            "2001:db8::1",
            "2002::1",
        ];
        for s in yes {
            assert!(
                is_special_purpose(s.parse().unwrap()),
                "{s} should be special"
            );
        }
        let no = ["8.8.8.8", "203.0.112.1", "2600::1", "2a00:1450::1"];
        for s in no {
            assert!(
                !is_special_purpose(s.parse().unwrap()),
                "{s} should be routable"
            );
        }
        assert!(is_loopback("127.0.0.1".parse().unwrap()));
        assert!(is_loopback("::1".parse().unwrap()));
        assert!(is_private_or_ula("192.168.0.10".parse().unwrap()));
        assert!(is_private_or_ula("fc00::10".parse().unwrap()));
        assert!(!is_private_or_ula("8.8.8.8".parse().unwrap()));
    }
}
