//! Longest-prefix-match lookup structures.
//!
//! The experiment needs two queries answered fast, millions of times:
//!
//! 1. *which AS originates this address?* (route lookup — used for OSAV/DSAV
//!    border decisions and for the paper's target→ASN mapping, §3.2), and
//! 2. *which prefixes does this AS announce?* (used to derive the
//!    other-prefix spoofed-source pool).
//!
//! [`PrefixMap`] is the generic engine — a binary trie over address bits,
//! most-significant-bit first, shared between the two families by
//! left-aligning IPv4 keys in a `u128`. [`PrefixTable`] specializes it to
//! prefix → origin-ASN routing with a reverse index. (`bcd-geo` reuses
//! [`PrefixMap`] for prefix → country.)

use crate::lpm::LpmTrie;
use crate::prefix::Prefix;
use crate::topology::Asn;
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::OnceLock;

#[derive(Debug)]
struct TrieNode<T> {
    children: [Option<Box<TrieNode<T>>>; 2],
    /// Value attached at this exact prefix, if any.
    value: Option<T>,
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        TrieNode {
            children: [None, None],
            value: None,
        }
    }
}

/// A longest-prefix-match map from [`Prefix`] to values of type `T`.
#[derive(Debug)]
pub struct PrefixMap<T> {
    v4: TrieNode<T>,
    v6: TrieNode<T>,
    len: usize,
}

impl<T: Copy> Default for PrefixMap<T> {
    fn default() -> Self {
        PrefixMap {
            v4: TrieNode::default(),
            v6: TrieNode::default(),
            len: 0,
        }
    }
}

impl<T: Copy> PrefixMap<T> {
    /// An empty map.
    pub fn new() -> PrefixMap<T> {
        PrefixMap::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the value at `prefix`; returns the old value.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let root = if prefix.is_v6() {
            &mut self.v6
        } else {
            &mut self.v4
        };
        let (key, plen) = prefix.key();
        let mut node = root;
        for i in 0..plen {
            let bit = ((key >> (127 - i as u32)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Default::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `ip`, with its value.
    pub fn lookup(&self, ip: IpAddr) -> Option<(Prefix, T)> {
        let v6 = ip.is_ipv6();
        let width: u8 = if v6 { 128 } else { 32 };
        let full = Prefix::new(ip, width);
        let (key, _) = full.key();
        let mut node = if v6 { &self.v6 } else { &self.v4 };
        let mut best: Option<(u8, T)> = node.value.map(|a| (0, a));
        for i in 0..width {
            let bit = ((key >> (127 - i as u32)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if let Some(a) = node.value {
                        best = Some((i + 1, a));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::new(ip, len), v))
    }

    /// The value at the most specific prefix covering `ip`, if any.
    pub fn get(&self, ip: IpAddr) -> Option<T> {
        self.lookup(ip).map(|(_, v)| v)
    }
}

/// The forward-lookup engine behind a [`PrefixTable`]: the compact
/// arena-backed trie by default, or the boxed-node [`PrefixMap`] kept as a
/// differential oracle (`BCD_LPM=map`). Both produce identical answers —
/// the proptests in `tests/proptests.rs` hold them to it.
#[derive(Debug)]
enum LpmImpl {
    Trie(LpmTrie<Asn>),
    Map(PrefixMap<Asn>),
}

/// True when `BCD_LPM=map` selects the legacy map oracle (read once; the
/// choice must not flip between a table's construction and its lookups).
fn lpm_oracle_from_env() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::var("BCD_LPM").is_ok_and(|v| v == "map"))
}

/// A routing table mapping prefixes to originating ASNs with
/// longest-prefix-match semantics, plus a reverse index from ASN to
/// announced prefixes.
#[derive(Debug)]
pub struct PrefixTable {
    lpm: LpmImpl,
    by_asn: BTreeMap<Asn, Vec<Prefix>>,
}

impl Default for PrefixTable {
    fn default() -> Self {
        if lpm_oracle_from_env() {
            PrefixTable::with_map()
        } else {
            PrefixTable::with_trie()
        }
    }
}

impl PrefixTable {
    /// An empty table (honours `BCD_LPM=map`).
    pub fn new() -> PrefixTable {
        PrefixTable::default()
    }

    /// An empty table over the compact arena trie, ignoring the env switch
    /// (differential tests construct both variants explicitly).
    pub fn with_trie() -> PrefixTable {
        PrefixTable {
            lpm: LpmImpl::Trie(LpmTrie::new()),
            by_asn: BTreeMap::new(),
        }
    }

    /// An empty table over the legacy boxed-node map oracle.
    pub fn with_map() -> PrefixTable {
        PrefixTable {
            lpm: LpmImpl::Map(PrefixMap::new()),
            by_asn: BTreeMap::new(),
        }
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        match &self.lpm {
            LpmImpl::Trie(t) => t.len(),
            LpmImpl::Map(m) => m.len(),
        }
    }

    /// True if no prefixes are announced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Announce `prefix` as originated by `asn`. Re-announcing the same
    /// prefix replaces the origin (and updates the reverse index).
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) {
        let old = match &mut self.lpm {
            LpmImpl::Trie(t) => t.insert(prefix, asn),
            LpmImpl::Map(m) => m.insert(prefix, asn),
        };
        if let Some(old) = old {
            if let Some(v) = self.by_asn.get_mut(&old) {
                v.retain(|p| p != &prefix);
            }
        }
        self.by_asn.entry(asn).or_default().push(prefix);
    }

    /// Longest-prefix-match lookup: the most specific announced prefix
    /// containing `ip`, with its origin ASN.
    pub fn lookup(&self, ip: IpAddr) -> Option<(Prefix, Asn)> {
        match &self.lpm {
            LpmImpl::Trie(t) => t.lookup(ip),
            LpmImpl::Map(m) => m.lookup(ip),
        }
    }

    /// The origin ASN for `ip`, if any route covers it.
    pub fn origin(&self, ip: IpAddr) -> Option<Asn> {
        match &self.lpm {
            LpmImpl::Trie(t) => t.get(ip),
            LpmImpl::Map(m) => m.get(ip),
        }
    }

    /// All prefixes announced by `asn` (order of announcement).
    pub fn prefixes_of(&self, asn: Asn) -> &[Prefix] {
        self.by_asn.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over all (prefix, asn) announcements.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, Asn)> + '_ {
        self.by_asn
            .iter()
            .flat_map(|(asn, ps)| ps.iter().map(move |p| (*p, *asn)))
    }

    /// All ASNs with at least one announcement.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.by_asn.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let mut t = PrefixTable::new();
        t.announce(p("10.0.0.0/8"), Asn(100));
        t.announce(p("10.1.0.0/16"), Asn(200));
        t.announce(p("10.1.2.0/24"), Asn(300));
        assert_eq!(t.origin(ip("10.9.9.9")), Some(Asn(100)));
        assert_eq!(t.origin(ip("10.1.9.9")), Some(Asn(200)));
        assert_eq!(t.origin(ip("10.1.2.9")), Some(Asn(300)));
        assert_eq!(t.origin(ip("11.0.0.1")), None);
        let (pre, asn) = t.lookup(ip("10.1.2.3")).unwrap();
        assert_eq!(pre, p("10.1.2.0/24"));
        assert_eq!(asn, Asn(300));
    }

    #[test]
    fn families_are_independent() {
        let mut t = PrefixTable::new();
        t.announce(p("0.0.0.0/0"), Asn(1));
        t.announce(p("2001:db8::/32"), Asn(2));
        assert_eq!(t.origin(ip("8.8.8.8")), Some(Asn(1)));
        assert_eq!(t.origin(ip("2001:db8::1")), Some(Asn(2)));
        assert_eq!(t.origin(ip("2600::1")), None);
    }

    #[test]
    fn reverse_index_tracks_announcements() {
        let mut t = PrefixTable::new();
        t.announce(p("192.0.2.0/24"), Asn(5));
        t.announce(p("198.51.100.0/24"), Asn(5));
        t.announce(p("203.0.113.0/24"), Asn(6));
        assert_eq!(t.prefixes_of(Asn(5)).len(), 2);
        assert_eq!(t.prefixes_of(Asn(6)), &[p("203.0.113.0/24")]);
        assert_eq!(t.prefixes_of(Asn(7)), &[] as &[Prefix]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.asns().count(), 2);
    }

    #[test]
    fn reannouncement_replaces_origin() {
        let mut t = PrefixTable::new();
        t.announce(p("192.0.2.0/24"), Asn(5));
        t.announce(p("192.0.2.0/24"), Asn(9));
        assert_eq!(t.origin(ip("192.0.2.1")), Some(Asn(9)));
        assert_eq!(t.len(), 1);
        assert!(t.prefixes_of(Asn(5)).is_empty());
        assert_eq!(t.prefixes_of(Asn(9)), &[p("192.0.2.0/24")]);
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let mut t = PrefixTable::new();
        t.announce(Prefix::v4_default(), Asn(64512));
        assert_eq!(t.origin(ip("1.2.3.4")), Some(Asn(64512)));
        let (pre, _) = t.lookup(ip("1.2.3.4")).unwrap();
        assert_eq!(pre, Prefix::v4_default());
    }

    #[test]
    fn host_routes_match_exactly() {
        let mut t = PrefixTable::new();
        t.announce(p("192.0.2.7/32"), Asn(1));
        t.announce(p("2001:db8::7/128"), Asn(2));
        assert_eq!(t.origin(ip("192.0.2.7")), Some(Asn(1)));
        assert_eq!(t.origin(ip("192.0.2.8")), None);
        assert_eq!(t.origin(ip("2001:db8::7")), Some(Asn(2)));
        assert_eq!(t.origin(ip("2001:db8::8")), None);
    }

    #[test]
    fn iter_yields_all() {
        let mut t = PrefixTable::new();
        t.announce(p("192.0.2.0/24"), Asn(5));
        t.announce(p("2001:db8::/48"), Asn(5));
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&(p("192.0.2.0/24"), Asn(5))));
    }

    #[test]
    fn trie_and_map_tables_agree() {
        let announcements = [
            (p("10.0.0.0/8"), Asn(1)),
            (p("10.1.0.0/16"), Asn(2)),
            (p("10.1.2.0/24"), Asn(3)),
            (p("10.1.2.0/24"), Asn(4)), // re-announce
            (p("0.0.0.0/0"), Asn(5)),
            (p("2001:db8::/32"), Asn(6)),
            (p("2001:db8:1::/48"), Asn(7)),
            (p("192.0.2.7/32"), Asn(8)),
        ];
        let mut trie = PrefixTable::with_trie();
        let mut map = PrefixTable::with_map();
        for (pre, asn) in announcements {
            trie.announce(pre, asn);
            map.announce(pre, asn);
        }
        for probe in [
            "10.2.3.4",
            "10.1.9.9",
            "10.1.2.200",
            "192.0.2.7",
            "192.0.2.8",
            "2001:db8::1",
            "2001:db8:1::1",
            "2600::1",
        ] {
            let a = ip(probe);
            assert_eq!(trie.lookup(a), map.lookup(a), "lookup({probe})");
            assert_eq!(trie.origin(a), map.origin(a), "origin({probe})");
        }
        assert_eq!(trie.len(), map.len());
        assert_eq!(
            trie.iter().collect::<Vec<_>>(),
            map.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn generic_map_with_non_asn_values() {
        let mut m: PrefixMap<u8> = PrefixMap::new();
        assert!(m.is_empty());
        m.insert(p("192.0.2.0/24"), 7);
        m.insert(p("192.0.2.128/25"), 9);
        assert_eq!(m.get(ip("192.0.2.1")), Some(7));
        assert_eq!(m.get(ip("192.0.2.200")), Some(9));
        assert_eq!(m.get(ip("198.51.100.1")), None);
        assert_eq!(m.insert(p("192.0.2.0/24"), 8), Some(7));
        assert_eq!(m.len(), 2);
    }
}
