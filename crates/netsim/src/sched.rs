//! Pluggable event schedulers for the engine hot loop.
//!
//! The engine's contract is a *total order* over queued events: they fire in
//! ascending `(time, seq)`, where `seq` is allocated monotonically at
//! enqueue. Every byte of a run's output depends on that order, so the
//! scheduler is swappable only behind a differential harness
//! (`crates/core/tests/sched_equivalence.rs`) that proves two
//! implementations observationally identical.
//!
//! Two implementations ship:
//!
//! * [`HeapSched`] — the reference oracle: a plain `BinaryHeap` of
//!   [`QueuedEvent`]s. Trivially correct, `O(log n)` per operation, one
//!   allocation path per push (heap growth).
//! * [`WheelSched`] — the production default: a hierarchical timing wheel
//!   (calendar queue) with slab-allocated event storage. Events live in a
//!   reusable arena (`Vec` slab with an intrusive free list — no per-event
//!   heap traffic once warm), buckets are intrusive singly-linked lists,
//!   and dequeue drains a whole bucket at once into a sorted *batch* that
//!   subsequent pops consume in `(time, seq)` order.
//!
//! ## Why the wheel reproduces the heap's order exactly
//!
//! * Within a bucket, the drained batch is sorted by `(time, seq)` — the
//!   heap's exact tie-break. `(time, seq)` pairs are unique (`seq` is
//!   unique), so the sort is a total order and `sort_unstable` is safe.
//! * Across buckets, the wheel maintains the aligned-window invariant:
//!   level `l` holds exactly the events whose level-`(l+1)` tick equals the
//!   cursor's (level 0 is the cursor's current level-1 slot, level 1 the
//!   cursor's current level-2 slot, ...). A bucket is drained only after
//!   every lower-time bucket was drained or cascaded down, so batch `k`'s
//!   times all precede batch `k+1`'s.
//! * Events enqueued *while a batch is being consumed* either land at or
//!   after the wheel floor (simulation time never goes backwards, and a new
//!   event's `seq` exceeds every already-queued one, so a same-instant
//!   insert sorts after the batch's same-instant remainder) — or, for
//!   externally scheduled absolute times behind the floor, are spliced into
//!   the pending batch at their sorted position. Both paths preserve the
//!   global `(time, seq)` order.
//!
//! Geometry: 3 levels × 1024 slots, level-0 buckets of 2^16 ns ≈ 65.5 µs.
//! Level 0 spans ~67 ms (one core-link RTT fits), level 1 ~68.7 s (poll
//! timers), level 2 ~19.5 h (the human-noise +2 h timers and any survey
//! horizon). Anything further out sits in an overflow calendar keyed by
//! 19.5 h epochs and enters the wheel when its epoch begins.

use crate::node::HostId;
use crate::packet::Packet;
use crate::time::SimTime;
use crate::topology::Asn;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// What a queued event does when it fires.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver a packet to the destination-side pipeline.
    Deliver {
        pkt: Packet,
        /// Origin AS recorded at send time, so destination-side border
        /// filters know whether a border is being crossed.
        from_asn: Asn,
        /// Destination AS resolved at send time. Routes are immutable
        /// during a run, so re-deriving it at delivery would do a second
        /// longest-prefix match for the same answer.
        dst_asn: Asn,
    },
    /// Fire a host timer.
    Timer { host: HostId, token: u64 },
}

/// One scheduled event. Ordering is **only** `(at, seq)` — the payload must
/// never influence it (equal-time events fire in enqueue order, which is
/// what makes runs reproducible and schedulers interchangeable).
#[derive(Debug)]
pub struct QueuedEvent {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which scheduler implementation an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedKind {
    /// Binary-heap reference scheduler (the differential oracle).
    Heap,
    /// Hierarchical timing wheel (production default).
    #[default]
    Wheel,
}

impl SchedKind {
    /// Scheduler selected by the `BCD_SCHED` environment variable
    /// (`heap` | `wheel`); defaults to the wheel.
    pub fn from_env() -> SchedKind {
        match std::env::var("BCD_SCHED").ok().as_deref() {
            Some(v) if v.eq_ignore_ascii_case("heap") => SchedKind::Heap,
            _ => SchedKind::Wheel,
        }
    }
}

/// The scheduler contract the engine drives.
///
/// `pop` must return queued events in ascending `(time, seq)` order —
/// byte-determinism of every run rests on that. `peek_time` may reorganize
/// internal storage (the wheel cascades), hence `&mut`.
pub trait EngineSched {
    /// Enqueue an event.
    fn push(&mut self, ev: QueuedEvent);
    /// Dequeue the `(time, seq)`-minimal event.
    fn pop(&mut self) -> Option<QueuedEvent>;
    /// Time of the next event without dequeuing it.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Number of queued events.
    fn len(&self) -> usize;
    /// True if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop every queued event.
    fn clear(&mut self);
    /// Number of queued `Deliver` events (in-flight packets).
    fn pending_delivers(&self) -> u64;
}

// ---------------------------------------------------------------------------
// HeapSched — the reference oracle
// ---------------------------------------------------------------------------

/// The classic `BinaryHeap` scheduler: the simplest thing that satisfies
/// the contract, kept as the differential oracle (`BCD_SCHED=heap`).
#[derive(Default)]
pub struct HeapSched {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    delivers: u64,
}

impl HeapSched {
    pub fn new() -> HeapSched {
        HeapSched::default()
    }
}

impl EngineSched for HeapSched {
    fn push(&mut self, ev: QueuedEvent) {
        if matches!(ev.kind, EventKind::Deliver { .. }) {
            self.delivers += 1;
        }
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        let Reverse(ev) = self.heap.pop()?;
        if matches!(ev.kind, EventKind::Deliver { .. }) {
            self.delivers -= 1;
        }
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.delivers = 0;
    }

    fn pending_delivers(&self) -> u64 {
        self.delivers
    }
}

// ---------------------------------------------------------------------------
// WheelSched — hierarchical timing wheel with slab storage
// ---------------------------------------------------------------------------

/// log2 of the level-0 bucket width in nanoseconds (2^16 ns ≈ 65.5 µs).
const SHIFT: u32 = 16;
/// log2 of the slot count per level.
const BITS: u32 = 10;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Slot-index mask.
const MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels (level 2 spans ~19.5 h).
const LEVELS: usize = 3;
/// Bitmap words per level.
const WORDS: usize = SLOTS / 64;
/// Null slab index.
const NIL: u32 = u32::MAX;

struct SlabEntry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
    /// Next entry in the same bucket list, or the free list.
    next: u32,
}

/// Hierarchical timing-wheel scheduler.
///
/// See the module docs for the geometry and the ordering argument. All
/// event payloads live in a slab arena reused across the run; buckets and
/// the free list are intrusive `u32` links, so a warm wheel performs no
/// allocation on push or pop.
pub struct WheelSched {
    slab: Vec<SlabEntry>,
    /// Free-list head into `slab`.
    free: u32,
    /// Bucket heads: `levels[l][slot]` is a slab index or `NIL`.
    levels: Vec<[u32; SLOTS]>,
    /// Occupancy bitmaps mirroring `levels` (find-next-set in O(words)).
    occupied: Vec<[u64; WORDS]>,
    /// Wheel floor in level-0 ticks: every event at a tick `< cursor` has
    /// been drained into `batch` (or popped).
    cursor: u64,
    /// The drained current bucket, sorted ascending by `(at, seq)`;
    /// consumed from `batch_pos`.
    batch: Vec<(SimTime, u64, u32)>,
    batch_pos: usize,
    /// Events beyond level 2's span, keyed by level-3 epoch (~19.5 h).
    overflow: BTreeMap<u64, Vec<u32>>,
    len: usize,
    delivers: u64,
}

impl Default for WheelSched {
    fn default() -> Self {
        WheelSched::new()
    }
}

impl WheelSched {
    pub fn new() -> WheelSched {
        WheelSched {
            slab: Vec::new(),
            free: NIL,
            levels: vec![[NIL; SLOTS]; LEVELS],
            occupied: vec![[0u64; WORDS]; LEVELS],
            cursor: 0,
            batch: Vec::new(),
            batch_pos: 0,
            overflow: BTreeMap::new(),
            len: 0,
            delivers: 0,
        }
    }

    fn alloc(&mut self, ev: QueuedEvent) -> u32 {
        let QueuedEvent { at, seq, kind } = ev;
        if self.free != NIL {
            let idx = self.free;
            let e = &mut self.slab[idx as usize];
            self.free = e.next;
            e.at = at;
            e.seq = seq;
            e.kind = kind;
            e.next = NIL;
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(SlabEntry {
                at,
                seq,
                kind,
                next: NIL,
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) -> EventKind {
        let e = &mut self.slab[idx as usize];
        // Drop the payload now rather than when the slot is reused, so a
        // freed delivery does not pin its packet buffer.
        let kind = std::mem::replace(&mut e.kind, EventKind::Timer { host: 0, token: 0 });
        e.next = self.free;
        self.free = idx;
        kind
    }

    /// Link a slab entry into its bucket. The event's time must be at or
    /// past the wheel floor.
    fn insert_raw(&mut self, idx: u32) {
        let tick0 = self.slab[idx as usize].at.as_nanos() >> SHIFT;
        debug_assert!(tick0 >= self.cursor, "insert behind the wheel floor");
        for l in 0..LEVELS as u32 {
            // Aligned-window rule: level l holds the events sharing the
            // cursor's level-(l+1) tick.
            if (tick0 >> ((l + 1) * BITS)) == (self.cursor >> ((l + 1) * BITS)) {
                let slot = ((tick0 >> (l * BITS)) & MASK) as usize;
                let l = l as usize;
                self.slab[idx as usize].next = self.levels[l][slot];
                self.levels[l][slot] = idx;
                self.occupied[l][slot / 64] |= 1u64 << (slot % 64);
                return;
            }
        }
        let epoch = tick0 >> (LEVELS as u32 * BITS);
        self.overflow.entry(epoch).or_default().push(idx);
    }

    /// First occupied slot of `level` at index `start` or later.
    fn find_occupied(&self, level: usize, start: usize) -> Option<usize> {
        if start >= SLOTS {
            return None;
        }
        let words = &self.occupied[level];
        let mut w = start / 64;
        let mut word = words[w] & (!0u64 << (start % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = words[w];
        }
    }

    /// Unlink and return the whole list at `levels[level][slot]`.
    fn take_bucket(&mut self, level: usize, slot: usize) -> u32 {
        let head = self.levels[level][slot];
        self.levels[level][slot] = NIL;
        self.occupied[level][slot / 64] &= !(1u64 << (slot % 64));
        head
    }

    /// Cascade every event in `levels[level][slot]` down (re-routed by
    /// `insert_raw`, which places each at the lowest level whose aligned
    /// window now contains it).
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut idx = self.take_bucket(level, slot);
        while idx != NIL {
            let next = self.slab[idx as usize].next;
            self.insert_raw(idx);
            idx = next;
        }
    }

    /// Ensure `batch` holds the next pending event. Returns false iff the
    /// wheel is empty.
    fn refill(&mut self) -> bool {
        if self.batch_pos < self.batch.len() {
            return true;
        }
        self.batch.clear();
        self.batch_pos = 0;
        if self.len == 0 {
            return false;
        }
        loop {
            // Top-down sync: pull everything belonging to the cursor's
            // current windows down before scanning level 0. Draining a
            // window's last bucket steps the cursor across a parent
            // boundary (always landing exactly on the new window's start),
            // and the new parent slot may hold events that must reach
            // level 0 before anything in the new window fires. Mid-window
            // these slots are empty by the insertion rule, so the check is
            // a bitmap read.
            if !self.overflow.is_empty() {
                let epoch = self.cursor >> (LEVELS as u32 * BITS);
                if let Some(idxs) = self.overflow.remove(&epoch) {
                    for idx in idxs {
                        self.insert_raw(idx);
                    }
                }
            }
            for level in (1..LEVELS).rev() {
                let slot = ((self.cursor >> (level as u32 * BITS)) & MASK) as usize;
                if self.occupied[level][slot / 64] & (1u64 << (slot % 64)) != 0 {
                    self.cascade(level, slot);
                }
            }
            // Drain the earliest occupied level-0 bucket of the current
            // window as one batch.
            if let Some(slot) = self.find_occupied(0, (self.cursor & MASK) as usize) {
                let tick = (self.cursor & !MASK) + slot as u64;
                let mut idx = self.take_bucket(0, slot);
                while idx != NIL {
                    let e = &self.slab[idx as usize];
                    self.batch.push((e.at, e.seq, idx));
                    idx = e.next;
                }
                // (at, seq) pairs are unique, so unstable sort is a total
                // order — this is the heap's exact tie-break.
                self.batch.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
                self.cursor = tick + 1;
                return true;
            }
            // Current window exhausted: jump to the next occupied slot,
            // nearest level first (level-1 slots precede any level-2 slot,
            // which precede any overflow epoch — all are strictly beyond
            // the cursor's current window). The landing slot is cascaded
            // by the sync at the top of the next iteration.
            let cur1 = self.cursor >> BITS;
            if let Some(s) = self.find_occupied(1, ((cur1 & MASK) + 1) as usize) {
                self.cursor = ((cur1 & !MASK) + s as u64) << BITS;
                continue;
            }
            let cur2 = self.cursor >> (2 * BITS);
            if let Some(s) = self.find_occupied(2, ((cur2 & MASK) + 1) as usize) {
                self.cursor = ((cur2 & !MASK) + s as u64) << (2 * BITS);
                continue;
            }
            if let Some((&epoch, _)) = self.overflow.iter().next() {
                self.cursor = epoch << (LEVELS as u32 * BITS);
                continue;
            }
            debug_assert!(false, "len > 0 but no event found");
            return false;
        }
    }
}

impl EngineSched for WheelSched {
    fn push(&mut self, ev: QueuedEvent) {
        if matches!(ev.kind, EventKind::Deliver { .. }) {
            self.delivers += 1;
        }
        self.len += 1;
        let (at, seq) = (ev.at, ev.seq);
        let idx = self.alloc(ev);
        if (at.as_nanos() >> SHIFT) < self.cursor {
            // Behind the wheel floor: the event belongs to the region the
            // current batch was drained from. Splice it into the unconsumed
            // remainder at its sorted position. (The engine only enqueues
            // at or after `now`; this path exists for externally scheduled
            // absolute times and for same-bucket inserts mid-batch.)
            let pos = match self.batch[self.batch_pos..]
                .binary_search_by_key(&(at, seq), |&(a, s, _)| (a, s))
            {
                Ok(p) | Err(p) => self.batch_pos + p,
            };
            self.batch.insert(pos, (at, seq, idx));
        } else {
            self.insert_raw(idx);
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        if !self.refill() {
            return None;
        }
        let (at, seq, idx) = self.batch[self.batch_pos];
        self.batch_pos += 1;
        if self.batch_pos == self.batch.len() {
            self.batch.clear();
            self.batch_pos = 0;
        }
        let kind = self.release(idx);
        self.len -= 1;
        if matches!(kind, EventKind::Deliver { .. }) {
            self.delivers -= 1;
        }
        Some(QueuedEvent { at, seq, kind })
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.refill() {
            Some(self.batch[self.batch_pos].0)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.slab.clear();
        self.free = NIL;
        for l in 0..LEVELS {
            self.levels[l] = [NIL; SLOTS];
            self.occupied[l] = [0u64; WORDS];
        }
        self.batch.clear();
        self.batch_pos = 0;
        self.cursor = 0;
        self.overflow.clear();
        self.len = 0;
        self.delivers = 0;
    }

    fn pending_delivers(&self) -> u64 {
        self.delivers
    }
}

// ---------------------------------------------------------------------------
// EventQueue — static dispatch over the two implementations
// ---------------------------------------------------------------------------

/// The engine's queue: one of the two schedulers, dispatched statically
/// (an enum, not a `dyn` object — the pop loop is the hottest code in the
/// simulator).
pub enum EventQueue {
    Heap(HeapSched),
    Wheel(WheelSched),
}

impl EventQueue {
    pub fn new(kind: SchedKind) -> EventQueue {
        match kind {
            SchedKind::Heap => EventQueue::Heap(HeapSched::new()),
            SchedKind::Wheel => EventQueue::Wheel(WheelSched::new()),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            EventQueue::Heap($q) => $body,
            EventQueue::Wheel($q) => $body,
        }
    };
}

impl EngineSched for EventQueue {
    fn push(&mut self, ev: QueuedEvent) {
        delegate!(self, q => q.push(ev))
    }
    fn pop(&mut self) -> Option<QueuedEvent> {
        delegate!(self, q => q.pop())
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        delegate!(self, q => q.peek_time())
    }
    fn len(&self) -> usize {
        delegate!(self, q => q.len())
    }
    fn clear(&mut self) {
        delegate!(self, q => q.clear())
    }
    fn pending_delivers(&self) -> u64 {
        delegate!(self, q => q.pending_delivers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(at_ns: u64, seq: u64) -> QueuedEvent {
        QueuedEvent {
            at: SimTime::from_nanos(at_ns),
            seq,
            kind: EventKind::Timer {
                host: 0,
                token: seq,
            },
        }
    }

    fn drain(q: &mut impl EngineSched) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push((ev.at.as_nanos(), ev.seq));
        }
        out
    }

    #[test]
    fn ordering_ignores_payload() {
        let a = timer(5, 1);
        let b = QueuedEvent {
            at: SimTime::from_nanos(5),
            seq: 1,
            kind: EventKind::Timer { host: 9, token: 7 },
        };
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn wheel_pops_in_time_seq_order() {
        let mut w = WheelSched::new();
        // Same tick, sub-bucket spread, cross-bucket, cross-level, overflow.
        let times = [
            7u64,
            7,
            7,
            100,
            65_537,
            10_000_000,
            60_000_000_000,
            7_200_000_000_000,
            1 << 47,
        ];
        for (seq, &t) in times.iter().enumerate() {
            w.push(timer(t, seq as u64));
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_matches_heap_on_interleaved_ops() {
        let mut w = WheelSched::new();
        let mut h = HeapSched::new();
        let mut x = 12345u64;
        let mut now = 0u64;
        for seq in 0..50_000u64 {
            x = crate::engine::splitmix64(x);
            let delta = match x % 7 {
                0 => 0,
                1 => x % 1_000,
                2 => x % 100_000,
                3 => 1_000_000 + x % 50_000_000,
                4 => 60_000_000_000,
                5 => 7_200_000_000_000,
                _ => (1 << 46) + (x % (1 << 46)),
            };
            w.push(timer(now + delta, seq));
            h.push(timer(now + delta, seq));
            if x.is_multiple_of(3) {
                let a = w.pop().map(|e| (e.at, e.seq));
                let b = h.pop().map(|e| (e.at, e.seq));
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        assert_eq!(w.len(), h.len());
        assert_eq!(drain(&mut w), drain(&mut h));
    }

    #[test]
    fn push_behind_floor_splices_into_batch() {
        let mut w = WheelSched::new();
        w.push(timer(10, 0));
        w.push(timer(20, 1));
        assert_eq!(w.pop().unwrap().seq, 0);
        // 10 and 20 share a 65 µs bucket, so the wheel floor has passed
        // both; an external absolute-time schedule behind the floor must
        // still fire before 20.
        w.push(timer(15, 2));
        assert_eq!(w.pop().map(|e| (e.at.as_nanos(), e.seq)), Some((15, 2)));
        assert_eq!(w.pop().map(|e| (e.at.as_nanos(), e.seq)), Some((20, 1)));
        assert!(w.pop().is_none());
    }

    #[test]
    fn clear_resets_and_counts_delivers() {
        let mut w = WheelSched::new();
        w.push(timer(1, 0));
        w.push(QueuedEvent {
            at: SimTime::from_nanos(2),
            seq: 1,
            kind: EventKind::Deliver {
                pkt: Packet::udp(
                    "192.0.2.1".parse().unwrap(),
                    "192.0.2.2".parse().unwrap(),
                    1,
                    1,
                    vec![],
                ),
                from_asn: Asn(1),
                dst_asn: Asn(1),
            },
        });
        assert_eq!(w.len(), 2);
        assert_eq!(w.pending_delivers(), 1);
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.pending_delivers(), 0);
        assert!(w.pop().is_none());
        // Still usable after a clear.
        w.push(timer(5, 2));
        assert_eq!(w.pop().unwrap().seq, 2);
    }

    #[test]
    fn peek_time_agrees_with_pop() {
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            let mut q = EventQueue::new(kind);
            for (seq, t) in [500u64, 3, 3, 90_000_000_000].into_iter().enumerate() {
                q.push(timer(t, seq as u64));
            }
            while let Some(t) = q.peek_time() {
                let ev = q.pop().unwrap();
                assert_eq!(ev.at, t);
            }
            assert!(q.is_empty());
        }
    }
}
