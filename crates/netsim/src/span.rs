//! Causal query tracing: deterministic spans and the flight recorder.
//!
//! The survey's analyses hinge on per-query causal chains — scanner →
//! border policy → (interceptor) → resolver → authoritative → reply — but
//! counters only show marginals. This module records the chain itself:
//!
//! * a [`TraceId`] is derived from shard-invariant packet content (FNV-1a
//!   over the canonical QNAME bytes, which encode the probe's identity),
//!   never from host RNG state, and rides on [`crate::Packet::trace`] so
//!   causality propagates without payload parsing;
//! * every layer emits typed [`Span`]s ([`SpanKind`]) into a bounded
//!   [`FlightRecorder`];
//! * the recorder keeps its window in **canonical span order**
//!   `(time, trace, step)` and evicts the canonically oldest entry on
//!   overflow. Because one query's whole causal chain runs inside one
//!   shard (the schedule partitions by destination AS) and trace ids are
//!   unique per query, the canonical order is a total order with no
//!   cross-shard ties — so the merged window *and* the eviction count are
//!   invariant under `BCD_SHARDS`, the same contract every other run
//!   artifact honours.
//!
//! Why eviction is canonical-order and not arrival-order: two shards
//! interleave differently than one engine does at equal timestamps, so an
//! arrival-order ring would retain different equal-time spans at different
//! shard counts. Evicting the minimum `(time, trace, step)` key makes the
//! retained set "the newest `capacity` spans" under a shard-free total
//! order, which the merge provably reproduces (see `Merge` below).

use crate::merge::Merge;
use crate::time::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write;

/// Identity of one traced query's causal chain. `0` means "untraced" and
/// is never recorded.
pub type TraceId = u64;

/// Derive a [`TraceId`] from shard-invariant identity bytes (canonical
/// QNAME bytes for DNS probes). Pure FNV-1a; remapped away from the
/// reserved `0`.
pub fn trace_id(identity: &[u8]) -> TraceId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in identity {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Origin-side sampling policy: which queries get a trace id stamped.
///
/// The decision is a pure function of the query's presentation-form qname —
/// never of stream position — so a given query samples identically in every
/// shard and under every scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSample {
    /// Keep roughly one query in `every` (1 = trace everything). The keep
    /// test hashes the qname, so the kept subset is shard-invariant.
    pub every: u64,
    /// Only trace queries whose qname ends with this suffix (trailing dots
    /// ignored on both sides).
    pub qname_suffix: Option<String>,
}

impl Default for TraceSample {
    fn default() -> TraceSample {
        TraceSample {
            every: 1,
            qname_suffix: None,
        }
    }
}

impl TraceSample {
    /// Sampling decision for a query named `qname` (presentation form).
    /// Returns the trace id to stamp on the originating packet, or `0` to
    /// leave the query untraced.
    pub fn sample(&self, qname: &str) -> TraceId {
        let name = qname.trim_end_matches('.');
        if let Some(suffix) = &self.qname_suffix {
            if !name.ends_with(suffix.trim_end_matches('.')) {
                return 0;
            }
        }
        let id = trace_id(name.as_bytes());
        if self.every <= 1 || id.is_multiple_of(self.every) {
            id
        } else {
            0
        }
    }
}

/// The typed step taxonomy of a query's causal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A node handed the packet to the network.
    Send,
    /// The engine resolved the path (origin/destination AS, hop count).
    Route,
    /// A fault or policy decided the packet's fate (drop reason, chaos
    /// delay/duplication).
    Fate,
    /// A transparent middlebox grabbed the packet.
    Intercept,
    /// The packet reached its addressee's node.
    Deliver,
    /// The resolver probed its cache for the query.
    CacheProbe,
    /// The resolver fanned out (or retried) an upstream query.
    Upstream,
    /// The resolver judged an upstream response (match, referral, answer).
    Validate,
    /// A server composed its reply to the traced client.
    Reply,
}

impl SpanKind {
    /// Stable lowercase label (render + export surface).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Send => "send",
            SpanKind::Route => "route",
            SpanKind::Fate => "fate",
            SpanKind::Intercept => "intercept",
            SpanKind::Deliver => "deliver",
            SpanKind::CacheProbe => "cache-probe",
            SpanKind::Upstream => "upstream",
            SpanKind::Validate => "validate",
            SpanKind::Reply => "reply",
        }
    }
}

/// One recorded span (assembled view over the recorder's storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub time: SimTime,
    pub trace: TraceId,
    /// Causal index within the trace: the n-th span this trace recorded.
    /// Assigned by the recorder; shard-invariant because a trace's whole
    /// chain executes in one shard.
    pub step: u32,
    pub kind: SpanKind,
    pub detail: String,
}

/// A bounded window of [`Span`]s in canonical `(time, trace, step)` order.
///
/// `capacity == 0` records nothing but still counts evictions (mirrors
/// [`crate::Trace`]).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    spans: BTreeMap<(SimTime, TraceId, u32), (SpanKind, String)>,
    /// Next causal step per trace (keeps counting past evictions).
    next_step: HashMap<TraceId, u32>,
    evicted: u64,
    /// Origin-side sampling policy (consulted by originators via
    /// [`crate::NodeCtx::sample_trace`]; identical across shards).
    sampling: TraceSample,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ..FlightRecorder::default()
        }
    }

    /// Set the origin-side sampling policy.
    pub fn with_sampling(mut self, sampling: TraceSample) -> FlightRecorder {
        self.sampling = sampling;
        self
    }

    /// Sampling decision for a query qname (see [`TraceSample::sample`]).
    pub fn sample(&self, qname: &str) -> TraceId {
        self.sampling.sample(qname)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted from the window (recorded but no longer retained).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total spans ever recorded.
    pub fn recorded(&self) -> u64 {
        self.spans.len() as u64 + self.evicted
    }

    /// Record one span. `trace == 0` is ignored (untraced traffic).
    pub fn record(&mut self, time: SimTime, trace: TraceId, kind: SpanKind, detail: String) {
        if trace == 0 {
            return;
        }
        let step_slot = self.next_step.entry(trace).or_insert(0);
        let step = *step_slot;
        *step_slot += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        self.spans.insert((time, trace, step), (kind, detail));
        if self.spans.len() > self.capacity {
            self.spans.pop_first();
            self.evicted += 1;
        }
    }

    /// Retained spans in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Span> + '_ {
        self.spans
            .iter()
            .map(|(&(time, trace, step), (kind, detail))| Span {
                time,
                trace,
                step,
                kind: *kind,
                detail: detail.clone(),
            })
    }

    /// Distinct trace ids with retained spans, ascending.
    pub fn traces(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.spans.keys().map(|&(_, t, _)| t).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Retained spans of one trace, in causal order.
    pub fn trace_spans(&self, id: TraceId) -> Vec<Span> {
        let mut spans: Vec<Span> = self.iter().filter(|s| s.trace == id).collect();
        spans.sort_by_key(|s| s.step);
        spans
    }

    /// Render one trace's causal chain as deterministic text.
    pub fn render_trace(&self, id: TraceId) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace {id:016x}:");
        for s in self.trace_spans(id) {
            let _ = writeln!(
                out,
                "  [{:>2}] t={} {:<11} {}",
                s.step,
                s.time,
                s.kind.label(),
                s.detail
            );
        }
        out
    }

    /// Render the full retained window (canonical order) as deterministic
    /// text — the chaos violation dump's flight-recorder section.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== flight recorder: {} spans retained, {} evicted, {} traces ==",
            self.len(),
            self.evicted,
            self.traces().len()
        );
        for s in self.iter() {
            let _ = writeln!(
                out,
                "t={} trace={:016x} [{:>2}] {:<11} {}",
                s.time,
                s.trace,
                s.step,
                s.kind.label(),
                s.detail
            );
        }
        out
    }
}

impl Merge for FlightRecorder {
    /// Union the windows under the canonical order, keep the larger
    /// capacity, and evict the canonically oldest past it.
    ///
    /// Invariance argument: per shard, the retained set is the newest
    /// `cap` spans of that shard's recordings (canonical order). Any span
    /// among the global newest `cap` has fewer than `cap` spans above it
    /// globally, hence fewer than `cap` above it within its own shard —
    /// so every shard retains its members of the global top-`cap`, and
    /// the merged, re-evicted union *is* the global top-`cap`: exactly
    /// what a single engine retains. Eviction counts telescope to
    /// `total_recorded - cap` on both sides.
    fn merge(&mut self, other: FlightRecorder) {
        self.capacity = self.capacity.max(other.capacity);
        self.evicted += other.evicted;
        self.spans.extend(other.spans);
        for (trace, step) in other.next_step {
            let slot = self.next_step.entry(trace).or_insert(0);
            *slot = (*slot).max(step);
        }
        while self.spans.len() > self.capacity {
            self.spans.pop_first();
            self.evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn trace_id_is_stable_and_nonzero() {
        assert_eq!(trace_id(b"ts1.src.dst"), trace_id(b"ts1.src.dst"));
        assert_ne!(trace_id(b"a"), trace_id(b"b"));
        assert_ne!(trace_id(b""), 0);
    }

    #[test]
    fn records_in_canonical_order_with_steps() {
        let mut fr = FlightRecorder::with_capacity(16);
        fr.record(t(2), 7, SpanKind::Deliver, "x".into());
        fr.record(t(1), 7, SpanKind::Send, "y".into());
        fr.record(t(1), 3, SpanKind::Send, "z".into());
        let spans: Vec<Span> = fr.iter().collect();
        assert_eq!(spans.len(), 3);
        // Canonical order: time first, then trace id.
        assert_eq!(spans[0].trace, 3);
        assert_eq!(spans[1].trace, 7);
        assert_eq!(spans[2].trace, 7);
        // Steps follow record order per trace.
        assert_eq!(fr.trace_spans(7)[0].kind, SpanKind::Deliver);
        assert_eq!(fr.trace_spans(7)[0].step, 0);
        assert_eq!(fr.trace_spans(7)[1].step, 1);
    }

    #[test]
    fn untraced_is_ignored() {
        let mut fr = FlightRecorder::with_capacity(4);
        fr.record(t(1), 0, SpanKind::Send, "no".into());
        assert!(fr.is_empty());
        assert_eq!(fr.evicted(), 0);
    }

    #[test]
    fn overflow_evicts_canonically_oldest() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.record(t(3), 1, SpanKind::Send, "c".into());
        fr.record(t(1), 1, SpanKind::Send, "a".into());
        fr.record(t(2), 1, SpanKind::Send, "b".into());
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.evicted(), 1);
        let times: Vec<SimTime> = fr.iter().map(|s| s.time).collect();
        assert_eq!(times, vec![t(2), t(3)]);
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut fr = FlightRecorder::with_capacity(0);
        fr.record(t(1), 9, SpanKind::Send, "a".into());
        assert!(fr.is_empty());
        assert_eq!(fr.evicted(), 1);
        assert_eq!(fr.recorded(), 1);
    }

    #[test]
    fn merge_equals_single_recorder() {
        // Interleave two disjoint trace populations across two recorders
        // and check the merge matches one recorder that saw everything.
        let cap = 5;
        let mut single = FlightRecorder::with_capacity(cap);
        let mut a = FlightRecorder::with_capacity(cap);
        let mut b = FlightRecorder::with_capacity(cap);
        let events: Vec<(u64, TraceId)> = vec![
            (1, 2),
            (1, 11),
            (2, 4),
            (2, 2),
            (3, 11),
            (3, 4),
            (4, 2),
            (5, 11),
            (5, 4),
            (6, 2),
        ];
        for &(sec, trace) in &events {
            single.record(t(sec), trace, SpanKind::Send, format!("e{sec}"));
            let shard = if trace % 2 == 0 { &mut a } else { &mut b };
            shard.record(t(sec), trace, SpanKind::Send, format!("e{sec}"));
        }
        a.merge(b);
        assert_eq!(a.evicted(), single.evicted());
        assert_eq!(a.dump(), single.dump());
    }

    #[test]
    fn render_trace_is_causal() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.record(t(1), 5, SpanKind::Send, "q out".into());
        fr.record(t(2), 5, SpanKind::Deliver, "q in".into());
        let text = fr.render_trace(5);
        assert!(text.contains("trace 0000000000000005"));
        let send = text.find("send").unwrap();
        let deliver = text.find("deliver").unwrap();
        assert!(send < deliver);
    }
}
