//! Virtual time for the discrete-event simulation.
//!
//! The simulator never consults the wall clock: all timestamps are
//! [`SimTime`] values (nanoseconds since simulation start) and all intervals
//! are [`SimDuration`] values. This keeps runs reproducible and lets a
//! four-week measurement campaign (the paper's §3.4 schedule) execute in
//! seconds of real time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float (lossy; for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (None on overflow).
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * 1_000_000_000)
    }

    /// Construct from a float number of seconds, saturating on overflow or
    /// negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Length in seconds as a float (lossy; for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Integer division of a duration, rounding toward zero.
    pub const fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }

    /// Multiply a duration by an integer factor, saturating.
    pub const fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000_000;
        let frac = self.0 % 1_000_000_000;
        write!(f, "{secs}.{:09}s", frac)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(2250));
    }

    #[test]
    fn saturating_subtraction_never_underflows() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
        assert_eq!(SimDuration::from_secs_f64(1e30).as_nanos(), u64::MAX);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000000s");
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_nanos(1))
            .is_some());
    }

    #[test]
    fn div_and_mul() {
        assert_eq!(
            SimDuration::from_secs(10).div(4),
            SimDuration::from_millis(2500)
        );
        assert_eq!(
            SimDuration::from_millis(3).mul(4),
            SimDuration::from_millis(12)
        );
    }
}
