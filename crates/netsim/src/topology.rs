//! Autonomous systems, border policies, and host stack policies.
//!
//! The paper's core object of study is the **border policy** of an AS:
//! whether spoofed-source packets are filtered on the way out (OSAV, BCP 38)
//! or on the way in (DSAV). [`BorderPolicy`] captures both, plus the two
//! bogon-ingress dimensions the experiment's *private* and *loopback* source
//! categories probe (§3.2, Table 3).
//!
//! [`StackPolicy`] captures the *host*-level acceptance behaviour of §5.5 /
//! Table 6: whether an OS kernel delivers destination-as-source or
//! loopback-source packets to user space. `bcd-osmodel` derives concrete
//! policies from OS identities.

use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Border filtering policy of an AS.
///
/// * `osav` — origin-side SAV (BCP 38 egress filtering): outbound packets
///   whose source is *not* in the AS's announced prefixes are dropped.
/// * `dsav` — destination-side SAV: inbound packets whose source *is* in the
///   AS's announced prefixes are dropped (they claim to come from inside).
///   Destination-as-source packets are a special case and are also caught.
/// * `filter_private_ingress` — inbound packets with RFC 1918 / ULA sources
///   are dropped (common "bogon" ACL, independent of DSAV in practice —
///   the paper found private sources reaching 3.4% of reachable targets).
/// * `filter_loopback_ingress` — inbound packets with loopback sources are
///   dropped. Almost universal, which is why the paper saw only 1 IPv4 and
///   106 IPv6 loopback hits.
/// * `subnet_savi` — finer-grained ingress validation: inbound packets whose
///   source lies in the *same /24 (IPv4) or /64 (IPv6) as the destination*
///   are dropped even when AS-wide DSAV is absent (internal segmentation /
///   SAVI at the access layer). This is what makes the *other-prefix*
///   category the only one to reach some targets (paper Table 3's
///   "Category-Exclusive" other-prefix rows).
/// * `internal_pass_permille` — partial internal SAV: even without AS-wide
///   DSAV, many networks filter spoofs of *some* internal prefixes (uRPF on
///   some internal boundaries, scattered ACLs). Each source /24 (IPv4) or
///   /64 (IPv6) deterministically passes or fails based on a per-(AS,
///   subnet) hash compared against this permille threshold; `1000` admits
///   everything. The destination's own subnet always passes (a feasible-
///   path filter cannot drop its own subnet's addresses) — which is why the
///   paper's median reachable target worked with only ~3 spoofed sources
///   while same-prefix spoofs succeeded broadly (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BorderPolicy {
    pub osav: bool,
    pub dsav: bool,
    pub filter_private_ingress: bool,
    /// Drop inbound IPv4 packets with loopback sources. (IPv6 has its own
    /// flag: the paper's loopback asymmetry — 1 IPv4 hit vs 106 IPv6 —
    /// shows v6 bogon filtering lags far behind v4.)
    pub filter_loopback_ingress: bool,
    /// Drop inbound IPv6 packets with loopback sources.
    pub filter_loopback_ingress_v6: bool,
    /// Drop inbound IPv4 packets whose source equals their destination —
    /// a "martian" ACL common in v4 edge configs even without full DSAV
    /// (why the paper's v4 dst-as-src rate, 17%, trails the v6 one, 70%).
    pub filter_ds_ingress_v4: bool,
    pub subnet_savi: bool,
    pub internal_pass_permille: u16,
}

impl BorderPolicy {
    /// A fully open border: no filtering at all.
    pub fn open() -> BorderPolicy {
        BorderPolicy {
            osav: false,
            dsav: false,
            filter_private_ingress: false,
            filter_loopback_ingress: false,
            filter_loopback_ingress_v6: false,
            filter_ds_ingress_v4: false,
            subnet_savi: false,
            internal_pass_permille: 1000,
        }
    }

    /// A fully filtered border: OSAV + DSAV + bogon ACLs.
    pub fn strict() -> BorderPolicy {
        BorderPolicy {
            osav: true,
            dsav: true,
            filter_private_ingress: true,
            filter_loopback_ingress: true,
            filter_loopback_ingress_v6: true,
            filter_ds_ingress_v4: true,
            subnet_savi: true,
            internal_pass_permille: 0,
        }
    }

    /// The paper's measurement vantage requirement (§3.4): a network lacking
    /// OSAV so spoofed probes can leave, with everything else open.
    pub fn no_osav_vantage() -> BorderPolicy {
        BorderPolicy::open()
    }
}

/// An AS with its border policy. The announced prefixes live in the routing
/// table ([`crate::PrefixTable`]); this struct holds per-AS behaviour.
#[derive(Debug, Clone)]
pub struct AsInfo {
    pub asn: Asn,
    pub policy: BorderPolicy,
    /// If set, UDP/53 packets entering this AS are transparently redirected
    /// to this host — a DNS-intercepting middlebox (§3.6.1).
    pub dns_interceptor: Option<usize>,
}

impl AsInfo {
    /// A new AS with the given policy and no middlebox.
    pub fn new(asn: Asn, policy: BorderPolicy) -> AsInfo {
        AsInfo {
            asn,
            policy,
            dns_interceptor: None,
        }
    }
}

/// Host network-stack acceptance policy for anomalous-source packets,
/// split by spoof class and IP version (paper Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackPolicy {
    /// Deliver IPv4 packets whose source equals the host address.
    pub accept_dst_as_src_v4: bool,
    /// Deliver IPv6 packets whose source equals the host address.
    pub accept_dst_as_src_v6: bool,
    /// Deliver IPv4 packets with loopback source arriving on the wire.
    pub accept_loopback_v4: bool,
    /// Deliver IPv6 packets with loopback source arriving on the wire.
    pub accept_loopback_v6: bool,
}

impl StackPolicy {
    /// Accept everything (the most permissive stack the paper found:
    /// Windows Server 2003 accepted IPv4 loopback; old Linux accepted IPv6
    /// loopback; no stack accepted both, but tests use this).
    pub fn permissive() -> StackPolicy {
        StackPolicy {
            accept_dst_as_src_v4: true,
            accept_dst_as_src_v6: true,
            accept_loopback_v4: true,
            accept_loopback_v6: true,
        }
    }

    /// Drop all anomalous-source packets (the paper argues this should be
    /// every kernel's default; none of the tested OSes actually did).
    pub fn strict() -> StackPolicy {
        StackPolicy {
            accept_dst_as_src_v4: false,
            accept_dst_as_src_v6: false,
            accept_loopback_v4: false,
            accept_loopback_v6: false,
        }
    }

    /// Whether a packet with the given anomaly is delivered to user space.
    pub fn accepts(&self, dst_as_src: bool, loopback_src: bool, v6: bool) -> bool {
        if loopback_src {
            if v6 {
                self.accept_loopback_v6
            } else {
                self.accept_loopback_v4
            }
        } else if dst_as_src {
            if v6 {
                self.accept_dst_as_src_v6
            } else {
                self.accept_dst_as_src_v4
            }
        } else {
            true
        }
    }
}

impl Default for StackPolicy {
    /// The common modern profile: destination-as-source accepted on IPv6
    /// only, loopback never (modern Linux, paper Table 6).
    fn default() -> StackPolicy {
        StackPolicy {
            accept_dst_as_src_v4: false,
            accept_dst_as_src_v6: true,
            accept_loopback_v4: false,
            accept_loopback_v6: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn border_presets() {
        assert!(!BorderPolicy::open().dsav);
        assert!(BorderPolicy::strict().osav);
        assert!(!BorderPolicy::no_osav_vantage().osav);
    }

    #[test]
    fn stack_policy_dispatch() {
        let linux = StackPolicy::default();
        // Normal packets always accepted.
        assert!(linux.accepts(false, false, false));
        assert!(linux.accepts(false, false, true));
        // Modern Linux: v6 DS accepted, v4 DS dropped, loopback dropped.
        assert!(linux.accepts(true, false, true));
        assert!(!linux.accepts(true, false, false));
        assert!(!linux.accepts(false, true, true));
        assert!(!linux.accepts(false, true, false));
        // Loopback takes precedence over dst-as-src when both hold.
        let strict = StackPolicy::strict();
        assert!(!strict.accepts(true, true, false));
        assert!(StackPolicy::permissive().accepts(true, true, true));
    }

    #[test]
    fn asn_display() {
        assert_eq!(Asn(64500).to_string(), "AS64500");
    }
}
