//! Packet tracing — a tcpdump-like capture of simulated traffic.
//!
//! Disabled by default (the full survey moves tens of millions of packets);
//! tests and examples enable it to assert on exact packet flows or to dump a
//! human-readable trace.
//!
//! The buffer is a *ring*: once `capacity` entries are held, each new record
//! evicts the oldest one. Enabling tracing on a full survey therefore costs
//! bounded memory and keeps the most recent traffic — the part a debugging
//! session almost always wants — while [`Trace::evicted`] counts what was
//! lost (surfaced as the `trace.evicted` metric by the observability
//! layer).

use crate::counters::DropReason;
use crate::packet::{Packet, Transport};
use crate::time::SimTime;
use std::fmt;

/// Where in the pipeline a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// Handed to the network by the sending node.
    Sent,
    /// Delivered to the destination node.
    Delivered,
    /// Redirected to a middlebox.
    Intercepted,
    /// Dropped, with the reason.
    Dropped(DropReason),
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    pub time: SimTime,
    pub point: TracePoint,
    pub packet: Packet,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proto = match &self.packet.transport {
            Transport::Udp(_) => "UDP",
            Transport::Tcp(t) => {
                if t.flags.syn && !t.flags.ack {
                    "TCP SYN"
                } else if t.flags.syn {
                    "TCP SYN-ACK"
                } else if t.flags.rst {
                    "TCP RST"
                } else {
                    "TCP"
                }
            }
        };
        let point = match self.point {
            TracePoint::Sent => "TX ".to_string(),
            TracePoint::Delivered => "RX ".to_string(),
            TracePoint::Intercepted => "MBX".to_string(),
            TracePoint::Dropped(r) => format!("DROP[{r}]"),
        };
        write!(
            f,
            "{} {point} {proto} {}:{} > {}:{} len {}",
            self.time,
            self.packet.src,
            self.packet.transport.src_port(),
            self.packet.dst,
            self.packet.transport.dst_port(),
            self.packet.transport.payload().len(),
        )
    }
}

/// A bounded ring-buffer capture: at most `capacity` entries are held, and
/// recording past capacity evicts the *oldest* entry.
#[derive(Debug)]
pub struct Trace {
    /// Ring storage; once full, `head` is the oldest entry and the ring
    /// wraps.
    ring: Vec<TraceEntry>,
    /// Index of the oldest entry (0 until the ring first fills).
    head: usize,
    capacity: usize,
    /// Number of entries evicted to make room after the buffer filled.
    pub evicted: u64,
}

impl Trace {
    /// A trace keeping the most recent `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            ring: Vec::new(),
            head: 0,
            capacity,
            evicted: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of captured entries currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Record one observation, evicting the oldest entry when full.
    pub fn record(&mut self, time: SimTime, point: TracePoint, packet: &Packet) {
        let entry = TraceEntry {
            time,
            point,
            packet: packet.clone(),
        };
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(entry);
        } else {
            self.ring[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    /// Captured entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring[self.head..]
            .iter()
            .chain(self.ring[..self.head].iter())
    }

    /// Entries matching a predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&TraceEntry) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.iter().filter(move |e| pred(e))
    }

    /// Fold another capture into this one: entries are interleaved by
    /// timestamp (stable — at equal times `self` entries come first), the
    /// larger capacity wins, and when the union exceeds it the *oldest*
    /// entries are evicted (ring semantics, same as [`Trace::record`]).
    pub fn absorb(&mut self, other: Trace) {
        let capacity = self.capacity.max(other.capacity);
        let mut evicted = self.evicted + other.evicted;
        let mut merged: Vec<TraceEntry> = Vec::with_capacity(self.len() + other.len());
        let mut rhs = other.iter().cloned().peekable();
        for e in self.iter().cloned() {
            while rhs.peek().is_some_and(|r| r.time < e.time) {
                merged.push(rhs.next().unwrap());
            }
            merged.push(e);
        }
        merged.extend(rhs);
        if merged.len() > capacity {
            let excess = merged.len() - capacity;
            evicted += excess as u64;
            merged.drain(..excess);
        }
        *self = Trace {
            ring: merged,
            head: 0,
            capacity,
            evicted,
        };
    }

    /// Render the whole capture as text, one line per record.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in self.iter() {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        if self.evicted > 0 {
            s.push_str(&format!(
                "... {} older entries evicted (ring capacity {})\n",
                self.evicted, self.capacity
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn pkt() -> Packet {
        let a: IpAddr = "192.0.2.1".parse().unwrap();
        let b: IpAddr = "198.51.100.9".parse().unwrap();
        Packet::udp(a, b, 40000, 53, vec![0; 12])
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let mut t = Trace::with_capacity(2);
        t.record(SimTime::ZERO, TracePoint::Sent, &pkt());
        t.record(SimTime::from_secs(1), TracePoint::Delivered, &pkt());
        t.record(SimTime::from_secs(2), TracePoint::Delivered, &pkt());
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted, 1);
        let times: Vec<u64> = t.iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(times, vec![1, 2], "oldest entry evicted, newest kept");
        assert!(t.dump().contains("evicted"));
    }

    #[test]
    fn ring_wraps_in_order_under_sustained_overflow() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.record(SimTime::from_secs(i), TracePoint::Sent, &pkt());
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted, 7);
        let times: Vec<u64> = t.iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_counts_everything_as_evicted() {
        let mut t = Trace::with_capacity(0);
        t.record(SimTime::ZERO, TracePoint::Sent, &pkt());
        assert_eq!(t.len(), 0);
        assert_eq!(t.evicted, 1);
    }

    #[test]
    fn display_format() {
        let mut t = Trace::with_capacity(10);
        t.record(
            SimTime::from_secs(1),
            TracePoint::Dropped(DropReason::Dsav),
            &pkt(),
        );
        let line = t.dump();
        assert!(line.contains("DROP[dsav-ingress]"), "{line}");
        assert!(line.contains("192.0.2.1:40000 > 198.51.100.9:53"), "{line}");
        assert!(line.contains("len 12"), "{line}");
    }

    #[test]
    fn absorb_interleaves_by_time_and_keeps_newest() {
        let mut a = Trace::with_capacity(3);
        a.record(SimTime::from_secs(1), TracePoint::Sent, &pkt());
        a.record(SimTime::from_secs(3), TracePoint::Delivered, &pkt());
        let mut b = Trace::with_capacity(2);
        b.record(SimTime::from_secs(2), TracePoint::Sent, &pkt());
        b.record(SimTime::from_secs(4), TracePoint::Sent, &pkt());
        a.absorb(b);
        let times: Vec<u64> = a.iter().map(|e| e.time.as_secs()).collect();
        // Ring semantics: capacity 3 keeps the *newest* three of {1,2,3,4}.
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(a.evicted, 1); // the t=1 entry was evicted
        assert_eq!(a.capacity(), 3);
    }

    #[test]
    fn absorb_flattens_a_wrapped_ring() {
        let mut a = Trace::with_capacity(2);
        for i in 0..4 {
            a.record(SimTime::from_secs(i), TracePoint::Sent, &pkt());
        }
        let mut b = Trace::with_capacity(4);
        b.record(SimTime::from_secs(1), TracePoint::Delivered, &pkt());
        b.absorb(a);
        let times: Vec<u64> = b.iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert_eq!(b.evicted, 2);
    }

    #[test]
    fn filter_selects() {
        let mut t = Trace::with_capacity(10);
        t.record(SimTime::ZERO, TracePoint::Sent, &pkt());
        t.record(SimTime::ZERO, TracePoint::Delivered, &pkt());
        assert_eq!(t.filter(|e| e.point == TracePoint::Delivered).count(), 1);
    }
}
