//! Packet tracing — a tcpdump-like capture of simulated traffic.
//!
//! Disabled by default (the full survey moves tens of millions of packets);
//! tests and examples enable it to assert on exact packet flows or to dump a
//! human-readable trace.

use crate::counters::DropReason;
use crate::packet::{Packet, Transport};
use crate::time::SimTime;
use std::fmt;

/// Where in the pipeline a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// Handed to the network by the sending node.
    Sent,
    /// Delivered to the destination node.
    Delivered,
    /// Redirected to a middlebox.
    Intercepted,
    /// Dropped, with the reason.
    Dropped(DropReason),
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    pub time: SimTime,
    pub point: TracePoint,
    pub packet: Packet,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proto = match &self.packet.transport {
            Transport::Udp(_) => "UDP",
            Transport::Tcp(t) => {
                if t.flags.syn && !t.flags.ack {
                    "TCP SYN"
                } else if t.flags.syn {
                    "TCP SYN-ACK"
                } else if t.flags.rst {
                    "TCP RST"
                } else {
                    "TCP"
                }
            }
        };
        let point = match self.point {
            TracePoint::Sent => "TX ".to_string(),
            TracePoint::Delivered => "RX ".to_string(),
            TracePoint::Intercepted => "MBX".to_string(),
            TracePoint::Dropped(r) => format!("DROP[{r}]"),
        };
        write!(
            f,
            "{} {point} {proto} {}:{} > {}:{} len {}",
            self.time,
            self.packet.src,
            self.packet.transport.src_port(),
            self.packet.dst,
            self.packet.transport.dst_port(),
            self.packet.transport.payload().len(),
        )
    }
}

/// A bounded in-memory capture buffer.
#[derive(Debug)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    /// Number of entries discarded after the buffer filled.
    pub overflowed: u64,
}

impl Trace {
    /// A trace keeping at most `capacity` entries (oldest kept).
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            entries: Vec::new(),
            capacity,
            overflowed: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, time: SimTime, point: TracePoint, packet: &Packet) {
        if self.entries.len() >= self.capacity {
            self.overflowed += 1;
            return;
        }
        self.entries.push(TraceEntry {
            time,
            point,
            packet: packet.clone(),
        });
    }

    /// All captured entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries matching a predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&TraceEntry) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| pred(e))
    }

    /// Fold another capture into this one: entries are interleaved by
    /// timestamp (stable — at equal times `self` entries come first), the
    /// larger capacity wins, and everything beyond it counts as overflow.
    pub fn absorb(&mut self, other: Trace) {
        self.capacity = self.capacity.max(other.capacity);
        self.overflowed += other.overflowed;
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut rhs = other.entries.into_iter().peekable();
        for e in self.entries.drain(..) {
            while rhs.peek().is_some_and(|r| r.time < e.time) {
                merged.push(rhs.next().unwrap());
            }
            merged.push(e);
        }
        merged.extend(rhs);
        if merged.len() > self.capacity {
            self.overflowed += (merged.len() - self.capacity) as u64;
            merged.truncate(self.capacity);
        }
        self.entries = merged;
    }

    /// Render the whole capture as text, one line per record.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        if self.overflowed > 0 {
            s.push_str(&format!(
                "... {} entries not captured (buffer full)\n",
                self.overflowed
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn pkt() -> Packet {
        let a: IpAddr = "192.0.2.1".parse().unwrap();
        let b: IpAddr = "198.51.100.9".parse().unwrap();
        Packet::udp(a, b, 40000, 53, vec![0; 12])
    }

    #[test]
    fn records_until_capacity() {
        let mut t = Trace::with_capacity(2);
        t.record(SimTime::ZERO, TracePoint::Sent, &pkt());
        t.record(SimTime::from_secs(1), TracePoint::Delivered, &pkt());
        t.record(SimTime::from_secs(2), TracePoint::Delivered, &pkt());
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.overflowed, 1);
        assert!(t.dump().contains("not captured"));
    }

    #[test]
    fn display_format() {
        let mut t = Trace::with_capacity(10);
        t.record(
            SimTime::from_secs(1),
            TracePoint::Dropped(DropReason::Dsav),
            &pkt(),
        );
        let line = t.dump();
        assert!(line.contains("DROP[dsav-ingress]"), "{line}");
        assert!(line.contains("192.0.2.1:40000 > 198.51.100.9:53"), "{line}");
        assert!(line.contains("len 12"), "{line}");
    }

    #[test]
    fn absorb_interleaves_by_time_and_caps() {
        let mut a = Trace::with_capacity(3);
        a.record(SimTime::from_secs(1), TracePoint::Sent, &pkt());
        a.record(SimTime::from_secs(3), TracePoint::Delivered, &pkt());
        let mut b = Trace::with_capacity(2);
        b.record(SimTime::from_secs(2), TracePoint::Sent, &pkt());
        b.record(SimTime::from_secs(4), TracePoint::Sent, &pkt());
        a.absorb(b);
        let times: Vec<u64> = a.entries().iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert_eq!(a.overflowed, 1); // entry at t=4 fell past capacity 3
    }

    #[test]
    fn filter_selects() {
        let mut t = Trace::with_capacity(10);
        t.record(SimTime::ZERO, TracePoint::Sent, &pkt());
        t.record(SimTime::ZERO, TracePoint::Delivered, &pkt());
        assert_eq!(t.filter(|e| e.point == TracePoint::Delivered).count(), 1);
    }
}
